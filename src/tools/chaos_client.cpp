// chaos_client — drives a live `iotx serve` daemon from the outside.
//
//   chaos_client clean <host> <port> <tenant> <capture.pcap> [chunk|identity]
//       streams the pcap cleanly and prints the daemon's response body
//       (the session summary JSON); exit 0 iff the upload was accepted.
//   chaos_client report <host> <port> <tenant>
//       prints GET /report/<tenant> (byte-exact; the serve-smoke CI job
//       diffs it against the batch path).
//   chaos_client batch <tenant> <capture.pcap> [model.art]
//       prints the batch-reference report for the same bytes — no
//       daemon involved; must byte-match `report` after `clean` (with a
//       model artifact: after `model` + `clean`).
//   chaos_client model <host> <port> <tenant> <model.art>
//       installs a DetectorModel artifact via POST /model/<tenant> and
//       prints the daemon's response (digest JSON); exit 0 iff accepted.
//   chaos_client get <host> <port> <path>
//       prints any control-plane document.
//   chaos_client chaos <host> <port> <capture.pcap>
//       runs the hostile suite (slow-loris, mid-stream disconnect,
//       malformed chunking, oversized frame, garbage head, flood) and
//       exits 0 iff the daemon answered /health afterwards — i.e. it
//       survived everything.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "iotx/serve/chaos.hpp"
#include "iotx/serve/daemon.hpp"

namespace {

using namespace iotx;

int usage() {
  std::puts(
      "usage:\n"
      "  chaos_client clean <host> <port> <tenant> <capture.pcap> "
      "[chunk|identity]\n"
      "  chaos_client report <host> <port> <tenant>\n"
      "  chaos_client batch <tenant> <capture.pcap> [model.art]\n"
      "  chaos_client model <host> <port> <tenant> <model.art>\n"
      "  chaos_client get <host> <port> <path>\n"
      "  chaos_client chaos <host> <port> <capture.pcap>");
  return 2;
}

bool read_file(const char* path, std::vector<std::uint8_t>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return true;
}

std::uint16_t parse_port(const char* s) {
  return static_cast<std::uint16_t>(std::atoi(s));
}

int cmd_clean(int argc, char** argv) {
  if (argc < 6) return usage();
  std::vector<std::uint8_t> pcap;
  if (!read_file(argv[5], pcap)) {
    std::printf("cannot read %s\n", argv[5]);
    return 1;
  }
  serve::ChaosClient client(argv[2], parse_port(argv[3]));
  const bool identity = argc > 6 && std::strcmp(argv[6], "identity") == 0;
  const serve::ChaosResult r =
      identity ? client.upload_identity(argv[4], pcap)
               : client.upload_chunked(argv[4], pcap);
  std::printf("%s\n", r.body.c_str());
  return r.connected && r.sent_all && r.status_code == 200 ? 0 : 1;
}

int cmd_report(int argc, char** argv) {
  if (argc < 5) return usage();
  serve::ChaosClient client(argv[2], parse_port(argv[3]));
  const serve::ChaosResult r = client.get("/report/" + std::string(argv[4]));
  if (r.status_code != 200) {
    std::fprintf(stderr, "GET /report/%s -> %d\n", argv[4], r.status_code);
    return 1;
  }
  std::printf("%s\n", r.body.c_str());
  return 0;
}

int cmd_batch(int argc, char** argv) {
  if (argc < 4) return usage();
  std::vector<std::uint8_t> pcap;
  if (!read_file(argv[3], pcap)) {
    std::printf("cannot read %s\n", argv[3]);
    return 1;
  }
  std::vector<std::uint8_t> model;
  if (argc > 4 && !read_file(argv[4], model)) {
    std::printf("cannot read %s\n", argv[4]);
    return 1;
  }
  std::printf("%s\n",
              serve::batch_report_json(argv[2], pcap, {}, model).c_str());
  return 0;
}

int cmd_model(int argc, char** argv) {
  if (argc < 6) return usage();
  std::vector<std::uint8_t> artifact;
  if (!read_file(argv[5], artifact)) {
    std::printf("cannot read %s\n", argv[5]);
    return 1;
  }
  serve::ChaosClient client(argv[2], parse_port(argv[3]));
  const serve::ChaosResult r =
      client.post("/model/" + std::string(argv[4]), artifact);
  std::printf("%s\n", r.body.c_str());
  return r.connected && r.sent_all && r.status_code == 200 ? 0 : 1;
}

int cmd_get(int argc, char** argv) {
  if (argc < 5) return usage();
  serve::ChaosClient client(argv[2], parse_port(argv[3]));
  const serve::ChaosResult r = client.get(argv[4]);
  if (r.status_code == 0) {
    std::fprintf(stderr, "no response from %s:%s\n", argv[2], argv[3]);
    return 1;
  }
  std::printf("%s\n", r.body.c_str());
  return r.status_code == 200 ? 0 : 1;
}

int cmd_chaos(int argc, char** argv) {
  if (argc < 5) return usage();
  std::vector<std::uint8_t> pcap;
  if (!read_file(argv[4], pcap)) {
    std::printf("cannot read %s\n", argv[4]);
    return 1;
  }
  serve::ChaosClient client(argv[2], parse_port(argv[3]));
  int scenarios = 0;

  const auto note = [&scenarios](const char* name,
                                 const serve::ChaosResult& r) {
    ++scenarios;
    std::printf("%-22s connected=%d sent_all=%d status=%d\n", name,
                r.connected ? 1 : 0, r.sent_all ? 1 : 0, r.status_code);
  };

  // Worst case ~12 s of trickling; any sane idle timeout cuts far
  // sooner, and the scenario reports sent_all=0 when it does.
  note("slow-loris", client.slow_loris(/*trickle_ms=*/20,
                                       /*max_bytes=*/600));
  note("disconnect-midstream",
       client.disconnect_midstream("chaos", pcap, pcap.size() / 2));
  note("malformed-chunked", client.malformed_chunked("chaos"));
  note("oversized-frame", client.oversized_frame("chaos"));
  note("garbage-head", client.garbage_head());
  for (int i = 0; i < 8; ++i) {
    note("flood", client.upload_chunked("flood", pcap));
  }

  // The only assertion that matters: the daemon is still alive and
  // coherent after all of that.
  const serve::ChaosResult health = client.get("/health");
  std::printf("post-chaos /health -> %d\n%s\n", health.status_code,
              health.body.c_str());
  if (health.status_code != 200) {
    std::fprintf(stderr, "daemon did not survive the chaos suite\n");
    return 1;
  }
  std::printf("%d scenarios run; daemon alive\n", scenarios);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string_view command = argv[1];
  if (command == "clean") return cmd_clean(argc, argv);
  if (command == "report") return cmd_report(argc, argv);
  if (command == "batch") return cmd_batch(argc, argv);
  if (command == "model") return cmd_model(argc, argv);
  if (command == "get") return cmd_get(argc, argv);
  if (command == "chaos") return cmd_chaos(argc, argv);
  return usage();
}
