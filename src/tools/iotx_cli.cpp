// iotx — command-line interface to the library.
//
//   iotx catalog                          list the 81 device units
//   iotx endpoints                        list the endpoint registry
//   iotx simulate <device> <activity> <out.pcap> [us|uk] [--vpn]
//                                         synthesize one interaction capture
//   iotx classify <capture.pcap>          flows, protocols, encryption,
//                                         destinations of any pcap; with
//                                         --detect <model.art>, also the
//                                         §7.1 activity detections
//   iotx train-detector <device> <out.art> [us|uk] [--vpn]
//                                         train + package a deployable
//                                         DetectorModel artifact
//   iotx study --out <dir> [--paper-scale] [--devices a,b,c] [--jobs N]
//              [--impair <profile>] [--worker] [--synthetic-devices N]
//                                         run the campaign, write JSON tables;
//                                         --worker claims runs through a
//                                         shared --cache so a fleet of
//                                         processes partitions the campaign
//   iotx reduce --cache <dir> --out <dir> merge a worker fleet's cached
//                                         partials into the full report
//                                         (computes anything still missing)
//   iotx gen-catalog <count> [--seed S]   preview the synthetic device
//                                         catalog used by --synthetic-devices
//   iotx impair <in.pcap> <out.pcap> <profile> [seed]
//                                         degrade a capture through a named
//                                         impairment profile
//   iotx defend-eval [--out <report.json>] ...
//                                         evaluate traffic-shaping defenses:
//                                         F1 degradation vs byte overhead
//   iotx serve [--port N] ...             always-on ingest daemon: accepts
//                                         streamed pcap uploads per tenant,
//                                         degrades under load, drains and
//                                         checkpoints on SIGTERM
//   iotx export-dataset <dir>             labeled pcaps in the released
//                                         dataset's layout
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "iotx/analysis/destinations.hpp"
#include "iotx/analysis/encryption.hpp"
#include "iotx/cache/binio.hpp"
#include "iotx/core/options.hpp"
#include "iotx/core/study.hpp"
#include "iotx/core/defense.hpp"
#include "iotx/faults/impairment.hpp"
#include "iotx/faults/transform.hpp"
#include "iotx/obs/profile.hpp"
#include "iotx/obs/registry.hpp"
#include "iotx/obs/trace.hpp"
#include "iotx/report/report.hpp"
#include "iotx/serve/daemon.hpp"
#include "iotx/serve/detector.hpp"
#include "iotx/testbed/catalog_gen.hpp"
#include "iotx/testbed/gateway.hpp"
#include "iotx/util/strings.hpp"
#include "iotx/util/table.hpp"
#include "iotx/util/task_pool.hpp"

namespace {

using namespace iotx;

// --- graceful interruption (SIGINT/SIGTERM) ---------------------------
//
// One flag for the batch commands (study/classify finish in-flight work,
// then write partial-but-coherent outputs) and one daemon pointer for
// `iotx serve` (the handler asks it to drain). Plain sig_atomic-style
// use only: the handlers write an atomic / call an async-signal-safe
// method and return.

std::atomic<bool> g_interrupted{false};
serve::Daemon* g_daemon = nullptr;

void on_interrupt(int) {
  g_interrupted.store(true, std::memory_order_relaxed);
  if (g_daemon != nullptr) g_daemon->request_stop();
}

/// Installs the handler for SIGINT+SIGTERM for the current command;
/// restores default disposition on scope exit.
class InterruptGuard {
 public:
  InterruptGuard() {
    std::signal(SIGINT, on_interrupt);
    std::signal(SIGTERM, on_interrupt);
  }
  ~InterruptGuard() {
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
  }
};

int usage() {
  std::puts(
      "usage:\n"
      "  iotx catalog\n"
      "  iotx endpoints\n"
      "  iotx simulate <device_id> <activity> <out.pcap> [us|uk] [--vpn]\n"
      "  iotx classify <capture.pcap> [--detect <model.art>] [--metrics]\n"
      "                [--trace <out.json>] [--transform a,b,...]\n"
      "                [--impair <profile>] [--shape <profile>]\n"
      "                (--detect runs the model's activity detector over\n"
      "                the capture — same output a live `iotx serve`\n"
      "                tenant with that model reports; the transform\n"
      "                chain, when given, mutates the capture before\n"
      "                analysis — an empty chain keeps the zero-copy\n"
      "                path byte-identical)\n"
      "  iotx train-detector <device_id> <out.art> [us|uk] [--vpn]\n"
      "                (train the per-device activity model on synthesized\n"
      "                labeled captures and write the deployable artifact;\n"
      "                install into a daemon via POST /model/<tenant>)\n"
      "  iotx study --out <dir> [--paper-scale] [--devices a,b,c] [--no-vpn]\n"
      "             [--jobs N]   (worker threads; default: all hardware\n"
      "                          threads; results identical at any N)\n"
      "             [--impair <profile>]  (inject network impairment;\n"
      "                          see `iotx impair` for the profile names)\n"
      "             [--transform a,b,...]  (ordered capture-transform\n"
      "                          chain applied at the capture head;\n"
      "                          --impair and --shape are one-element\n"
      "                          aliases onto the same machinery)\n"
      "             [--shape <profile>]  (append one traffic-shaping\n"
      "                          defense; names listed below)\n"
      "             [--lifecycle-reps N]  (also capture N reps of the\n"
      "                          setup / ota_update / deprovision\n"
      "                          lifecycle phases per device and write\n"
      "                          the per-phase tables to lifecycle.json;\n"
      "                          Tables 2-11 are unaffected)\n"
      "             [--metrics]  (per-stage profile.json/profile.txt in\n"
      "                          the report directory)\n"
      "             [--trace]    (Chrome trace.json in the report\n"
      "                          directory; open in Perfetto)\n"
      "             [--cache <dir>]  (content-addressed artifact cache;\n"
      "                          a warm rerun loads per-stage hits\n"
      "                          instead of recomputing)\n"
      "             [--worker]   (claim (config, device) runs through the\n"
      "                          shared --cache dir so N independent\n"
      "                          worker processes partition the campaign;\n"
      "                          requires --cache)\n"
      "             [--claim-lease-ms N]  (worker claim lease; a claim\n"
      "                          not heartbeated for N ms counts as\n"
      "                          abandoned and is reaped; default 60000)\n"
      "             [--synthetic-devices N]  (replace the builtin catalog\n"
      "                          with N generated fleet devices; seeded,\n"
      "                          bit-reproducible)\n"
      "             [--catalog-seed S]  (seed for --synthetic-devices;\n"
      "                          default 1)\n"
      "  iotx reduce --cache <dir> --out <dir> [study flags]\n"
      "             (merge a worker fleet's cached partials into the full\n"
      "             byte-identical report; recomputes runs no worker\n"
      "             finished, so it terminates even after worker crashes;\n"
      "             sweeps stale temp files and orphaned claims first)\n"
      "  iotx gen-catalog <count> [--seed S] [--jobs N]\n"
      "             (summarize the synthetic catalog: per-category and\n"
      "             per-lab counts plus sample rows)\n"
      "  iotx impair <in.pcap> <out.pcap> <profile> [seed]\n"
      "  iotx defend-eval [--out <report.json>] [--devices a,b,c]\n"
      "             [--max-devices N] [--transform a,b,...]\n"
      "             [--shape <profile>] [--jobs N]\n"
      "             (re-run the §6.3 activity-inference attack under\n"
      "             each traffic-shaping defense — default: every\n"
      "             builtin shaping profile — and report the F1\n"
      "             degradation against the padding-byte overhead)\n"
      "  iotx serve [--port N] [--host H] [--max-sessions N]\n"
      "             [--checkpoint-dir <dir>] [--idle-timeout-ms N]\n"
      "             [--drain-grace-ms N] [--memory-budget-mb N] [--metrics]\n"
      "             [--transform a,b,...] [--shape <profile>]\n"
      "             (always-on ingest daemon; POST pcap streams to\n"
      "             /ingest/<tenant>, read /health /metrics /config\n"
      "             /report/<tenant>; SIGTERM drains and checkpoints;\n"
      "             a transform chain shapes every upload before\n"
      "             analysis)\n"
      "  iotx export-dataset <dir>");
  std::printf("impairment profiles: %s\n",
              iotx::faults::profile_names().c_str());
  std::printf("capture transforms:  %s\n",
              iotx::faults::transform_names().c_str());
  std::printf("shaping profiles:    %s\n",
              iotx::faults::shaping_profile_names().c_str());
  return 2;
}

int cmd_catalog() {
  util::TextTable table({"id", "name", "category", "labs", "activities"});
  for (const testbed::DeviceSpec& d : testbed::device_catalog()) {
    const char* labs = d.common() ? "US+UK" : (d.in_us() ? "US" : "UK");
    table.add_row({d.id, d.name,
                   std::string(testbed::category_name(d.category)), labs,
                   util::join(d.activity_names(), ",")});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_endpoints() {
  util::TextTable table({"domain", "organization", "kind", "country",
                         "address", "replica"});
  for (const testbed::Endpoint& e : testbed::EndpointRegistry::builtin().all()) {
    table.add_row({e.domain, e.organization,
                   e.infrastructure ? "support" : "first/third", e.country,
                   e.address.to_string(),
                   e.replica_country.empty()
                       ? "-"
                       : e.replica_country + "/" +
                             e.replica_address.to_string()});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  if (argc < 5) return usage();
  const testbed::DeviceSpec* device = testbed::find_device(argv[2]);
  if (device == nullptr) {
    std::printf("unknown device '%s' (see `iotx catalog`)\n", argv[2]);
    return 1;
  }
  const std::string activity = argv[3];
  const std::string out_path = argv[4];
  testbed::NetworkConfig config{testbed::LabSite::kUs, false};
  for (int i = 5; i < argc; ++i) {
    if (std::strcmp(argv[i], "uk") == 0) config.lab = testbed::LabSite::kUk;
    if (std::strcmp(argv[i], "--vpn") == 0) config.vpn = true;
  }

  const testbed::TrafficSynthesizer synth;
  util::Prng prng("cli/" + device->id + "/" + activity + "/" + config.key());
  std::vector<net::Packet> packets;
  if (activity == "power") {
    packets = synth.power_event(*device, config, 0.0, prng);
  } else if (activity == "idle") {
    packets = synth.idle_period(*device, config, 0.0, 1.0, prng);
  } else {
    const auto* sig = testbed::TrafficSynthesizer::find_activity(*device,
                                                                 activity);
    if (sig == nullptr) {
      std::printf("device %s has no activity '%s'; available: %s\n",
                  device->id.c_str(), activity.c_str(),
                  util::join(device->activity_names(), ", ").c_str());
      return 1;
    }
    packets = synth.activity_event(*device, config, *sig, 0.0, prng);
  }
  if (!net::pcap_write_file(out_path, packets)) {
    std::printf("cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %zu packets to %s\n", packets.size(), out_path.c_str());
  return 0;
}

int cmd_classify(int argc, char** argv) {
  if (argc < 3) return usage();
  core::StudyOptions opts;
  std::string detect_path;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--detect") == 0) {
      if (i + 1 >= argc) {
        std::printf("--detect needs a model artifact path\n");
        return 2;
      }
      detect_path = argv[++i];
      continue;
    }
    switch (opts.parse_shared_flag(argc, argv, i)) {
      case core::StudyOptions::ParseResult::kConsumed:
        break;
      case core::StudyOptions::ParseResult::kError:
        std::printf("%s\n", opts.error().c_str());
        return 2;
      case core::StudyOptions::ParseResult::kNotMine:
        return usage();
    }
  }
  const bool metrics = opts.metrics();
  // A Ctrl-C mid-classify finishes the single ingest pass and still
  // prints the tables (and writes the trace) instead of dying half-way.
  const InterruptGuard interrupt_guard;
  // classify has no report directory to derive a default path from, so
  // --trace needs an explicit one.
  if (opts.trace() && opts.trace_path().empty()) return usage();
  core::TraceSession trace(opts.trace());
  if (metrics) {
    obs::Registry::global().reset();
    obs::set_metrics_enabled(true);
  }

  faults::CaptureHealth health;
  // Zero-copy load: the pcap file buffer is the packet arena, so the
  // capture is decoded straight out of the file bytes with no
  // per-packet copies.
  const auto capture = net::pcap_load(argv[2], &health);
  if (!capture) {
    std::printf("cannot read pcap %s\n", argv[2]);
    return 1;
  }
  // Optional detection model: parsed before ingest so its device-meta
  // collector rides the same single decode pass as everything else.
  std::shared_ptr<const serve::DetectorModel> model;
  if (!detect_path.empty()) {
    std::ifstream in(detect_path, std::ios::binary);
    if (!in) {
      std::printf("cannot read model artifact %s\n", detect_path.c_str());
      return 1;
    }
    const std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    try {
      model = std::make_shared<const serve::DetectorModel>(
          serve::DetectorModel::parse(bytes));
    } catch (const cache::CorruptArtifact& e) {
      std::printf("corrupt model artifact %s: %s\n", detect_path.c_str(),
                  e.what());
      return 1;
    }
  }

  // Single-decode pass: the DNS cache and flow table ride one pipeline.
  flow::DnsCache dns;
  flow::FlowTable ftable;
  flow::InstrumentedSink dns_shim(dns, "dns_cache");
  flow::InstrumentedSink ftable_shim(ftable, "flow_table");
  flow::IngestPipeline pipeline;
  pipeline.add_sink(metrics ? static_cast<flow::PacketSink&>(dns_shim) : dns);
  pipeline.add_sink(metrics ? static_cast<flow::PacketSink&>(ftable_shim)
                            : ftable);
  std::optional<flow::MetaCollector> device_meta;
  if (model != nullptr) {
    device_meta.emplace(model->device_mac());
    pipeline.add_sink(*device_meta);
  }
  // The capture-transform chain (--impair/--shape/--transform). An
  // empty chain takes the allocation-free path: apply_views returns the
  // mmap-backed views untouched, so a plain classify stays zero-copy and
  // byte-identical to pre-transform builds.
  faults::TransformChain chain;
  if (opts.params().impairment.enabled()) {
    chain.push_back(std::make_shared<const faults::ImpairmentTransform>(
        opts.params().impairment));
  }
  for (const auto& transform : opts.params().transforms.items()) {
    chain.push_back(transform);
  }
  std::vector<net::Packet> owned;
  std::vector<net::PacketView> owned_views;
  // Seeded by the capture path: the same file through the same chain
  // classifies identically run over run.
  const std::span<const net::PacketView> views =
      chain.apply_views(capture->views, argv[2], owned, owned_views, health);
  {
    obs::Span span("classify/ingest");
    pipeline.ingest_views(views);
    pipeline.finish();
    span.add_bytes_in(pipeline.bytes_seen());
  }
  health.merge(pipeline.health());
  health.merge(dns.health());
  health.merge(ftable.health());
  const auto flows = ftable.flows();
  std::printf("%zu packets, %zu flows\n\n", views.size(), flows.size());

  util::TextTable table({"flow", "proto", "class", "entropy", "pkts",
                         "payload"});
  int index = 0;
  for (const auto& f : flows) {
    const auto enc = analysis::classify_flow(f);
    std::string name = f.initiator.to_string() + ":" +
                       std::to_string(f.initiator_port) + " -> ";
    if (const auto domain = dns.lookup(f.responder)) {
      name += *domain;
    } else if (!f.sni.empty()) {
      name += f.sni;
    } else if (!f.http_host.empty()) {
      name += f.http_host;
    } else {
      name += f.responder.to_string();
    }
    name += ":" + std::to_string(f.responder_port);
    table.add_row({name, std::string(proto::protocol_name(f.protocol)),
                   std::string(analysis::encryption_class_name(enc.cls)),
                   enc.entropy_based ? util::format_double(enc.entropy, 3)
                                     : "-",
                   std::to_string(f.total_packets()),
                   util::format_bytes(f.total_payload_bytes())});
    ++index;
  }
  std::fputs(table.render().c_str(), stdout);

  const auto enc = analysis::account_flows(flows);
  std::printf(
      "\ntotals: %.1f%% encrypted, %.1f%% unencrypted, %.1f%% unknown "
      "(+%s media excluded)\n",
      enc.pct_encrypted(), enc.pct_unencrypted(), enc.pct_unknown(),
      util::format_bytes(enc.media).c_str());

  if (model != nullptr) {
    // The single detection path: the identical run_detector() call a
    // live daemon folds per session, so these rows byte-match what a
    // serve tenant with this model reports over the same capture.
    const serve::DetectionOutcome outcome =
        serve::run_detector(*model, device_meta->meta());
    std::printf(
        "\ndetections (device %s, model %.12s...): %llu units examined, "
        "%llu classified\n",
        model->device_id().c_str(), model->digest().c_str(),
        static_cast<unsigned long long>(outcome.units_total),
        static_cast<unsigned long long>(outcome.units_classified));
    if (!outcome.detections.empty()) {
      util::TextTable dt({"activity", "unit_start", "packets"});
      for (const analysis::Detection& d : outcome.detections) {
        dt.add_row({d.activity, util::format_double(d.unit_start, 3),
                    std::to_string(d.unit_packets)});
      }
      std::fputs(dt.render().c_str(), stdout);
    }
  }

  const auto anomalies = faults::nonzero_counters(health);
  if (!anomalies.empty()) {
    std::printf("\ncapture health (degraded ingest):\n");
    for (const auto& [name, value] : anomalies) {
      std::printf("  %-30s %llu\n", std::string(name).c_str(),
                  static_cast<unsigned long long>(value));
    }
  }

  if (metrics) {
    faults::record_health_metrics(health);
    const obs::Registry::Snapshot snap = obs::Registry::global().snapshot();
    std::printf("\n%s", obs::profile_text(snap).c_str());
    obs::set_metrics_enabled(false);
  }
  if (trace.active()) {
    if (!trace.write(opts.trace_path())) {
      std::printf("cannot write trace to %s\n", opts.trace_path().c_str());
      return 1;
    }
    std::printf("wrote %zu trace events to %s\n", trace.event_count(),
                opts.trace_path().c_str());
  }
  if (g_interrupted.load(std::memory_order_relaxed)) {
    std::printf("(interrupted: finished the in-flight pass before exiting)\n");
  }
  return 0;
}

int cmd_train_detector(int argc, char** argv) {
  if (argc < 4) return usage();
  const testbed::DeviceSpec* device = testbed::find_device(argv[2]);
  if (device == nullptr) {
    std::printf("unknown device '%s' (see `iotx catalog`)\n", argv[2]);
    return 1;
  }
  const std::string out_path = argv[3];
  testbed::NetworkConfig config{testbed::LabSite::kUs, false};
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "uk") == 0) config.lab = testbed::LabSite::kUk;
    if (std::strcmp(argv[i], "--vpn") == 0) config.vpn = true;
  }

  // Same training recipe as the batch Study: the scheduled labeled
  // experiments plus synthetic background windows so heartbeats have a
  // home class (otherwise every idle burst votes for a real activity).
  const testbed::ExperimentRunner runner(testbed::SchedulePlan{10, 10, 10, 0.0});
  std::vector<testbed::LabeledCapture> captures;
  for (const testbed::ExperimentSpec& spec : runner.schedule(*device, config)) {
    if (spec.type == testbed::ExperimentType::kIdle) continue;
    captures.push_back(runner.run(spec));
  }
  const testbed::TrafficSynthesizer synth;
  for (int i = 0; i < 6; ++i) {
    testbed::LabeledCapture bg;
    bg.spec.device_id = device->id;
    bg.spec.config = config;
    bg.spec.type = testbed::ExperimentType::kInteraction;
    bg.spec.activity = std::string(analysis::kBackgroundLabel);
    bg.spec.repetition = i;
    util::Prng prng("detector-bg/" + device->id + "/" + std::to_string(i));
    bg.packets = synth.background(*device, config, 0.0, 60.0, prng);
    captures.push_back(std::move(bg));
  }

  std::printf("training %s (%s) on %zu labeled captures...\n",
              device->id.c_str(), config.key().c_str(), captures.size());
  analysis::InferenceParams params;
  params.validation.forest.n_trees = 30;
  params.validation.repetitions = 6;
  const analysis::ActivityModel model =
      analysis::train_activity_model(*device, config, captures, params);
  const serve::DetectorModel deployable =
      serve::DetectorModel::from_activity_model(*device, model);
  const std::vector<std::uint8_t> artifact = deployable.serialize();

  std::ofstream out(out_path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(artifact.data()),
            static_cast<std::streamsize>(artifact.size()));
  if (!out.good()) {
    std::printf("cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf(
      "wrote %zu-byte model artifact to %s\n  device F1 %.3f (%zu classes, "
      "%zu trees flattened to %zu nodes)\n  digest %s\n",
      artifact.size(), out_path.c_str(), model.device_f1(),
      deployable.class_count(), deployable.forest().tree_count(),
      deployable.forest().node_count(), deployable.digest().c_str());
  if (model.device_f1() < ml::kHighConfidenceF1) {
    std::printf(
        "note: device F1 is below the %.1f high-confidence bar; the §7.1 "
        "filter will suppress low-scoring activities at detection time\n",
        ml::kHighConfidenceF1);
  }
  return 0;
}

int cmd_impair(int argc, char** argv) {
  if (argc < 5) return usage();
  const auto packets = net::pcap_read_file(argv[2]);
  if (!packets) {
    std::printf("cannot read pcap %s\n", argv[2]);
    return 1;
  }
  const faults::ImpairmentProfile* profile = faults::find_profile(argv[4]);
  if (profile == nullptr) {
    std::printf("unknown impairment profile '%s'; available: %s\n", argv[4],
                faults::profile_names().c_str());
    return 1;
  }
  const std::string seed = argc > 5 ? argv[5] : "cli";
  std::vector<net::Packet> degraded = *packets;
  util::Prng prng("impair/" + seed);
  const faults::ImpairmentSummary summary =
      faults::apply_impairment(degraded, *profile, prng);
  if (!net::pcap_write_file(argv[3], degraded)) {
    std::printf("cannot write %s\n", argv[3]);
    return 1;
  }
  std::printf(
      "%llu -> %llu packets (%llu dropped / %llu bytes, %llu duplicated, "
      "%llu reordered, %llu truncated, %llu corrupted, %llu DNS responses "
      "dropped%s)\n",
      static_cast<unsigned long long>(summary.packets_in),
      static_cast<unsigned long long>(summary.packets_out),
      static_cast<unsigned long long>(summary.dropped_packets),
      static_cast<unsigned long long>(summary.dropped_bytes),
      static_cast<unsigned long long>(summary.duplicated_packets),
      static_cast<unsigned long long>(summary.reordered_packets),
      static_cast<unsigned long long>(summary.truncated_frames),
      static_cast<unsigned long long>(summary.corrupted_frames),
      static_cast<unsigned long long>(summary.dns_responses_dropped),
      summary.cutoff_applied ? ", capture cut short" : "");
  return 0;
}

// `iotx study` and `iotx reduce` share one driver: a reduce is a
// non-worker cached campaign run — every artifact a worker already
// computed is a cache hit, anything missing (workers killed mid-stage)
// is recomputed — followed by the ordinary report writer, so the merged
// output is byte-identical to a single-process run by construction.
int cmd_campaign(int argc, char** argv, bool reduce) {
  core::StudyOptions opts;
  std::size_t synthetic_devices = 0;
  std::uint64_t catalog_seed = 1;
  int lifecycle_reps = 0;
  for (int i = 2; i < argc; ++i) {
    switch (opts.parse_shared_flag(argc, argv, i)) {
      case core::StudyOptions::ParseResult::kConsumed:
        continue;
      case core::StudyOptions::ParseResult::kError:
        std::printf("%s\n", opts.error().c_str());
        return 2;
      case core::StudyOptions::ParseResult::kNotMine:
        break;
    }
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opts.out_dir(argv[++i]);
    } else if (std::strcmp(argv[i], "--paper-scale") == 0) {
      opts.paper_scale();
    } else if (std::strcmp(argv[i], "--devices") == 0 && i + 1 < argc) {
      opts.devices(util::split(argv[++i], ','));
    } else if (std::strcmp(argv[i], "--no-vpn") == 0) {
      opts.vpn(false);
    } else if (std::strcmp(argv[i], "--worker") == 0 && !reduce) {
      opts.worker(true);
    } else if (std::strcmp(argv[i], "--claim-lease-ms") == 0 && i + 1 < argc) {
      const long lease = std::atol(argv[++i]);
      if (lease < 1) {
        std::printf("--claim-lease-ms requires a positive integer\n");
        return 2;
      }
      opts.claim_lease_ms(static_cast<std::uint64_t>(lease));
    } else if (std::strcmp(argv[i], "--synthetic-devices") == 0 &&
               i + 1 < argc) {
      const long count = std::atol(argv[++i]);
      if (count < 1) {
        std::printf("--synthetic-devices requires a positive integer\n");
        return 2;
      }
      synthetic_devices = static_cast<std::size_t>(count);
    } else if (std::strcmp(argv[i], "--catalog-seed") == 0 && i + 1 < argc) {
      catalog_seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--lifecycle-reps") == 0 && i + 1 < argc) {
      lifecycle_reps = std::atoi(argv[++i]);
      if (lifecycle_reps < 1) {
        std::printf("--lifecycle-reps requires a positive integer\n");
        return 2;
      }
    } else {
      return usage();
    }
  }
  const std::string& out_dir = opts.out();
  if (out_dir.empty()) return usage();
  if (synthetic_devices > 0) {
    // Applied after the flag loop so --jobs / --catalog-seed order on the
    // command line does not matter.
    opts.synthetic_devices(synthetic_devices, catalog_seed);
  }
  // After the loop for the same reason: --paper-scale replaces the plan.
  if (lifecycle_reps > 0) opts.lifecycle_reps(lifecycle_reps);
  if ((reduce || opts.params().worker) && opts.cache_dir().empty()) {
    std::printf("%s requires --cache <dir> (the shared artifact store the "
                "worker fleet partitions)\n",
                reduce ? "iotx reduce" : "--worker");
    return 2;
  }
  if (reduce) {
    // Recover from any worker killed mid-write before trusting the cache:
    // half-written "<key>.art.tmpN" files and claims whose owner stopped
    // heartbeating are both debris, not state.
    cache::ArtifactStore sweeper(opts.cache_dir());
    const std::size_t temps = sweeper.remove_stale_temp_files();
    const std::size_t claims =
        sweeper.remove_orphaned_claims(opts.params().claim_lease_ms);
    if (temps > 0 || claims > 0) {
      std::printf("swept %zu stale temp file(s), %zu orphaned claim(s) "
                  "from %s\n",
                  temps, claims, opts.cache_dir().c_str());
    }
  }
  core::StudyParams params = opts.params();
  // Ctrl-C / SIGTERM: in-flight (config, device) runs finish, the rest
  // are skipped, and the partial report below still gets written —
  // robustness.json carries "status": "interrupted".
  const InterruptGuard interrupt_guard;
  params.cancel = &g_interrupted;
  const bool metrics = opts.metrics();

  // Observability setup precedes run() so the campaign's own spans land
  // in the trace; the report writer's spans ride the same collector.
  core::TraceSession trace(opts.trace());
  if (metrics) {
    obs::Registry::global().reset();
    obs::set_metrics_enabled(true);
  }

  std::printf("running the measurement campaign (%zu jobs)...\n",
              params.jobs == 0 ? iotx::util::TaskPool::default_thread_count()
                               : params.jobs);
  core::Study study(params);
  study.run();
  std::printf("%zu controlled experiments done\n", study.experiments_run());
  if (study.interrupted()) {
    std::size_t skipped = 0;
    for (const std::string& key : study.config_keys()) {
      for (const auto& r : study.results(key)) {
        if (r.status == core::RunStatus::kSkipped) ++skipped;
      }
    }
    std::printf(
        "interrupted: finished in-flight runs, skipped %zu; writing the "
        "partial report\n",
        skipped);
  }
  if (params.impairment.enabled()) {
    std::printf("impairment '%s': %zu degraded, %zu quarantined runs\n",
                params.impairment.name.c_str(), study.degraded().size(),
                study.quarantined().size());
  }
  if (!params.transforms.empty()) {
    std::string names;
    for (const auto& t : params.transforms.items()) {
      if (!names.empty()) names += ",";
      names += t->name();
    }
    std::uint64_t padding = 0;
    for (const std::string& key : study.config_keys()) {
      for (const auto& r : study.results(key)) {
        padding += r.health.shaped_padding_bytes;
      }
    }
    std::printf("capture transforms [%s]: %llu padding bytes added\n",
                names.c_str(), static_cast<unsigned long long>(padding));
  }
  if (!params.cache_dir.empty()) {
    const cache::ArtifactStoreStats stats = study.cache_stats();
    std::printf(
        "cache %s: %llu hits / %llu misses (%.1f%% hit rate), "
        "%llu stored, %llu corrupt\n",
        params.cache_dir.c_str(),
        static_cast<unsigned long long>(stats.hits),
        static_cast<unsigned long long>(stats.misses),
        stats.hit_rate() * 100.0,
        static_cast<unsigned long long>(stats.stores),
        static_cast<unsigned long long>(stats.corrupt));
  }
  if (params.worker) {
    const dist::ClaimStats cs = study.claim_stats();
    std::printf(
        "worker claims: %llu acquired / %llu attempted, %llu contended, "
        "%llu stale reaped, %llu released\n",
        static_cast<unsigned long long>(cs.acquired),
        static_cast<unsigned long long>(cs.attempts),
        static_cast<unsigned long long>(cs.contended),
        static_cast<unsigned long long>(cs.reaped),
        static_cast<unsigned long long>(cs.released));
  }
  if (!report::write_report_directory(study, out_dir)) {
    std::printf("cannot write report to %s\n", out_dir.c_str());
    return 1;
  }
  std::printf("wrote table2..table11/figure2/pii/robustness JSON to %s\n",
              out_dir.c_str());
  if (study.interrupted() && !params.cache_dir.empty()) {
    // A cancelled campaign can leave half-written "<key>.art.tmpN" files
    // between temp-write and rename; sweep them so the next warm run
    // starts from a clean cache directory.
    cache::ArtifactStore sweeper(params.cache_dir);
    const std::size_t removed = sweeper.remove_stale_temp_files();
    if (removed > 0) {
      std::printf("removed %zu stale cache temp file(s) from %s\n", removed,
                  params.cache_dir.c_str());
    }
  }

  if (metrics) {
    const obs::Registry::Snapshot snap = obs::Registry::global().snapshot();
    const auto write_file = [&out_dir](const char* name,
                                       const std::string& content) {
      std::ofstream out(out_dir + "/" + name, std::ios::binary);
      out << content << '\n';
      return out.good();
    };
    if (!write_file("profile.json", obs::profile_json(snap)) ||
        !write_file("profile.txt", obs::profile_text(snap))) {
      std::printf("cannot write profile to %s\n", out_dir.c_str());
      return 1;
    }
    std::printf("wrote %zu metrics to %s/profile.{json,txt}\n",
                snap.metrics.size(), out_dir.c_str());
    obs::set_metrics_enabled(false);
  }
  if (trace.active()) {
    const std::string trace_file = opts.trace_path().empty()
                                       ? out_dir + "/trace.json"
                                       : opts.trace_path();
    if (!trace.write(trace_file)) {
      std::printf("cannot write %s\n", trace_file.c_str());
      return 1;
    }
    std::printf("wrote %zu trace events to %s (open in ui.perfetto.dev)\n",
                trace.event_count(), trace_file.c_str());
  }
  return 0;
}

int cmd_gen_catalog(int argc, char** argv) {
  if (argc < 3) return usage();
  const long count = std::atol(argv[2]);
  if (count < 1) {
    std::printf("gen-catalog requires a positive device count\n");
    return 2;
  }
  testbed::CatalogGenParams gen;
  gen.count = static_cast<std::size_t>(count);
  std::size_t jobs = 0;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      gen.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::max(1, std::atoi(argv[++i])));
    } else {
      return usage();
    }
  }
  const std::vector<testbed::DeviceSpec> catalog =
      testbed::generate_catalog(gen, jobs);

  std::size_t per_category[testbed::kCategoryCount] = {};
  std::size_t us = 0, uk = 0, both = 0;
  std::size_t activities = 0;
  for (const testbed::DeviceSpec& d : catalog) {
    ++per_category[static_cast<int>(d.category)];
    if (d.common()) {
      ++both;
    } else if (d.in_us()) {
      ++us;
    } else {
      ++uk;
    }
    activities += d.behavior.activities.size();
  }
  std::printf("%zu synthetic devices (seed %llu, id %s)\n", catalog.size(),
              static_cast<unsigned long long>(gen.seed),
              testbed::catalog_cache_id(gen).c_str());
  util::TextTable cats({"category", "devices"});
  for (int c = 0; c < testbed::kCategoryCount; ++c) {
    cats.add_row({std::string(testbed::category_name(
                      static_cast<testbed::Category>(c))),
                  std::to_string(per_category[c])});
  }
  std::fputs(cats.render().c_str(), stdout);
  std::printf("labs: %zu US+UK, %zu US-only, %zu UK-only; "
              "%.1f activities/device\n",
              both, us, uk,
              catalog.empty()
                  ? 0.0
                  : static_cast<double>(activities) /
                        static_cast<double>(catalog.size()));
  const std::size_t samples = std::min<std::size_t>(catalog.size(), 5);
  util::TextTable rows({"id", "name", "category", "labs", "ip(us)"});
  for (std::size_t i = 0; i < samples; ++i) {
    const testbed::DeviceSpec& d = catalog[i];
    rows.add_row({d.id, d.name,
                  std::string(testbed::category_name(d.category)),
                  d.common() ? "US+UK" : (d.in_us() ? "US" : "UK"),
                  testbed::device_ip(d, true).to_string()});
  }
  std::fputs(rows.render().c_str(), stdout);
  return 0;
}

int cmd_serve(int argc, char** argv) {
  serve::ServeConfig config;
  bool metrics = false;
  for (int i = 2; i < argc; ++i) {
    const auto need_value = [&](const char* flag) {
      if (i + 1 < argc) return true;
      std::printf("%s needs a value\n", flag);
      return false;
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      if (!need_value("--port")) return 2;
      config.port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--host") == 0) {
      if (!need_value("--host")) return 2;
      config.bind_host = argv[++i];
    } else if (std::strcmp(argv[i], "--max-sessions") == 0) {
      if (!need_value("--max-sessions")) return 2;
      config.max_sessions = static_cast<std::size_t>(
          std::max(1, std::atoi(argv[++i])));
    } else if (std::strcmp(argv[i], "--checkpoint-dir") == 0) {
      if (!need_value("--checkpoint-dir")) return 2;
      config.checkpoint_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--idle-timeout-ms") == 0) {
      if (!need_value("--idle-timeout-ms")) return 2;
      config.idle_timeout_ms = std::max(100, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--drain-grace-ms") == 0) {
      if (!need_value("--drain-grace-ms")) return 2;
      config.drain_grace_ms = std::max(0, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--memory-budget-mb") == 0) {
      if (!need_value("--memory-budget-mb")) return 2;
      config.memory_budget_bytes =
          static_cast<std::uint64_t>(std::max(1, std::atoi(argv[++i]))) << 20;
    } else if (std::strcmp(argv[i], "--transform") == 0) {
      if (!need_value("--transform")) return 2;
      std::string error;
      if (!faults::parse_transform_chain(argv[++i],
                                         config.session.transforms, error)) {
        std::printf("%s\n", error.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--shape") == 0) {
      if (!need_value("--shape")) return 2;
      const faults::ShapingProfile* profile =
          faults::find_shaping_profile(argv[++i]);
      if (profile == nullptr) {
        std::printf("unknown shaping profile '%s'; available: %s\n", argv[i],
                    faults::shaping_profile_names().c_str());
        return 2;
      }
      config.session.transforms.push_back(
          std::make_shared<const faults::ShapingTransform>(*profile));
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else {
      return usage();
    }
  }
  if (metrics) {
    obs::Registry::global().reset();
    obs::set_metrics_enabled(true);
  }

  serve::Daemon daemon(config);
  if (!daemon.start()) {
    std::printf("cannot start daemon: %s\n", daemon.error().c_str());
    return 1;
  }
  const InterruptGuard interrupt_guard;
  g_daemon = &daemon;
  std::printf(
      "iotx serve listening on %s:%u (%zu sessions max%s); "
      "SIGINT/SIGTERM drains\n",
      config.bind_host.c_str(), daemon.port(), config.max_sessions,
      config.checkpoint_dir.empty()
          ? ""
          : (", checkpoints to " + config.checkpoint_dir).c_str());
  // Block until a signal asks for the drain; stop() joins everything,
  // cuts in-flight sessions after the grace, and checkpoints tenants.
  while (!g_interrupted.load(std::memory_order_relaxed)) {
    pause();
  }
  daemon.stop();
  g_daemon = nullptr;
  const serve::ServeStats stats = daemon.stats();
  std::printf(
      "drained: %llu sessions (%llu completed, %llu quarantined, "
      "%llu shed), %llu bytes, %zu tenant(s)%s\n",
      static_cast<unsigned long long>(stats.sessions_started),
      static_cast<unsigned long long>(stats.sessions_completed),
      static_cast<unsigned long long>(stats.sessions_quarantined),
      static_cast<unsigned long long>(stats.sessions_shed),
      static_cast<unsigned long long>(stats.bytes_received),
      daemon.tenants().size(),
      config.checkpoint_dir.empty() ? "" : ", checkpointed");
  if (metrics) {
    std::printf("%s\n", daemon.metrics_json().c_str());
    obs::set_metrics_enabled(false);
  }
  return 0;
}

int cmd_defend_eval(int argc, char** argv) {
  core::StudyOptions opts;
  core::DefenseEvalParams params;
  std::string out_path;
  for (int i = 2; i < argc; ++i) {
    switch (opts.parse_shared_flag(argc, argv, i)) {
      case core::StudyOptions::ParseResult::kConsumed:
        continue;
      case core::StudyOptions::ParseResult::kError:
        std::printf("%s\n", opts.error().c_str());
        return 2;
      case core::StudyOptions::ParseResult::kNotMine:
        break;
    }
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--devices") == 0 && i + 1 < argc) {
      params.device_filter = util::split(argv[++i], ',');
    } else if (std::strcmp(argv[i], "--max-devices") == 0 && i + 1 < argc) {
      const long count = std::atol(argv[++i]);
      if (count < 0) {
        std::printf("--max-devices requires a non-negative integer\n");
        return 2;
      }
      params.max_devices = static_cast<std::size_t>(count);
    } else {
      return usage();
    }
  }
  params.jobs = opts.params().jobs;
  // The shared --transform/--shape surface selects the defense set; the
  // default (empty) sweeps every builtin shaping profile.
  for (const auto& transform : opts.params().transforms.items()) {
    params.defenses.push_back(std::string(transform->name()));
  }

  std::printf("evaluating %s over %s device(s)...\n",
              params.defenses.empty()
                  ? ("all shaping defenses (" +
                     faults::shaping_profile_names() + ")")
                        .c_str()
                  : util::join(params.defenses, ",").c_str(),
              params.max_devices == 0
                  ? "all"
                  : std::to_string(params.max_devices).c_str());
  core::DefenseEvalResult result;
  try {
    result = core::run_defense_eval(params);
  } catch (const std::invalid_argument& e) {
    std::printf("%s\n", e.what());
    return 2;
  }
  std::fputs(report::defense_report_text(result).c_str(), stdout);
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    out << report::defense_report_json(result) << '\n';
    if (!out.good()) {
      std::printf("cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote defense report to %s\n", out_path.c_str());
  }
  return 0;
}

int cmd_export_dataset(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string root = argv[2];
  const testbed::ExperimentRunner runner(
      testbed::SchedulePlan{/*automated=*/3, /*manual=*/2, /*power=*/2,
                            /*idle_hours=*/0.1});
  std::size_t files = 0;
  for (const testbed::NetworkConfig& config : testbed::all_network_configs()) {
    if (config.vpn) continue;
    const testbed::Gateway gateway(config.lab);
    for (const testbed::DeviceSpec& device : testbed::device_catalog()) {
      const bool present = config.lab == testbed::LabSite::kUs
                               ? device.in_us()
                               : device.in_uk();
      if (!present) continue;
      for (const auto& spec : runner.schedule(device, config)) {
        const auto capture = runner.run(spec);
        if (gateway.write_labeled(root, capture).empty()) {
          std::printf("write failure under %s\n", root.c_str());
          return 1;
        }
        ++files;
      }
    }
  }
  std::printf("wrote %zu labeled pcaps under %s\n", files, root.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string_view command = argv[1];
  if (command == "catalog") return cmd_catalog();
  if (command == "endpoints") return cmd_endpoints();
  if (command == "simulate") return cmd_simulate(argc, argv);
  if (command == "classify") return cmd_classify(argc, argv);
  if (command == "train-detector") return cmd_train_detector(argc, argv);
  if (command == "impair") return cmd_impair(argc, argv);
  if (command == "defend-eval") return cmd_defend_eval(argc, argv);
  if (command == "study") return cmd_campaign(argc, argv, /*reduce=*/false);
  if (command == "reduce") return cmd_campaign(argc, argv, /*reduce=*/true);
  if (command == "gen-catalog") return cmd_gen_catalog(argc, argv);
  if (command == "serve") return cmd_serve(argc, argv);
  if (command == "export-dataset") return cmd_export_dataset(argc, argv);
  return usage();
}
