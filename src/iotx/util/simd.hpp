// Runtime CPU-capability shim for the vectorized hot paths (DESIGN.md
// §"Hot paths & SIMD dispatch").
//
// The repo's fast paths (byte-entropy histograms in util::entropy,
// SHA-256 block compression in cache::hash) each keep their simple
// scalar implementation as the *oracle*: the dispatched variant must be
// byte-identical to it on every input (property-tested in
// tests/test_simd_equivalence.cpp), so SIMD can never change a table.
// This header is the one place that decides which variant runs:
//
//   - caps() probes the CPU once (CPUID on x86-64, compile-time feature
//     macros + hwcaps on AArch64) and caches the result.
//   - force_scalar() is the kill switch: IOTX_SIMD=scalar in the
//     environment, or set_force_scalar(true) from tests/benches, pins
//     every dispatched hot path to its scalar oracle. The bench uses it
//     to measure the fast-vs-scalar speedup inside one process; the
//     equivalence tests use it to diff the two paths.
//
// Determinism note: dispatch level is intentionally unobservable in any
// output — the oracle-equivalence contract means tables, artifacts, and
// cache keys are bit-identical at every level, so caps() never feeds a
// fingerprint.
#pragma once

namespace iotx::simd {

/// CPU features relevant to the repo's hot paths. Fields for the other
/// architecture are always false.
struct Caps {
  // x86-64
  bool sse2 = false;    ///< baseline on x86-64; checked anyway
  bool ssse3 = false;   ///< byte shuffles (SHA-NI message loads)
  bool sse41 = false;   ///< blend (SHA-NI state permutes)
  bool avx2 = false;    ///< reported for diagnostics; no path requires it
  bool sha_ni = false;  ///< SHA256RNDS2/MSG1/MSG2 instructions
  // AArch64
  bool neon = false;      ///< baseline on AArch64
  bool arm_sha2 = false;  ///< SHA256H/SHA256H2/SHA256SU0/SHA256SU1
};

/// Detected capabilities of this CPU; probed once, then cached.
const Caps& caps() noexcept;

/// True when every dispatched hot path must take its scalar oracle:
/// either IOTX_SIMD=scalar|off was set in the environment at first use,
/// or set_force_scalar(true) was called.
bool force_scalar() noexcept;

/// Pins (true) or releases (false) the scalar oracles at runtime.
/// Thread-safe; used by the equivalence tests and the ingest bench to
/// compare both paths in one process.
void set_force_scalar(bool force) noexcept;

/// Human-readable name of the level the SHA-256/entropy dispatchers
/// would pick right now ("scalar", "portable", "sse2", "sha_ni",
/// "neon", "armv8_sha2") — stamped into bench JSON so trajectory
/// entries record what actually ran.
const char* active_level() noexcept;

}  // namespace iotx::simd
