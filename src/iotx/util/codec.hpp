// Binary-to-text codecs used by the PII scanner (paper §6.1 searches for
// "any PII known (in various encodings)") and by protocol builders.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace iotx::util {

/// Lowercase hex encoding of a byte span ("deadbeef").
std::string hex_encode(std::span<const std::uint8_t> data);

/// Decodes a hex string (case-insensitive). Returns nullopt on odd length
/// or non-hex characters.
std::optional<std::vector<std::uint8_t>> hex_decode(std::string_view text);

/// Standard base64 (RFC 4648) with padding.
std::string base64_encode(std::span<const std::uint8_t> data);

/// Decodes base64; tolerates missing padding. Returns nullopt on invalid
/// characters.
std::optional<std::vector<std::uint8_t>> base64_decode(std::string_view text);

/// Percent-encodes every byte outside [A-Za-z0-9_.~-].
std::string url_encode(std::string_view text);

/// Decodes %XX escapes and '+' as space. Returns nullopt on truncated or
/// malformed escapes.
std::optional<std::string> url_decode(std::string_view text);

/// Convenience overloads for string payloads.
std::string hex_encode(std::string_view text);
std::string base64_encode(std::string_view text);

}  // namespace iotx::util
