// Small string helpers shared across parsers and analyses.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace iotx::util {

/// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char delim);

/// Joins pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

/// Case-insensitive substring search; npos semantics match std::string.
std::size_t ifind(std::string_view haystack, std::string_view needle);

/// True if `text` contains `needle` case-insensitively.
bool icontains(std::string_view haystack, std::string_view needle);

/// Replaces all occurrences of `from` (non-empty) with `to`.
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

/// printf-style byte count formatting ("1.2 MB").
std::string format_bytes(std::uint64_t bytes);

/// Fixed-precision double formatting without locale dependence.
std::string format_double(double value, int precision);

}  // namespace iotx::util
