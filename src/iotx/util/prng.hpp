// Deterministic pseudo-random number generation for reproducible simulation.
//
// Every stochastic component of iotx draws from a Prng seeded by a
// human-readable key (e.g. "us/echo_dot/power/rep17"), so re-running any
// experiment yields bit-identical captures and therefore bit-identical
// tables. The generator is xoshiro256** (Blackman & Vigna), seeded via
// SplitMix64 from a 64-bit FNV-1a hash of the key.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace iotx::util {

/// 64-bit FNV-1a hash; used to derive seeds from string keys.
std::uint64_t fnv1a64(std::string_view data) noexcept;

/// SplitMix64 step: advances `state` and returns the next output.
/// Used to expand a single 64-bit seed into the xoshiro state vector.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** deterministic PRNG with convenience distributions.
///
/// Satisfies the std::uniform_random_bit_generator concept so it can be
/// used with <random> facilities, though the built-in helpers below are
/// preferred to keep cross-platform determinism (libstdc++ distribution
/// implementations are not specified by the standard).
class Prng {
 public:
  using result_type = std::uint64_t;

  /// Seeds from a raw 64-bit value.
  explicit Prng(std::uint64_t seed) noexcept;
  /// Seeds from a human-readable key (hashed with FNV-1a).
  explicit Prng(std::string_view key) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  /// bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) noexcept;

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal() noexcept;

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Exponential with given mean (= 1/lambda). mean must be > 0.
  double exponential(double mean) noexcept;

  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept;

  /// Uniformly chosen index-weighted element of a non-empty vector.
  template <typename T>
  const T& choice(const std::vector<T>& items) noexcept {
    return items[uniform(items.size())];
  }

  /// Samples an index from a discrete distribution given non-negative
  /// weights (need not be normalized). Returns weights.size()-1 on
  /// accumulated floating error. Requires at least one positive weight.
  std::size_t weighted(const std::vector<double>& weights) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[uniform(i)]);
    }
  }

  /// Derives an independent child generator from this one plus a label.
  /// The child stream is a pure function of (parent seed key, label) —
  /// not of the parent's stream position — so forking by a stable label
  /// (e.g. "tree" + index) from concurrent threads is both safe and
  /// order-independent.
  Prng fork(std::string_view label) const noexcept;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_origin_;  // retained so fork() is reproducible
};

}  // namespace iotx::util
