#include "iotx/util/codec.hpp"

#include <array>

namespace iotx::util {

namespace {

constexpr std::string_view kHexDigits = "0123456789abcdef";
constexpr std::string_view kBase64Alphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

int base64_value(char c) noexcept {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}

std::span<const std::uint8_t> as_bytes(std::string_view text) noexcept {
  return {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()};
}

}  // namespace

std::string hex_encode(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

std::string hex_encode(std::string_view text) {
  return hex_encode(as_bytes(text));
}

std::optional<std::vector<std::uint8_t>> hex_decode(std::string_view text) {
  if (text.size() % 2 != 0) return std::nullopt;
  std::vector<std::uint8_t> out;
  out.reserve(text.size() / 2);
  for (std::size_t i = 0; i < text.size(); i += 2) {
    const int hi = hex_value(text[i]);
    const int lo = hex_value(text[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string base64_encode(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    const std::uint32_t n = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                            data[i + 2];
    out.push_back(kBase64Alphabet[(n >> 18) & 63]);
    out.push_back(kBase64Alphabet[(n >> 12) & 63]);
    out.push_back(kBase64Alphabet[(n >> 6) & 63]);
    out.push_back(kBase64Alphabet[n & 63]);
  }
  const std::size_t rest = data.size() - i;
  if (rest == 1) {
    const std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kBase64Alphabet[(n >> 18) & 63]);
    out.push_back(kBase64Alphabet[(n >> 12) & 63]);
    out.append("==");
  } else if (rest == 2) {
    const std::uint32_t n = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(kBase64Alphabet[(n >> 18) & 63]);
    out.push_back(kBase64Alphabet[(n >> 12) & 63]);
    out.push_back(kBase64Alphabet[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

std::string base64_encode(std::string_view text) {
  return base64_encode(as_bytes(text));
}

std::optional<std::vector<std::uint8_t>> base64_decode(std::string_view text) {
  // Strip trailing padding.
  while (!text.empty() && text.back() == '=') text.remove_suffix(1);
  std::vector<std::uint8_t> out;
  out.reserve(text.size() * 3 / 4);
  std::uint32_t acc = 0;
  int bits = 0;
  for (char c : text) {
    const int v = base64_value(c);
    if (v < 0) return std::nullopt;
    acc = (acc << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & 0xff));
    }
  }
  return out;
}

std::string url_encode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    const bool unreserved = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                            (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                            c == '.' || c == '~';
    if (unreserved) {
      out.push_back(static_cast<char>(c));
    } else {
      out.push_back('%');
      out.push_back(kHexDigits[c >> 4]);
      out.push_back(kHexDigits[c & 0x0f]);
    }
  }
  return out;
}

std::optional<std::string> url_decode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%') {
      if (i + 2 >= text.size()) return std::nullopt;
      const int hi = hex_value(text[i + 1]);
      const int lo = hex_value(text[i + 2]);
      if (hi < 0 || lo < 0) return std::nullopt;
      out.push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace iotx::util
