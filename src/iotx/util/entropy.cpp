#include "iotx/util/entropy.hpp"

#include <cmath>
#include <cstring>

#include "iotx/util/simd.hpp"

#if defined(__x86_64__) && defined(__SSE2__)
#include <emmintrin.h>
#define IOTX_ENTROPY_SSE2 1
#elif defined(__aarch64__)
#include <arm_neon.h>
#define IOTX_ENTROPY_NEON 1
#endif

namespace iotx::util {

double byte_entropy(std::span<const std::uint8_t> data) noexcept {
  EntropyAccumulator acc;
  acc.add(data);
  return acc.value();
}

void EntropyAccumulator::add_scalar(
    std::span<const std::uint8_t> data) noexcept {
  for (std::uint8_t b : data) ++histogram_[b];
  total_ += data.size();
}

namespace {

// Buffers below this take the plain byte loop: the unrolled path's
// setup costs more than it saves on tiny packets.
constexpr std::size_t kUnrollThreshold = 64;
// Buffers at or above this amortize zeroing + folding four 1 KiB
// sub-histograms, which breaks the same-bucket store-forwarding chain
// that serializes low-entropy (repetitive) payloads.
constexpr std::size_t kSubHistThreshold = 4096;
// One sub-histogram pass is capped so its uint32 cells cannot wrap.
constexpr std::size_t kSubHistChunk = std::size_t{1} << 30;

inline void bump8(std::uint64_t* hist, std::uint64_t word) noexcept {
  ++hist[word & 0xff];
  ++hist[(word >> 8) & 0xff];
  ++hist[(word >> 16) & 0xff];
  ++hist[(word >> 24) & 0xff];
  ++hist[(word >> 32) & 0xff];
  ++hist[(word >> 40) & 0xff];
  ++hist[(word >> 48) & 0xff];
  ++hist[word >> 56];
}

inline void bump8x4(std::uint32_t* h0, std::uint32_t* h1, std::uint32_t* h2,
                    std::uint32_t* h3, std::uint64_t word) noexcept {
  ++h0[word & 0xff];
  ++h1[(word >> 8) & 0xff];
  ++h2[(word >> 16) & 0xff];
  ++h3[(word >> 24) & 0xff];
  ++h0[(word >> 32) & 0xff];
  ++h1[(word >> 40) & 0xff];
  ++h2[(word >> 48) & 0xff];
  ++h3[word >> 56];
}

// Loads 16 bytes as two u64 words. The SIMD variants exist to issue one
// wide unaligned load instead of two; the histogram update itself is a
// scatter, which no baseline ISA vectorizes, so extraction goes back
// through general registers either way.
inline void load16(const std::uint8_t* p, std::uint64_t& lo,
                   std::uint64_t& hi) noexcept {
#if defined(IOTX_ENTROPY_SSE2)
  const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  lo = static_cast<std::uint64_t>(_mm_cvtsi128_si64(v));
  hi = static_cast<std::uint64_t>(
      _mm_cvtsi128_si64(_mm_unpackhi_epi64(v, v)));
#elif defined(IOTX_ENTROPY_NEON)
  const uint8x16_t v = vld1q_u8(p);
  lo = vgetq_lane_u64(vreinterpretq_u64_u8(v), 0);
  hi = vgetq_lane_u64(vreinterpretq_u64_u8(v), 1);
#else
  std::memcpy(&lo, p, 8);
  std::memcpy(&hi, p + 8, 8);
#endif
}

}  // namespace

void EntropyAccumulator::add(std::span<const std::uint8_t> data) noexcept {
  if (data.size() < kUnrollThreshold || simd::force_scalar()) {
    add_scalar(data);
    return;
  }
  total_ += data.size();
  const std::uint8_t* p = data.data();
  std::size_t len = data.size();

  while (len >= kSubHistThreshold) {
    const std::size_t chunk = len < kSubHistChunk ? len : kSubHistChunk;
    // Four interleaved sub-histograms: consecutive bytes of a run hit
    // different arrays, so a 4 KiB buffer of one repeated byte updates
    // four independent cells instead of hammering a single one.
    std::uint32_t sub[4][256] = {};
    const std::uint8_t* q = p;
    std::size_t n = chunk;
    while (n >= 16) {
      std::uint64_t lo, hi;
      load16(q, lo, hi);
      bump8x4(sub[0], sub[1], sub[2], sub[3], lo);
      bump8x4(sub[0], sub[1], sub[2], sub[3], hi);
      q += 16;
      n -= 16;
    }
    for (; n > 0; --n) ++sub[0][*q++];
    for (int i = 0; i < 256; ++i) {
      histogram_[i] += std::uint64_t{sub[0][i]} + sub[1][i] + sub[2][i] +
                       std::uint64_t{sub[3][i]};
    }
    p += chunk;
    len -= chunk;
    if (len < kSubHistThreshold) break;
  }

  while (len >= 16) {
    std::uint64_t lo, hi;
    load16(p, lo, hi);
    bump8(histogram_.data(), lo);
    bump8(histogram_.data(), hi);
    p += 16;
    len -= 16;
  }
  while (len >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    bump8(histogram_.data(), w);
    p += 8;
    len -= 8;
  }
  for (; len > 0; --len) ++histogram_[*p++];
}

double EntropyAccumulator::value() const noexcept {
  if (total_ == 0) return 0.0;
  const double n = static_cast<double>(total_);
  double h = 0.0;
  for (std::uint64_t c : histogram_) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / n;
    h -= p * std::log2(p);
  }
  return h / 8.0;
}

void EntropyAccumulator::reset() noexcept {
  histogram_.fill(0);
  total_ = 0;
}

}  // namespace iotx::util
