#include "iotx/util/entropy.hpp"

#include <cmath>

namespace iotx::util {

double byte_entropy(std::span<const std::uint8_t> data) noexcept {
  EntropyAccumulator acc;
  acc.add(data);
  return acc.value();
}

void EntropyAccumulator::add(std::span<const std::uint8_t> data) noexcept {
  for (std::uint8_t b : data) ++histogram_[b];
  total_ += data.size();
}

double EntropyAccumulator::value() const noexcept {
  if (total_ == 0) return 0.0;
  const double n = static_cast<double>(total_);
  double h = 0.0;
  for (std::uint64_t c : histogram_) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / n;
    h -= p * std::log2(p);
  }
  return h / 8.0;
}

void EntropyAccumulator::reset() noexcept {
  histogram_.fill(0);
  total_ = 0;
}

}  // namespace iotx::util
