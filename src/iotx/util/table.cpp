#include "iotx/util/table.hpp"

#include <algorithm>

namespace iotx::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(std::max(row.size(), header_.size()));
  rows_.push_back(Row{std::move(row), false});
}

void TextTable::add_rule() { rows_.push_back(Row{{}, true}); }

std::size_t TextTable::row_count() const noexcept {
  std::size_t n = 0;
  for (const Row& r : rows_) {
    if (!r.rule) ++n;
  }
  return n;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  const auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const Row& r : rows_) {
    if (!r.rule) widen(r.cells);
  }

  std::size_t total = widths.empty() ? 0 : 3 * (widths.size() - 1);
  for (std::size_t w : widths) total += w;

  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      if (i == 0) {
        out += cell;
        out.append(widths[i] - cell.size(), ' ');
      } else {
        out.append(widths[i] - cell.size(), ' ');
        out += cell;
      }
      if (i + 1 != widths.size()) out += " | ";
    }
    out += '\n';
  };

  emit_row(header_);
  out.append(total, '-');
  out += '\n';
  for (const Row& r : rows_) {
    if (r.rule) {
      out.append(total, '-');
      out += '\n';
    } else {
      emit_row(r.cells);
    }
  }
  return out;
}

}  // namespace iotx::util
