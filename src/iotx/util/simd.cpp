#include "iotx/util/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define IOTX_SIMD_X86 1
#if defined(__GNUC__)
#include <cpuid.h>
#endif
#endif

#if defined(__aarch64__)
#define IOTX_SIMD_ARM 1
#if defined(__linux__)
#include <sys/auxv.h>
#endif
#endif

namespace iotx::simd {

namespace {

Caps probe() noexcept {
  Caps c;
#if defined(IOTX_SIMD_X86) && defined(__GNUC__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    c.sse2 = (edx & (1u << 26)) != 0;
    c.ssse3 = (ecx & (1u << 9)) != 0;
    c.sse41 = (ecx & (1u << 19)) != 0;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    c.avx2 = (ebx & (1u << 5)) != 0;
    c.sha_ni = (ebx & (1u << 29)) != 0;
  }
#elif defined(IOTX_SIMD_ARM)
  c.neon = true;  // mandatory in AArch64
#if defined(__linux__) && defined(HWCAP_SHA2)
  c.arm_sha2 = (getauxval(AT_HWCAP) & HWCAP_SHA2) != 0;
#elif defined(__ARM_FEATURE_SHA2)
  c.arm_sha2 = true;  // baked into the build target
#endif
#if !defined(__ARM_FEATURE_SHA2)
  // The intrinsic path is only compiled when the build target enables
  // the crypto extension; without it the runtime bit is unusable.
  c.arm_sha2 = false;
#endif
#endif
  return c;
}

// One-time env read: IOTX_SIMD=scalar (or =off) starts the process with
// the oracles pinned, mirroring how IOTX_OBS env-enables observability.
bool env_forced_scalar() noexcept {
  const char* v = std::getenv("IOTX_SIMD");
  return v != nullptr &&
         (std::strcmp(v, "scalar") == 0 || std::strcmp(v, "off") == 0);
}

std::atomic<bool>& force_flag() noexcept {
  static std::atomic<bool> flag{env_forced_scalar()};
  return flag;
}

}  // namespace

const Caps& caps() noexcept {
  static const Caps c = probe();
  return c;
}

bool force_scalar() noexcept {
  return force_flag().load(std::memory_order_relaxed);
}

void set_force_scalar(bool force) noexcept {
  force_flag().store(force, std::memory_order_relaxed);
}

const char* active_level() noexcept {
  if (force_scalar()) return "scalar";
  const Caps& c = caps();
  if (c.sha_ni) return "sha_ni";
  if (c.arm_sha2) return "armv8_sha2";
  if (c.sse2) return "sse2";
  if (c.neon) return "neon";
  return "portable";
}

}  // namespace iotx::simd
