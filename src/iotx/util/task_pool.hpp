// Fixed-thread work-queue executor — the concurrency substrate for the
// paper-scale campaign (Study fan-out, per-tree forest training, parallel
// validation repetitions).
//
// Determinism contract: TaskPool schedules work but never owns randomness.
// Every parallel unit of work derives its own Prng from a stable key
// (e.g. fork("tree" + index)) and writes its result into a pre-sized slot
// indexed by that same key, so results are bit-identical at any thread
// count. See DESIGN.md §"Concurrency model".
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "iotx/obs/trace.hpp"

namespace iotx::util {

class TaskPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (min 1).
  explicit TaskPool(std::size_t threads = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// The number of worker threads backing this pool.
  std::size_t thread_count() const noexcept { return threads_.size(); }

  /// hardware_concurrency clamped to at least 1 (it may report 0).
  static std::size_t default_thread_count() noexcept;

  /// Enqueues a callable; the future carries its result or exception.
  /// While a trace collector is installed, the submitting thread's span
  /// context rides along and is re-established on the executing thread
  /// (obs::ContextGuard), so spans opened inside the task keep their
  /// cross-thread lineage in the trace.
  ///
  /// Shutdown semantics: once the destructor has begun (stop flagged),
  /// submit() runs the callable inline on the submitting thread instead
  /// of enqueueing it — workers may already have exited, and a task
  /// parked on a dead queue would leave the future forever unfulfilled.
  /// Either way the returned future is always eventually ready.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    std::function<void()> run;
    if (obs::tracing_active()) {
      run = [task, context = obs::current_context()] {
        obs::ContextGuard guard(context);
        (*task)();
      };
    } else {
      run = [task] { (*task)(); };
    }
    bool inline_run = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) {
        inline_run = true;  // run outside the lock: fn may submit again
      } else {
        queue_.push_back(std::move(run));
      }
    }
    if (inline_run) {
      run();  // packaged_task captures any exception into the future
    } else {
      cv_.notify_one();
    }
    return future;
  }

  /// Runs fn(0) .. fn(n-1) across the pool, the calling thread included,
  /// and returns when all calls finished. The first exception thrown by
  /// any call is rethrown here (the remaining indices still run). Safe to
  /// call from inside a pool task: the waiting thread executes queued work
  /// instead of blocking, so nested parallel sections cannot deadlock.
  ///
  /// fn must be safe to invoke concurrently for distinct indices; index
  /// assignment order across threads is unspecified, so fn must not depend
  /// on execution order (write to slot i, seed from key i).
  template <typename F>
  void parallel_for_each(std::size_t n, F&& fn) {
    if (n == 0) return;
    // One span per parallel section (not per index — a per-index span
    // would swamp the trace with tree-training events). Workers inherit
    // the section's context through submit().
    obs::Span span("pool/parallel_for_each",
                   obs::observability_active()
                       ? "\"n\":" + std::to_string(n)
                       : std::string());
    if (n == 1 || thread_count() <= 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    std::atomic<std::size_t> next{0};
    std::mutex error_mu;
    std::exception_ptr error;
    auto drain = [&next, &error_mu, &error, &fn, n] {
      for (std::size_t i;
           (i = next.fetch_add(1, std::memory_order_relaxed)) < n;) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!error) error = std::current_exception();
        }
      }
    };
    std::vector<std::future<void>> helpers;
    helpers.reserve(std::min(n - 1, thread_count()));
    for (std::size_t h = 0; h < std::min(n - 1, thread_count()); ++h) {
      helpers.push_back(submit(drain));
    }
    drain();
    for (std::future<void>& helper : helpers) {
      // Help with queued work while waiting: a helper may be stuck behind
      // this very thread's stack frame when parallel sections nest.
      while (helper.wait_for(std::chrono::seconds(0)) !=
             std::future_status::ready) {
        if (!run_one()) {
          helper.wait_for(std::chrono::milliseconds(1));
        }
      }
      helper.get();
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  /// Pops and runs one queued task on the calling thread; false when the
  /// queue was empty.
  bool run_one();
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace iotx::util
