#include "iotx/util/task_pool.hpp"

namespace iotx::util {

std::size_t TaskPool::default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

TaskPool::TaskPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool TaskPool::run_one() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void TaskPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace iotx::util
