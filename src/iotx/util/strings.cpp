#include "iotx/util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>

namespace iotx::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += separator;
    out += pieces[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::size_t ifind(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return 0;
  if (needle.size() > haystack.size()) return std::string_view::npos;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (iequals(haystack.substr(i, needle.size()), needle)) return i;
  }
  return std::string_view::npos;
}

bool icontains(std::string_view haystack, std::string_view needle) {
  return ifind(haystack, needle) != std::string_view::npos;
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  std::string out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(kUnits)) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace iotx::util
