// Plain-text table rendering, used by the bench harnesses to print the
// paper's tables in a comparable row/column layout.
#pragma once

#include <string>
#include <vector>

namespace iotx::util {

/// A simple left/right-aligned text table.
///
/// Usage:
///   TextTable t({"Device", "US", "UK"});
///   t.add_row({"Echo Dot", "0.7", "2.6"});
///   std::cout << t.render();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row; shorter rows are padded with empty cells.
  void add_row(std::vector<std::string> row);

  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  /// Number of data rows added so far (rules excluded).
  std::size_t row_count() const noexcept;

  /// Renders with column alignment: first column left, rest right.
  std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace iotx::util
