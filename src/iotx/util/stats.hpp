// Descriptive statistics used as machine-learning features (paper §6.1:
// "min, max, mean, deciles of the distribution, skewness, and kurtosis")
// and significance testing for regional comparisons (Table 7).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace iotx::util {

/// Summary of a sample: the exact feature set the paper extracts from
/// packet-size and inter-arrival-time distributions.
struct SampleSummary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double skewness = 0.0;  ///< Fisher-Pearson g1 (0 for n < 2 or zero variance)
  double kurtosis = 0.0;  ///< excess kurtosis g2 (0 for n < 2 or zero variance)
  double deciles[9] = {};  ///< 10th..90th percentiles

  /// Flattens into the canonical 15-value feature layout:
  /// [min, max, mean, stddev, skewness, kurtosis, d10..d90].
  void append_features(std::vector<double>& out) const;
  static constexpr std::size_t kFeatureCount = 15;
};

/// Computes the full summary of a sample. An empty sample yields all zeros.
SampleSummary summarize(std::span<const double> sample);

/// Linear-interpolated quantile (type-7, the numpy default). q in [0,1].
/// The sample must be sorted; an empty sample yields 0.
double quantile_sorted(std::span<const double> sorted, double q);

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> sample);

/// Population standard deviation; 0 for fewer than 2 points.
double stddev(std::span<const double> sample);

/// Two-proportion z-test: returns the absolute z statistic for observing
/// successes1/n1 vs successes2/n2 under the pooled null. Returns 0 when
/// either sample is empty or the pooled proportion is degenerate.
double two_proportion_z(double successes1, double n1, double successes2,
                        double n2);

/// True when |z| exceeds the 1.96 two-sided 95% critical value.
bool significant_at_95(double z);

}  // namespace iotx::util
