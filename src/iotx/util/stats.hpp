// Descriptive statistics used as machine-learning features (paper §6.1:
// "min, max, mean, deciles of the distribution, skewness, and kurtosis")
// and significance testing for regional comparisons (Table 7).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace iotx::util {

/// Summary of a sample: the exact feature set the paper extracts from
/// packet-size and inter-arrival-time distributions.
struct SampleSummary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double skewness = 0.0;  ///< Fisher-Pearson g1 (0 for n < 2 or zero variance)
  double kurtosis = 0.0;  ///< excess kurtosis g2 (0 for n < 2 or zero variance)
  double deciles[9] = {};  ///< 10th..90th percentiles

  /// Flattens into the canonical 15-value feature layout:
  /// [min, max, mean, stddev, skewness, kurtosis, d10..d90].
  void append_features(std::vector<double>& out) const;
  static constexpr std::size_t kFeatureCount = 15;
};

/// Computes the full summary of a sample. An empty sample yields all zeros.
/// Implemented as a batch driver over RunningMoments (exact mode), so there
/// is exactly one summary implementation in the tree.
SampleSummary summarize(std::span<const double> sample);

/// Single-pass summary accumulator: packets (or any doubles) stream in one
/// at a time and the full SampleSummary comes out at the end. Two modes:
///
/// - kExactSmallSample (default): retains the sample and, at summary()
///   time, replays the exact sorted-order arithmetic of util::summarize —
///   bit-identical to the batch path, including quantiles (type-7) and the
///   relative degenerate-variance guard. This is the versioned mode the
///   per-traffic-unit feature pipeline uses (kExactSummaryVersion); traffic
///   units are small (packets per ≤2 s burst), so retaining the sample is
///   cheap and bit-equality with the golden tables is preserved.
/// - kP2: bounded O(1) state for unbounded streams — Welford/Terriberry
///   online central moments plus nine P² decile estimators. Converges to
///   the batch summary but is not bit-identical (arrival-order arithmetic,
///   estimated quantiles); property-tested against summarize with
///   tolerances.
class RunningMoments {
 public:
  enum class Mode {
    kExactSmallSample,
    kP2,
  };

  /// Version of the exact-small-sample summary semantics. Bump when the
  /// retained-sample arithmetic changes so cached feature artifacts keyed
  /// on it invalidate instead of mixing summary generations.
  static constexpr std::uint32_t kExactSummaryVersion = 1;

  explicit RunningMoments(Mode mode = Mode::kExactSmallSample);

  void add(double value);
  std::size_t count() const noexcept { return n_; }
  Mode mode() const noexcept { return mode_; }

  /// The summary of everything added so far (all zeros when empty).
  SampleSummary summary() const;

  /// Back to the empty state, keeping the mode.
  void reset();

 private:
  /// One P² (Jain–Chlamtac) quantile estimator: five markers whose heights
  /// track [min, q/2-ish, q, (1+q)/2-ish, max]. Exact until five samples
  /// have arrived, then O(1) parabolic marker updates.
  struct P2Quantile {
    double quantile = 0.5;
    double heights[5] = {};
    double positions[5] = {};
    int filled = 0;

    void add(double value);
    double value() const;
  };

  Mode mode_;
  std::size_t n_ = 0;

  // kExactSmallSample state: the retained sample, unsorted.
  std::vector<double> sample_;

  // kP2 state: Welford/Terriberry running central moments + estimators.
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  P2Quantile deciles_[9];
};

/// Linear-interpolated quantile (type-7, the numpy default). q in [0,1].
/// The sample must be sorted; an empty sample yields 0.
double quantile_sorted(std::span<const double> sorted, double q);

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> sample);

/// Population standard deviation; 0 for fewer than 2 points.
double stddev(std::span<const double> sample);

/// Two-proportion z-test: returns the absolute z statistic for observing
/// successes1/n1 vs successes2/n2 under the pooled null. Returns 0 when
/// either sample is empty or the pooled proportion is degenerate.
double two_proportion_z(double successes1, double n1, double successes2,
                        double n2);

/// True when |z| exceeds the 1.96 two-sided 95% critical value.
bool significant_at_95(double z);

}  // namespace iotx::util
