#include "iotx/util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace iotx::util {

void SampleSummary::append_features(std::vector<double>& out) const {
  out.push_back(min);
  out.push_back(max);
  out.push_back(mean);
  out.push_back(stddev);
  out.push_back(skewness);
  out.push_back(kurtosis);
  out.insert(out.end(), std::begin(deciles), std::end(deciles));
}

double quantile_sorted(std::span<const double> sorted, double q) {
  const std::size_t n = sorted.size();
  if (n == 0) return 0.0;  // n - 1 below would wrap to SIZE_MAX
  if (n == 1) return sorted[0];
  const double pos = q * static_cast<double>(n - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= n) return sorted[n - 1];
  return sorted[idx] + frac * (sorted[idx + 1] - sorted[idx]);
}

double mean(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  double total = 0.0;
  for (double v : sample) total += v;
  return total / static_cast<double>(sample.size());
}

double stddev(std::span<const double> sample) {
  if (sample.size() < 2) return 0.0;
  const double m = mean(sample);
  double ss = 0.0;
  for (double v : sample) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(sample.size()));
}

namespace {

/// The exact summary arithmetic over an already-sorted sample — the single
/// kernel behind both summarize() and RunningMoments' exact mode. Mean and
/// central moments are accumulated in sorted order on purpose: that order
/// is the bit-exactness contract the golden tables were captured under.
SampleSummary summarize_sorted(std::span<const double> sorted) {
  SampleSummary s;
  if (sorted.empty()) return s;

  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = mean(sorted);

  const double n = static_cast<double>(sorted.size());
  double m2 = 0.0, m3 = 0.0, m4 = 0.0;
  for (double v : sorted) {
    const double d = v - s.mean;
    const double d2 = d * d;
    m2 += d2;
    m3 += d2 * d;
    m4 += d2 * d2;
  }
  m2 /= n;
  m3 /= n;
  m4 /= n;
  s.stddev = std::sqrt(m2);
  // Degenerate-variance guard, relative to the sample's magnitude. An
  // absolute epsilon (the old `m2 > 1e-12`) silently zeroed skewness and
  // kurtosis for small-valued samples — µs-scale inter-arrival gaps have
  // genuine variance around 1e-14 — while a constant sample only carries
  // rounding noise, m2 ~ (eps*scale)^2 ~ 5e-32*scale^2, well under the
  // scale^2*1e-18 floor. The absolute floor keeps all-zero samples (and
  // denormal-range scales) degenerate.
  const double scale = std::max(std::abs(s.min), std::abs(s.max));
  const double degenerate_floor = std::max(scale * scale * 1e-18, 1e-300);
  if (m2 > degenerate_floor && sorted.size() >= 2) {
    s.skewness = m3 / std::pow(m2, 1.5);
    s.kurtosis = m4 / (m2 * m2) - 3.0;
  }
  for (int d = 1; d <= 9; ++d) {
    s.deciles[d - 1] = quantile_sorted(sorted, d / 10.0);
  }
  return s;
}

}  // namespace

SampleSummary summarize(std::span<const double> sample) {
  RunningMoments acc(RunningMoments::Mode::kExactSmallSample);
  for (double v : sample) acc.add(v);
  return acc.summary();
}

void RunningMoments::P2Quantile::add(double value) {
  if (filled < 5) {
    heights[filled++] = value;
    std::sort(heights, heights + filled);
    if (filled == 5) {
      for (int i = 0; i < 5; ++i) positions[i] = i + 1;
    }
    return;
  }
  int cell;  // marker interval the new value falls into
  if (value < heights[0]) {
    heights[0] = value;
    cell = 0;
  } else if (value >= heights[4]) {
    heights[4] = value;
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && value >= heights[cell + 1]) ++cell;
  }
  for (int i = cell + 1; i < 5; ++i) positions[i] += 1.0;

  const double count = positions[4];
  const double desired[5] = {1.0, 1.0 + (count - 1.0) * quantile / 2.0,
                             1.0 + (count - 1.0) * quantile,
                             1.0 + (count - 1.0) * (1.0 + quantile) / 2.0,
                             count};
  for (int i = 1; i <= 3; ++i) {
    const double d = desired[i] - positions[i];
    const double below = positions[i] - positions[i - 1];
    const double above = positions[i + 1] - positions[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double sign = d >= 1.0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction of the marker's new height.
      const double span = positions[i + 1] - positions[i - 1];
      const double parabolic =
          heights[i] +
          sign / span *
              ((below + sign) * (heights[i + 1] - heights[i]) / above +
               (above - sign) * (heights[i] - heights[i - 1]) / below);
      if (heights[i - 1] < parabolic && parabolic < heights[i + 1]) {
        heights[i] = parabolic;
      } else {  // fall back to linear toward the neighbour
        const int j = i + static_cast<int>(sign);
        heights[i] += sign * (heights[j] - heights[i]) /
                      (positions[j] - positions[i]);
      }
      positions[i] += sign;
    }
  }
}

double RunningMoments::P2Quantile::value() const {
  if (filled == 0) return 0.0;
  if (filled < 5) {
    // heights[0..filled) is kept sorted during warm-up: exact quantile.
    return quantile_sorted({heights, static_cast<std::size_t>(filled)},
                           quantile);
  }
  return heights[2];
}

RunningMoments::RunningMoments(Mode mode) : mode_(mode) {
  for (int d = 1; d <= 9; ++d) deciles_[d - 1].quantile = d / 10.0;
}

void RunningMoments::add(double value) {
  ++n_;
  if (mode_ == Mode::kExactSmallSample) {
    sample_.push_back(value);
    return;
  }
  if (n_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  // Terriberry's one-pass update of the first four central moments.
  const double n = static_cast<double>(n_);
  const double delta = value - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * (n - 1.0);
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
  mean_ += delta_n;
  for (P2Quantile& q : deciles_) q.add(value);
}

SampleSummary RunningMoments::summary() const {
  if (mode_ == Mode::kExactSmallSample) {
    std::vector<double> sorted(sample_);
    std::sort(sorted.begin(), sorted.end());
    return summarize_sorted(sorted);
  }
  SampleSummary s;
  if (n_ == 0) return s;
  const double n = static_cast<double>(n_);
  s.min = min_;
  s.max = max_;
  s.mean = mean_;
  const double m2 = m2_ / n;
  s.stddev = std::sqrt(std::max(m2, 0.0));
  // Same relative degenerate-variance guard as the exact kernel.
  const double scale = std::max(std::abs(s.min), std::abs(s.max));
  const double degenerate_floor = std::max(scale * scale * 1e-18, 1e-300);
  if (m2 > degenerate_floor && n_ >= 2) {
    s.skewness = (m3_ / n) / std::pow(m2, 1.5);
    s.kurtosis = (m4_ / n) / (m2 * m2) - 3.0;
  }
  for (int d = 0; d < 9; ++d) s.deciles[d] = deciles_[d].value();
  return s;
}

void RunningMoments::reset() {
  n_ = 0;
  sample_.clear();
  min_ = max_ = mean_ = m2_ = m3_ = m4_ = 0.0;
  for (int d = 1; d <= 9; ++d) {
    deciles_[d - 1] = P2Quantile{};
    deciles_[d - 1].quantile = d / 10.0;
  }
}

double two_proportion_z(double successes1, double n1, double successes2,
                        double n2) {
  if (n1 <= 0.0 || n2 <= 0.0) return 0.0;
  const double p1 = successes1 / n1;
  const double p2 = successes2 / n2;
  const double pooled = (successes1 + successes2) / (n1 + n2);
  const double denom = pooled * (1.0 - pooled) * (1.0 / n1 + 1.0 / n2);
  if (denom <= 0.0) return 0.0;
  return std::fabs(p1 - p2) / std::sqrt(denom);
}

bool significant_at_95(double z) { return z > 1.959963984540054; }

}  // namespace iotx::util
