#include "iotx/util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace iotx::util {

void SampleSummary::append_features(std::vector<double>& out) const {
  out.push_back(min);
  out.push_back(max);
  out.push_back(mean);
  out.push_back(stddev);
  out.push_back(skewness);
  out.push_back(kurtosis);
  out.insert(out.end(), std::begin(deciles), std::end(deciles));
}

double quantile_sorted(std::span<const double> sorted, double q) {
  const std::size_t n = sorted.size();
  if (n == 0) return 0.0;  // n - 1 below would wrap to SIZE_MAX
  if (n == 1) return sorted[0];
  const double pos = q * static_cast<double>(n - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= n) return sorted[n - 1];
  return sorted[idx] + frac * (sorted[idx + 1] - sorted[idx]);
}

double mean(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  double total = 0.0;
  for (double v : sample) total += v;
  return total / static_cast<double>(sample.size());
}

double stddev(std::span<const double> sample) {
  if (sample.size() < 2) return 0.0;
  const double m = mean(sample);
  double ss = 0.0;
  for (double v : sample) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(sample.size()));
}

SampleSummary summarize(std::span<const double> sample) {
  SampleSummary s;
  if (sample.empty()) return s;

  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());

  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = mean(sorted);

  const double n = static_cast<double>(sorted.size());
  double m2 = 0.0, m3 = 0.0, m4 = 0.0;
  for (double v : sorted) {
    const double d = v - s.mean;
    const double d2 = d * d;
    m2 += d2;
    m3 += d2 * d;
    m4 += d2 * d2;
  }
  m2 /= n;
  m3 /= n;
  m4 /= n;
  s.stddev = std::sqrt(m2);
  // Degenerate-variance guard, relative to the sample's magnitude. An
  // absolute epsilon (the old `m2 > 1e-12`) silently zeroed skewness and
  // kurtosis for small-valued samples — µs-scale inter-arrival gaps have
  // genuine variance around 1e-14 — while a constant sample only carries
  // rounding noise, m2 ~ (eps*scale)^2 ~ 5e-32*scale^2, well under the
  // scale^2*1e-18 floor. The absolute floor keeps all-zero samples (and
  // denormal-range scales) degenerate.
  const double scale = std::max(std::abs(s.min), std::abs(s.max));
  const double degenerate_floor = std::max(scale * scale * 1e-18, 1e-300);
  if (m2 > degenerate_floor && sorted.size() >= 2) {
    s.skewness = m3 / std::pow(m2, 1.5);
    s.kurtosis = m4 / (m2 * m2) - 3.0;
  }
  for (int d = 1; d <= 9; ++d) {
    s.deciles[d - 1] = quantile_sorted(sorted, d / 10.0);
  }
  return s;
}

double two_proportion_z(double successes1, double n1, double successes2,
                        double n2) {
  if (n1 <= 0.0 || n2 <= 0.0) return 0.0;
  const double p1 = successes1 / n1;
  const double p2 = successes2 / n2;
  const double pooled = (successes1 + successes2) / (n1 + n2);
  const double denom = pooled * (1.0 - pooled) * (1.0 / n1 + 1.0 / n2);
  if (denom <= 0.0) return 0.0;
  return std::fabs(p1 - p2) / std::sqrt(denom);
}

bool significant_at_95(double z) { return z > 1.959963984540054; }

}  // namespace iotx::util
