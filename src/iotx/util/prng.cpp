#include "iotx/util/prng.hpp"

#include <cmath>
#include <numbers>
#include <string>

namespace iotx::util {

std::uint64_t fnv1a64(std::string_view data) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Prng::Prng(std::uint64_t seed) noexcept : seed_origin_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Prng::Prng(std::string_view key) noexcept : Prng(fnv1a64(key)) {}

Prng::result_type Prng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Prng::uniform(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method with rejection for exactness.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Prng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Prng::uniform01() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Prng::uniform_real(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

double Prng::normal() noexcept {
  // Box-Muller; discards the second variate to keep the stream position
  // a pure function of call count.
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Prng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Prng::exponential(double mean) noexcept {
  double u = uniform01();
  while (u <= 0.0) u = uniform01();
  return -mean * std::log(u);
}

double Prng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

bool Prng::chance(double p) noexcept { return uniform01() < p; }

std::size_t Prng::weighted(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  double r = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

Prng Prng::fork(std::string_view label) const noexcept {
  std::string key = std::to_string(seed_origin_);
  key += '/';
  key += label;
  return Prng(fnv1a64(key));
}

}  // namespace iotx::util
