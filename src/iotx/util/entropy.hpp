// Byte-entropy computation used by the encryption classifier (paper §5.1).
//
// The paper classifies flows whose protocol cannot be identified by
// normalized Shannon byte entropy H in [0,1]:
//   H > 0.8          => likely encrypted
//   H < 0.4          => likely unencrypted
//   0.4 <= H <= 0.8  => unknown
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace iotx::util {

/// Normalized Shannon byte entropy of `data`: (-sum p_i log2 p_i) / 8.
/// Returns 0 for empty input. Result is in [0, 1].
double byte_entropy(std::span<const std::uint8_t> data) noexcept;

/// Incremental entropy accumulator, so multi-packet flow payloads can be
/// folded in without concatenating buffers.
///
/// add() dispatches through the iotx::simd capability shim: large
/// buffers take a 4-way-unrolled word-at-a-time accumulation (with
/// SSE2/NEON loads where available), small ones and
/// simd::force_scalar() take add_scalar(). Both paths produce the exact
/// same histogram — counting is order-free integer arithmetic — which
/// tests/test_simd_equivalence.cpp property-checks across every length
/// and alignment.
class EntropyAccumulator {
 public:
  /// Folds a buffer into the byte histogram (dispatched fast path).
  void add(std::span<const std::uint8_t> data) noexcept;

  /// The scalar oracle: one bucket increment per byte, no dispatch.
  /// Public so equivalence tests and the ingest bench can pin it.
  void add_scalar(std::span<const std::uint8_t> data) noexcept;

  /// Total bytes accumulated so far.
  std::uint64_t count() const noexcept { return total_; }

  /// Normalized entropy of everything accumulated; 0 if empty.
  double value() const noexcept;

  /// Resets to the empty state.
  void reset() noexcept;

 private:
  std::array<std::uint64_t, 256> histogram_{};
  std::uint64_t total_ = 0;
};

}  // namespace iotx::util
