// Byte-entropy computation used by the encryption classifier (paper §5.1).
//
// The paper classifies flows whose protocol cannot be identified by
// normalized Shannon byte entropy H in [0,1]:
//   H > 0.8          => likely encrypted
//   H < 0.4          => likely unencrypted
//   0.4 <= H <= 0.8  => unknown
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace iotx::util {

/// Normalized Shannon byte entropy of `data`: (-sum p_i log2 p_i) / 8.
/// Returns 0 for empty input. Result is in [0, 1].
double byte_entropy(std::span<const std::uint8_t> data) noexcept;

/// Incremental entropy accumulator, so multi-packet flow payloads can be
/// folded in without concatenating buffers.
class EntropyAccumulator {
 public:
  /// Folds a buffer into the byte histogram.
  void add(std::span<const std::uint8_t> data) noexcept;

  /// Total bytes accumulated so far.
  std::uint64_t count() const noexcept { return total_; }

  /// Normalized entropy of everything accumulated; 0 if empty.
  double value() const noexcept;

  /// Resets to the empty state.
  void reset() noexcept;

 private:
  std::array<std::uint64_t, 256> histogram_{};
  std::uint64_t total_ = 0;
};

}  // namespace iotx::util
