#include "iotx/testbed/user_study.hpp"

#include <algorithm>

#include "iotx/testbed/experiment.hpp"

namespace iotx::testbed {

namespace {

// Study ran September 2018 - February 2019; anchor before the controlled
// campaign.
constexpr double kStudyEpoch = 1536105600.0;  // 2018-09-05

struct Trigger {
  const DeviceSpec* device;
  std::string activity;
  bool intended;
  double delay;  ///< seconds after the access begins
};

const DeviceSpec* us_device(std::string_view id) {
  const DeviceSpec* d = find_device(id);
  return (d != nullptr && d->in_us()) ? d : nullptr;
}

void add_if(std::vector<Trigger>& out, const DeviceSpec* device,
            std::string activity, bool intended, double delay) {
  if (device == nullptr) return;
  if (TrafficSynthesizer::find_activity(*device, activity) == nullptr) return;
  out.push_back(Trigger{device, std::move(activity), intended, delay});
}

/// The devices passively triggered by someone walking through the lab.
void add_presence_triggers(std::vector<Trigger>& out, util::Prng& prng) {
  add_if(out, us_device("ring_doorbell"), "local_move", false,
         prng.uniform_real(0.0, 5.0));
  add_if(out, us_device("zmodo_doorbell"), "local_move", false,
         prng.uniform_real(0.0, 5.0));
  if (prng.chance(0.7)) {
    add_if(out, us_device("wansview_cam"), "local_move", false,
           prng.uniform_real(0.0, 8.0));
  }
  if (prng.chance(0.5)) {
    add_if(out, us_device("dlink_mov_sensor"), "local_move", false,
           prng.uniform_real(0.0, 6.0));
  }
  if (prng.chance(0.4)) {
    add_if(out, us_device("xiaomi_cam"), "local_move", false,
           prng.uniform_real(0.0, 8.0));
  }
}

}  // namespace

UserStudyResult UserStudySimulator::simulate(
    const UserStudyParams& params, std::string_view seed_key) const {
  UserStudyResult result;
  result.hours = params.days * 24.0;
  util::Prng prng(seed_key);

  const NetworkConfig config{LabSite::kUs, false};

  for (int day = 0; day < params.days; ++day) {
    util::Prng day_prng = prng.fork("day" + std::to_string(day));
    const double day_start = kStudyEpoch + day * 86400.0;
    const int accesses = static_cast<int>(day_prng.uniform_int(
        static_cast<std::int64_t>(params.accesses_per_day_min),
        static_cast<std::int64_t>(params.accesses_per_day_max)));

    for (int a = 0; a < accesses; ++a) {
      util::Prng ap = day_prng.fork("access" + std::to_string(a));
      // Accesses cluster in waking hours (8:00-23:00).
      const double at =
          day_start + 8.0 * 3600.0 + ap.uniform01() * 15.0 * 3600.0;

      std::vector<Trigger> triggers;
      add_presence_triggers(triggers, ap);

      // The intended interaction of this visit (§3.3 common patterns).
      switch (ap.weighted({0.35, 0.25, 0.15, 0.25})) {
        case 0:  // food: fridge now, microwave a bit later
          add_if(triggers, us_device("samsung_fridge"), "local_viewinside",
                 true, 10.0);
          add_if(triggers, us_device("ge_microwave"), "local_start", true,
                 20.0 + ap.uniform_real(0.0, 60.0));
          add_if(triggers, us_device("ge_microwave"), "local_stop", true,
                 120.0 + ap.uniform_real(0.0, 60.0));
          break;
        case 1:  // laundry
          add_if(triggers, us_device("samsung_washer"), "local_start", true,
                 15.0);
          add_if(triggers, us_device("samsung_dryer"), "local_start", true,
                 40.0 + ap.uniform_real(0.0, 120.0));
          break;
        case 2: {  // voice interaction with an Alexa device
          static constexpr std::string_view kEchos[] = {
              "echo_dot", "echo_spot", "echo_plus"};
          add_if(triggers,
                 us_device(kEchos[ap.uniform(std::size(kEchos))]),
                 "local_voice", true, 8.0);
          break;
        }
        default: {  // random other device interaction
          const auto& catalog = device_catalog();
          for (int tries = 0; tries < 8; ++tries) {
            const DeviceSpec& d = catalog[ap.uniform(catalog.size())];
            if (!d.in_us() || d.behavior.activities.size() < 2) continue;
            const auto& sig = d.behavior.activities
                                  [1 + ap.uniform(
                                           d.behavior.activities.size() - 1)];
            add_if(triggers, &d, sig.name, true, 10.0);
            break;
          }
          break;
        }
      }

      // Alexa false wake during conversation (§7.3): the sentence is
      // shipped to Amazon before the cloud rejects the activation.
      if (ap.chance(params.alexa_false_wake_prob)) {
        add_if(triggers, us_device("echo_dot"), "local_voice", false,
               ap.uniform_real(0.0, 300.0));
      }

      for (const Trigger& trigger : triggers) {
        util::Prng ev = ap.fork(trigger.device->id + "/" + trigger.activity);
        const ActivitySignature* sig = TrafficSynthesizer::find_activity(
            *trigger.device, trigger.activity);
        const double ts = at + trigger.delay;
        std::vector<net::Packet> burst =
            synth_.activity_event(*trigger.device, config, *sig, ts, ev);
        auto& capture = result.captures[trigger.device->id];
        capture.insert(capture.end(), burst.begin(), burst.end());
        result.events.push_back(
            GroundTruthEvent{ts, trigger.device->id, trigger.activity,
                             trigger.intended});
      }
    }
  }

  for (auto& [id, packets] : result.captures) {
    std::stable_sort(packets.begin(), packets.end(),
                     [](const net::Packet& x, const net::Packet& y) {
                       return x.timestamp < y.timestamp;
                     });
  }
  std::sort(result.events.begin(), result.events.end(),
            [](const GroundTruthEvent& x, const GroundTruthEvent& y) {
              return x.timestamp < y.timestamp;
            });
  return result;
}

}  // namespace iotx::testbed
