// CatalogGenerator: extrapolates the 81-device paper catalog to a
// fleet-scale synthetic catalog (1k–100k devices) by sampling a seed
// device of the same category and jittering its behavior profile —
// destination mix, encryption posture, traffic-unit shape, idle
// behavior. The point is workload realism at scale: every synthetic
// device drives the same synthesizer, parsers, and analyses as a seed
// device, because its endpoints are real EndpointRegistry domains and
// its activity signatures are perturbed per-category signatures.
//
// Determinism contract (the same one the rest of the testbed obeys):
// device i of seed s is a pure function of (s, i) — its generator is
// seeded by the label "catalog/" + device_id and never by execution
// order — so generation is bit-identical at any jobs count, and a
// 1k-device catalog is a strict prefix of the 100k-device catalog for
// the same seed. Artifact-cache keys therefore stay valid across fleet
// sizes: growing the fleet only adds stages, it never re-keys old ones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "iotx/testbed/catalog.hpp"

namespace iotx::testbed {

struct CatalogGenParams {
  std::size_t count = 1000;  ///< synthetic devices to generate
  std::uint64_t seed = 1;    ///< fleet seed, folded into every device id
};

/// Generates `params.count` synthetic devices. `jobs` fans generation
/// across a TaskPool (0 = hardware threads, 1 = serial); the result is
/// bit-identical at any value.
std::vector<DeviceSpec> generate_catalog(const CatalogGenParams& params,
                                         std::size_t jobs = 1);

/// Generates device index `i` of the fleet alone (the prefix property
/// makes this meaningful: it equals generate_catalog(...)[i]).
DeviceSpec generate_device(std::uint64_t seed, std::size_t index);

/// Stable identity of a synthetic catalog for artifact-cache keying:
/// "synthetic/v1/seed-<seed>". Deliberately excludes the count so a
/// grown fleet shares every artifact with its prefix runs; "v1" is the
/// generator's own version salt — bump it when generation changes.
std::string catalog_cache_id(const CatalogGenParams& params);

}  // namespace iotx::testbed
