// Registry of Internet endpoints contacted by the devices under test:
// domain, owning organization, infrastructure (support-party) flag,
// country, and the concrete IP serving each region.
//
// This is the substitute for WHOIS + regional-registry + geolocation data
// (paper §4.1). The same registry populates the geo::OrgDatabase and
// geo::GeoDatabase used by the analyses, and gives the synthesizer real
// addresses to emit — so attribution runs on consistent, realistic data.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "iotx/geo/geo_db.hpp"
#include "iotx/geo/org_db.hpp"
#include "iotx/net/address.hpp"

namespace iotx::testbed {

struct Endpoint {
  std::string domain;        ///< FQDN devices resolve ("api.ring.com")
  std::string organization;  ///< owning org ("Amazon", "Google", ...)
  bool infrastructure = false;  ///< CDN/cloud => support party
  std::string country;       ///< ISO code of the default replica
  net::Ipv4Address address;  ///< default replica address
  /// Optional regional replica selected when the client egresses from the
  /// other region (CDN behavior). Empty country = no regional replica.
  std::string replica_country;
  net::Ipv4Address replica_address;
  /// When true, the public geolocation DB carries a wrong country for this
  /// address (exercises the Passport RTT cross-check).
  bool geo_db_wrong = false;
};

class EndpointRegistry {
 public:
  /// Builds the registry with every endpoint used by the device catalog.
  static const EndpointRegistry& builtin();

  const Endpoint* find(const std::string& domain) const;
  const Endpoint* find_by_ip(net::Ipv4Address addr) const;
  const std::vector<Endpoint>& all() const noexcept { return endpoints_; }

  /// Replica address/country actually serving a client whose traffic
  /// egresses in `egress_country` ("US" or "GB").
  struct Replica {
    net::Ipv4Address address;
    std::string country;
  };
  Replica select_replica(const Endpoint& endpoint,
                         const std::string& egress_country) const;

  /// Populates an organization database (domains, infrastructure orgs,
  /// registry prefixes) from this registry.
  geo::OrgDatabase make_org_database() const;

  /// Populates a geolocation database; entries flagged `geo_db_wrong`
  /// receive a deliberately wrong, unreliable country.
  geo::GeoDatabase make_geo_database() const;

  void add(Endpoint endpoint);

  /// Numbers of pre-registered per-device cloud hosts (see the *_domain()
  /// helpers below). Real vendors run fleets of per-service hostnames,
  /// which is what makes support-party destination counts large (Table 2)
  /// and AWS the most-contacted organization (Table 4).
  static constexpr int kEc2HostCount = 96;
  static constexpr int kCloudfrontHostCount = 20;
  static constexpr int kAkamaiEdgeHostCount = 12;
  static constexpr int kGoogleHostCount = 10;
  static constexpr int kAzureHostCount = 6;

 private:
  std::vector<Endpoint> endpoints_;
  std::unordered_map<std::string, std::size_t> by_domain_;
  std::unordered_map<net::Ipv4Address, std::size_t> by_ip_;
};

/// Per-device cloud hostnames (index is taken modulo the respective count).
std::string ec2_domain(int index);
std::string cloudfront_domain(int index);   ///< org Amazon (CDN)
std::string akamai_edge_domain(int index);  ///< org Akamai (CDN)
std::string google_host_domain(int index);  ///< org Google (cloud)
std::string azure_host_domain(int index);   ///< org Microsoft (cloud)

}  // namespace iotx::testbed
