// Experiment scheduling and execution (paper §3.3): power, interaction
// (local / LAN-app / WAN-app / voice), and idle experiments, each repeated
// and labeled, per lab and per egress configuration.
#pragma once

#include <string>
#include <vector>

#include "iotx/testbed/automation.hpp"
#include "iotx/testbed/synth.hpp"

namespace iotx::testbed {

enum class ExperimentType {
  kPower,
  kInteraction,
  kIdle,
  kUncontrolled,
  kLifecycle,  ///< setup / OTA / deprovision phase capture
};

std::string_view experiment_type_name(ExperimentType t) noexcept;

/// Identifies one controlled experiment; also the capture's label.
struct ExperimentSpec {
  std::string device_id;
  NetworkConfig config;
  ExperimentType type = ExperimentType::kInteraction;
  std::string activity;  ///< "power", "local_move", ...; empty for idle
  int repetition = 0;
  double start_time = 0.0;
  double idle_hours = 0.0;  ///< idle experiments only
  /// Lifecycle phase of the capture; kNormal for every paper experiment,
  /// so the phase label never perturbs pre-lifecycle keys or seeds.
  LifecyclePhase phase = LifecyclePhase::kNormal;

  /// Stable key for seeding and file naming.
  std::string key() const;
};

/// A capture plus its ground-truth label.
struct LabeledCapture {
  ExperimentSpec spec;
  std::vector<net::Packet> packets;
};

/// Repetition counts and durations. Paper values: 30 automated reps, >=3
/// manual reps, ~30 h idle. Defaults here are scaled for second-level
/// bench runtimes; pass paper_scale() to reproduce the full campaign.
struct SchedulePlan {
  int automated_reps = 15;
  int manual_reps = 3;
  int power_reps = 3;
  double idle_hours = 2.0;
  /// Repetitions of each lifecycle phase script (setup, OTA update,
  /// deprovision). 0 — the default — schedules none, so the paper's
  /// campaign is reproduced byte-identically unless lifecycle
  /// measurement is asked for.
  int lifecycle_reps = 0;

  static SchedulePlan paper_scale() {
    return SchedulePlan{30, 3, 3, 28.0};
  }
};

/// Generates and runs controlled experiments.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(SchedulePlan plan = {},
                            const EndpointRegistry& registry =
                                EndpointRegistry::builtin())
      : plan_(plan), synth_(registry) {}

  const SchedulePlan& plan() const noexcept { return plan_; }

  /// The full controlled schedule for one device under one config: power
  /// reps, every interaction (reps per its automation method), one idle.
  std::vector<ExperimentSpec> schedule(const DeviceSpec& device,
                                       const NetworkConfig& config) const;

  /// Synthesizes the capture for one experiment. Deterministic in the
  /// spec (same spec -> identical packets). Resolves the device through
  /// the builtin catalog; throws std::invalid_argument when the spec
  /// names a device that is not in it.
  LabeledCapture run(const ExperimentSpec& spec) const;

  /// Same synthesis with the device spec supplied by the caller — the
  /// path for synthetic fleet devices (catalog_gen.hpp), which have no
  /// find_device entry. `device.id` must equal `spec.device_id`.
  LabeledCapture run(const ExperimentSpec& spec,
                     const DeviceSpec& device) const;

  /// Convenience: schedule() then run() for every spec.
  std::vector<LabeledCapture> run_all(const DeviceSpec& device,
                                      const NetworkConfig& config) const;

  const TrafficSynthesizer& synthesizer() const noexcept { return synth_; }

 private:
  SchedulePlan plan_;
  TrafficSynthesizer synth_;
};

/// Simulation epoch: 2019-04-01 00:00 UTC (the paper's controlled
/// experiments ran during April 2019).
inline constexpr double kSimulationEpoch = 1554076800.0;

}  // namespace iotx::testbed
