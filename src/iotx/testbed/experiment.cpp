#include "iotx/testbed/experiment.hpp"

#include <stdexcept>

namespace iotx::testbed {

std::string_view experiment_type_name(ExperimentType t) noexcept {
  switch (t) {
    case ExperimentType::kPower: return "power";
    case ExperimentType::kInteraction: return "interaction";
    case ExperimentType::kIdle: return "idle";
    case ExperimentType::kUncontrolled: return "uncontrolled";
    case ExperimentType::kLifecycle: return "lifecycle";
  }
  return "?";
}

std::string ExperimentSpec::key() const {
  std::string k = config.key();
  k += '/';
  k += device_id;
  k += '/';
  k += experiment_type_name(type);
  if (!activity.empty()) {
    k += '/';
    k += activity;
  }
  k += "/rep";
  k += std::to_string(repetition);
  // Appended only off the normal phase, so every pre-lifecycle key (and
  // with it every Prng seed and golden fixture) is reproduced verbatim.
  if (phase != LifecyclePhase::kNormal) {
    k += '/';
    k += lifecycle_phase_name(phase);
  }
  return k;
}

std::vector<ExperimentSpec> ExperimentRunner::schedule(
    const DeviceSpec& device, const NetworkConfig& config) const {
  std::vector<ExperimentSpec> specs;
  double t = kSimulationEpoch;

  for (int rep = 0; rep < plan_.power_reps; ++rep) {
    ExperimentSpec s;
    s.device_id = device.id;
    s.config = config;
    s.type = ExperimentType::kPower;
    s.activity = "power";
    s.repetition = rep;
    s.start_time = t;
    specs.push_back(std::move(s));
    t += 180.0;  // two-minute captures plus turnaround
  }

  for (const InteractionScript& script : scripts_for(device)) {
    const int reps = script.automated ? plan_.automated_reps
                                      : plan_.manual_reps;
    for (int rep = 0; rep < reps; ++rep) {
      ExperimentSpec s;
      s.device_id = device.id;
      s.config = config;
      s.type = ExperimentType::kInteraction;
      s.activity = script.activity;
      s.repetition = rep;
      s.start_time = t;
      specs.push_back(std::move(s));
      t += 60.0;
    }
  }

  {
    ExperimentSpec s;
    s.device_id = device.id;
    s.config = config;
    s.type = ExperimentType::kIdle;
    s.repetition = 0;
    s.start_time = t + 3600.0;
    s.idle_hours = plan_.idle_hours;
    specs.push_back(std::move(s));
  }

  // Lifecycle phases ride after the idle window (opt-in via
  // lifecycle_reps), so enabling them never shifts the start times — and
  // therefore the synthesized bytes — of the paper's experiments above.
  if (plan_.lifecycle_reps > 0) {
    double lt = t + 3600.0 + plan_.idle_hours * 3600.0 + 600.0;
    for (const InteractionScript& script : lifecycle_scripts_for(device)) {
      for (int rep = 0; rep < plan_.lifecycle_reps; ++rep) {
        ExperimentSpec s;
        s.device_id = device.id;
        s.config = config;
        s.type = ExperimentType::kLifecycle;
        s.activity = script.activity;
        s.repetition = rep;
        s.start_time = lt;
        s.phase = script.phase;
        specs.push_back(std::move(s));
        lt += 120.0;
      }
    }
  }
  return specs;
}

LabeledCapture ExperimentRunner::run(const ExperimentSpec& spec) const {
  const DeviceSpec* device = find_device(spec.device_id);
  if (device == nullptr) {
    throw std::invalid_argument("unknown device: " + spec.device_id);
  }
  return run(spec, *device);
}

LabeledCapture ExperimentRunner::run(const ExperimentSpec& spec,
                                     const DeviceSpec& device_spec) const {
  const DeviceSpec* device = &device_spec;
  if (device->id != spec.device_id) {
    throw std::invalid_argument("device spec mismatch: " + device->id +
                                " vs " + spec.device_id);
  }
  util::Prng prng("exp/" + spec.key());

  LabeledCapture capture;
  capture.spec = spec;
  switch (spec.type) {
    case ExperimentType::kPower:
      capture.packets =
          synth_.power_event(*device, spec.config, spec.start_time, prng);
      break;
    case ExperimentType::kInteraction: {
      const ActivitySignature* sig =
          TrafficSynthesizer::find_activity(*device, spec.activity);
      if (sig == nullptr) {
        throw std::invalid_argument("unknown activity: " + spec.activity);
      }
      capture.packets = synth_.activity_event(*device, spec.config, *sig,
                                              spec.start_time, prng);
      // Unrelated background traffic overlaps the labeled window (§6.1
      // mentions NTP noise in experiment captures).
      util::Prng bg = prng.fork("bg");
      std::vector<net::Packet> noise =
          synth_.background(*device, spec.config, spec.start_time,
                            spec.start_time + sig->duration + 10.0, bg);
      capture.packets.insert(capture.packets.end(), noise.begin(),
                             noise.end());
      break;
    }
    case ExperimentType::kIdle:
      capture.packets = synth_.idle_period(*device, spec.config,
                                           spec.start_time, spec.idle_hours,
                                           prng);
      break;
    case ExperimentType::kUncontrolled:
      // Uncontrolled captures come from the UserStudySimulator.
      break;
    case ExperimentType::kLifecycle:
      capture.packets = synth_.lifecycle_event(*device, spec.config,
                                               spec.phase, spec.start_time,
                                               prng);
      break;
  }
  std::stable_sort(capture.packets.begin(), capture.packets.end(),
                   [](const net::Packet& a, const net::Packet& b) {
                     return a.timestamp < b.timestamp;
                   });
  return capture;
}

std::vector<LabeledCapture> ExperimentRunner::run_all(
    const DeviceSpec& device, const NetworkConfig& config) const {
  std::vector<LabeledCapture> captures;
  for (const ExperimentSpec& spec : schedule(device, config)) {
    captures.push_back(run(spec));
  }
  return captures;
}

}  // namespace iotx::testbed
