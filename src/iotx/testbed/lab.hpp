// Lab/network configuration: the two testbeds (paper §3.2) and the VPN
// egress swap used for the regional experiments (§3.3).
#pragma once

#include <string>

#include "iotx/geo/passport.hpp"
#include "iotx/net/address.hpp"
#include "iotx/testbed/endpoints.hpp"
#include "iotx/util/prng.hpp"

namespace iotx::testbed {

enum class LabSite { kUs, kUk };

std::string_view lab_name(LabSite lab) noexcept;

/// A (lab, egress) combination — the four experiment columns of every
/// table: US, UK, VPN US->UK, VPN UK->US.
struct NetworkConfig {
  LabSite lab = LabSite::kUs;
  bool vpn = false;  ///< true: egress via the *other* lab's public IP

  /// Country of the public egress IP ("US" or "GB").
  std::string egress_country() const;
  /// The lab's physical country (jurisdiction of the deployment).
  std::string lab_country() const;
  geo::Vantage vantage() const noexcept {
    return lab == LabSite::kUs ? geo::Vantage::kUsLab : geo::Vantage::kUkLab;
  }
  /// Stable key for PRNG seeding and result maps ("us", "uk-vpn", ...).
  std::string key() const;

  bool operator==(const NetworkConfig&) const = default;
};

/// All four configurations, in canonical order.
const std::array<NetworkConfig, 4>& all_network_configs();

/// Static lab parameters (addresses the gateway uses).
struct LabParams {
  net::Ipv4Address public_ip;   ///< NAT egress address
  net::Ipv4Address gateway_ip;  ///< 10.42.x.1 on the IoT network
  net::MacAddress gateway_mac;
  net::Ipv4Address dns_server;  ///< the gateway itself resolves
};

LabParams lab_params(LabSite lab);

/// Simulated minimum RTT (ms) measured from a lab to an endpoint country
/// (traceroute substitute feeding the Passport resolver). Deterministic
/// per (config, country); VPN egress adds the transatlantic tunnel.
double simulated_rtt_ms(const NetworkConfig& config,
                        const std::string& endpoint_country);

}  // namespace iotx::testbed
