// Device behavior profiles: the per-device parameters that drive traffic
// synthesis. A profile captures what the paper's analyses key on — which
// destinations a device contacts (and over which transports), how much of
// its traffic is plaintext, and the per-activity packet-timing signature
// that makes activities inferrable (or not) from encrypted traffic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iotx::testbed {

/// Transport + content shape of one destination's traffic.
enum class Transport {
  kTls,        ///< TLS handshake (SNI) + application-data records
  kHttps443,   ///< TLS on 443 without SNI (session resumption style)
  kHttp,       ///< plaintext HTTP/1.1
  kCustomTcp,  ///< proprietary TCP protocol, partially encrypted
  kCustomUdp,  ///< proprietary UDP protocol, partially encrypted
  kRtspMedia,  ///< media stream (recognizable media magic bytes)
};

/// What the payload bytes look like (drives the entropy analysis).
enum class PayloadStyle {
  kEncryptedRandom,   ///< uniform random bytes: H ~ 0.85+ on small samples
  kPlainJson,         ///< textual key/value chatter: H ~ 0.25-0.5
  kMixedProprietary,  ///< half binary-random, half structured: H in 0.4-0.8
  kMediaJpeg,         ///< JPEG magic + high-entropy body
  kMediaH264,         ///< Annex-B start codes + high-entropy body
  kFirmwareGzip,      ///< gzip magic + compressed body
};

/// One destination a device talks to.
struct EndpointUse {
  std::string domain;        ///< key into the EndpointRegistry
  Transport transport = Transport::kTls;
  PayloadStyle style = PayloadStyle::kEncryptedRandom;
  double weight = 1.0;       ///< relative share of the device's traffic
  bool power_only = false;   ///< contacted only during power experiments
  bool not_on_power = false; ///< NOT contacted during power experiments
  bool vpn_only = false;     ///< contacted only when egressing via VPN
  bool direct_only = false;  ///< contacted only without VPN
  bool uk_lab_only = false;  ///< contacted only from the UK lab
  bool us_lab_only = false;  ///< contacted only from the US lab
  /// When non-empty, the endpoint is contacted only during the named
  /// activities (e.g. a TV fetching ads/content during "power" and
  /// "local_menu" but not while changing the volume).
  std::vector<std::string> only_activities;
};

/// Per-activity traffic signature. Packet sizes are lognormal, gaps
/// exponential; the offsets separate activities in feature space and the
/// noise term controls how much repetitions smear (higher noise -> lower
/// cross-validated F1, i.e. a less inferrable activity).
struct ActivitySignature {
  std::string name;          ///< label, e.g. "power", "local_move"
  int packets_up = 40;       ///< mean packets device -> cloud
  int packets_down = 40;     ///< mean packets cloud -> device
  double size_up_mu = 6.0;   ///< lognormal mu of upstream payload sizes
  double size_up_sigma = 0.6;
  double size_down_mu = 6.0;
  double size_down_sigma = 0.6;
  double gap_mean = 0.05;    ///< mean inter-packet gap (s)
  double duration = 6.0;     ///< approximate activity duration (s)
  double noise = 0.15;       ///< per-repetition parameter jitter in [0,1]
  bool media_upload = false; ///< activity streams media (cameras, TVs)
  /// Extra destinations contacted only during this activity; when empty the
  /// device's base endpoints are used.
  std::vector<EndpointUse> extra_endpoints;
};

/// Spontaneous activity during idle periods (paper §7.2, Table 11):
/// e.g. the Zmodo doorbell emitting "local_move" bursts every ~minute.
struct SpuriousActivity {
  std::string activity;      ///< must name one of the device's activities
  double per_hour_us = 0.0;  ///< rate in the US lab, direct egress
  double per_hour_uk = 0.0;
  double per_hour_vpn_us = 0.0;  ///< US lab egressing via UK VPN
  double per_hour_vpn_uk = 0.0;
};

/// Everything the synthesizer needs to emit one device's traffic.
struct BehaviorProfile {
  /// Destinations contacted in normal operation.
  std::vector<EndpointUse> endpoints;
  /// Fraction of heartbeat/background bytes sent plaintext (drives the
  /// per-device unencrypted percentages of Table 7).
  double plaintext_fraction = 0.02;
  /// Regional overrides (<0 means "same as plaintext_fraction"): some
  /// devices behave differently in the UK lab or when egressing via VPN
  /// (the bold/italic significance markers of Table 7).
  double plaintext_fraction_uk = -1.0;
  double plaintext_fraction_vpn = -1.0;
  /// How separable activity signatures are (scales the per-activity
  /// offsets; ~1 for cameras/TVs, lower for hubs/appliances).
  double distinctiveness = 0.7;
  /// Idle keep-alive period in seconds.
  double heartbeat_period = 30.0;
  /// Wi-Fi reconnect rate (events/hour) — each reconnect replays the
  /// power-on handshake, which is why "power" dominates idle detections.
  double reconnect_per_hour = 0.1;
  double reconnect_per_hour_uk = -1.0;   ///< override; <0 means same as US
  double reconnect_per_hour_vpn = -1.0;  ///< override on VPN; <0 = same
  /// Spontaneous idle activities.
  std::vector<SpuriousActivity> spurious;
  /// Activity signatures (must include "power").
  std::vector<ActivitySignature> activities;
  /// Device emits periodic NTP (background noise in every experiment).
  /// Off by default; enabled for the devices that sync time themselves.
  bool uses_ntp = false;
  /// Plaintext PII items this device is known to leak, by token name
  /// ("mac", "uuid", "device_id", "geo_city", "owner_name", "motion_ts").
  std::vector<std::string> pii_leaks;
  /// Domain the PII is sent to (must be in `endpoints` or a well-known
  /// registry domain); empty = first plaintext endpoint.
  std::string pii_domain;
  /// PII leak only from the UK lab (the Insteon case, §6.2).
  bool pii_uk_only = false;
  /// PII leak rides on motion events rather than heartbeats (Xiaomi Cam).
  bool pii_on_motion = false;
};

}  // namespace iotx::testbed
