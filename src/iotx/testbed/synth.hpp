// Traffic synthesizer: turns a device's behavior profile into genuine
// wire-format packet captures — DNS lookups, TCP/TLS handshakes with SNI,
// plaintext HTTP (including the PII leaks of §6.2), proprietary
// partially-encrypted protocols, media streams, NTP — with the per-activity
// packet-size/timing signatures the inference analyses learn from.
//
// This is the substitution for the physical devices (see DESIGN.md): every
// downstream analysis consumes only these captures.
#pragma once

#include <vector>

#include "iotx/net/packet.hpp"
#include "iotx/testbed/automation.hpp"
#include "iotx/testbed/catalog.hpp"
#include "iotx/testbed/endpoints.hpp"
#include "iotx/testbed/lab.hpp"
#include "iotx/util/prng.hpp"

namespace iotx::testbed {

class TrafficSynthesizer {
 public:
  explicit TrafficSynthesizer(
      const EndpointRegistry& registry = EndpointRegistry::builtin())
      : registry_(&registry) {}

  /// Power-on: DNS + connections to every applicable endpoint (including
  /// power_only ones), an occasional firmware download, and the device's
  /// "power" activity signature.
  std::vector<net::Packet> power_event(const DeviceSpec& device,
                                       const NetworkConfig& config,
                                       double start_ts,
                                       util::Prng& prng) const;

  /// One labeled interaction following `signature`.
  std::vector<net::Packet> activity_event(const DeviceSpec& device,
                                          const NetworkConfig& config,
                                          const ActivitySignature& signature,
                                          double start_ts,
                                          util::Prng& prng) const;

  /// Keep-alive / NTP / DNS-refresh background over [t0, t1).
  std::vector<net::Packet> background(const DeviceSpec& device,
                                      const NetworkConfig& config, double t0,
                                      double t1, util::Prng& prng) const;

  /// A full idle period: background plus Wi-Fi reconnect storms (replayed
  /// power handshakes) and the device's spurious activities (§7.2).
  std::vector<net::Packet> idle_period(const DeviceSpec& device,
                                       const NetworkConfig& config, double t0,
                                       double hours, util::Prng& prng) const;

  /// One lifecycle-phase capture. kSetup: boot chatter plus a plaintext
  /// provisioning exchange that carries the unit's PII to the vendor
  /// cloud; kOta: a firmware manifest check and the full gzip'd image
  /// download; kDeprovision: an unbind POST and a final telemetry flush.
  /// kNormal synthesizes nothing (normal activity has its own paths).
  std::vector<net::Packet> lifecycle_event(const DeviceSpec& device,
                                           const NetworkConfig& config,
                                           LifecyclePhase phase,
                                           double start_ts,
                                           util::Prng& prng) const;

  /// The signature for a named activity; nullptr when the device lacks it.
  static const ActivitySignature* find_activity(const DeviceSpec& device,
                                                std::string_view name);

  /// Effective plaintext byte fraction for a device under a config
  /// (applies the UK/VPN overrides of the behavior profile).
  static double effective_plaintext_fraction(const DeviceSpec& device,
                                             const NetworkConfig& config);

 private:
  const EndpointRegistry* registry_;
};

/// PII tokens for a device unit: the concrete strings a leak emits and the
/// scanner must find (MAC, UUID, device id, owner name, e-mail, city).
struct PiiTokens {
  std::string mac;
  std::string uuid;
  std::string device_id;
  std::string owner_name;
  std::string email;
  std::string geo_city;
};

/// Deterministic PII values for (device, lab).
PiiTokens pii_tokens(const DeviceSpec& device, LabSite lab);

}  // namespace iotx::testbed
