// Capture gateway: the tcpdump-at-the-NAT role of the testbed server
// (paper §3.2) — merges device traffic, splits it back per MAC address,
// and persists labeled pcap files the way the released intl-iot dataset
// is organized (<lab>/<device>/<label>.pcap).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "iotx/faults/impairment.hpp"
#include "iotx/net/pcap.hpp"
#include "iotx/testbed/experiment.hpp"

namespace iotx::testbed {

class Gateway {
 public:
  explicit Gateway(LabSite lab) : lab_(lab) {}

  /// Taps a capture (as the bridged IoT interface would see it).
  void tap(const std::vector<net::Packet>& packets);

  /// Taps a capture through a lossy link: the profile degrades the
  /// packets (seeded by `seed_key`, so reproducible) before they are
  /// buffered, and the injection counts accumulate into health().
  void tap_impaired(std::vector<net::Packet> packets,
                    const faults::ImpairmentProfile& profile,
                    std::string_view seed_key);

  /// Injection ground truth accumulated by tap_impaired() calls.
  const faults::CaptureHealth& health() const noexcept { return health_; }

  /// Everything captured so far, per device MAC, timestamp-sorted.
  std::map<net::MacAddress, std::vector<net::Packet>> per_device() const;

  /// Total packets tapped.
  std::size_t packet_count() const noexcept { return buffer_.size(); }

  /// Writes one labeled experiment to
  /// `<root>/<lab>/<device>/<experiment key>.pcap`. Returns the file path,
  /// or an empty string on I/O failure.
  std::string write_labeled(const std::string& root,
                            const LabeledCapture& capture) const;

  /// Reads back a labeled capture written by write_labeled().
  static std::optional<std::vector<net::Packet>> read_labeled(
      const std::string& path);

  LabSite lab() const noexcept { return lab_; }

 private:
  LabSite lab_;
  std::vector<net::Packet> buffer_;
  faults::CaptureHealth health_;
};

}  // namespace iotx::testbed
