#include "iotx/testbed/catalog_gen.hpp"

#include <algorithm>
#include <cmath>

#include "iotx/util/prng.hpp"
#include "iotx/util/task_pool.hpp"

namespace iotx::testbed {

namespace {

std::string_view category_slug(Category c) noexcept {
  switch (c) {
    case Category::kCamera: return "camera";
    case Category::kSmartHub: return "hub";
    case Category::kHomeAutomation: return "automation";
    case Category::kTv: return "tv";
    case Category::kAudio: return "audio";
    case Category::kAppliance: return "appliance";
  }
  return "device";
}

double clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

/// Multiplicative jitter in [lo, hi] — the workhorse perturbation: it
/// moves a parameter around its template value without ever changing
/// its sign or collapsing it to zero.
double scale(util::Prng& prng, double value, double lo, double hi) {
  return value * prng.uniform_real(lo, hi);
}

/// Jitters one activity signature. The perturbations are wide enough
/// that two synthetic siblings of one template are distinguishable in
/// feature space, and narrow enough that the category's shape — what
/// Tables 3/6/9 aggregate — survives (test_catalog.cpp holds every
/// generated signature to a [0.5x, 2x] envelope of its template).
void jitter_signature(util::Prng& prng, ActivitySignature& s) {
  s.packets_up = std::max(
      2, static_cast<int>(std::lround(scale(prng, s.packets_up, 0.75, 1.3))));
  s.packets_down = std::max(
      2, static_cast<int>(std::lround(scale(prng, s.packets_down, 0.75, 1.3))));
  s.size_up_mu = clamp(s.size_up_mu + prng.normal(0.0, 0.12), 3.5, 9.0);
  s.size_down_mu = clamp(s.size_down_mu + prng.normal(0.0, 0.12), 3.5, 9.0);
  s.size_up_sigma = clamp(scale(prng, s.size_up_sigma, 0.9, 1.15), 0.1, 1.5);
  s.size_down_sigma =
      clamp(scale(prng, s.size_down_sigma, 0.9, 1.15), 0.1, 1.5);
  s.gap_mean = clamp(scale(prng, s.gap_mean, 0.8, 1.3), 0.002, 1.0);
  s.duration = clamp(scale(prng, s.duration, 0.9, 1.2), 1.0, 120.0);
  s.noise = clamp(scale(prng, s.noise, 0.85, 1.2), 0.02, 0.9);
}

void jitter_profile(util::Prng& prng, BehaviorProfile& b) {
  for (EndpointUse& e : b.endpoints) {
    e.weight = clamp(scale(prng, e.weight, 0.7, 1.4), 0.05, 10.0);
  }
  b.plaintext_fraction =
      clamp(scale(prng, b.plaintext_fraction, 0.5, 1.5), 0.0, 0.6);
  if (b.plaintext_fraction_uk >= 0.0) {
    b.plaintext_fraction_uk =
        clamp(scale(prng, b.plaintext_fraction_uk, 0.5, 1.5), 0.0, 0.6);
  }
  if (b.plaintext_fraction_vpn >= 0.0) {
    b.plaintext_fraction_vpn =
        clamp(scale(prng, b.plaintext_fraction_vpn, 0.5, 1.5), 0.0, 0.6);
  }
  b.distinctiveness = clamp(scale(prng, b.distinctiveness, 0.85, 1.15), 0.1, 1.5);
  b.heartbeat_period = clamp(scale(prng, b.heartbeat_period, 0.75, 1.4), 5.0, 600.0);
  b.reconnect_per_hour =
      clamp(scale(prng, b.reconnect_per_hour, 0.5, 1.8), 0.0, 20.0);
  if (b.reconnect_per_hour_uk >= 0.0) {
    b.reconnect_per_hour_uk =
        clamp(scale(prng, b.reconnect_per_hour_uk, 0.5, 1.8), 0.0, 20.0);
  }
  if (b.reconnect_per_hour_vpn >= 0.0) {
    b.reconnect_per_hour_vpn =
        clamp(scale(prng, b.reconnect_per_hour_vpn, 0.5, 1.8), 0.0, 20.0);
  }
  for (SpuriousActivity& sp : b.spurious) {
    sp.per_hour_us = clamp(scale(prng, sp.per_hour_us, 0.5, 1.6), 0.0, 200.0);
    sp.per_hour_uk = clamp(scale(prng, sp.per_hour_uk, 0.5, 1.6), 0.0, 200.0);
    sp.per_hour_vpn_us =
        clamp(scale(prng, sp.per_hour_vpn_us, 0.5, 1.6), 0.0, 200.0);
    sp.per_hour_vpn_uk =
        clamp(scale(prng, sp.per_hour_vpn_uk, 0.5, 1.6), 0.0, 200.0);
  }
  for (ActivitySignature& s : b.activities) {
    jitter_signature(prng, s);
    for (EndpointUse& e : s.extra_endpoints) {
      e.weight = clamp(scale(prng, e.weight, 0.7, 1.4), 0.05, 10.0);
    }
  }
}

std::string zero_pad(std::size_t value, int width) {
  std::string s = std::to_string(value);
  while (static_cast<int>(s.size()) < width) s.insert(s.begin(), '0');
  return s;
}

}  // namespace

DeviceSpec generate_device(std::uint64_t seed, std::size_t index) {
  const std::vector<DeviceSpec>& seeds = device_catalog();

  // The category/template/presence draws and the profile jitter share a
  // single stream keyed "catalog/<device_id>" — the id is a pure
  // function of (seed, index), so device i can be generated alone, in
  // any order, on any thread, and always comes out bit-identical.
  const std::string pick_key = "catalog/syn_" + std::to_string(seed) + "_" +
                               zero_pad(index, 6);
  util::Prng prng(pick_key);

  // Category frequencies follow the seed catalog's, so fleet-level
  // aggregates (Table 3/6 category rows) keep the paper's proportions.
  std::vector<double> weights(static_cast<std::size_t>(kCategoryCount), 0.0);
  for (const DeviceSpec& d : seeds) {
    weights[static_cast<std::size_t>(d.category)] += 1.0;
  }
  const Category category = static_cast<Category>(prng.weighted(weights));

  std::vector<const DeviceSpec*> candidates;
  for (const DeviceSpec& d : seeds) {
    if (d.category == category) candidates.push_back(&d);
  }
  const DeviceSpec& tmpl = *candidates[prng.uniform(candidates.size())];

  DeviceSpec out;
  out.id = "syn_" + std::to_string(seed) + "_" +
           std::string(category_slug(category)) + "_" + zero_pad(index, 6);
  out.name = tmpl.name + " (fleet " + std::to_string(index) + ")";
  out.category = category;
  // Presence mix from the seed catalog: ~26/81 both, the rest split
  // between single-lab deployments.
  {
    double both = 0.0, us_only = 0.0, uk_only = 0.0;
    for (const DeviceSpec& d : seeds) {
      if (d.common()) {
        both += 1.0;
      } else if (d.in_us()) {
        us_only += 1.0;
      } else {
        uk_only += 1.0;
      }
    }
    const std::size_t presence = prng.weighted({both, us_only, uk_only});
    out.presence = presence == 0 ? LabPresence::kBoth
                   : presence == 1 ? LabPresence::kUsOnly
                                   : LabPresence::kUkOnly;
  }
  // Manufacturer and first-party orgs come from the template verbatim:
  // they key the party-attribution tables, and inventing organizations
  // would detach the fleet from the org/geo databases.
  out.manufacturer = tmpl.manufacturer;
  out.first_party_orgs = tmpl.first_party_orgs;
  out.behavior = tmpl.behavior;
  jitter_profile(prng, out.behavior);
  return out;
}

std::vector<DeviceSpec> generate_catalog(const CatalogGenParams& params,
                                         std::size_t jobs) {
  std::vector<DeviceSpec> fleet(params.count);
  if (jobs == 1 || params.count < 2) {
    for (std::size_t i = 0; i < params.count; ++i) {
      fleet[i] = generate_device(params.seed, i);
    }
  } else {
    // Index-keyed generation into pre-sized slots: the standard
    // determinism recipe (DESIGN.md §"Concurrency model").
    util::TaskPool pool(jobs);
    pool.parallel_for_each(params.count, [&](std::size_t i) {
      fleet[i] = generate_device(params.seed, i);
    });
  }
  return fleet;
}

std::string catalog_cache_id(const CatalogGenParams& params) {
  return "synthetic/v1/seed-" + std::to_string(params.seed);
}

}  // namespace iotx::testbed
