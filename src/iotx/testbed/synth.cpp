#include "iotx/testbed/synth.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "iotx/net/bytes.hpp"
#include "iotx/proto/dhcp.hpp"
#include "iotx/proto/dns.hpp"
#include "iotx/proto/http.hpp"
#include "iotx/proto/ntp.hpp"
#include "iotx/proto/tls.hpp"
#include "iotx/util/codec.hpp"

namespace iotx::testbed {

namespace {

constexpr std::size_t kMaxPayload = 1400;

std::uint16_t dst_port_for(Transport t) {
  switch (t) {
    case Transport::kTls:
    case Transport::kHttps443: return 443;
    case Transport::kHttp: return 80;
    case Transport::kCustomTcp: return 8899;
    case Transport::kCustomUdp: return 32100;
    case Transport::kRtspMedia: return 554;
  }
  return 443;
}

bool is_tcp_transport(Transport t) {
  return t != Transport::kCustomUdp;
}

/// Everything fixed for one synthesized capture.
struct Ctx {
  const DeviceSpec* device;
  NetworkConfig config;
  LabParams lab;
  net::MacAddress dev_mac;
  net::Ipv4Address dev_ip;
  PiiTokens pii;
};

Ctx make_ctx(const DeviceSpec& device, const NetworkConfig& config) {
  const bool us = config.lab == LabSite::kUs;
  return Ctx{&device, config, lab_params(config.lab), device_mac(device, us),
             device_ip(device, us), pii_tokens(device, config.lab)};
}

/// One open connection to an endpoint.
struct Session {
  const Endpoint* endpoint = nullptr;
  EndpointRegistry::Replica replica;
  Transport transport = Transport::kTls;
  PayloadStyle style = PayloadStyle::kEncryptedRandom;
  net::FrameEndpoints ep;  ///< device -> server
  double rtt = 0.02;       ///< seconds
  std::uint32_t seq_up = 1;
  std::uint32_t seq_down = 1;
  bool first_up = true;
  bool first_down = true;
  int packet_counter = 0;
};

// ---- Payload generators ----------------------------------------------

std::vector<std::uint8_t> random_bytes(util::Prng& prng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(prng.uniform(256));
  return out;
}

/// Highly repetitive keep-alive text: normalized entropy ~0.3 so the
/// entropy classifier lands in the "likely unencrypted" band (§5.1).
std::vector<std::uint8_t> plain_keepalive(std::size_t n, int seq) {
  std::string text;
  text.reserve(n + 32);
  char counter[24];
  std::snprintf(counter, sizeof(counter), "HEARTBEAT %06d ",
                seq % 1000000);
  text += counter;
  // Filling with a two-symbol pattern keeps the byte entropy around the
  // paper's H_unenc ~ 0.25, well under the 0.4 threshold.
  while (text.size() < n) text += "OK";
  text.resize(n);
  return {text.begin(), text.end()};
}

/// Proprietary framing: ASCII magic + structured header + half random
/// bytes. Entropy lands in the "unknown" band (0.4..0.8).
std::vector<std::uint8_t> mixed_payload(util::Prng& prng, std::size_t n,
                                        int seq) {
  std::vector<std::uint8_t> out;
  out.reserve(n);
  char header[64];
  std::snprintf(header, sizeof(header), "IOTPv1 LEN=%05zu SEQ=%08d CH=0 ", n,
                seq);
  for (const char* p = header; *p != '\0' && out.size() < n; ++p) {
    out.push_back(static_cast<std::uint8_t>(*p));
  }
  // Alternate structured text and random bytes in 32-byte runs.
  bool random_run = true;
  while (out.size() < n) {
    const std::size_t run = std::min<std::size_t>(32, n - out.size());
    if (random_run) {
      for (std::size_t i = 0; i < run; ++i) {
        out.push_back(static_cast<std::uint8_t>(prng.uniform(256)));
      }
    } else {
      static constexpr std::string_view kFill = "DATA:0000-0000-0000:OK; ";
      for (std::size_t i = 0; i < run; ++i) {
        out.push_back(static_cast<std::uint8_t>(kFill[i % kFill.size()]));
      }
    }
    random_run = !random_run;
  }
  return out;
}

std::vector<std::uint8_t> media_payload(util::Prng& prng, std::size_t n,
                                        bool first, PayloadStyle style) {
  std::vector<std::uint8_t> out;
  out.reserve(n);
  if (first) {
    if (style == PayloadStyle::kMediaJpeg) {
      out.insert(out.end(), {0xff, 0xd8, 0xff, 0xe0});
    } else {
      out.insert(out.end(), {0x00, 0x00, 0x00, 0x01, 0x67});
    }
  }
  while (out.size() < n) {
    out.push_back(static_cast<std::uint8_t>(prng.uniform(256)));
  }
  return out;
}

std::vector<std::uint8_t> gzip_payload(util::Prng& prng, std::size_t n,
                                       bool first) {
  std::vector<std::uint8_t> out;
  out.reserve(n);
  if (first) out.insert(out.end(), {0x1f, 0x8b, 0x08, 0x00});
  while (out.size() < n) {
    out.push_back(static_cast<std::uint8_t>(prng.uniform(256)));
  }
  return out;
}

// ---- PII ---------------------------------------------------------------

bool pii_applies(const Ctx& ctx, bool motion_context) {
  const BehaviorProfile& b = ctx.device->behavior;
  if (b.pii_leaks.empty()) return false;
  if (b.pii_uk_only && ctx.config.lab != LabSite::kUk) return false;
  if (b.pii_on_motion && !motion_context) return false;
  if (!b.pii_on_motion && motion_context) return true;  // leaks everywhere
  return true;
}

std::string pii_value(const Ctx& ctx, const std::string& token) {
  if (token == "mac") return ctx.pii.mac;
  if (token == "uuid") return ctx.pii.uuid;
  if (token == "device_id") return ctx.pii.device_id;
  if (token == "owner_name") return ctx.pii.owner_name;
  if (token == "device_name") {
    return ctx.pii.owner_name + "'s " + ctx.device->name;
  }
  if (token == "email") return ctx.pii.email;
  if (token == "geo_city") return ctx.pii.geo_city;
  if (token == "motion_ts") return "motion detected 2019-04-12 03:00";
  return token;
}

/// Builds the plaintext HTTP status POST, embedding any applicable PII in
/// one of several encodings (the scanner must search "various encodings",
/// §6.1).
std::string plain_http_body(const Ctx& ctx, util::Prng& prng,
                            bool motion_context,
                            const std::string& target_domain) {
  std::string body = "status=ok&uptime=" + std::to_string(prng.uniform(90000));
  if (!pii_applies(ctx, motion_context)) return body;
  // The leak goes to one specific backend (§6.2 case studies), not to
  // every plaintext destination the device happens to talk to.
  const std::string& pii_domain = ctx.device->behavior.pii_domain;
  if (!pii_domain.empty() && target_domain != pii_domain) return body;
  for (const std::string& token : ctx.device->behavior.pii_leaks) {
    const std::string value = pii_value(ctx, token);
    switch (prng.uniform(4)) {
      case 0: body += "&" + token + "=" + value; break;
      case 1: body += "&" + token + "_b64=" + util::base64_encode(value); break;
      case 2: body += "&" + token + "_hex=" + util::hex_encode(value); break;
      default: body += "&" + token + "=" + util::url_encode(value); break;
    }
  }
  return body;
}

// ---- Packet emission ---------------------------------------------------

void emit(std::vector<net::Packet>& out, net::Packet packet) {
  out.push_back(std::move(packet));
}

/// DNS lookup for a session's domain; returns the resolved (replica)
/// address via the response packet.
void emit_dns(std::vector<net::Packet>& out, const Ctx& ctx,
              const std::string& domain, net::Ipv4Address answer, double& t,
              util::Prng& prng) {
  net::FrameEndpoints ep;
  ep.src_mac = ctx.dev_mac;
  ep.dst_mac = ctx.lab.gateway_mac;
  ep.src_ip = ctx.dev_ip;
  ep.dst_ip = ctx.lab.dns_server;
  ep.src_port = static_cast<std::uint16_t>(20000 + prng.uniform(40000));
  ep.dst_port = 53;
  const auto id = static_cast<std::uint16_t>(prng.uniform(65536));
  const proto::DnsMessage query = proto::make_query(id, domain);
  const std::vector<std::uint8_t> qbytes = query.encode();
  emit(out, net::make_udp_packet(t, ep, qbytes));
  t += 0.002 + prng.exponential(0.004);
  const proto::DnsMessage response = proto::make_response(query, answer);
  const std::vector<std::uint8_t> rbytes = response.encode();
  emit(out, net::make_udp_packet(t, net::reverse(ep), rbytes));
  t += 0.001;
}

void emit_tcp_handshake(std::vector<net::Packet>& out, Session& s,
                        double& t) {
  using net::TcpHeader;
  emit(out, net::make_tcp_packet(t, s.ep, {}, TcpHeader::kSyn, s.seq_up));
  t += s.rtt / 2;
  emit(out, net::make_tcp_packet(t, net::reverse(s.ep), {},
                                 TcpHeader::kSyn | TcpHeader::kAck,
                                 s.seq_down, s.seq_up + 1));
  t += s.rtt / 2;
  emit(out, net::make_tcp_packet(t, s.ep, {}, TcpHeader::kAck, s.seq_up + 1,
                                 s.seq_down + 1));
  s.seq_up += 1;
  s.seq_down += 1;
  t += 0.001;
}

void emit_tcp_data(std::vector<net::Packet>& out, Session& s, bool up,
                   std::span<const std::uint8_t> payload, double t) {
  using net::TcpHeader;
  const net::FrameEndpoints ep = up ? s.ep : net::reverse(s.ep);
  std::uint32_t& seq = up ? s.seq_up : s.seq_down;
  const std::uint32_t ack = up ? s.seq_down : s.seq_up;
  emit(out, net::make_tcp_packet(t, ep, payload,
                                 TcpHeader::kPsh | TcpHeader::kAck, seq,
                                 ack));
  seq += static_cast<std::uint32_t>(payload.size());
}

void emit_udp_data(std::vector<net::Packet>& out, Session& s, bool up,
                   std::span<const std::uint8_t> payload, double t) {
  const net::FrameEndpoints ep = up ? s.ep : net::reverse(s.ep);
  emit(out, net::make_udp_packet(t, ep, payload));
}

void emit_tls_handshake(std::vector<net::Packet>& out, Session& s, double& t,
                        util::Prng& prng, bool with_sni) {
  static constexpr std::uint16_t kSuites[] = {0x1301, 0x1302, 0xc02f, 0xc030,
                                              0xc02b, 0xc02c, 0x009e};
  const std::vector<std::uint8_t> random32 = random_bytes(prng, 32);
  const std::string sni = with_sni ? s.endpoint->domain : std::string();
  const std::vector<std::uint8_t> hello =
      proto::build_client_hello(sni, kSuites, random32);
  emit_tcp_data(out, s, /*up=*/true, hello, t);
  t += s.rtt;
  // ServerHello + certificate chain: one large handshake record split
  // across segments.
  proto::TlsRecord server;
  server.content_type = proto::TlsContentType::kHandshake;
  server.fragment = random_bytes(prng, 2200);
  server.fragment[0] = 2;  // ServerHello handshake type
  const std::vector<std::uint8_t> server_bytes = server.encode();
  for (std::size_t off = 0; off < server_bytes.size(); off += kMaxPayload) {
    const std::size_t n = std::min(kMaxPayload, server_bytes.size() - off);
    emit_tcp_data(out, s, /*up=*/false,
                  std::span(server_bytes).subspan(off, n), t);
    t += 0.0005;
  }
  t += s.rtt / 2;
  // Client Finished (ChangeCipherSpec + encrypted handshake).
  proto::TlsRecord finished;
  finished.content_type = proto::TlsContentType::kChangeCipherSpec;
  finished.fragment = {1};
  emit_tcp_data(out, s, /*up=*/true, finished.encode(), t);
  t += 0.001;
}

/// Opens a session: DNS lookup, TCP and TLS handshakes as required.
Session open_session(std::vector<net::Packet>& out, const Ctx& ctx,
                     const EndpointRegistry& registry, const EndpointUse& use,
                     double& t, util::Prng& prng) {
  Session s;
  s.endpoint = registry.find(use.domain);
  s.transport = use.transport;
  s.style = use.style;
  if (s.endpoint == nullptr) {
    // Unknown endpoint: fall back to a fixed sink address so synthesis
    // never crashes; attribution will leave it unlabeled.
    static const Endpoint kSink{"unknown.invalid", "Unknown", false, "US",
                                net::Ipv4Address(203, 0, 113, 1),
                                "", net::Ipv4Address(), false};
    s.endpoint = &kSink;
  }
  s.replica = registry.select_replica(*s.endpoint,
                                      ctx.config.egress_country());
  s.rtt = simulated_rtt_ms(ctx.config, s.replica.country) / 1000.0;

  emit_dns(out, ctx, s.endpoint->domain, s.replica.address, t, prng);

  s.ep.src_mac = ctx.dev_mac;
  s.ep.dst_mac = ctx.lab.gateway_mac;
  s.ep.src_ip = ctx.dev_ip;
  s.ep.dst_ip = s.replica.address;
  s.ep.src_port = static_cast<std::uint16_t>(10000 + prng.uniform(50000));
  s.ep.dst_port = dst_port_for(s.transport);
  s.seq_up = static_cast<std::uint32_t>(prng.uniform(1u << 31));
  s.seq_down = static_cast<std::uint32_t>(prng.uniform(1u << 31));

  if (is_tcp_transport(s.transport)) emit_tcp_handshake(out, s, t);
  if (s.transport == Transport::kTls) {
    emit_tls_handshake(out, s, t, prng, /*with_sni=*/true);
  } else if (s.transport == Transport::kHttps443) {
    emit_tls_handshake(out, s, t, prng, /*with_sni=*/false);
  } else if (s.transport == Transport::kRtspMedia) {
    // RTSP session setup in the clear, like real unencrypted IP cameras.
    const std::string describe = "DESCRIBE rtsp://" + s.endpoint->domain +
                                 "/live.sdp RTSP/1.0\r\nCSeq: 1\r\n"
                                 "Host: " + s.endpoint->domain + "\r\n\r\n";
    emit_tcp_data(out, s, /*up=*/true, net::as_bytes(describe), t);
    t += s.rtt;
  }
  return s;
}

/// Emits one application data packet on a session.
void emit_app_packet(std::vector<net::Packet>& out, const Ctx& ctx,
                     Session& s, bool up, std::size_t size, double t,
                     util::Prng& prng, bool motion_context) {
  size = std::clamp<std::size_t>(size, 24, kMaxPayload);
  ++s.packet_counter;
  switch (s.transport) {
    case Transport::kTls:
    case Transport::kHttps443: {
      // TLS application data wrapping random ciphertext.
      const std::vector<std::uint8_t> rec = proto::build_application_data(
          random_bytes(prng, std::max<std::size_t>(size, 32) - 5));
      emit_tcp_data(out, s, up, rec, t);
      return;
    }
    case Transport::kHttp: {
      if (up) {
        proto::HttpRequest req;
        req.method = "POST";
        req.target = "/api/v1/status";
        req.set_header("Host", s.endpoint->domain);
        req.set_header("User-Agent", ctx.device->id + "/1.0");
        req.body = plain_http_body(ctx, prng, motion_context,
                                   s.endpoint->domain);
        const std::string text = req.encode();
        emit_tcp_data(out, s, true, net::as_bytes(text), t);
      } else {
        proto::HttpResponse res;
        res.set_header("Content-Type", "application/json");
        res.body = "{\"result\":\"ok\",\"code\":0}";
        const std::string text = res.encode();
        emit_tcp_data(out, s, false, net::as_bytes(text), t);
      }
      return;
    }
    case Transport::kCustomTcp:
    case Transport::kCustomUdp: {
      std::vector<std::uint8_t> payload;
      if (s.style == PayloadStyle::kPlainJson) {
        payload = plain_keepalive(size, s.packet_counter);
      } else if (s.style == PayloadStyle::kEncryptedRandom) {
        payload = random_bytes(prng, size);
      } else {
        payload = mixed_payload(prng, size, s.packet_counter);
      }
      if (s.transport == Transport::kCustomUdp) {
        emit_udp_data(out, s, up, payload, t);
      } else {
        emit_tcp_data(out, s, up, payload, t);
      }
      return;
    }
    case Transport::kRtspMedia: {
      bool& first = up ? s.first_up : s.first_down;
      const PayloadStyle style = s.style == PayloadStyle::kMediaJpeg
                                     ? PayloadStyle::kMediaJpeg
                                     : PayloadStyle::kMediaH264;
      const std::vector<std::uint8_t> payload =
          media_payload(prng, size, first, style);
      first = false;
      emit_tcp_data(out, s, up, payload, t);
      return;
    }
  }
}

/// Endpoints applicable under a config during `activity` ("power" selects
/// power_only ones too; empty = background/keep-alive traffic).
std::vector<EndpointUse> applicable_endpoints(const DeviceSpec& device,
                                              const NetworkConfig& config,
                                              std::string_view activity) {
  const bool power = activity == "power";
  std::vector<EndpointUse> out;
  for (const EndpointUse& u : device.behavior.endpoints) {
    if (u.power_only && !power) continue;
    if (u.not_on_power && power) continue;
    if (u.vpn_only && !config.vpn) continue;
    if (u.direct_only && config.vpn) continue;
    if (u.uk_lab_only && config.lab != LabSite::kUk) continue;
    if (u.us_lab_only && config.lab != LabSite::kUs) continue;
    if (!u.only_activities.empty()) {
      const bool match =
          std::find(u.only_activities.begin(), u.only_activities.end(),
                    activity) != u.only_activities.end();
      if (!match) continue;
    }
    out.push_back(u);
  }
  return out;
}

/// The endpoint plaintext traffic is sent to (PII target when configured).
EndpointUse plain_endpoint_use(const DeviceSpec& device) {
  const BehaviorProfile& b = device.behavior;
  if (!b.pii_domain.empty()) {
    EndpointUse u;
    u.domain = b.pii_domain;
    u.transport = Transport::kHttp;
    u.style = PayloadStyle::kPlainJson;
    return u;
  }
  for (const EndpointUse& u : b.endpoints) {
    if (u.transport == Transport::kHttp) return u;
  }
  EndpointUse u = b.endpoints.front();
  u.transport = Transport::kHttp;
  u.style = PayloadStyle::kPlainJson;
  return u;
}

/// Per-repetition effective signature: distinctiveness shrinks activity
/// offsets toward the device mean; noise jitters each repetition.
struct EffectiveSignature {
  int up, down;
  double mu_up, sigma_up, mu_down, sigma_down, gap;
  bool media;
};

EffectiveSignature effective_signature(const DeviceSpec& device,
                                       const ActivitySignature& sig,
                                       util::Prng& prng) {
  const auto& acts = device.behavior.activities;
  double mean_mu_up = 0, mean_mu_down = 0, mean_gap = 0, mean_up = 0,
         mean_down = 0;
  for (const ActivitySignature& a : acts) {
    mean_mu_up += a.size_up_mu;
    mean_mu_down += a.size_down_mu;
    mean_gap += a.gap_mean;
    mean_up += a.packets_up;
    mean_down += a.packets_down;
  }
  const double n = static_cast<double>(acts.size());
  mean_mu_up /= n;
  mean_mu_down /= n;
  mean_gap /= n;
  mean_up /= n;
  mean_down /= n;

  const double d = device.behavior.distinctiveness;
  const double noise = sig.noise;
  const auto blend = [d](double mean, double value) {
    return mean + d * (value - mean);
  };

  EffectiveSignature e;
  e.mu_up = blend(mean_mu_up, sig.size_up_mu) + noise * prng.normal() * 0.35;
  e.mu_down =
      blend(mean_mu_down, sig.size_down_mu) + noise * prng.normal() * 0.35;
  e.sigma_up = sig.size_up_sigma;
  e.sigma_down = sig.size_down_sigma;
  e.gap = blend(mean_gap, sig.gap_mean) * std::exp(noise * prng.normal());
  e.gap = std::max(e.gap, 0.001);
  const double count_jitter_up = std::exp(noise * prng.normal() * 0.6);
  const double count_jitter_down = std::exp(noise * prng.normal() * 0.6);
  e.up = std::max(3, static_cast<int>(std::lround(
                         blend(mean_up, sig.packets_up) * count_jitter_up)));
  e.down = std::max(3, static_cast<int>(std::lround(
                           blend(mean_down, sig.packets_down) *
                           count_jitter_down)));
  e.media = sig.media_upload;
  return e;
}

}  // namespace

PiiTokens pii_tokens(const DeviceSpec& device, LabSite lab) {
  const bool us = lab == LabSite::kUs;
  PiiTokens p;
  p.mac = device_mac(device, us).to_string();
  const std::uint64_t h = util::fnv1a64(device.id + "/pii");
  char uuid[40];
  std::snprintf(uuid, sizeof(uuid),
                "%08x-1234-5678-9abc-%012llx",
                static_cast<unsigned>(h & 0xffffffff),
                static_cast<unsigned long long>(h >> 16 & 0xffffffffffffULL));
  p.uuid = uuid;
  p.device_id = "DID" + std::to_string(h % 100000000);
  p.owner_name = "John Doe";
  p.email = "john.doe@example.com";
  p.geo_city = us ? "Boston, MA" : "London";
  return p;
}

const ActivitySignature* TrafficSynthesizer::find_activity(
    const DeviceSpec& device, std::string_view name) {
  for (const ActivitySignature& a : device.behavior.activities) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

double TrafficSynthesizer::effective_plaintext_fraction(
    const DeviceSpec& device, const NetworkConfig& config) {
  const BehaviorProfile& b = device.behavior;
  double p = b.plaintext_fraction;
  if (config.lab == LabSite::kUk && b.plaintext_fraction_uk >= 0.0) {
    p = b.plaintext_fraction_uk;
  }
  if (config.vpn && b.plaintext_fraction_vpn >= 0.0) {
    p = b.plaintext_fraction_vpn;
  }
  return std::clamp(p, 0.0, 1.0);
}

std::vector<net::Packet> TrafficSynthesizer::activity_event(
    const DeviceSpec& device, const NetworkConfig& config,
    const ActivitySignature& signature, double start_ts,
    util::Prng& prng) const {
  std::vector<net::Packet> out;
  const Ctx ctx = make_ctx(device, config);
  double t = start_ts;

  // Choose the endpoints involved in this interaction.
  std::vector<EndpointUse> uses = signature.extra_endpoints;
  if (uses.empty()) {
    uses = applicable_endpoints(device, config, signature.name);
  }
  if (uses.empty()) return out;
  std::vector<EndpointUse> chosen;
  for (const EndpointUse& u : uses) {
    if (u.weight >= 1.0 || prng.chance(u.weight)) chosen.push_back(u);
  }
  if (chosen.empty()) chosen.push_back(uses.front());

  std::vector<Session> sessions;
  sessions.reserve(chosen.size());
  for (const EndpointUse& u : chosen) {
    sessions.push_back(open_session(out, ctx, *registry_, u, t, prng));
  }

  // Plaintext side channel (drives Table 7 percentages and PII leaks).
  const double p_plain = effective_plaintext_fraction(device, config);
  const bool motion = signature.name.find("move") != std::string::npos;
  std::optional<Session> plain_session;
  if (p_plain > 0.0 || pii_applies(ctx, motion)) {
    plain_session = open_session(out, ctx, *registry_,
                                 plain_endpoint_use(device), t, prng);
  }

  const EffectiveSignature e = effective_signature(device, signature, prng);
  int up_left = e.up;
  int down_left = e.down;
  // Sessions receive packets proportionally to their endpoint weights.
  std::vector<double> session_weights;
  session_weights.reserve(chosen.size());
  for (const EndpointUse& u : chosen) {
    session_weights.push_back(std::max(u.weight, 0.05));
  }
  while (up_left > 0 || down_left > 0) {
    const bool up =
        prng.uniform(static_cast<std::uint64_t>(up_left + down_left)) <
        static_cast<std::uint64_t>(up_left);
    (up ? up_left : down_left) -= 1;
    t += prng.exponential(e.gap);

    const double mu = up ? e.mu_up : e.mu_down;
    const double sigma = up ? e.sigma_up : e.sigma_down;
    const auto size = static_cast<std::size_t>(
        std::clamp(std::exp(prng.normal(mu, sigma)), 24.0, 1400.0));

    if (plain_session && prng.chance(p_plain)) {
      emit_app_packet(out, ctx, *plain_session, up, size, t, prng, motion);
      continue;
    }
    Session& s = sessions[prng.weighted(session_weights)];
    emit_app_packet(out, ctx, s, up, size, t, prng, motion);
  }

  // PII-on-motion devices (Xiaomi Cam) ride the leak on the motion event
  // itself even when the plaintext fraction is tiny.
  if (motion && plain_session && pii_applies(ctx, true)) {
    t += 0.01;
    emit_app_packet(out, ctx, *plain_session, true, 400, t, prng, true);
  }
  return out;
}

namespace {

/// LAN boot chatter: the DHCP DORA exchange (what the paper's DHCP server
/// logs record for every reconnect), an mDNS hostname announcement, and --
/// for media devices -- an SSDP NOTIFY.
void emit_boot_chatter(std::vector<net::Packet>& out, const Ctx& ctx,
                       double& t, util::Prng& prng) {
  const auto xid = static_cast<std::uint32_t>(prng.uniform(1u << 31));
  const std::string hostname = ctx.device->id;

  net::FrameEndpoints dhcp_ep;
  dhcp_ep.src_mac = ctx.dev_mac;
  dhcp_ep.dst_mac = *net::MacAddress::parse("ff:ff:ff:ff:ff:ff");
  dhcp_ep.src_ip = net::Ipv4Address(0u);
  dhcp_ep.dst_ip = net::Ipv4Address(255, 255, 255, 255);
  dhcp_ep.src_port = 68;
  dhcp_ep.dst_port = 67;

  proto::DhcpMessage msg;
  msg.client_mac = ctx.dev_mac;
  msg.transaction_id = xid;
  msg.hostname = hostname;

  msg.type = proto::DhcpMessageType::kDiscover;
  emit(out, net::make_udp_packet(t, dhcp_ep, msg.encode()));
  t += 0.01;

  net::FrameEndpoints offer_ep;
  offer_ep.src_mac = ctx.lab.gateway_mac;
  offer_ep.dst_mac = ctx.dev_mac;
  offer_ep.src_ip = ctx.lab.gateway_ip;
  offer_ep.dst_ip = ctx.dev_ip;
  offer_ep.src_port = 67;
  offer_ep.dst_port = 68;
  msg.type = proto::DhcpMessageType::kOffer;
  msg.your_ip = ctx.dev_ip;
  msg.server_ip = ctx.lab.gateway_ip;
  msg.hostname.clear();
  emit(out, net::make_udp_packet(t, offer_ep, msg.encode()));
  t += 0.005;

  msg.type = proto::DhcpMessageType::kRequest;
  msg.hostname = hostname;
  emit(out, net::make_udp_packet(t, dhcp_ep, msg.encode()));
  t += 0.005;

  msg.type = proto::DhcpMessageType::kAck;
  msg.hostname.clear();
  emit(out, net::make_udp_packet(t, offer_ep, msg.encode()));
  t += 0.02;

  // mDNS announcement of <id>.local (multicast).
  net::FrameEndpoints mdns_ep;
  mdns_ep.src_mac = ctx.dev_mac;
  mdns_ep.dst_mac = *net::MacAddress::parse("01:00:5e:00:00:fb");
  mdns_ep.src_ip = ctx.dev_ip;
  mdns_ep.dst_ip = net::Ipv4Address(224, 0, 0, 251);
  mdns_ep.src_port = 5353;
  mdns_ep.dst_port = 5353;
  proto::DnsMessage announce;
  announce.is_response = true;
  proto::DnsRecord a;
  a.name = hostname + ".local";
  const std::uint32_t ip = ctx.dev_ip.value();
  a.rdata = {static_cast<std::uint8_t>(ip >> 24),
             static_cast<std::uint8_t>(ip >> 16),
             static_cast<std::uint8_t>(ip >> 8),
             static_cast<std::uint8_t>(ip)};
  announce.answers.push_back(std::move(a));
  emit(out, net::make_udp_packet(t, mdns_ep, announce.encode()));
  t += 0.02;

  // SSDP NOTIFY for media/TV devices.
  if (ctx.device->category == Category::kTv ||
      ctx.device->category == Category::kAudio) {
    net::FrameEndpoints ssdp_ep;
    ssdp_ep.src_mac = ctx.dev_mac;
    ssdp_ep.dst_mac = *net::MacAddress::parse("01:00:5e:7f:ff:fa");
    ssdp_ep.src_ip = ctx.dev_ip;
    ssdp_ep.dst_ip = net::Ipv4Address(239, 255, 255, 250);
    ssdp_ep.src_port = static_cast<std::uint16_t>(49000 + prng.uniform(999));
    ssdp_ep.dst_port = 1900;
    const std::string notify =
        "NOTIFY * HTTP/1.1\r\nHOST: 239.255.255.250:1900\r\nNT: "
        "upnp:rootdevice\r\nUSN: uuid:" + hostname + "\r\n\r\n";
    emit(out, net::make_udp_packet(t, ssdp_ep, net::as_bytes(notify)));
    t += 0.01;
  }
}

}  // namespace

std::vector<net::Packet> TrafficSynthesizer::power_event(
    const DeviceSpec& device, const NetworkConfig& config, double start_ts,
    util::Prng& prng) const {
  std::vector<net::Packet> out;
  const Ctx ctx = make_ctx(device, config);
  double t = start_ts;

  // LAN chatter first: DHCP, mDNS, SSDP.
  emit_boot_chatter(out, ctx, t, prng);

  // Boot: contact every applicable endpoint including power-only parties.
  const std::vector<EndpointUse> uses =
      applicable_endpoints(device, config, "power");
  std::vector<Session> sessions;
  for (const EndpointUse& u : uses) {
    sessions.push_back(open_session(out, ctx, *registry_, u, t, prng));
    t += prng.exponential(0.05);
  }

  // Occasional firmware/metadata download over plain HTTP (§6.2: "large
  // unencrypted file transmissions that contained firmware updates").
  if (prng.chance(0.12) && !uses.empty()) {
    EndpointUse fw = uses.front();
    fw.transport = Transport::kHttp;
    Session s = open_session(out, ctx, *registry_, fw, t, prng);
    proto::HttpRequest req;
    req.method = "GET";
    req.target = "/firmware/latest.bin";
    req.set_header("Host", s.endpoint->domain);
    emit_tcp_data(out, s, true, net::as_bytes(req.encode()), t);
    t += s.rtt;
    bool first = true;
    const int chunks = 6 + static_cast<int>(prng.uniform(12));
    for (int i = 0; i < chunks; ++i) {
      const std::vector<std::uint8_t> chunk =
          gzip_payload(prng, 1380, first);
      first = false;
      emit_tcp_data(out, s, false, chunk, t);
      t += 0.002;
    }
  }

  // NTP sync on boot.
  if (device.behavior.uses_ntp) {
    proto::NtpPacket ntp;
    ntp.mode = 3;
    ntp.transmit_timestamp = proto::unix_to_ntp(t);
    net::FrameEndpoints ep;
    ep.src_mac = ctx.dev_mac;
    ep.dst_mac = ctx.lab.gateway_mac;
    ep.src_ip = ctx.dev_ip;
    ep.dst_ip = registry_->find("pool.ntp.org")->address;
    ep.src_port = static_cast<std::uint16_t>(40000 + prng.uniform(10000));
    ep.dst_port = 123;
    emit(out, net::make_udp_packet(t, ep, ntp.encode()));
    t += 0.05;
    proto::NtpPacket reply;
    reply.mode = 4;
    reply.stratum = 2;
    reply.transmit_timestamp = proto::unix_to_ntp(t);
    emit(out, net::make_udp_packet(t, net::reverse(ep), reply.encode()));
  }

  // The "power" traffic signature itself.
  if (const ActivitySignature* power = find_activity(device, "power")) {
    std::vector<net::Packet> sig_traffic =
        activity_event(device, config, *power, t + 0.2, prng);
    out.insert(out.end(), sig_traffic.begin(), sig_traffic.end());
  }
  return out;
}

std::vector<net::Packet> TrafficSynthesizer::background(
    const DeviceSpec& device, const NetworkConfig& config, double t0,
    double t1, util::Prng& prng) const {
  std::vector<net::Packet> out;
  const Ctx ctx = make_ctx(device, config);
  const BehaviorProfile& b = device.behavior;
  if (b.endpoints.empty()) return out;

  double t = t0;
  std::vector<EndpointUse> usable = applicable_endpoints(device, config, "");
  if (usable.empty()) usable.push_back(b.endpoints.front());
  Session primary = open_session(out, ctx, *registry_, usable.front(), t,
                                 prng);
  std::optional<Session> plain;
  const double p_plain = effective_plaintext_fraction(device, config);
  if (p_plain > 0.0) {
    plain = open_session(out, ctx, *registry_, plain_endpoint_use(device), t,
                         prng);
  }

  double next_heartbeat = t + prng.exponential(b.heartbeat_period * 0.3);
  double next_ntp = t + prng.exponential(64.0);
  while (true) {
    const double next =
        b.uses_ntp ? std::min(next_heartbeat, next_ntp) : next_heartbeat;
    if (next >= t1) break;
    t = next;
    if (b.uses_ntp && next_ntp <= next_heartbeat) {
      next_ntp = t + 64.0 + prng.exponential(8.0);
      proto::NtpPacket ntp;
      ntp.mode = 3;
      ntp.transmit_timestamp = proto::unix_to_ntp(t);
      net::FrameEndpoints ep;
      ep.src_mac = ctx.dev_mac;
      ep.dst_mac = ctx.lab.gateway_mac;
      ep.src_ip = ctx.dev_ip;
      ep.dst_ip = registry_->find("pool.ntp.org")->address;
      ep.src_port = static_cast<std::uint16_t>(40000 + prng.uniform(10000));
      ep.dst_port = 123;
      emit(out, net::make_udp_packet(t, ep, ntp.encode()));
      proto::NtpPacket reply;
      reply.mode = 4;
      reply.stratum = 2;
      reply.transmit_timestamp = proto::unix_to_ntp(t + 0.04);
      emit(out, net::make_udp_packet(t + 0.04, net::reverse(ep),
                                     reply.encode()));
      continue;
    }
    next_heartbeat =
        t + b.heartbeat_period * std::exp(prng.normal() * 0.1);
    const bool use_plain = plain && prng.chance(p_plain);
    Session& s = use_plain ? *plain : primary;
    for (int i = 0; i < 2; ++i) {
      emit_app_packet(out, ctx, s, true,
                      90 + prng.uniform(80), t, prng, false);
      t += 0.01 + prng.exponential(0.01);
      emit_app_packet(out, ctx, s, false,
                      80 + prng.uniform(60), t, prng, false);
      t += 0.01;
    }
  }
  return out;
}

std::vector<net::Packet> TrafficSynthesizer::idle_period(
    const DeviceSpec& device, const NetworkConfig& config, double t0,
    double hours, util::Prng& prng) const {
  const double t1 = t0 + hours * 3600.0;
  util::Prng bg_prng = prng.fork("background");
  std::vector<net::Packet> out =
      background(device, config, t0, t1, bg_prng);

  const BehaviorProfile& b = device.behavior;

  // Wi-Fi reconnects replay the power-on handshake (paper: "devices that
  // frequently disconnect and reconnect to the Wi-Fi network").
  double reconnect_rate = b.reconnect_per_hour;
  if (config.lab == LabSite::kUk && b.reconnect_per_hour_uk >= 0.0) {
    reconnect_rate = b.reconnect_per_hour_uk;
  }
  if (config.vpn && b.reconnect_per_hour_vpn >= 0.0) {
    reconnect_rate = b.reconnect_per_hour_vpn;
  }
  util::Prng rc_prng = prng.fork("reconnect");
  const int reconnects = static_cast<int>(
      std::lround(reconnect_rate * hours *
                  std::exp(rc_prng.normal() * 0.2)));
  for (int i = 0; i < reconnects; ++i) {
    const double at = t0 + rc_prng.uniform01() * hours * 3600.0;
    util::Prng ev = rc_prng.fork("ev" + std::to_string(i));
    std::vector<net::Packet> burst = power_event(device, config, at, ev);
    out.insert(out.end(), burst.begin(), burst.end());
  }

  // Spurious activities (Table 11 idle detections).
  for (const SpuriousActivity& sp : b.spurious) {
    const ActivitySignature* sig = find_activity(device, sp.activity);
    if (sig == nullptr) continue;
    double rate = 0.0;
    if (config.lab == LabSite::kUs) {
      rate = config.vpn ? sp.per_hour_vpn_us : sp.per_hour_us;
    } else {
      rate = config.vpn ? sp.per_hour_vpn_uk : sp.per_hour_uk;
    }
    if (rate <= 0.0) continue;
    util::Prng sp_prng = prng.fork("spurious/" + sp.activity);
    const int events = static_cast<int>(std::lround(
        rate * hours * std::exp(sp_prng.normal() * 0.1)));
    for (int i = 0; i < events; ++i) {
      const double at = t0 + sp_prng.uniform01() * hours * 3600.0;
      util::Prng ev = sp_prng.fork("ev" + std::to_string(i));
      std::vector<net::Packet> burst =
          activity_event(device, config, *sig, at, ev);
      out.insert(out.end(), burst.begin(), burst.end());
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const net::Packet& a, const net::Packet& b2) {
                     return a.timestamp < b2.timestamp;
                   });
  return out;
}

std::vector<net::Packet> TrafficSynthesizer::lifecycle_event(
    const DeviceSpec& device, const NetworkConfig& config,
    LifecyclePhase phase, double start_ts, util::Prng& prng) const {
  std::vector<net::Packet> out;
  const Ctx ctx = make_ctx(device, config);
  double t = start_ts;

  switch (phase) {
    case LifecyclePhase::kNormal:
      break;  // steady-state traffic has its own synthesis paths

    case LifecyclePhase::kSetup: {
      // First boot: LAN chatter, then a plaintext provisioning POST that
      // registers the unit — MAC, UUID, owner identity — with the vendor
      // cloud. The binding phase is where the lifecycle studies see
      // exposure peak: the credentials travel before TLS trust is even
      // established.
      emit_boot_chatter(out, ctx, t, prng);
      Session s = open_session(out, ctx, *registry_,
                               plain_endpoint_use(device), t, prng);
      proto::HttpRequest req;
      req.method = "POST";
      req.target = "/api/v1/provision";
      req.set_header("Host", s.endpoint->domain);
      req.set_header("User-Agent", device.id + "/setup");
      req.body = "step=bind&mac=" + ctx.pii.mac + "&uuid=" + ctx.pii.uuid +
                 "&owner=" + util::url_encode(ctx.pii.owner_name) +
                 "&email=" + ctx.pii.email +
                 "&city=" + util::url_encode(ctx.pii.geo_city);
      emit_tcp_data(out, s, /*up=*/true, net::as_bytes(req.encode()), t);
      t += s.rtt;
      proto::HttpResponse res;
      res.set_header("Content-Type", "application/json");
      res.body = "{\"result\":\"bound\",\"unit\":\"" + ctx.pii.uuid + "\"}";
      emit_tcp_data(out, s, /*up=*/false, net::as_bytes(res.encode()), t);
      t += 0.1;
      // Cloud binding proper: contact every applicable endpoint over its
      // usual transport and exchange a registration burst.
      for (const EndpointUse& u : applicable_endpoints(device, config, "")) {
        Session cloud = open_session(out, ctx, *registry_, u, t, prng);
        for (int i = 0; i < 3; ++i) {
          emit_app_packet(out, ctx, cloud, true, 200 + prng.uniform(200), t,
                          prng, false);
          t += 0.02;
          emit_app_packet(out, ctx, cloud, false, 150 + prng.uniform(150), t,
                          prng, false);
          t += 0.02;
        }
        t += prng.exponential(0.05);
      }
      break;
    }

    case LifecyclePhase::kOta: {
      // Manifest check over the device's primary (usually TLS) endpoint,
      // then the full firmware image over plain HTTP — the paper's §6.2
      // observes exactly such large unencrypted firmware transfers; here
      // the update phase makes them a certainty, not a 12% boot chance.
      const std::vector<EndpointUse> uses =
          applicable_endpoints(device, config, "");
      if (!uses.empty()) {
        Session manifest = open_session(out, ctx, *registry_, uses.front(),
                                        t, prng);
        emit_app_packet(out, ctx, manifest, true, 180 + prng.uniform(60), t,
                        prng, false);
        t += manifest.rtt;
        emit_app_packet(out, ctx, manifest, false, 400 + prng.uniform(200),
                        t, prng, false);
        t += 0.2;

        EndpointUse fw = uses.front();
        fw.transport = Transport::kHttp;
        Session dl = open_session(out, ctx, *registry_, fw, t, prng);
        proto::HttpRequest req;
        req.method = "GET";
        req.target = "/firmware/update-" + device.id + ".bin";
        req.set_header("Host", dl.endpoint->domain);
        emit_tcp_data(out, dl, /*up=*/true, net::as_bytes(req.encode()), t);
        t += dl.rtt;
        bool first = true;
        const int chunks = 24 + static_cast<int>(prng.uniform(16));
        for (int i = 0; i < chunks; ++i) {
          const std::vector<std::uint8_t> chunk =
              gzip_payload(prng, 1380, first);
          first = false;
          emit_tcp_data(out, dl, /*up=*/false, chunk, t);
          t += 0.002;
        }
        // Install report back over the manifest session.
        t += 2.0;
        emit_app_packet(out, ctx, manifest, true, 120 + prng.uniform(40), t,
                        prng, false);
      }
      break;
    }

    case LifecyclePhase::kDeprovision: {
      // Unbind: a plaintext POST naming the unit one last time, then a
      // final telemetry flush to the cloud endpoints before the device
      // forgets its owner.
      Session s = open_session(out, ctx, *registry_,
                               plain_endpoint_use(device), t, prng);
      proto::HttpRequest req;
      req.method = "POST";
      req.target = "/api/v1/unbind";
      req.set_header("Host", s.endpoint->domain);
      req.set_header("User-Agent", device.id + "/reset");
      req.body = "step=unbind&uuid=" + ctx.pii.uuid + "&mac=" + ctx.pii.mac;
      emit_tcp_data(out, s, /*up=*/true, net::as_bytes(req.encode()), t);
      t += s.rtt;
      proto::HttpResponse res;
      res.set_header("Content-Type", "application/json");
      res.body = "{\"result\":\"unbound\"}";
      emit_tcp_data(out, s, /*up=*/false, net::as_bytes(res.encode()), t);
      t += 0.05;
      for (const EndpointUse& u : applicable_endpoints(device, config, "")) {
        Session cloud = open_session(out, ctx, *registry_, u, t, prng);
        // Upstream-heavy: buffered telemetry drains out, little comes back.
        for (int i = 0; i < 4; ++i) {
          emit_app_packet(out, ctx, cloud, true, 300 + prng.uniform(400), t,
                          prng, false);
          t += 0.01;
        }
        emit_app_packet(out, ctx, cloud, false, 80 + prng.uniform(40), t,
                        prng, false);
        t += prng.exponential(0.05);
      }
      break;
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const net::Packet& a, const net::Packet& b2) {
                     return a.timestamp < b2.timestamp;
                   });
  return out;
}

}  // namespace iotx::testbed
