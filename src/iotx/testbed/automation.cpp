#include "iotx/testbed/automation.hpp"

namespace iotx::testbed {

std::string_view interaction_method_name(InteractionMethod m) noexcept {
  switch (m) {
    case InteractionMethod::kLocalPhysical: return "local";
    case InteractionMethod::kLanApp: return "lan-app";
    case InteractionMethod::kWanApp: return "wan-app";
    case InteractionMethod::kVoiceAssistant: return "voice-assistant";
  }
  return "?";
}

std::string_view lifecycle_phase_name(LifecyclePhase p) noexcept {
  switch (p) {
    case LifecyclePhase::kNormal: return "normal";
    case LifecyclePhase::kSetup: return "setup";
    case LifecyclePhase::kOta: return "ota_update";
    case LifecyclePhase::kDeprovision: return "deprovision";
  }
  return "?";
}

std::vector<InteractionScript> scripts_for(const DeviceSpec& device) {
  std::vector<InteractionScript> scripts;
  for (const std::string& activity : device.activity_names()) {
    if (activity == "power") continue;  // power experiments are separate
    InteractionScript s;
    s.activity = activity;
    if (activity.rfind("android_lan_", 0) == 0) {
      s.method = InteractionMethod::kLanApp;
      s.automated = true;
    } else if (activity.rfind("android_", 0) == 0) {
      s.method = InteractionMethod::kWanApp;
      s.automated = true;
    } else if (activity.rfind("voice_", 0) == 0) {
      s.method = InteractionMethod::kVoiceAssistant;
      s.automated = true;
      s.voice_text = "Alexa, turn on the " + device.name;
    } else if (activity == "local_voice") {
      // Played from the loudspeaker by the cloud voice synthesizer.
      s.method = InteractionMethod::kLocalPhysical;
      s.automated = true;
      s.voice_text = "What time is it?";
    } else {
      s.method = InteractionMethod::kLocalPhysical;
      s.automated = false;  // manual (heating elements, movement, ...)
    }
    scripts.push_back(std::move(s));
  }
  return scripts;
}

std::vector<InteractionScript> lifecycle_scripts_for(const DeviceSpec& device) {
  (void)device;  // every catalog device supports the same three phases
  std::vector<InteractionScript> scripts;
  for (const LifecyclePhase phase :
       {LifecyclePhase::kSetup, LifecyclePhase::kOta,
        LifecyclePhase::kDeprovision}) {
    InteractionScript s;
    s.activity = std::string(lifecycle_phase_name(phase));
    s.method = InteractionMethod::kWanApp;  // driven via the companion app
    s.automated = true;
    s.phase = phase;
    scripts.push_back(std::move(s));
  }
  return scripts;
}

}  // namespace iotx::testbed
