// User-study simulator: the substitute for the six-month IRB-approved
// uncontrolled experiments in the US lab (paper §3.3).
//
// Models the described usage: 20-30 lab accesses per day; fridge->microwave
// and washer->dryer interaction chains; always-on cameras, doorbells and
// motion sensors passively triggered by presence; Alexa false wake-ups
// during conversations (§7.3). Produces unlabeled per-device captures plus
// the ground-truth event log the paper reconstructs from user reports and
// device logs.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "iotx/testbed/synth.hpp"

namespace iotx::testbed {

/// One thing that actually happened in the lab.
struct GroundTruthEvent {
  double timestamp = 0.0;
  std::string device_id;
  std::string activity;
  /// False for passive/unintended triggers (doorbell recordings on
  /// movement, Alexa false wakes) — the §7.3 "unexpected behavior" cases.
  bool user_intended = true;
};

struct UserStudyResult {
  double hours = 0.0;
  /// Unlabeled capture per device (as the per-MAC tcpdump files would be).
  std::map<std::string, std::vector<net::Packet>> captures;
  /// What actually happened (for validating unexpected-behavior findings).
  std::vector<GroundTruthEvent> events;
};

struct UserStudyParams {
  int days = 3;                     ///< paper: ~180; scaled default
  double accesses_per_day_min = 20; ///< §3.3
  double accesses_per_day_max = 30;
  double alexa_false_wake_prob = 0.08;  ///< per access near an Echo
};

class UserStudySimulator {
 public:
  explicit UserStudySimulator(
      const EndpointRegistry& registry = EndpointRegistry::builtin())
      : synth_(registry) {}

  /// Simulates the study on the US lab devices. Deterministic in
  /// (params, seed_key).
  UserStudyResult simulate(const UserStudyParams& params,
                           std::string_view seed_key = "user-study") const;

 private:
  TrafficSynthesizer synth_;
};

}  // namespace iotx::testbed
