// The device catalog: the 81 deployed device units (55 models; 46 US, 35
// UK, 26 common) of paper Table 1, with categories, manufacturers,
// supported interactions, and behavior profiles.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "iotx/net/address.hpp"
#include "iotx/testbed/behavior.hpp"

namespace iotx::testbed {

/// Device categories from Table 1.
enum class Category {
  kCamera,
  kSmartHub,
  kHomeAutomation,
  kTv,
  kAudio,
  kAppliance,
};

std::string_view category_name(Category c) noexcept;
inline constexpr int kCategoryCount = 6;

/// Which testbed(s) a device model is deployed in.
enum class LabPresence { kUsOnly, kUkOnly, kBoth };

struct DeviceSpec {
  std::string id;    ///< stable snake_case id ("echo_dot")
  std::string name;  ///< display name ("Echo Dot")
  Category category = Category::kHomeAutomation;
  LabPresence presence = LabPresence::kBoth;
  std::string manufacturer;
  /// Organizations counted as first parties for this device (manufacturer
  /// plus related companies, e.g. Ring -> {"Ring", "Amazon"}).
  std::vector<std::string> first_party_orgs;
  BehaviorProfile behavior;

  bool in_us() const noexcept { return presence != LabPresence::kUkOnly; }
  bool in_uk() const noexcept { return presence != LabPresence::kUsOnly; }
  bool common() const noexcept { return presence == LabPresence::kBoth; }

  /// Names of all activities in the behavior profile.
  std::vector<std::string> activity_names() const;
};

/// The full catalog (built once; order is stable).
const std::vector<DeviceSpec>& device_catalog();

/// Lookup by id; nullptr when unknown.
const DeviceSpec* find_device(std::string_view id);

/// Activity-group mapping for Table 10: "Power", "Voice", "Video",
/// "On/Off", "Movement" or "Others".
std::string_view activity_group(std::string_view activity) noexcept;

/// Deterministic MAC address for a device unit in a lab.
net::MacAddress device_mac(const DeviceSpec& device, bool us_lab);

/// Deterministic private IP for a device unit in a lab: 10.42.x.y for
/// the builtin catalog, an id-hashed 10.43.x.y for synthetic fleet
/// devices (catalog_gen.hpp).
net::Ipv4Address device_ip(const DeviceSpec& device, bool us_lab);

}  // namespace iotx::testbed
