#include "iotx/testbed/catalog.hpp"

#include <unordered_map>

#include "iotx/testbed/endpoints.hpp"
#include "iotx/util/prng.hpp"
#include "iotx/util/strings.hpp"

namespace iotx::testbed {

std::string_view category_name(Category c) noexcept {
  switch (c) {
    case Category::kCamera: return "Cameras";
    case Category::kSmartHub: return "Smart Hubs";
    case Category::kHomeAutomation: return "Home Automation";
    case Category::kTv: return "TV";
    case Category::kAudio: return "Audio";
    case Category::kAppliance: return "Appliances";
  }
  return "?";
}

std::vector<std::string> DeviceSpec::activity_names() const {
  std::vector<std::string> names;
  names.reserve(behavior.activities.size());
  for (const ActivitySignature& a : behavior.activities) {
    names.push_back(a.name);
  }
  return names;
}

std::string_view activity_group(std::string_view activity) noexcept {
  if (activity == "power") return "Power";
  // On/off checks precede voice so "voice_onoff" (toggling a bulb through
  // the assistant) groups with the on/off interactions as in the paper.
  if (util::icontains(activity, "onoff") || util::icontains(activity, "_on") ||
      util::icontains(activity, "_off") ||
      util::icontains(activity, "start") ||
      util::icontains(activity, "stop")) {
    return "On/Off";
  }
  if (util::icontains(activity, "voice")) return "Voice";
  if (util::icontains(activity, "watch") ||
      util::icontains(activity, "recording") ||
      util::icontains(activity, "photo")) {
    return "Video";
  }
  if (util::icontains(activity, "move")) return "Movement";
  return "Others";
}

namespace {

using T = Transport;
using P = PayloadStyle;

EndpointUse use(std::string domain, T transport = T::kTls,
                P style = P::kEncryptedRandom, double weight = 1.0) {
  EndpointUse u;
  u.domain = std::move(domain);
  u.transport = transport;
  u.style = style;
  u.weight = weight;
  return u;
}

EndpointUse power_use(std::string domain, T transport = T::kTls,
                      P style = P::kEncryptedRandom) {
  EndpointUse u = use(std::move(domain), transport, style, 0.3);
  u.power_only = true;
  return u;
}

ActivitySignature sig(std::string name, int up, int down, double mu_up,
                      double mu_down, double gap, double duration,
                      double noise, bool media = false) {
  ActivitySignature s;
  s.name = std::move(name);
  s.packets_up = up;
  s.packets_down = down;
  s.size_up_mu = mu_up;
  s.size_down_mu = mu_down;
  s.gap_mean = gap;
  s.duration = duration;
  s.noise = noise;
  s.media_upload = media;
  return s;
}

// ---- Per-category activity sets -------------------------------------
// The numeric offsets between activities of one device are what the
// random-forest features pick up; `noise` smears repetitions and controls
// cross-validated F1 (paper Tables 9/10 shapes).

std::vector<ActivitySignature> camera_activities(double noise,
                                                 bool doorbell) {
  std::vector<ActivitySignature> a = {
      sig("power", 85, 70, 5.4, 5.6, 0.045, 24.0, noise * 0.5),
      sig("local_move", 170, 35, 6.8, 5.0, 0.018, 12.0, noise, true),
      sig("android_wan_watch", 290, 65, 7.2, 5.2, 0.010, 20.0, noise, true),
      sig("android_wan_recording", 340, 45, 7.0, 5.1, 0.042, 30.0, noise,
          true),
      sig("android_wan_photo", 42, 22, 6.4, 5.0, 0.055, 5.0, noise),
  };
  if (doorbell) {
    a.push_back(sig("local_ring", 110, 90, 5.9, 5.5, 0.038, 9.0, noise));
  }
  return a;
}

std::vector<ActivitySignature> hub_activities(double noise, bool sensor) {
  std::vector<ActivitySignature> a = {
      sig("power", 70, 60, 5.3, 5.5, 0.050, 20.0, noise * 0.5),
      sig("android_lan_onoff", 24, 21, 5.0, 5.0, 0.060, 4.0, noise),
      sig("android_wan_onoff", 36, 31, 5.2, 5.2, 0.052, 5.0, noise),
      sig("voice_onoff", 30, 26, 5.1, 5.3, 0.055, 6.0, noise),
  };
  if (sensor) {
    a.push_back(sig("local_move", 30, 16, 5.3, 4.9, 0.045, 4.5, noise));
  }
  return a;
}

std::vector<ActivitySignature> automation_activities(double noise,
                                                     bool thermostat,
                                                     bool sensor) {
  std::vector<ActivitySignature> a = {
      sig("power", 60, 55, 5.2, 5.4, 0.055, 18.0, noise * 0.5),
      sig("android_lan_on", 20, 18, 5.0, 5.0, 0.060, 3.5, noise),
      sig("android_lan_off", 19, 17, 5.0, 5.0, 0.062, 3.5, noise),
      sig("android_wan_on", 30, 27, 5.15, 5.15, 0.052, 4.5, noise),
      sig("android_wan_off", 29, 26, 5.15, 5.15, 0.054, 4.5, noise),
      sig("voice_onoff", 26, 24, 5.1, 5.2, 0.056, 5.5, noise),
  };
  if (thermostat) {
    a.push_back(sig("android_set_temp", 34, 30, 5.3, 5.3, 0.05, 5.0, noise));
  }
  if (sensor) {
    a.push_back(sig("local_move", 28, 14, 5.25, 4.9, 0.045, 4.0, noise));
  }
  return a;
}

std::vector<ActivitySignature> tv_activities(double noise) {
  return {
      sig("power", 170, 230, 5.8, 6.9, 0.030, 40.0, noise * 0.5),
      sig("local_menu", 55, 140, 5.1, 6.7, 0.020, 10.0, noise),
      sig("android_lan_remote", 44, 36, 5.4, 5.3, 0.055, 6.0, noise),
      sig("local_voice", 90, 42, 6.2, 5.3, 0.032, 7.0, noise),
      sig("local_volume", 14, 10, 4.8, 4.7, 0.080, 2.5, noise),
      sig("local_off", 26, 14, 5.05, 5.0, 0.048, 3.5, noise),
  };
}

std::vector<ActivitySignature> audio_activities(double noise) {
  // Power and voice deliberately overlap (both are chatty handshakes with
  // the assistant cloud): per the paper only a minority of audio devices
  // end up fully inferrable, even though the distinct "volume" blip is.
  return {
      sig("power", 95, 100, 5.7, 6.0, 0.034, 12.0, noise),
      sig("local_voice", 92, 110, 6.0, 6.2, 0.030, 9.0, noise),
      sig("local_volume", 14, 10, 4.9, 4.8, 0.070, 2.5, noise * 0.6),
  };
}

std::vector<ActivitySignature> appliance_activities(double noise,
                                                    bool separable = false) {
  if (separable) {
    // Start emits a telemetry burst, stop a short acknowledgement: the
    // devices the paper finds inferrable among appliances look like this.
    return {
        sig("power", 55, 48, 5.2, 5.4, 0.060, 16.0, noise * 0.5),
        sig("local_start", 42, 30, 5.65, 5.4, 0.038, 6.0, noise),
        sig("local_stop", 12, 10, 4.8, 4.8, 0.075, 3.0, noise),
    };
  }
  return {
      sig("power", 55, 48, 5.2, 5.4, 0.060, 16.0, noise * 0.5),
      sig("local_start", 26, 22, 5.1, 5.1, 0.055, 4.5, noise),
      sig("local_stop", 24, 20, 5.05, 5.05, 0.058, 4.0, noise),
  };
}

// ---- Device construction helpers -------------------------------------

struct Flags {
  bool power_only = false, vpn_only = false, direct_only = false;
  bool uk_only = false, us_only = false;
};

/// Marks an endpoint as not contacted during the power-on sequence —
/// interaction-time infrastructure (upload buckets, telemetry, content
/// CDNs). This is what makes control experiments reach roughly twice as
/// many destinations as power experiments (Table 2).
EndpointUse off_power(EndpointUse u) {
  u.not_on_power = true;
  return u;
}

/// Restricts an endpoint to specific activities (plus power when listed).
EndpointUse only(EndpointUse u, std::vector<std::string> activities) {
  u.only_activities = std::move(activities);
  return u;
}

EndpointUse flagged(EndpointUse u, Flags f) {
  u.power_only = f.power_only;
  u.vpn_only = f.vpn_only;
  u.direct_only = f.direct_only;
  u.uk_lab_only = f.uk_only;
  u.us_lab_only = f.us_only;
  return u;
}

DeviceSpec device(std::string id, std::string name, Category cat,
                  LabPresence presence, std::string manufacturer,
                  std::vector<std::string> extra_first_parties = {}) {
  DeviceSpec d;
  d.id = std::move(id);
  d.name = std::move(name);
  d.category = cat;
  d.presence = presence;
  d.manufacturer = std::move(manufacturer);
  d.first_party_orgs.push_back(d.manufacturer);
  for (auto& org : extra_first_parties) {
    d.first_party_orgs.push_back(std::move(org));
  }
  return d;
}

std::vector<DeviceSpec> build_catalog() {
  std::vector<DeviceSpec> devices;
  int next_ec2 = 0;
  const auto ec2 = [&next_ec2]() {
    return ec2_domain(next_ec2++ % EndpointRegistry::kEc2HostCount);
  };

  // =================== Cameras (15 models) =========================
  {
    DeviceSpec d = device("amazon_cloudcam", "Amazon Cloudcam",
                          Category::kCamera, LabPresence::kUsOnly, "Amazon");
    d.behavior.activities = camera_activities(0.08, false);
    d.behavior.distinctiveness = 1.0;
    d.behavior.plaintext_fraction = 0.004;
    d.behavior.endpoints = {use("avs-alexa-na.amazon.com"), use(ec2()),
                            off_power(use(ec2())),
                            off_power(use("kinesis.us-east-1.amazonaws.com")),
                            only(use(cloudfront_domain(3), T::kTls,
                                     P::kEncryptedRandom, 0.8),
                                 {"android_wan_watch",
                                  "android_wan_recording"})};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("amcrest_cam", "Amcrest Cam", Category::kCamera,
                          LabPresence::kUsOnly, "Amcrest");
    d.behavior.activities = camera_activities(0.09, false);
    d.behavior.distinctiveness = 0.95;
    d.behavior.plaintext_fraction = 0.03;
    d.behavior.endpoints = {use(ec2()),
                            use("api.amcrestcloud.com", T::kCustomTcp,
                                P::kMixedProprietary),
                            use(ec2()),
                            use("pool.ntp.org", T::kCustomUdp, P::kPlainJson,
                                0.05)};
    d.behavior.uses_ntp = true;
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("blink_cam", "Blink Cam", Category::kCamera,
                          LabPresence::kBoth, "Blink", {"Amazon"});
    d.behavior.activities = camera_activities(0.08, false);
    d.behavior.distinctiveness = 1.0;
    d.behavior.plaintext_fraction = 0.008;
    d.behavior.endpoints = {use("api.immedia-semi.com"), use(ec2()),
                            off_power(use("s3.amazonaws.com", T::kTls,
                                          P::kEncryptedRandom, 0.4))};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("blink_hub", "Blink Hub", Category::kCamera,
                          LabPresence::kUsOnly, "Blink", {"Amazon"});
    d.behavior.activities = camera_activities(0.42, false);
    d.behavior.distinctiveness = 0.25;
    d.behavior.plaintext_fraction = 0.01;
    d.behavior.endpoints = {use("api.immedia-semi.com"), use(ec2())};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("dlink_cam", "D-Link Cam", Category::kCamera,
                          LabPresence::kUsOnly, "D-Link");
    d.behavior.activities = camera_activities(0.10, false);
    d.behavior.distinctiveness = 0.9;
    d.behavior.plaintext_fraction = 0.05;
    d.behavior.endpoints = {
        use("mp-us-cloud.dlink.com", T::kCustomTcp, P::kMixedProprietary),
        use("signal.dlink.com", T::kTls), use(ec2())};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("lefun_cam", "Lefun Cam", Category::kCamera,
                          LabPresence::kUkOnly, "Lefun");
    d.behavior.activities = camera_activities(0.45, false);
    d.behavior.distinctiveness = 0.2;
    d.behavior.plaintext_fraction = 0.08;
    d.behavior.endpoints = {
        use("p2p.lefuniot.com", T::kCustomUdp, P::kMixedProprietary),
        use("cn-north.aliyuncs.com"),
        power_use("ntp.nuri.net", T::kCustomUdp, P::kPlainJson)};
    d.behavior.uses_ntp = true;
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("luohe_cam", "Luohe Cam", Category::kCamera,
                          LabPresence::kUsOnly, "Luohe");
    d.behavior.activities = camera_activities(0.42, false);
    d.behavior.distinctiveness = 0.2;
    d.behavior.plaintext_fraction = 0.09;
    d.behavior.endpoints = {
        use("cloud.luohe-tech.cn", T::kCustomUdp, P::kMixedProprietary),
        use("gw.huaxiay.com"),
        power_use("a2.tuyaus.com", T::kHttp, P::kPlainJson)};
    d.behavior.uses_ntp = true;
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("microseven_cam", "Microseven Cam",
                          Category::kCamera, LabPresence::kUsOnly,
                          "Microseven");
    d.behavior.activities = camera_activities(0.09, false);
    d.behavior.distinctiveness = 1.0;
    // The paper's standout plaintext camera: streams RTSP media unencrypted.
    d.behavior.plaintext_fraction = 0.36;
    d.behavior.endpoints = {
        use("www.microseven.com", T::kRtspMedia, P::kMediaH264, 0.9),
        use("s3.amazonaws.com", T::kTls, P::kEncryptedRandom, 0.4),
        use("pool.ntp.org", T::kCustomUdp, P::kPlainJson, 0.05)};
    d.behavior.uses_ntp = true;
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("ring_doorbell", "Ring Doorbell", Category::kCamera,
                          LabPresence::kBoth, "Ring", {"Amazon"});
    d.behavior.activities = camera_activities(0.06, true);
    d.behavior.distinctiveness = 1.0;
    d.behavior.plaintext_fraction = 0.005;
    d.behavior.endpoints = {use("api.ring.com"), use("updates.ring.com"),
                            use(ec2()),
                            off_power(use("kinesis.us-east-1.amazonaws.com",
                                          T::kTls, P::kEncryptedRandom,
                                          0.5))};
    d.behavior.reconnect_per_hour = 0.05;
    // §7.3: records video on every movement, undisclosed.
    d.behavior.spurious = {{"local_move", 0.0, 0.0, 0.1, 0.1}};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("wansview_cam", "Wansview Cam", Category::kCamera,
                          LabPresence::kBoth, "Wansview");
    d.behavior.activities = camera_activities(0.08, false);
    d.behavior.distinctiveness = 1.0;
    d.behavior.plaintext_fraction = 0.04;
    d.behavior.endpoints = {
        use("p2p.wansview.com", T::kCustomUdp, P::kMixedProprietary),
        use(ec2()), off_power(use(ec2())), off_power(use(ec2())),
        use("cn-north.aliyuncs.com", T::kTls, P::kEncryptedRandom, 0.4),
        off_power(use("oss-cn-beijing.aliyuncs.com", T::kTls,
                      P::kEncryptedRandom, 0.3)),
        use("api.ksyun.com", T::kTls, P::kEncryptedRandom, 0.3),
        off_power(use("cdn.21vianet.com", T::kTls, P::kEncryptedRandom,
                      0.3)),
        off_power(use("gw.huaxiay.com", T::kTls, P::kEncryptedRandom, 0.3)),
        flagged(use("dyn-cpe-24-96-81-7.wowinc.com", T::kCustomUdp,
                    P::kMixedProprietary, 0.4),
                {.uk_only = true}),
        flagged(use("node1.hvvc.us", T::kCustomTcp, P::kMixedProprietary,
                    0.3),
                {.direct_only = true}),
        power_use("ntp.nuri.net", T::kCustomUdp, P::kPlainJson)};
    // Table 11: frequent idle movement detections; on VPN the camera
    // instead reconnects repeatedly.
    d.behavior.spurious = {{"local_move", 4.1, 4.2, 0.04, 0.0}};
    d.behavior.reconnect_per_hour = 0.14;
    d.behavior.reconnect_per_hour_vpn = 5.6;
    d.behavior.pii_leaks = {"device_id", "geo_city"};
    d.behavior.uses_ntp = true;
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("wimaker_spy_camera", "WiMaker Spy Camera",
                          Category::kCamera, LabPresence::kUkOnly, "WiMaker");
    d.behavior.activities = camera_activities(0.40, false);
    d.behavior.distinctiveness = 0.2;
    d.behavior.plaintext_fraction = 0.30;
    d.behavior.endpoints = {
        use("relay.wimaker.cn", T::kRtspMedia, P::kMediaJpeg, 1.5),
        use("cn-north.aliyuncs.com", T::kTls, P::kEncryptedRandom, 0.3)};
    d.behavior.uses_ntp = true;
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("xiaomi_cam", "Xiaomi Cam", Category::kCamera,
                          LabPresence::kBoth, "Xiaomi");
    d.behavior.activities = camera_activities(0.09, false);
    d.behavior.distinctiveness = 0.95;
    d.behavior.plaintext_fraction = 0.02;
    d.behavior.endpoints = {use("api.io.mi.com"),
                            off_power(use("api.ksyun.com", T::kTls,
                                          P::kEncryptedRandom, 0.4)),
                            use(ec2())};
    // §6.2: on motion, sends MAC + timestamp (and video) in plaintext to
    // an EC2 domain.
    d.behavior.pii_leaks = {"mac", "motion_ts"};
    d.behavior.pii_domain = ec2_domain(0);
    d.behavior.pii_on_motion = true;
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("yi_cam", "Yi Cam", Category::kCamera,
                          LabPresence::kBoth, "Yi");
    d.behavior.activities = camera_activities(0.09, false);
    d.behavior.distinctiveness = 0.95;
    d.behavior.plaintext_fraction = 0.005;
    d.behavior.endpoints = {use("api.xiaoyi.com"),
                            off_power(use("cn-north.aliyuncs.com", T::kTls,
                                          P::kEncryptedRandom, 0.5)),
                            use(ec2())};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("zmodo_doorbell", "Zmodo Doorbell",
                          Category::kCamera, LabPresence::kUsOnly, "Zmodo");
    d.behavior.activities = camera_activities(0.07, true);
    d.behavior.distinctiveness = 1.0;
    d.behavior.plaintext_fraction = 0.28;
    d.behavior.endpoints = {
        use("device.zmodo.com", T::kCustomTcp, P::kMixedProprietary),
        use("gw.huaxiay.com", T::kTls, P::kEncryptedRandom, 0.3), use(ec2())};
    // Table 11: 1845 idle "local_move" instances in ~28 h (~66/hour), and
    // §7.3: uploads snapshots on power-on and on any movement.
    d.behavior.spurious = {{"local_move", 66.0, 0.0, 0.0, 0.0}};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("bosiwo_cam", "Bosiwo Cam", Category::kCamera,
                          LabPresence::kUkOnly, "Bosiwo");
    d.behavior.activities = camera_activities(0.30, false);
    d.behavior.distinctiveness = 0.5;
    d.behavior.plaintext_fraction = 0.12;
    d.behavior.endpoints = {
        use("cloud.bosiwo.cn", T::kCustomUdp, P::kMixedProprietary),
        use("oss-cn-beijing.aliyuncs.com", T::kTls, P::kEncryptedRandom,
            0.4)};
    d.behavior.uses_ntp = true;
    devices.push_back(std::move(d));
  }

  // =================== Smart Hubs (7 models) =======================
  {
    DeviceSpec d = device("insteon_hub", "Insteon", Category::kSmartHub,
                          LabPresence::kBoth, "Insteon");
    d.behavior.activities = hub_activities(0.40, true);
    d.behavior.distinctiveness = 0.25;
    d.behavior.plaintext_fraction = 0.04;
    d.behavior.endpoints = {use("connect.insteon.com", T::kCustomTcp,
                                P::kMixedProprietary),
                            use(ec2())};
    // §6.2: sends its MAC in plaintext to an EC2 domain — UK lab only.
    d.behavior.pii_leaks = {"mac"};
    d.behavior.pii_domain = ec2_domain(1);
    d.behavior.pii_uk_only = true;
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("lightify_hub", "Lightify", Category::kSmartHub,
                          LabPresence::kBoth, "Osram");
    d.behavior.activities = hub_activities(0.42, false);
    d.behavior.distinctiveness = 0.25;
    d.behavior.plaintext_fraction = 0.03;
    d.behavior.endpoints = {use("api.lightify.com"), use(ec2())};
    d.behavior.reconnect_per_hour_uk = 0.06;
    d.behavior.reconnect_per_hour_vpn = 0.15;
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("philips_hue", "Philips Hue", Category::kSmartHub,
                          LabPresence::kBoth, "Philips");
    d.behavior.activities = hub_activities(0.38, false);
    d.behavior.distinctiveness = 0.25;
    d.behavior.plaintext_fraction = 0.02;
    d.behavior.endpoints = {use("ws.meethue.com", T::kCustomTcp,
                                P::kMixedProprietary),
                            use(ec2(), T::kTls, P::kEncryptedRandom, 0.3),
                            use("time.google.com", T::kCustomUdp,
                                P::kPlainJson, 0.05)};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("sengled_hub", "Sengled", Category::kSmartHub,
                          LabPresence::kBoth, "Sengled");
    d.behavior.activities = hub_activities(0.44, false);
    d.behavior.distinctiveness = 0.25;
    d.behavior.plaintext_fraction = 0.05;
    d.behavior.endpoints = {use("us.cloud.sengled.com", T::kCustomTcp,
                                P::kMixedProprietary),
                            use(ec2())};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("smartthings_hub", "Smartthings Hub",
                          Category::kSmartHub, LabPresence::kBoth, "Samsung");
    d.behavior.activities = {
        sig("power", 70, 60, 5.3, 5.5, 0.050, 20.0, 0.05),
        sig("android_lan_onoff", 16, 13, 4.9, 4.9, 0.070, 3.5, 0.10),
        sig("android_wan_onoff", 46, 40, 5.45, 5.4, 0.042, 5.5, 0.10),
        sig("voice_onoff", 28, 24, 5.15, 5.25, 0.058, 7.5, 0.10),
        sig("local_move", 34, 12, 5.35, 4.85, 0.036, 4.0, 0.10),
    };
    d.behavior.distinctiveness = 1.0;
    d.behavior.plaintext_fraction = 0.067;
    d.behavior.plaintext_fraction_uk = 0.166;
    d.behavior.plaintext_fraction_vpn = 0.052;
    d.behavior.endpoints = {use("api.smartthings.com"), use(ec2()),
                            off_power(use("e1234.dsce9.akamaiedge.net",
                                          T::kTls, P::kEncryptedRandom,
                                          0.3))};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("wink_hub", "Wink 2", Category::kSmartHub,
                          LabPresence::kUsOnly, "Wink");
    d.behavior.activities = hub_activities(0.40, false);
    d.behavior.distinctiveness = 0.25;
    d.behavior.plaintext_fraction = 0.03;
    d.behavior.endpoints = {use("api.wink.com"), use(ec2())};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("xiaomi_hub", "Xiaomi Hub", Category::kSmartHub,
                          LabPresence::kUkOnly, "Xiaomi");
    d.behavior.activities = hub_activities(0.41, true);
    d.behavior.distinctiveness = 0.25;
    d.behavior.plaintext_fraction = 0.05;
    d.behavior.endpoints = {use("ot.io.mi.com", T::kCustomUdp,
                                P::kMixedProprietary),
                            use("api.ksyun.com", T::kTls,
                                P::kEncryptedRandom, 0.4),
                            use("cdn.21vianet.com", T::kTls,
                                P::kEncryptedRandom, 0.3)};
    devices.push_back(std::move(d));
  }

  // =================== Home Automation (10 models) =================
  {
    DeviceSpec d = device("dlink_mov_sensor", "D-Link Mov Sensor",
                          Category::kHomeAutomation, LabPresence::kUsOnly,
                          "D-Link");
    d.behavior.activities = automation_activities(0.40, false, true);
    d.behavior.distinctiveness = 0.25;
    d.behavior.plaintext_fraction = 0.149;
    d.behavior.plaintext_fraction_vpn = 0.246;
    d.behavior.endpoints = {use("signal.dlink.com", T::kHttp, P::kPlainJson,
                                0.12),
                            use("mp-us-cloud.dlink.com", T::kCustomTcp,
                                P::kMixedProprietary)};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("flux_bulb", "Flux Bulb", Category::kHomeAutomation,
                          LabPresence::kUsOnly, "Flux");
    d.behavior.activities = automation_activities(0.45, false, false);
    d.behavior.distinctiveness = 0.25;
    d.behavior.plaintext_fraction = 0.07;
    d.behavior.endpoints = {use("wifi.fluxsmart.com", T::kCustomTcp,
                                P::kMixedProprietary),
                            off_power(use(ec2(), T::kTls,
                                          P::kEncryptedRandom, 0.3)),
                            power_use("a2.tuyaus.com", T::kHttp,
                                      P::kPlainJson)};
    d.behavior.uses_ntp = true;
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("honeywell_tstat", "Honeywell T-stat",
                          Category::kHomeAutomation, LabPresence::kUsOnly,
                          "Honeywell");
    d.behavior.activities = automation_activities(0.40, true, false);
    d.behavior.distinctiveness = 0.25;
    d.behavior.plaintext_fraction = 0.04;
    d.behavior.endpoints = {use("tcp.connman.net", T::kCustomTcp,
                                P::kMixedProprietary),
                            use("api.honeywell.com"), use(ec2())};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("magichome_strip", "Magichome Strip",
                          Category::kHomeAutomation, LabPresence::kBoth,
                          "Magichome");
    d.behavior.activities = automation_activities(0.42, false, false);
    d.behavior.distinctiveness = 0.25;
    d.behavior.plaintext_fraction = 0.08;
    d.behavior.endpoints = {use("api.magichue.net", T::kHttp, P::kPlainJson,
                                0.06),
                            use("oss-cn-beijing.aliyuncs.com", T::kTls,
                                P::kEncryptedRandom, 0.5),
                            off_power(use("s3.amazonaws.com", T::kTls,
                                          P::kEncryptedRandom, 0.2)),
                            power_use("a2.tuyaus.com", T::kHttp,
                                      P::kPlainJson)};
    // §6.2: sends its MAC in plaintext to an Alibaba-hosted domain in
    // both labs.
    d.behavior.pii_leaks = {"mac"};
    d.behavior.pii_domain = "api.magichue.net";
    d.behavior.uses_ntp = true;
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("nest_tstat", "Nest T-stat",
                          Category::kHomeAutomation, LabPresence::kBoth,
                          "Google", {"Nest"});
    d.behavior.activities = automation_activities(0.35, true, false);
    d.behavior.distinctiveness = 0.45;
    d.behavior.plaintext_fraction = 0.116;
    d.behavior.plaintext_fraction_uk = 0.158;
    d.behavior.plaintext_fraction_vpn = 0.11;
    d.behavior.endpoints = {use("home.nest.com"),
                            off_power(use("storage.googleapis.com", T::kTls,
                                          P::kEncryptedRandom, 0.4)),
                            use("clients3.google.com", T::kHttp,
                                P::kPlainJson, 0.08)};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("philips_bulb", "Philips Bulb",
                          Category::kHomeAutomation, LabPresence::kUkOnly,
                          "Philips");
    d.behavior.activities = automation_activities(0.44, false, false);
    d.behavior.distinctiveness = 0.25;
    d.behavior.plaintext_fraction = 0.03;
    d.behavior.endpoints = {use("ws.meethue.com", T::kCustomTcp,
                                P::kMixedProprietary),
                            use(ec2(), T::kTls, P::kEncryptedRandom, 0.3)};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("tplink_bulb", "TP-Link Bulb",
                          Category::kHomeAutomation, LabPresence::kBoth,
                          "TP-Link");
    d.behavior.activities = automation_activities(0.40, false, false);
    d.behavior.distinctiveness = 0.25;
    d.behavior.plaintext_fraction = 0.131;
    d.behavior.plaintext_fraction_uk = 0.128;
    d.behavior.plaintext_fraction_vpn = 0.172;
    d.behavior.endpoints = {use("use1-api.tplinkra.com", T::kCustomTcp,
                                P::kMixedProprietary),
                            flagged(use("api2.branch.io", T::kTls,
                                        P::kEncryptedRandom, 0.2),
                                    {.power_only = true, .direct_only = true}),
                            use(ec2())};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("tplink_plug", "TP-Link Smartplug",
                          Category::kHomeAutomation, LabPresence::kBoth,
                          "TP-Link");
    d.behavior.activities = automation_activities(0.40, false, false);
    d.behavior.distinctiveness = 0.25;
    d.behavior.plaintext_fraction = 0.186;
    d.behavior.plaintext_fraction_uk = 0.087;
    d.behavior.plaintext_fraction_vpn = 0.234;
    d.behavior.endpoints = {use("use1-api.tplinkra.com", T::kCustomTcp,
                                P::kMixedProprietary),
                            use("euw1-api.tplinkra.com", T::kTls,
                                P::kEncryptedRandom, 0.2),
                            flagged(use("api2.branch.io", T::kTls,
                                        P::kEncryptedRandom, 0.2),
                                    {.power_only = true, .direct_only = true}),
                            use(ec2())};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("wemo_plug", "WeMo Plug", Category::kHomeAutomation,
                          LabPresence::kBoth, "Belkin");
    d.behavior.activities = automation_activities(0.42, false, false);
    d.behavior.distinctiveness = 0.25;
    d.behavior.plaintext_fraction = 0.06;
    d.behavior.endpoints = {use("heartbeat.xwemo.com", T::kHttp,
                                P::kPlainJson, 0.08),
                            use("nat.xbcs.net", T::kCustomTcp,
                                P::kMixedProprietary)};
    d.behavior.uses_ntp = true;
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("xiaomi_strip", "Xiaomi Strip",
                          Category::kHomeAutomation, LabPresence::kUkOnly,
                          "Xiaomi");
    d.behavior.activities = automation_activities(0.43, false, false);
    d.behavior.distinctiveness = 0.25;
    d.behavior.plaintext_fraction = 0.05;
    d.behavior.endpoints = {use("ot.io.mi.com", T::kCustomUdp,
                                P::kMixedProprietary),
                            use("cdn.21vianet.com", T::kTls,
                                P::kEncryptedRandom, 0.3)};
    devices.push_back(std::move(d));
  }

  // =================== TVs (5 models) ==============================
  {
    DeviceSpec d = device("apple_tv", "Apple TV", Category::kTv,
                          LabPresence::kBoth, "Apple");
    d.behavior.activities = tv_activities(0.08);
    d.behavior.distinctiveness = 1.0;
    d.behavior.plaintext_fraction = 0.02;
    d.behavior.endpoints = {use("play.itunes.apple.com"),
                            use("time-ios.apple.com", T::kCustomUdp,
                                P::kPlainJson, 0.05),
                            only(use("a248.e.akamai.net", T::kTls,
                                     P::kEncryptedRandom, 0.6),
                                 {"power", "local_menu"}),
                            only(use(akamai_edge_domain(1), T::kTls,
                                     P::kEncryptedRandom, 0.5),
                                 {"power", "local_menu"})};
    d.behavior.spurious = {{"local_menu", 0.6, 2.2, 0.45, 0.33},
                           {"local_voice", 0.0, 0.06, 0.04, 0.1}};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("fire_tv", "Fire TV", Category::kTv,
                          LabPresence::kBoth, "Amazon");
    d.behavior.activities = tv_activities(0.07);
    d.behavior.distinctiveness = 1.0;
    d.behavior.plaintext_fraction = 0.008;
    d.behavior.plaintext_fraction_uk = 0.006;
    d.behavior.plaintext_fraction_vpn = 0.052;
    d.behavior.endpoints = {
        use("api.amazonvideo.com"),
        off_power(use("softwareupdates.amazon.com")),
        only(use("api-global.netflix.com", T::kTls, P::kEncryptedRandom,
                 0.4),
             {"power", "local_menu"}),
        flagged(use("api2.branch.io", T::kTls, P::kEncryptedRandom, 0.2),
                {.power_only = true, .direct_only = true}),
        only(use(cloudfront_domain(1), T::kTls, P::kEncryptedRandom, 0.5),
             {"power", "local_menu"}),
        only(use("a248.e.akamai.net", T::kTls, P::kEncryptedRandom, 0.4),
             {"power", "local_menu"})};
    d.behavior.spurious = {{"android_lan_remote", 0.2, 0.0, 0.2, 0.0},
                           {"local_voice", 0.0, 0.0, 0.45, 0.48}};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("lg_tv", "LG TV", Category::kTv, LabPresence::kBoth,
                          "LG");
    d.behavior.activities = tv_activities(0.16);
    d.behavior.distinctiveness = 0.75;
    d.behavior.plaintext_fraction = 0.04;
    d.behavior.endpoints = {
        use("us.lgtvsdp.com"),
        only(use("api-global.netflix.com", T::kTls, P::kEncryptedRandom,
                 0.4),
             {"power", "local_menu"}),
        only(use("global.fastly.net", T::kTls, P::kEncryptedRandom, 0.3),
             {"power", "local_menu"}),
        only(use(akamai_edge_domain(2), T::kTls, P::kEncryptedRandom, 0.4),
             {"power", "local_menu"}),
        use("e1234.dsce9.akamaiedge.net", T::kTls, P::kEncryptedRandom,
            0.4)};
    d.behavior.spurious = {{"local_off", 0.0, 0.0, 0.63, 0.0},
                           {"local_voice", 0.0, 0.0, 0.15, 0.0},
                           {"android_lan_remote", 0.0, 0.0, 0.11, 0.0}};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("roku_tv", "Roku TV", Category::kTv,
                          LabPresence::kBoth, "Roku");
    d.behavior.activities = tv_activities(0.07);
    d.behavior.distinctiveness = 1.0;
    d.behavior.plaintext_fraction = 0.05;
    d.behavior.endpoints = {
        use("scfs.roku.com"),
        use("logs.roku.com", T::kHttp, P::kPlainJson, 0.08),
        only(use("api-global.netflix.com", T::kTls, P::kEncryptedRandom,
                 0.4),
             {"power", "local_menu"}),
        flagged(use("global.fastly.net", T::kTls, P::kEncryptedRandom, 0.3),
                {.direct_only = true}),
        flagged(use("ad.doubleclick.net", T::kTls, P::kEncryptedRandom, 0.2),
                {.power_only = true, .us_only = true}),
        only(use(cloudfront_domain(2), T::kTls, P::kEncryptedRandom, 0.5),
             {"power", "local_menu"}),
        only(use("a248.e.akamai.net", T::kTls, P::kEncryptedRandom, 0.3),
             {"power", "local_menu"})};
    d.behavior.spurious = {{"local_menu", 0.4, 0.0, 0.11, 0.0},
                           {"android_lan_remote", 0.04, 0.03, 0.0, 1.6}};
    d.behavior.pii_leaks = {"device_name"};
    d.behavior.pii_domain = "logs.roku.com";
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("samsung_tv", "Samsung TV", Category::kTv,
                          LabPresence::kBoth, "Samsung");
    d.behavior.activities = tv_activities(0.06);
    d.behavior.distinctiveness = 1.0;
    d.behavior.plaintext_fraction = 0.071;
    d.behavior.plaintext_fraction_uk = 0.045;
    d.behavior.plaintext_fraction_vpn = 0.101;
    d.behavior.endpoints = {
        use("osb.samsungcloudsolution.com"),
        use("lcprd1.samsungcloudsolution.net"),
        only(use("api-global.netflix.com", T::kTls, P::kEncryptedRandom,
                 0.4),
             {"power", "local_menu"}),
        only(flagged(use("samsung.d1.sc.omtrdc.net", T::kTls,
                         P::kEncryptedRandom, 0.2),
                     {.us_only = true}),
             {"power", "local_menu"}),
        flagged(use("ad.doubleclick.net", T::kTls, P::kEncryptedRandom, 0.2),
                {.power_only = true, .uk_only = true}),
        flagged(use("graph.facebook.com", T::kTls, P::kEncryptedRandom, 0.2),
                {.power_only = true, .us_only = true}),
        flagged(use("cs600.wpc.edgecastcdn.net", T::kTls,
                    P::kEncryptedRandom, 0.3),
                {.direct_only = true}),
        use("e1234.dsce9.akamaiedge.net", T::kTls, P::kEncryptedRandom,
            0.4),
        only(use(akamai_edge_domain(3), T::kTls, P::kEncryptedRandom, 0.5),
             {"power", "local_menu"}),
        off_power(use("settings-win.data.microsoft.com", T::kTls,
                      P::kEncryptedRandom, 0.2))};
    devices.push_back(std::move(d));
  }

  // =================== Audio (7 models) ============================
  {
    DeviceSpec d = device("allure_alexa", "Allure with Alexa",
                          Category::kAudio, LabPresence::kUsOnly, "Harman",
                          {"Amazon"});
    d.behavior.activities = audio_activities(0.40);
    d.behavior.distinctiveness = 0.3;
    d.behavior.plaintext_fraction = 0.02;
    d.behavior.endpoints = {use("voice.harman.com"),
                            use("avs-alexa-na.amazon.com"),
                            off_power(use(akamai_edge_domain(8), T::kTls,
                                          P::kEncryptedRandom, 0.35))};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("echo_dot", "Echo Dot", Category::kAudio,
                          LabPresence::kBoth, "Amazon");
    d.behavior.activities = audio_activities(0.38);
    d.behavior.distinctiveness = 0.4;
    d.behavior.plaintext_fraction = 0.007;
    d.behavior.plaintext_fraction_uk = 0.026;
    d.behavior.endpoints = {use("avs-alexa-na.amazon.com"),
                            use("device-metrics-us.amazon.com"),
                            use("alexa.amazon.com"),
                            off_power(use(akamai_edge_domain(5), T::kTls,
                                          P::kEncryptedRandom, 0.4))};
    d.behavior.spurious = {{"local_volume", 0.0, 0.0, 9.5, 0.0}};
    d.behavior.reconnect_per_hour = 0.07;
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("echo_spot", "Echo Spot", Category::kAudio,
                          LabPresence::kBoth, "Amazon");
    d.behavior.activities = audio_activities(0.38);
    d.behavior.distinctiveness = 0.4;
    d.behavior.plaintext_fraction = 0.023;
    d.behavior.plaintext_fraction_uk = 0.019;
    d.behavior.endpoints = {use("avs-alexa-na.amazon.com"),
                            use("alexa.amazon.com"),
                            use("s3.amazonaws.com"),
                            off_power(use(akamai_edge_domain(7), T::kTls,
                                          P::kEncryptedRandom, 0.35))};
    d.behavior.spurious = {{"local_volume", 0.18, 0.0, 0.0, 0.0}};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("echo_plus", "Echo Plus", Category::kAudio,
                          LabPresence::kBoth, "Amazon");
    d.behavior.activities = audio_activities(0.38);
    d.behavior.distinctiveness = 0.4;
    d.behavior.plaintext_fraction = 0.018;
    d.behavior.plaintext_fraction_uk = 0.029;
    d.behavior.endpoints = {use("avs-alexa-na.amazon.com"),
                            use("alexa.amazon.com"), use(ec2()),
                            off_power(use(akamai_edge_domain(6), T::kTls,
                                          P::kEncryptedRandom, 0.4))};
    d.behavior.spurious = {{"local_volume", 0.0, 0.0, 0.0, 0.55}};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("google_home_mini", "Google Home Mini",
                          Category::kAudio, LabPresence::kBoth, "Google");
    d.behavior.activities = audio_activities(0.40);
    d.behavior.distinctiveness = 0.3;
    d.behavior.plaintext_fraction = 0.01;
    d.behavior.endpoints = {use("assistant.google.com"),
                            off_power(use("storage.googleapis.com", T::kTls,
                                          P::kEncryptedRandom, 0.5)),
                            use("clients3.google.com", T::kHttp,
                                P::kPlainJson, 0.1),
                            off_power(use("s3.amazonaws.com", T::kTls,
                                          P::kEncryptedRandom, 0.25)),
                            use("time.google.com", T::kCustomUdp,
                                P::kPlainJson, 0.05)};
    d.behavior.spurious = {{"local_voice", 0.1, 0.0, 0.0, 0.0}};
    d.behavior.reconnect_per_hour_uk = 0.1;
    d.behavior.reconnect_per_hour_vpn = 6.0;
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("google_home", "Google Home", Category::kAudio,
                          LabPresence::kBoth, "Google");
    d.behavior.activities = audio_activities(0.40);
    d.behavior.distinctiveness = 0.3;
    d.behavior.plaintext_fraction = 0.012;
    d.behavior.endpoints = {use("assistant.google.com"),
                            off_power(use("storage.googleapis.com", T::kTls,
                                          P::kEncryptedRandom, 0.5)),
                            off_power(use("global.fastly.net", T::kTls,
                                          P::kEncryptedRandom, 0.25)),
                            use("time.google.com", T::kCustomUdp,
                                P::kPlainJson, 0.05)};
    d.behavior.reconnect_per_hour_uk = 0.13;
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("invoke_cortana", "Invoke with Cortana",
                          Category::kAudio, LabPresence::kUsOnly,
                          "Microsoft");
    d.behavior.activities = audio_activities(0.25);
    d.behavior.distinctiveness = 0.55;
    d.behavior.plaintext_fraction = 0.015;
    d.behavior.endpoints = {use("cortana.api.microsoft.com"),
                            use("azure-devices.microsoft.com"),
                            off_power(use("a248.e.akamai.net", T::kTls,
                                          P::kEncryptedRandom, 0.3)),
                            off_power(use("settings-win.data.microsoft.com"))};
    d.behavior.spurious = {{"local_voice", 0.0, 0.0, 0.15, 0.0},
                           {"local_volume", 0.0, 0.0, 0.15, 0.0}};
    devices.push_back(std::move(d));
  }

  // =================== Appliances (11 models) ======================
  {
    DeviceSpec d = device("anova_sousvide", "Anova Sousvide",
                          Category::kAppliance, LabPresence::kUkOnly,
                          "Anova");
    d.behavior.activities = appliance_activities(0.45);
    d.behavior.distinctiveness = 0.25;
    d.behavior.plaintext_fraction = 0.05;
    d.behavior.endpoints = {use("api.anovaculinary.com", T::kCustomTcp,
                                P::kMixedProprietary),
                            off_power(use(ec2(), T::kTls,
                                          P::kEncryptedRandom, 0.25))};
    // Table 11: 65 idle "power" detections in ~31 h in the UK (flaky Wi-Fi).
    d.behavior.reconnect_per_hour_uk = 2.1;
    d.behavior.reconnect_per_hour_vpn = 1.4;
    d.behavior.uses_ntp = true;
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("behmor_brewer", "Behmor Brewer",
                          Category::kAppliance, LabPresence::kUsOnly,
                          "Behmor");
    d.behavior.activities = appliance_activities(0.48);
    d.behavior.distinctiveness = 0.25;
    d.behavior.plaintext_fraction = 0.04;
    d.behavior.endpoints = {use("cloud.behmor.com", T::kCustomTcp,
                                P::kMixedProprietary),
                            use(ec2(), T::kTls, P::kEncryptedRandom, 0.25)};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("ge_microwave", "GE Microwave",
                          Category::kAppliance, LabPresence::kUsOnly, "GE");
    d.behavior.activities = appliance_activities(0.12, /*separable=*/true);
    d.behavior.distinctiveness = 0.95;
    d.behavior.plaintext_fraction = 0.03;
    d.behavior.endpoints = {use("iot.geappliances.com"),
                            off_power(use("azure-devices.microsoft.com",
                                          T::kTls, P::kEncryptedRandom,
                                          0.3))};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("netatmo_weather", "Netatmo Weather",
                          Category::kAppliance, LabPresence::kBoth,
                          "Netatmo");
    std::vector<ActivitySignature> acts = appliance_activities(0.30);
    acts.push_back(
        sig("android_wan_graphs", 44, 85, 5.4, 6.3, 0.030, 7.0, 0.12));
    d.behavior.activities = std::move(acts);
    d.behavior.distinctiveness = 0.7;
    d.behavior.plaintext_fraction = 0.06;
    d.behavior.endpoints = {use("app.netatmo.net", T::kHttp, P::kPlainJson,
                                0.1),
                            use(ec2())};
    d.behavior.spurious = {{"android_wan_graphs", 0.0, 0.0, 0.0, 0.74}};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("samsung_dryer", "Samsung Dryer",
                          Category::kAppliance, LabPresence::kUsOnly,
                          "Samsung");
    d.behavior.activities = appliance_activities(0.40);
    d.behavior.distinctiveness = 0.25;
    d.behavior.plaintext_fraction = 0.281;
    d.behavior.plaintext_fraction_vpn = 0.293;
    d.behavior.endpoints = {use("dc.samsungelectronics.com", T::kHttp,
                                P::kPlainJson, 0.12),
                            use("lcprd1.samsungcloudsolution.net"),
                            use(ec2(), T::kTls, P::kEncryptedRandom, 0.4)};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("samsung_fridge", "Samsung Fridge",
                          Category::kAppliance, LabPresence::kUsOnly,
                          "Samsung");
    std::vector<ActivitySignature> acts =
        appliance_activities(0.12, /*separable=*/true);
    acts.push_back(sig("local_viewinside", 60, 30, 6.4, 5.2, 0.03, 6.0, 0.12,
                       true));
    acts.push_back(sig("local_voice", 70, 90, 6.1, 6.3, 0.028, 7.0, 0.12));
    d.behavior.activities = std::move(acts);
    d.behavior.distinctiveness = 0.95;
    d.behavior.plaintext_fraction = 0.09;
    d.behavior.endpoints = {use("dc.samsungelectronics.com"),
                            use(ec2(), T::kHttp, P::kPlainJson, 0.3),
                            use("osb.samsungcloudsolution.com")};
    // §6.2: sends its MAC address unencrypted to an EC2 domain.
    d.behavior.pii_leaks = {"mac"};
    d.behavior.pii_domain = ec2_domain(2);
    d.behavior.spurious = {{"local_voice", 0.21, 0.0, 0.0, 0.0},
                           {"local_viewinside", 0.11, 0.0, 0.0, 0.0}};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("samsung_washer", "Samsung Washer",
                          Category::kAppliance, LabPresence::kUsOnly,
                          "Samsung");
    d.behavior.activities = appliance_activities(0.40);
    d.behavior.distinctiveness = 0.25;
    d.behavior.plaintext_fraction = 0.273;
    d.behavior.plaintext_fraction_vpn = 0.286;
    d.behavior.endpoints = {use("dc.samsungelectronics.com", T::kHttp,
                                P::kPlainJson, 0.12),
                            use("lcprd1.samsungcloudsolution.net"),
                            use(ec2(), T::kTls, P::kEncryptedRandom, 0.4)};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("smarter_brewer", "Smarter Brewer",
                          Category::kAppliance, LabPresence::kUkOnly,
                          "Smarter");
    d.behavior.activities = appliance_activities(0.46);
    d.behavior.distinctiveness = 0.25;
    d.behavior.plaintext_fraction = 0.05;
    d.behavior.endpoints = {use("api.smarter.am", T::kCustomTcp,
                                P::kMixedProprietary)};
    d.behavior.uses_ntp = true;
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("smarter_ikettle", "Smarter iKettle",
                          Category::kAppliance, LabPresence::kUkOnly,
                          "Smarter");
    d.behavior.activities = appliance_activities(0.46);
    d.behavior.distinctiveness = 0.25;
    d.behavior.plaintext_fraction = 0.06;
    d.behavior.endpoints = {use("api.smarter.am", T::kCustomTcp,
                                P::kMixedProprietary)};
    d.behavior.uses_ntp = true;
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("xiaomi_cleaner", "Xiaomi Cleaner",
                          Category::kAppliance, LabPresence::kUsOnly,
                          "Xiaomi");
    d.behavior.activities = appliance_activities(0.15, /*separable=*/true);
    d.behavior.distinctiveness = 0.9;
    d.behavior.plaintext_fraction = 0.02;
    d.behavior.endpoints = {use("api.io.mi.com"),
                            use("de.ott.io.mi.com", T::kTls,
                                P::kEncryptedRandom, 0.3),
                            use("api.ksyun.com", T::kTls,
                                P::kEncryptedRandom, 0.3)};
    devices.push_back(std::move(d));
  }
  {
    DeviceSpec d = device("xiaomi_ricecooker", "Xiaomi Rice Cooker",
                          Category::kAppliance, LabPresence::kUsOnly,
                          "Xiaomi");
    d.behavior.activities = appliance_activities(0.44);
    d.behavior.distinctiveness = 0.25;
    d.behavior.plaintext_fraction = 0.03;
    // §4.3: contacts Alibaba normally, but Kingsoft only when on VPN.
    d.behavior.endpoints = {
        use("ot.io.mi.com", T::kCustomUdp, P::kMixedProprietary),
        flagged(use("cn-north.aliyuncs.com", T::kTls, P::kEncryptedRandom,
                    0.5),
                {.direct_only = true}),
        flagged(use("api.ksyun.com", T::kTls, P::kEncryptedRandom, 0.5),
                {.vpn_only = true})};
    devices.push_back(std::move(d));
  }

  // Every consumer IoT stack also ships a proprietary channel (p2p video
  // transports, binary telemetry, push sockets). These are exactly the
  // flows Wireshark cannot classify — the paper finds ~46% of bytes
  // unclassifiable, with cameras/hubs/appliances the most opaque
  // (Tables 5, 6, 8). Weights set the per-category "unknown" byte share.
  int relay_index = 30;
  for (DeviceSpec& d : devices) {
    double weight = 0.0;
    Transport transport = T::kCustomTcp;
    switch (d.category) {
      case Category::kCamera:
        weight = 2.8;
        transport = T::kCustomUdp;  // p2p video relays
        break;
      case Category::kSmartHub: weight = 2.6; break;
      case Category::kAppliance: weight = 1.8; break;
      case Category::kHomeAutomation: weight = 0.9; break;
      case Category::kAudio: weight = 1.0; break;
      case Category::kTv: weight = 0.9; break;
    }
    // Mainstream cameras relay their p2p streams through AWS-hosted relay
    // nodes (so most camera bytes terminate in the US, Figure 2); budget
    // Chinese brands relay via their home infrastructure.
    std::string domain = d.behavior.endpoints.front().domain;
    static constexpr std::string_view kCnBrands[] = {
        "Lefun", "Luohe", "WiMaker", "Bosiwo"};
    bool cn_brand = false;
    for (std::string_view brand : kCnBrands) {
      if (d.manufacturer == brand) cn_brand = true;
    }
    if (d.category == Category::kCamera && !cn_brand) {
      domain = ec2_domain(relay_index++);
    }
    EndpointUse channel =
        use(std::move(domain), transport, P::kMixedProprietary, weight);
    d.behavior.endpoints.push_back(std::move(channel));
  }
  return devices;
}

}  // namespace

const std::vector<DeviceSpec>& device_catalog() {
  static const std::vector<DeviceSpec> catalog = build_catalog();
  return catalog;
}

const DeviceSpec* find_device(std::string_view id) {
  for (const DeviceSpec& d : device_catalog()) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

net::MacAddress device_mac(const DeviceSpec& device, bool us_lab) {
  // Locally-administered, deterministic per (device, lab).
  const std::uint64_t h =
      util::fnv1a64(device.id + (us_lab ? "/us" : "/uk"));
  return net::MacAddress({static_cast<std::uint8_t>(0x02),
                          static_cast<std::uint8_t>(us_lab ? 0x55 : 0x4b),
                          static_cast<std::uint8_t>(h >> 24),
                          static_cast<std::uint8_t>(h >> 16),
                          static_cast<std::uint8_t>(h >> 8),
                          static_cast<std::uint8_t>(h)});
}

net::Ipv4Address device_ip(const DeviceSpec& device, bool us_lab) {
  const auto& catalog = device_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i].id == device.id) {
      return net::Ipv4Address(10, 42, us_lab ? 0 : 1,
                              static_cast<std::uint8_t>(i + 10));
    }
  }
  // Devices outside the builtin catalog (synthetic fleets from
  // catalog_gen) get an id-hashed address in a disjoint 10.43/16 range.
  // Collisions across a 100k fleet are harmless — every device's
  // captures are synthesized and analyzed in isolation — but the
  // address must be a pure function of (id, lab) so fleet captures are
  // bit-reproducible.
  const std::uint64_t h =
      util::fnv1a64(device.id + (us_lab ? "/ip/us" : "/ip/uk"));
  return net::Ipv4Address(10, 43, static_cast<std::uint8_t>(h >> 8),
                          static_cast<std::uint8_t>(h));
}

}  // namespace iotx::testbed
