#include "iotx/testbed/gateway.hpp"

#include <algorithm>
#include <filesystem>

#include "iotx/util/strings.hpp"

namespace iotx::testbed {

void Gateway::tap(const std::vector<net::Packet>& packets) {
  buffer_.insert(buffer_.end(), packets.begin(), packets.end());
}

void Gateway::tap_impaired(std::vector<net::Packet> packets,
                           const faults::ImpairmentProfile& profile,
                           std::string_view seed_key) {
  util::Prng prng("impair/" + std::string(seed_key));
  faults::apply_impairment(packets, profile, prng).add_to(health_);
  buffer_.insert(buffer_.end(), std::make_move_iterator(packets.begin()),
                 std::make_move_iterator(packets.end()));
}

std::map<net::MacAddress, std::vector<net::Packet>> Gateway::per_device()
    const {
  auto split = net::split_by_mac(buffer_);
  for (auto& [mac, packets] : split) {
    std::stable_sort(packets.begin(), packets.end(),
                     [](const net::Packet& a, const net::Packet& b) {
                       return a.timestamp < b.timestamp;
                     });
  }
  return split;
}

std::string Gateway::write_labeled(const std::string& root,
                                   const LabeledCapture& capture) const {
  namespace fs = std::filesystem;
  const std::string lab = lab_ == LabSite::kUs ? "us" : "uk";
  fs::path dir = fs::path(root) / lab / capture.spec.device_id;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return {};
  std::string name = capture.spec.key();
  std::replace(name.begin(), name.end(), '/', '_');
  const fs::path file = dir / (name + ".pcap");
  if (!net::pcap_write_file(file.string(), capture.packets)) return {};
  return file.string();
}

std::optional<std::vector<net::Packet>> Gateway::read_labeled(
    const std::string& path) {
  return net::pcap_read_file(path);
}

}  // namespace iotx::testbed
