#include "iotx/testbed/endpoints.hpp"

#include "iotx/geo/sld.hpp"

namespace iotx::testbed {

void EndpointRegistry::add(Endpoint endpoint) {
  by_domain_[endpoint.domain] = endpoints_.size();
  by_ip_[endpoint.address] = endpoints_.size();
  if (!endpoint.replica_country.empty()) {
    by_ip_[endpoint.replica_address] = endpoints_.size();
  }
  endpoints_.push_back(std::move(endpoint));
}

const Endpoint* EndpointRegistry::find(const std::string& domain) const {
  const auto it = by_domain_.find(domain);
  return it == by_domain_.end() ? nullptr : &endpoints_[it->second];
}

const Endpoint* EndpointRegistry::find_by_ip(net::Ipv4Address addr) const {
  const auto it = by_ip_.find(addr);
  return it == by_ip_.end() ? nullptr : &endpoints_[it->second];
}

EndpointRegistry::Replica EndpointRegistry::select_replica(
    const Endpoint& e, const std::string& egress_country) const {
  // CDN-style selection: serve from the replica when the client egresses
  // nearer to it than to the default deployment.
  if (!e.replica_country.empty() && egress_country == e.replica_country) {
    return Replica{e.replica_address, e.replica_country};
  }
  if (!e.replica_country.empty() && egress_country == "GB" &&
      e.replica_country != "US" && e.country == "US") {
    return Replica{e.replica_address, e.replica_country};
  }
  return Replica{e.address, e.country};
}

geo::OrgDatabase EndpointRegistry::make_org_database() const {
  geo::OrgDatabase db;
  for (const Endpoint& e : endpoints_) {
    db.add_domain(geo::second_level_domain(e.domain), e.organization);
    if (e.infrastructure) db.add_infrastructure(e.organization);
    db.add_prefix(e.address, 24, e.organization);
    if (!e.replica_country.empty()) {
      db.add_prefix(e.replica_address, 24, e.organization);
    }
  }
  return db;
}

geo::GeoDatabase EndpointRegistry::make_geo_database() const {
  geo::GeoDatabase db;
  for (const Endpoint& e : endpoints_) {
    if (e.geo_db_wrong) {
      // Model the public-database inaccuracy the paper reports: the DB
      // claims the default country for a replica actually deployed
      // elsewhere; Passport's RTT check must catch it.
      const std::string wrong = e.country == "US" ? "CN" : "US";
      db.add_prefix(e.address, 24, wrong, /*reliable=*/false);
    } else {
      db.add_prefix(e.address, 24, e.country, /*reliable=*/true);
    }
    if (!e.replica_country.empty()) {
      db.add_prefix(e.replica_address, 24, e.replica_country,
                    /*reliable=*/true);
    }
  }
  return db;
}

namespace {

net::Ipv4Address ip(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                    std::uint8_t d) {
  return net::Ipv4Address(a, b, c, d);
}

EndpointRegistry build_registry() {
  EndpointRegistry r;
  const auto add = [&r](std::string domain, std::string org, bool infra,
                        std::string country, net::Ipv4Address addr,
                        std::string replica_country = "",
                        net::Ipv4Address replica = net::Ipv4Address(),
                        bool geo_wrong = false) {
    Endpoint e;
    e.domain = std::move(domain);
    e.organization = std::move(org);
    e.infrastructure = infra;
    e.country = std::move(country);
    e.address = addr;
    e.replica_country = std::move(replica_country);
    e.replica_address = replica;
    e.geo_db_wrong = geo_wrong;
    r.add(std::move(e));
  };

  // ---- Support parties: clouds and CDNs (Table 4 top organizations) ----
  add("ec2-52-1-17-22.compute-1.amazonaws.com", "Amazon", true, "US",
      ip(52, 1, 17, 22), "IE", ip(52, 208, 10, 5));
  add("ec2-52-1-44-80.compute-1.amazonaws.com", "Amazon", true, "US",
      ip(52, 1, 44, 80), "IE", ip(52, 208, 44, 9));
  add("s3.amazonaws.com", "Amazon", true, "US", ip(52, 216, 8, 12));
  add("device-metrics-us.amazon.com", "Amazon", true, "US",
      ip(54, 239, 22, 185));
  add("kinesis.us-east-1.amazonaws.com", "Amazon", true, "US",
      ip(52, 94, 214, 30));
  add("storage.googleapis.com", "Google", true, "US", ip(142, 250, 31, 128),
      "NL", ip(172, 217, 168, 16));
  add("clients3.google.com", "Google", true, "US", ip(142, 250, 31, 113));
  add("time.google.com", "Google", true, "US", ip(216, 239, 35, 0));
  add("e1234.dsce9.akamaiedge.net", "Akamai", true, "US", ip(23, 32, 5, 44),
      "GB", ip(2, 16, 103, 9), /*geo_wrong=*/true);
  add("a248.e.akamai.net", "Akamai", true, "US", ip(23, 57, 80, 7), "GB",
      ip(2, 16, 40, 77));
  add("azure-devices.microsoft.com", "Microsoft", true, "US",
      ip(40, 76, 22, 9), "GB", ip(51, 105, 66, 40));
  add("settings-win.data.microsoft.com", "Microsoft", true, "US",
      ip(40, 77, 226, 250));
  add("global.fastly.net", "Fastly", true, "US", ip(151, 101, 1, 140), "GB",
      ip(151, 101, 64, 140));
  add("cs600.wpc.edgecastcdn.net", "Verizon", true, "US",
      ip(152, 195, 38, 76));
  add("node1.hvvc.us", "Hvvc", true, "US", ip(198, 51, 92, 14));
  add("vip1.att.com", "AT&T", true, "US", ip(144, 160, 36, 42));
  // Chinese counterparts (bottom half of Table 4).
  add("cn-north.aliyuncs.com", "Alibaba", true, "CN", ip(47, 88, 14, 6));
  add("oss-cn-beijing.aliyuncs.com", "Alibaba", true, "CN",
      ip(47, 88, 77, 200));
  add("api.ksyun.com", "Kingsoft", true, "CN", ip(120, 92, 14, 22));
  add("cdn.21vianet.com", "21Vianet", true, "CN", ip(101, 227, 6, 81));
  add("gw.huaxiay.com", "Beijing Huaxiay", true, "CN", ip(124, 193, 28, 4));

  // ---- Third parties ----
  add("api-global.netflix.com", "Netflix", false, "US", ip(45, 57, 3, 12),
      "GB", ip(45, 57, 90, 2));
  add("ad.doubleclick.net", "Doubleclick", false, "US", ip(216, 58, 220, 34));
  add("a2.tuyaus.com", "Tuya", false, "CN", ip(121, 51, 130, 9));
  add("ntp.nuri.net", "Nuri", false, "KR", ip(203, 255, 112, 4));
  add("graph.facebook.com", "Facebook", false, "US", ip(157, 240, 1, 35),
      "IE", ip(157, 240, 20, 8));
  add("samsung.d1.sc.omtrdc.net", "Omniture", false, "US", ip(66, 235, 132, 1));
  add("dyn-cpe-24-96-81-7.wowinc.com", "WideOpenWest", false, "US",
      ip(24, 96, 81, 7));
  add("api2.branch.io", "Branch", false, "US", ip(54, 240, 190, 18));

  // ---- First-party device clouds ----
  add("alexa.amazon.com", "Amazon", true, "US", ip(54, 239, 27, 9), "IE",
      ip(52, 95, 120, 14));
  add("avs-alexa-na.amazon.com", "Amazon", true, "US", ip(54, 239, 29, 50),
      "IE", ip(52, 95, 124, 30));
  add("home.nest.com", "Google", true, "US", ip(142, 250, 102, 14));
  add("assistant.google.com", "Google", true, "US", ip(142, 250, 70, 46),
      "NL", ip(172, 217, 170, 78));
  add("api.ring.com", "Ring", false, "US", ip(54, 85, 62, 100));
  add("updates.ring.com", "Ring", false, "US", ip(54, 85, 63, 4));
  add("api.immedia-semi.com", "Blink", false, "US", ip(34, 195, 110, 27));
  add("api.amcrestcloud.com", "Amcrest", false, "US", ip(67, 227, 204, 9));
  add("mp-us-cloud.dlink.com", "D-Link", false, "US", ip(54, 88, 44, 125));
  add("signal.dlink.com", "D-Link", false, "TW", ip(210, 64, 120, 8));
  add("p2p.lefuniot.com", "Lefun", false, "CN", ip(119, 28, 66, 10));
  add("cloud.luohe-tech.cn", "Luohe", false, "CN", ip(123, 57, 84, 22));
  add("www.microseven.com", "Microseven", false, "US", ip(104, 152, 168, 26));
  add("p2p.wansview.com", "Wansview", false, "CN", ip(120, 24, 58, 131));
  add("relay.wimaker.cn", "WiMaker", false, "CN", ip(115, 29, 44, 72));
  add("api.io.mi.com", "Xiaomi", false, "CN", ip(120, 92, 96, 35), "DE",
      ip(161, 117, 70, 4));
  add("ot.io.mi.com", "Xiaomi", false, "CN", ip(120, 92, 96, 60));
  add("api.xiaoyi.com", "Yi", false, "CN", ip(106, 11, 32, 17));
  add("device.zmodo.com", "Zmodo", false, "CN", ip(121, 40, 100, 80));
  add("cloud.bosiwo.cn", "Bosiwo", false, "CN", ip(47, 95, 12, 30));
  add("connect.insteon.com", "Insteon", false, "US", ip(63, 251, 88, 16));
  add("api.lightify.com", "Osram", false, "DE", ip(52, 58, 150, 77));
  add("ws.meethue.com", "Philips", false, "NL", ip(52, 213, 31, 203));
  add("us.cloud.sengled.com", "Sengled", false, "CN", ip(54, 175, 222, 44));
  add("api.smartthings.com", "Samsung", false, "US", ip(52, 44, 128, 90));
  add("api.wink.com", "Wink", false, "US", ip(54, 164, 23, 77));
  add("tcp.connman.net", "Honeywell", false, "US", ip(199, 62, 84, 151));
  add("api.magichue.net", "Magichome", false, "CN", ip(47, 89, 30, 99));
  add("wifi.fluxsmart.com", "Flux", false, "US", ip(50, 18, 132, 60));
  add("use1-api.tplinkra.com", "TP-Link", false, "US", ip(52, 45, 62, 87),
      "IE", ip(52, 213, 100, 20));
  add("euw1-api.tplinkra.com", "TP-Link", false, "IE", ip(52, 213, 100, 21));
  add("heartbeat.xwemo.com", "Belkin", false, "US", ip(54, 82, 106, 49));
  add("nat.xbcs.net", "Belkin", false, "US", ip(35, 171, 42, 13));
  add("api.honeywell.com", "Honeywell", false, "US", ip(199, 62, 84, 120));
  // TVs.
  add("play.itunes.apple.com", "Apple", false, "US", ip(17, 253, 14, 125),
      "IE", ip(17, 253, 67, 202));
  add("time-ios.apple.com", "Apple", false, "US", ip(17, 253, 4, 125));
  add("api.amazonvideo.com", "Amazon", true, "US", ip(54, 239, 31, 80), "IE",
      ip(52, 95, 126, 38));
  add("softwareupdates.amazon.com", "Amazon", true, "US",
      ip(54, 239, 39, 22));
  add("us.lgtvsdp.com", "LG", false, "KR", ip(211, 115, 110, 30), "DE",
      ip(165, 244, 110, 14));
  add("scfs.roku.com", "Roku", false, "US", ip(34, 203, 220, 41));
  add("logs.roku.com", "Roku", false, "US", ip(34, 203, 221, 9));
  add("osb.samsungcloudsolution.com", "Samsung", false, "KR",
      ip(211, 45, 60, 19), "DE", ip(185, 63, 96, 4));
  add("lcprd1.samsungcloudsolution.net", "Samsung", false, "US",
      ip(54, 148, 222, 7));
  // Audio extras.
  add("cortana.api.microsoft.com", "Microsoft", true, "US",
      ip(40, 76, 100, 13));
  add("voice.harman.com", "Harman", false, "US", ip(52, 71, 93, 200));
  // Appliances.
  add("api.anovaculinary.com", "Anova", false, "US", ip(34, 200, 110, 9));
  add("cloud.behmor.com", "Behmor", false, "US", ip(52, 10, 44, 71));
  add("iot.geappliances.com", "GE", false, "US", ip(23, 96, 110, 33));
  add("app.netatmo.net", "Netatmo", false, "FR", ip(62, 210, 92, 77));
  add("dc.samsungelectronics.com", "Samsung", false, "KR",
      ip(211, 45, 27, 231));
  add("api.smarter.am", "Smarter", false, "GB", ip(178, 62, 110, 4));
  add("de.ott.io.mi.com", "Xiaomi", false, "SG", ip(161, 117, 44, 8));
  // Generic NTP pools (unencrypted background traffic for everyone).
  add("pool.ntp.org", "NTP Pool", true, "US", ip(129, 6, 15, 28), "GB",
      ip(178, 79, 160, 57));
  // Per-device EC2 hosts (one VM hostname per vendor deployment). Most
  // vendors deploy only in us-east (the paper's "reliance on
  // infrastructure with limited geodiversity"); every fourth host has an
  // eu-west replica.
  for (int i = 0; i < EndpointRegistry::kEc2HostCount; ++i) {
    if (i % 4 == 0) {
      add(ec2_domain(i), "Amazon", true, "US",
          ip(52, 2, static_cast<std::uint8_t>(i + 1), 17), "IE",
          ip(52, 209, static_cast<std::uint8_t>(i + 1), 17));
    } else {
      add(ec2_domain(i), "Amazon", true, "US",
          ip(52, 2, static_cast<std::uint8_t>(i + 1), 17));
    }
  }
  for (int i = 0; i < EndpointRegistry::kCloudfrontHostCount; ++i) {
    add(cloudfront_domain(i), "Amazon", true, "US",
        ip(13, 224, static_cast<std::uint8_t>(i + 1), 9), "DE",
        ip(18, 184, static_cast<std::uint8_t>(i + 1), 9));
  }
  for (int i = 0; i < EndpointRegistry::kAkamaiEdgeHostCount; ++i) {
    add(akamai_edge_domain(i), "Akamai", true, "US",
        ip(23, 40, static_cast<std::uint8_t>(i + 1), 7), "GB",
        ip(2, 18, static_cast<std::uint8_t>(i + 1), 7));
  }
  for (int i = 0; i < EndpointRegistry::kGoogleHostCount; ++i) {
    add(google_host_domain(i), "Google", true, "US",
        ip(142, 251, static_cast<std::uint8_t>(i + 1), 14), "NL",
        ip(172, 217, static_cast<std::uint8_t>(i + 100), 14));
  }
  for (int i = 0; i < EndpointRegistry::kAzureHostCount; ++i) {
    add(azure_host_domain(i), "Microsoft", true, "US",
        ip(40, 79, static_cast<std::uint8_t>(i + 1), 5), "GB",
        ip(51, 104, static_cast<std::uint8_t>(i + 1), 5));
  }
  return r;
}

}  // namespace

const EndpointRegistry& EndpointRegistry::builtin() {
  static const EndpointRegistry registry = build_registry();
  return registry;
}

std::string ec2_domain(int index) {
  index = index % EndpointRegistry::kEc2HostCount;
  return "ec2-52-2-" + std::to_string(index + 1) +
         "-17.compute-1.amazonaws.com";
}

std::string cloudfront_domain(int index) {
  index = index % EndpointRegistry::kCloudfrontHostCount;
  return "d" + std::to_string(1000 + index) + "abcd.cloudfront.net";
}

std::string akamai_edge_domain(int index) {
  index = index % EndpointRegistry::kAkamaiEdgeHostCount;
  return "e" + std::to_string(8000 + index) + ".dsce9.akamaiedge.net";
}

std::string google_host_domain(int index) {
  index = index % EndpointRegistry::kGoogleHostCount;
  return "lh" + std::to_string(index + 2) + ".googleusercontent.com";
}

std::string azure_host_domain(int index) {
  index = index % EndpointRegistry::kAzureHostCount;
  return "blob" + std::to_string(index + 1) + ".core.windows.net";
}

}  // namespace iotx::testbed
