// Interaction automation (paper §3.2): which interactions are driven by
// the Monkey app exerciser or the cloud voice synthesizer (automated, 30+
// repetitions) versus performed by hand (manual, 3+ repetitions).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "iotx/testbed/catalog.hpp"

namespace iotx::testbed {

/// How an interaction is triggered (§3.3 interaction types i-iv).
enum class InteractionMethod {
  kLocalPhysical,   ///< physical press / movement / speech at the device
  kLanApp,          ///< companion app on the same network
  kWanApp,          ///< companion app via cloud
  kVoiceAssistant,  ///< Echo Spot relaying a synthesized voice command
};

std::string_view interaction_method_name(InteractionMethod m) noexcept;

/// Where in the device's lifetime a capture was taken. The paper's
/// controlled experiments all observe kNormal; the lifecycle extension
/// (arXiv 2505.09929 measures these phases separately) adds the other
/// three, each with its own traffic shape and exposure profile.
enum class LifecyclePhase {
  kNormal,       ///< steady-state activity (the paper's snapshot)
  kSetup,        ///< first-boot provisioning / cloud binding
  kOta,          ///< firmware (OTA) update download + apply
  kDeprovision,  ///< unbind / factory-reset telemetry flush
};

std::string_view lifecycle_phase_name(LifecyclePhase p) noexcept;

/// A scripted interaction for one device activity.
struct InteractionScript {
  std::string activity;
  InteractionMethod method = InteractionMethod::kLocalPhysical;
  bool automated = false;   ///< Monkey/voice-synth automated
  std::string voice_text;   ///< synthesized utterance when voice-driven
  /// Lifecycle phase the script exercises; kNormal for every ordinary
  /// interaction, set by lifecycle_scripts_for() for the phase scripts.
  LifecyclePhase phase = LifecyclePhase::kNormal;
};

/// Derives the scripts for a device from its activity names:
/// "android_lan_*" -> LAN app (automated), "android_wan_*"/"android_*" ->
/// WAN app (automated), "voice_*" -> voice assistant (automated, with a
/// synthesized utterance), "local_voice" -> local speech (automated via
/// the loudspeaker), everything else local physical (manual).
std::vector<InteractionScript> scripts_for(const DeviceSpec& device);

/// The lifecycle scripts every device supports: one per non-normal
/// phase ("setup", "ota_update", "deprovision"), all automated (the
/// testbed drives them through the companion app / power control).
std::vector<InteractionScript> lifecycle_scripts_for(const DeviceSpec& device);

}  // namespace iotx::testbed
