#include "iotx/testbed/lab.hpp"

#include <array>

namespace iotx::testbed {

std::string_view lab_name(LabSite lab) noexcept {
  return lab == LabSite::kUs ? "US" : "UK";
}

std::string NetworkConfig::egress_country() const {
  const bool us_egress = (lab == LabSite::kUs) != vpn;
  return us_egress ? "US" : "GB";
}

std::string NetworkConfig::lab_country() const {
  return lab == LabSite::kUs ? "US" : "GB";
}

std::string NetworkConfig::key() const {
  std::string k = lab == LabSite::kUs ? "us" : "uk";
  if (vpn) k += "-vpn";
  return k;
}

const std::array<NetworkConfig, 4>& all_network_configs() {
  static const std::array<NetworkConfig, 4> configs = {
      NetworkConfig{LabSite::kUs, false},
      NetworkConfig{LabSite::kUk, false},
      NetworkConfig{LabSite::kUs, true},
      NetworkConfig{LabSite::kUk, true},
  };
  return configs;
}

LabParams lab_params(LabSite lab) {
  if (lab == LabSite::kUs) {
    return LabParams{
        net::Ipv4Address(129, 10, 9, 1),
        net::Ipv4Address(10, 42, 0, 1),
        net::MacAddress({0x02, 0x55, 0x00, 0x00, 0x00, 0x01}),
        net::Ipv4Address(10, 42, 0, 1),
    };
  }
  return LabParams{
      net::Ipv4Address(155, 198, 30, 1),
      net::Ipv4Address(10, 42, 1, 1),
      net::MacAddress({0x02, 0x4b, 0x00, 0x00, 0x00, 0x01}),
      net::Ipv4Address(10, 42, 1, 1),
  };
}

double simulated_rtt_ms(const NetworkConfig& config,
                        const std::string& endpoint_country) {
  // Base physical minimum from the *egress* location, since the VPN
  // tunnel routes all traffic through the other lab first.
  const geo::Vantage egress_vantage = config.egress_country() == "US"
                                          ? geo::Vantage::kUsLab
                                          : geo::Vantage::kUkLab;
  double rtt =
      geo::PassportResolver::min_feasible_rtt_ms(egress_vantage,
                                                 endpoint_country);
  if (config.vpn) rtt += 76.0;  // transatlantic tunnel
  // Deterministic queuing jitter per (config, country).
  util::Prng prng("rtt/" + config.key() + "/" + endpoint_country);
  rtt += prng.exponential(4.0);
  return rtt;
}

}  // namespace iotx::testbed
