// Wire-format encode/decode for Ethernet II, IPv4, TCP and UDP headers.
//
// The simulator emits genuine frames through these encoders and every
// analysis decodes captures through the matching decoders, so the pipeline
// is exercised on real wire formats end to end.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "iotx/net/address.hpp"
#include "iotx/net/bytes.hpp"

namespace iotx::net {

/// EtherType values we emit/recognize.
enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kArp = 0x0806,
  kIpv6 = 0x86dd,
};

/// IP protocol numbers we emit/recognize.
enum class IpProtocol : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

struct EthernetHeader {
  MacAddress dst;
  MacAddress src;
  std::uint16_t ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);

  static constexpr std::size_t kSize = 14;
  void encode(ByteWriter& w) const;
  static std::optional<EthernetHeader> decode(ByteReader& r);
};

struct Ipv4Header {
  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = 0;  ///< header + payload, filled by encoder users
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = static_cast<std::uint8_t>(IpProtocol::kTcp);
  Ipv4Address src;
  Ipv4Address dst;

  static constexpr std::size_t kSize = 20;  // we never emit options
  /// Encodes with a correct header checksum.
  void encode(ByteWriter& w) const;
  /// Decodes and validates version/IHL; skips options if present.
  static std::optional<Ipv4Header> decode(ByteReader& r);
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;  ///< FIN=1 SYN=2 RST=4 PSH=8 ACK=16
  std::uint16_t window = 65535;

  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;

  static constexpr std::size_t kSize = 20;  // no options
  /// Encodes with checksum over the IPv4 pseudo-header and payload.
  void encode(ByteWriter& w, const Ipv4Header& ip,
              std::span<const std::uint8_t> payload) const;
  static std::optional<TcpHeader> decode(ByteReader& r);
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  static constexpr std::size_t kSize = 8;
  void encode(ByteWriter& w, const Ipv4Header& ip,
              std::span<const std::uint8_t> payload) const;
  static std::optional<UdpHeader> decode(ByteReader& r);
};

/// RFC 1071 Internet checksum over a byte span (padding odd length with 0).
std::uint16_t internet_checksum(std::span<const std::uint8_t> data,
                                std::uint32_t initial = 0) noexcept;

/// Checksum of the IPv4 pseudo-header for TCP/UDP.
std::uint32_t pseudo_header_sum(const Ipv4Header& ip, std::uint8_t protocol,
                                std::uint16_t l4_length) noexcept;

}  // namespace iotx::net
