#include "iotx/net/address.hpp"

#include <cstdio>

#include "iotx/util/strings.hpp"

namespace iotx::net {

namespace {
int hex_nibble(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  const auto parts = util::split(text, ':');
  if (parts.size() != 6) return std::nullopt;
  std::array<std::uint8_t, 6> octets{};
  for (std::size_t i = 0; i < 6; ++i) {
    if (parts[i].size() != 2) return std::nullopt;
    const int hi = hex_nibble(parts[i][0]);
    const int lo = hex_nibble(parts[i][1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    octets[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return MacAddress(octets);
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0],
                octets_[1], octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

bool MacAddress::is_broadcast() const noexcept {
  for (std::uint8_t o : octets_) {
    if (o != 0xff) return false;
  }
  return true;
}

bool MacAddress::is_locally_administered() const noexcept {
  return (octets_[0] & 0x02) != 0;
}

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const std::string& part : parts) {
    if (part.empty() || part.size() > 3) return std::nullopt;
    unsigned octet = 0;
    for (char c : part) {
      if (c < '0' || c > '9') return std::nullopt;
      octet = octet * 10 + static_cast<unsigned>(c - '0');
    }
    if (octet > 255) return std::nullopt;
    value = (value << 8) | octet;
  }
  return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

bool Ipv4Address::is_private() const noexcept {
  return in_prefix(Ipv4Address(10, 0, 0, 0), 8) ||
         in_prefix(Ipv4Address(172, 16, 0, 0), 12) ||
         in_prefix(Ipv4Address(192, 168, 0, 0), 16) ||
         in_prefix(Ipv4Address(127, 0, 0, 0), 8) ||
         in_prefix(Ipv4Address(169, 254, 0, 0), 16);
}

bool Ipv4Address::is_multicast() const noexcept {
  return in_prefix(Ipv4Address(224, 0, 0, 0), 4);
}

bool Ipv4Address::is_global_unicast() const noexcept {
  return !is_private() && !is_multicast() && !is_limited_broadcast() &&
         !in_prefix(Ipv4Address(0, 0, 0, 0), 8);
}

bool Ipv4Address::in_prefix(Ipv4Address prefix, int prefix_len) const noexcept {
  if (prefix_len <= 0) return true;
  if (prefix_len >= 32) return value_ == prefix.value_;
  const std::uint32_t mask = ~0u << (32 - prefix_len);
  return (value_ & mask) == (prefix.value_ & mask);
}

}  // namespace iotx::net
