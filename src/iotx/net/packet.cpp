#include "iotx/net/packet.hpp"

#include <algorithm>
#include <atomic>

#include "iotx/net/bytes.hpp"

namespace iotx::net {

namespace {
std::atomic<std::uint64_t> g_decode_calls{0};
}  // namespace

std::uint64_t decode_packet_calls() noexcept {
  return g_decode_calls.load(std::memory_order_relaxed);
}

std::optional<DecodedPacket> decode_frame(
    double timestamp, std::span<const std::uint8_t> frame) {
  g_decode_calls.fetch_add(1, std::memory_order_relaxed);
  ByteReader r(frame);
  const auto eth = EthernetHeader::decode(r);
  if (!eth) return std::nullopt;
  if (eth->ether_type != static_cast<std::uint16_t>(EtherType::kIpv4)) {
    return std::nullopt;
  }
  const std::size_t ip_start = r.position();
  const auto ip = Ipv4Header::decode(r);
  if (!ip) return std::nullopt;

  DecodedPacket d;
  d.timestamp = timestamp;
  d.eth = *eth;
  d.ip = *ip;
  d.frame_size = frame.size();

  // The IP total_length field bounds the L4 data; tolerate captures where
  // the frame is padded beyond it (Ethernet minimum frame padding).
  const std::size_t ip_end =
      std::min<std::size_t>(ip_start + ip->total_length, frame.size());

  if (ip->protocol == static_cast<std::uint8_t>(IpProtocol::kTcp)) {
    const auto tcp = TcpHeader::decode(r);
    if (!tcp) return std::nullopt;
    d.is_tcp = true;
    d.tcp = *tcp;
  } else if (ip->protocol == static_cast<std::uint8_t>(IpProtocol::kUdp)) {
    const auto udp = UdpHeader::decode(r);
    if (!udp) return std::nullopt;
    d.is_udp = true;
    d.udp = *udp;
  }

  const std::size_t payload_start = r.position();
  if (payload_start < ip_end) {
    d.payload = frame.subspan(payload_start, ip_end - payload_start);
  }
  return d;
}

std::optional<DecodedPacket> decode_packet(const Packet& packet) {
  return decode_frame(packet.timestamp, packet.frame);
}

namespace {

Packet finish_frame(double timestamp, ByteWriter&& w) {
  Packet p;
  p.timestamp = timestamp;
  p.frame = std::move(w).take();
  // Pad to the Ethernet minimum frame size (without FCS).
  if (p.frame.size() < 60) p.frame.resize(60, 0);
  return p;
}

Ipv4Header make_ip_header(const FrameEndpoints& ep, IpProtocol proto,
                          std::size_t l4_size) {
  Ipv4Header ip;
  ip.protocol = static_cast<std::uint8_t>(proto);
  ip.src = ep.src_ip;
  ip.dst = ep.dst_ip;
  ip.total_length = static_cast<std::uint16_t>(Ipv4Header::kSize + l4_size);
  // Deterministic but varying identification derived from addresses/ports.
  ip.identification = static_cast<std::uint16_t>(
      (ep.src_ip.value() ^ ep.dst_ip.value() ^ (ep.src_port << 1) ^
       ep.dst_port ^ l4_size));
  return ip;
}

}  // namespace

Packet make_tcp_packet(double timestamp, const FrameEndpoints& ep,
                       std::span<const std::uint8_t> payload,
                       std::uint8_t flags, std::uint32_t seq,
                       std::uint32_t ack) {
  ByteWriter w;
  EthernetHeader eth{ep.dst_mac, ep.src_mac,
                     static_cast<std::uint16_t>(EtherType::kIpv4)};
  eth.encode(w);
  const Ipv4Header ip =
      make_ip_header(ep, IpProtocol::kTcp, TcpHeader::kSize + payload.size());
  ip.encode(w);
  TcpHeader tcp;
  tcp.src_port = ep.src_port;
  tcp.dst_port = ep.dst_port;
  tcp.seq = seq;
  tcp.ack = ack;
  tcp.flags = flags;
  tcp.encode(w, ip, payload);
  w.bytes(payload);
  return finish_frame(timestamp, std::move(w));
}

Packet make_udp_packet(double timestamp, const FrameEndpoints& ep,
                       std::span<const std::uint8_t> payload) {
  ByteWriter w;
  EthernetHeader eth{ep.dst_mac, ep.src_mac,
                     static_cast<std::uint16_t>(EtherType::kIpv4)};
  eth.encode(w);
  const Ipv4Header ip =
      make_ip_header(ep, IpProtocol::kUdp, UdpHeader::kSize + payload.size());
  ip.encode(w);
  UdpHeader udp;
  udp.src_port = ep.src_port;
  udp.dst_port = ep.dst_port;
  udp.encode(w, ip, payload);
  w.bytes(payload);
  return finish_frame(timestamp, std::move(w));
}

FrameEndpoints reverse(const FrameEndpoints& ep) noexcept {
  return FrameEndpoints{ep.dst_mac, ep.src_mac, ep.dst_ip,
                        ep.src_ip,  ep.dst_port, ep.src_port};
}

}  // namespace iotx::net
