#include "iotx/net/bytes.hpp"

namespace iotx::net {

void ByteWriter::u8(std::uint8_t v) { buffer_.push_back(v); }

void ByteWriter::u16be(std::uint16_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32be(std::uint32_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v >> 24));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 16));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u64be(std::uint64_t v) {
  u32be(static_cast<std::uint32_t>(v >> 32));
  u32be(static_cast<std::uint32_t>(v));
}

void ByteWriter::u16le(std::uint16_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32le(std::uint32_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 16));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 24));
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void ByteWriter::text(std::string_view data) { bytes(as_bytes(data)); }

void ByteWriter::patch_u16be(std::size_t offset, std::uint16_t v) {
  buffer_.at(offset) = static_cast<std::uint8_t>(v >> 8);
  buffer_.at(offset + 1) = static_cast<std::uint8_t>(v);
}

std::optional<std::uint8_t> ByteReader::u8() noexcept {
  if (remaining() < 1) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint16_t> ByteReader::u16be() noexcept {
  if (remaining() < 2) return std::nullopt;
  const std::uint16_t v = static_cast<std::uint16_t>(
      (std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::optional<std::uint32_t> ByteReader::u32be() noexcept {
  if (remaining() < 4) return std::nullopt;
  const std::uint32_t v = (std::uint32_t{data_[pos_]} << 24) |
                          (std::uint32_t{data_[pos_ + 1]} << 16) |
                          (std::uint32_t{data_[pos_ + 2]} << 8) |
                          data_[pos_ + 3];
  pos_ += 4;
  return v;
}

std::optional<std::uint64_t> ByteReader::u64be() noexcept {
  const auto hi = u32be();
  if (!hi) return std::nullopt;
  const auto lo = u32be();
  if (!lo) return std::nullopt;
  return (std::uint64_t{*hi} << 32) | *lo;
}

std::optional<std::uint16_t> ByteReader::u16le() noexcept {
  if (remaining() < 2) return std::nullopt;
  const std::uint16_t v = static_cast<std::uint16_t>(
      data_[pos_] | (std::uint16_t{data_[pos_ + 1]} << 8));
  pos_ += 2;
  return v;
}

std::optional<std::uint32_t> ByteReader::u32le() noexcept {
  if (remaining() < 4) return std::nullopt;
  const std::uint32_t v = data_[pos_] | (std::uint32_t{data_[pos_ + 1]} << 8) |
                          (std::uint32_t{data_[pos_ + 2]} << 16) |
                          (std::uint32_t{data_[pos_ + 3]} << 24);
  pos_ += 4;
  return v;
}

std::optional<std::span<const std::uint8_t>> ByteReader::bytes(
    std::size_t n) noexcept {
  if (remaining() < n) return std::nullopt;
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

bool ByteReader::skip(std::size_t n) noexcept {
  if (remaining() < n) return false;
  pos_ += n;
  return true;
}

std::span<const std::uint8_t> as_bytes(std::string_view text) noexcept {
  return {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()};
}

std::string to_string(std::span<const std::uint8_t> data) {
  return {reinterpret_cast<const char*>(data.data()), data.size()};
}

}  // namespace iotx::net
