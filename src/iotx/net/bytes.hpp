// Bounds-checked binary readers/writers.
//
// All wire formats in this project (Ethernet/IP/TCP/UDP/DNS/TLS, pcap) are
// serialized through these two classes; network byte order (big-endian) is
// the default, with explicit little-endian calls for the pcap file header.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace iotx::net {

/// Appends integers and buffers to a growing byte vector.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16be(std::uint16_t v);
  void u32be(std::uint32_t v);
  void u64be(std::uint64_t v);
  void u16le(std::uint16_t v);
  void u32le(std::uint32_t v);
  void bytes(std::span<const std::uint8_t> data);
  void text(std::string_view data);

  /// Overwrites 2 bytes at `offset` (used for length/checksum backpatching).
  void patch_u16be(std::size_t offset, std::uint16_t v);

  std::size_t size() const noexcept { return buffer_.size(); }
  const std::vector<std::uint8_t>& data() const noexcept { return buffer_; }
  std::vector<std::uint8_t> take() && noexcept { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Reads integers and buffers from a fixed span; all reads are checked and
/// return nullopt past the end (no exceptions in the parse hot path).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  std::optional<std::uint8_t> u8() noexcept;
  std::optional<std::uint16_t> u16be() noexcept;
  std::optional<std::uint32_t> u32be() noexcept;
  std::optional<std::uint64_t> u64be() noexcept;
  std::optional<std::uint16_t> u16le() noexcept;
  std::optional<std::uint32_t> u32le() noexcept;

  /// Reads exactly n bytes; nullopt if fewer remain.
  std::optional<std::span<const std::uint8_t>> bytes(std::size_t n) noexcept;

  /// Skips n bytes; false if fewer remain.
  bool skip(std::size_t n) noexcept;

  std::size_t position() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool at_end() const noexcept { return pos_ == data_.size(); }

  /// Remaining bytes without consuming them.
  std::span<const std::uint8_t> peek_rest() const noexcept {
    return data_.subspan(pos_);
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Reinterprets a string as a byte span (no copy).
std::span<const std::uint8_t> as_bytes(std::string_view text) noexcept;

/// Copies a byte span into a std::string.
std::string to_string(std::span<const std::uint8_t> data);

}  // namespace iotx::net
