// Captured packets and frame construction.
//
// A Packet is what tcpdump would hand us: a timestamp plus raw frame bytes.
// DecodedPacket is the parsed view every analysis consumes. The builder
// functions construct complete, checksum-correct Ethernet/IPv4/{TCP,UDP}
// frames; the testbed uses them to synthesize device traffic.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "iotx/net/address.hpp"
#include "iotx/net/headers.hpp"

namespace iotx::net {

/// A raw captured frame.
struct Packet {
  double timestamp = 0.0;  ///< seconds since epoch (sub-second precision)
  std::vector<std::uint8_t> frame;

  std::size_t size() const noexcept { return frame.size(); }
};

/// A non-owning raw frame: a timestamp plus a span aliasing bytes owned
/// elsewhere — typically the pcap file buffer acting as a per-capture
/// arena (see PcapCapture). The zero-copy ingest path parses, decodes,
/// and fans out entire captures without ever materializing per-packet
/// vectors; a PacketView must not outlive the buffer it aliases.
struct PacketView {
  double timestamp = 0.0;
  std::span<const std::uint8_t> frame;

  std::size_t size() const noexcept { return frame.size(); }
};

/// Borrowing view of an owning Packet.
inline PacketView view_of(const Packet& p) noexcept {
  return PacketView{p.timestamp, std::span<const std::uint8_t>(p.frame)};
}

/// Parsed view of a packet. Span members alias the frame bytes it was
/// decoded from — a Packet's own vector, or, on the zero-copy path, the
/// capture-wide arena a PacketView points into (PcapCapture::bytes). A
/// DecodedPacket must not outlive whichever buffer that is; sinks that
/// keep payload bytes past on_packet() must copy them (see
/// flow::PacketSink).
struct DecodedPacket {
  double timestamp = 0.0;
  EthernetHeader eth;
  Ipv4Header ip;
  bool is_tcp = false;
  bool is_udp = false;
  TcpHeader tcp;  ///< valid when is_tcp
  UdpHeader udp;  ///< valid when is_udp
  std::span<const std::uint8_t> payload;  ///< L4 payload (may be empty)
  std::size_t frame_size = 0;

  std::uint16_t src_port() const noexcept {
    return is_tcp ? tcp.src_port : (is_udp ? udp.src_port : 0);
  }
  std::uint16_t dst_port() const noexcept {
    return is_tcp ? tcp.dst_port : (is_udp ? udp.dst_port : 0);
  }
};

/// Decodes an Ethernet/IPv4/{TCP,UDP} frame; nullopt for anything else
/// (ARP, IPv6, truncated frames). Non-TCP/UDP IPv4 decodes with both
/// is_tcp and is_udp false and the payload spanning the L3 payload.
/// The DecodedPacket's payload span aliases `frame`.
std::optional<DecodedPacket> decode_frame(double timestamp,
                                          std::span<const std::uint8_t> frame);

/// decode_frame over an owning Packet (payload aliases packet.frame).
std::optional<DecodedPacket> decode_packet(const Packet& packet);

/// decode_frame over a borrowed PacketView (payload aliases view.frame).
inline std::optional<DecodedPacket> decode_packet(const PacketView& view) {
  return decode_frame(view.timestamp, view.frame);
}

/// Process-wide decode_packet() invocation count (relaxed atomic). The
/// single-decode invariant of flow::IngestPipeline is asserted against
/// deltas of this counter (tests/test_flow_pipeline.cpp) and reported by
/// bench/ingest_throughput.
std::uint64_t decode_packet_calls() noexcept;

/// Endpoint pair used by the builders.
struct FrameEndpoints {
  MacAddress src_mac;
  MacAddress dst_mac;
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
};

/// Builds a TCP segment carrying `payload` (flags default to PSH|ACK).
Packet make_tcp_packet(double timestamp, const FrameEndpoints& ep,
                       std::span<const std::uint8_t> payload,
                       std::uint8_t flags = TcpHeader::kPsh | TcpHeader::kAck,
                       std::uint32_t seq = 0, std::uint32_t ack = 0);

/// Builds a UDP datagram carrying `payload`.
Packet make_udp_packet(double timestamp, const FrameEndpoints& ep,
                       std::span<const std::uint8_t> payload);

/// Reverses the direction of an endpoint pair (for reply packets).
FrameEndpoints reverse(const FrameEndpoints& ep) noexcept;

}  // namespace iotx::net
