// Link-layer and network-layer addresses.
//
// The testbed splits captures per MAC address (paper §3.2 "using different
// files for each MAC address") and analyses key flows on IPv4 endpoints,
// so both types are regular value types with ordering and hashing.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace iotx::net {

/// 48-bit IEEE 802 MAC address.
class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::array<std::uint8_t, 6> octets)
      : octets_(octets) {}

  /// Parses "aa:bb:cc:dd:ee:ff" (case-insensitive). Nullopt if malformed.
  static std::optional<MacAddress> parse(std::string_view text);

  /// Canonical lowercase colon-separated form.
  std::string to_string() const;

  constexpr const std::array<std::uint8_t, 6>& octets() const noexcept {
    return octets_;
  }

  /// True for ff:ff:ff:ff:ff:ff.
  bool is_broadcast() const noexcept;

  /// True when the locally-administered bit is set.
  bool is_locally_administered() const noexcept;

  auto operator<=>(const MacAddress&) const = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

/// IPv4 address stored in host byte order for arithmetic convenience.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order)
      : value_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  /// Parses dotted-quad notation. Nullopt if malformed.
  static std::optional<Ipv4Address> parse(std::string_view text);

  std::string to_string() const;

  constexpr std::uint32_t value() const noexcept { return value_; }

  /// RFC 1918 private ranges plus loopback and link-local.
  bool is_private() const noexcept;

  /// 224.0.0.0/4 multicast.
  bool is_multicast() const noexcept;

  /// The limited broadcast address 255.255.255.255.
  bool is_limited_broadcast() const noexcept { return value() == 0xffffffffu; }

  /// A publicly routable unicast address: not private, not multicast, not
  /// broadcast, not 0.0.0.0/8. Only these count as Internet destinations
  /// in the analyses (the paper ignores LAN-internal traffic).
  bool is_global_unicast() const noexcept;

  /// True when this address lies inside prefix/len.
  bool in_prefix(Ipv4Address prefix, int prefix_len) const noexcept;

  auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace iotx::net

template <>
struct std::hash<iotx::net::MacAddress> {
  std::size_t operator()(const iotx::net::MacAddress& m) const noexcept {
    std::size_t h = 0;
    for (std::uint8_t o : m.octets()) h = h * 131 + o;
    return h;
  }
};

template <>
struct std::hash<iotx::net::Ipv4Address> {
  std::size_t operator()(const iotx::net::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
