// Classic libpcap file format (magic 0xa1b2c3d4, microsecond timestamps,
// LINKTYPE_ETHERNET), implemented from scratch.
//
// The testbed gateway captures like tcpdump would (paper §3.2), writing one
// pcap per device MAC; analyses can re-read those files, so the whole
// pipeline round-trips through the on-disk format the released intl-iot
// tooling consumes.
//
// Graceful degradation: a file whose trailing record was cut mid-write
// (capture box power loss) parses to the salvageable prefix instead of
// being rejected outright, and frames clipped by the writer's snaplen
// keep a truthful orig_len. Both anomalies are counted into the optional
// faults::CaptureHealth sink.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "iotx/faults/health.hpp"
#include "iotx/net/address.hpp"
#include "iotx/net/packet.hpp"

namespace iotx::net {

/// The snaplen the serializer declares and enforces: frames longer than
/// this are stored clipped (incl_len == kPcapSnapLen < orig_len).
inline constexpr std::uint32_t kPcapSnapLen = 262144;

/// Serializes a packet list to pcap file bytes (in memory). Oversized
/// frames are stored clipped to kPcapSnapLen with orig_len kept truthful.
std::vector<std::uint8_t> pcap_serialize(const std::vector<Packet>& packets);

/// Parses pcap file bytes. Returns nullopt on bad magic, a truncated
/// global header, or a non-Ethernet link type. A record truncated by a
/// mid-write cutoff does NOT reject the file: the packets parsed before
/// it are salvaged and `health->pcap_truncated_tail` is incremented.
/// Frames with incl_len < orig_len (snaplen clipping) parse to their
/// stored bytes and count into `health->snaplen_clipped_frames`. Both
/// big- and little-endian files are accepted; nanosecond magic
/// (0xa1b23c4d) is accepted and converted to seconds as well.
std::optional<std::vector<Packet>> pcap_parse(
    std::span<const std::uint8_t> file_bytes,
    faults::CaptureHealth* health = nullptr);

/// Zero-copy variant of pcap_parse: each PacketView's frame span aliases
/// `file_bytes`, which thus acts as the capture's arena — one contiguous
/// buffer for every payload instead of a vector per packet. The views
/// are valid only while `file_bytes` outlives them. Same magic/endian/
/// salvage/health semantics as pcap_parse (which is now a copying
/// wrapper over this).
std::optional<std::vector<PacketView>> pcap_parse_views(
    std::span<const std::uint8_t> file_bytes,
    faults::CaptureHealth* health = nullptr);

/// An owning zero-copy capture: the raw pcap file bytes plus views into
/// them. Moving a PcapCapture keeps the views valid — vector moves never
/// reallocate the heap buffer the spans alias.
struct PcapCapture {
  std::vector<std::uint8_t> bytes;  ///< the arena every view points into
  std::vector<PacketView> views;

  PcapCapture() = default;
  PcapCapture(std::vector<std::uint8_t> b, std::vector<PacketView> v)
      : bytes(std::move(b)), views(std::move(v)) {}
  PcapCapture(PcapCapture&&) = default;
  PcapCapture& operator=(PcapCapture&&) = default;
  // Copying would leave the new views aliasing the old buffer.
  PcapCapture(const PcapCapture&) = delete;
  PcapCapture& operator=(const PcapCapture&) = delete;
};

/// Reads a pcap file from disk into a self-owning zero-copy capture;
/// nullopt on I/O or unrecoverable parse error. Salvage/health semantics
/// match pcap_parse.
std::optional<PcapCapture> pcap_load(const std::string& path,
                                     faults::CaptureHealth* health = nullptr);

/// Writes packets to a pcap file on disk. Returns false on I/O error.
bool pcap_write_file(const std::string& path,
                     const std::vector<Packet>& packets);

/// Reads a pcap file from disk; nullopt on I/O or unrecoverable parse
/// error. Salvage/health semantics match pcap_parse.
std::optional<std::vector<Packet>> pcap_read_file(
    const std::string& path, faults::CaptureHealth* health = nullptr);

/// Splits a capture by source-or-destination MAC, mirroring the testbed's
/// per-device capture files. Broadcast MACs attribute to the sender only.
std::map<MacAddress, std::vector<Packet>> split_by_mac(
    const std::vector<Packet>& packets);

}  // namespace iotx::net
