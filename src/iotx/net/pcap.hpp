// Classic libpcap file format (magic 0xa1b2c3d4, microsecond timestamps,
// LINKTYPE_ETHERNET), implemented from scratch.
//
// The testbed gateway captures like tcpdump would (paper §3.2), writing one
// pcap per device MAC; analyses can re-read those files, so the whole
// pipeline round-trips through the on-disk format the released intl-iot
// tooling consumes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "iotx/net/address.hpp"
#include "iotx/net/packet.hpp"

namespace iotx::net {

/// Serializes a packet list to pcap file bytes (in memory).
std::vector<std::uint8_t> pcap_serialize(const std::vector<Packet>& packets);

/// Parses pcap file bytes. Returns nullopt on bad magic or truncated
/// records. Both big- and little-endian files are accepted; nanosecond
/// magic (0xa1b23c4d) is accepted and converted to seconds as well.
std::optional<std::vector<Packet>> pcap_parse(
    std::span<const std::uint8_t> file_bytes);

/// Writes packets to a pcap file on disk. Returns false on I/O error.
bool pcap_write_file(const std::string& path,
                     const std::vector<Packet>& packets);

/// Reads a pcap file from disk; nullopt on I/O or parse error.
std::optional<std::vector<Packet>> pcap_read_file(const std::string& path);

/// Splits a capture by source-or-destination MAC, mirroring the testbed's
/// per-device capture files. Broadcast MACs attribute to the sender only.
std::map<MacAddress, std::vector<Packet>> split_by_mac(
    const std::vector<Packet>& packets);

}  // namespace iotx::net
