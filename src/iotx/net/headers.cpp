#include "iotx/net/headers.hpp"

#include <algorithm>
#include <array>

namespace iotx::net {

namespace {

// Folds a 32-bit accumulated sum into a 16-bit one's-complement checksum.
std::uint16_t fold_checksum(std::uint32_t sum) noexcept {
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::uint32_t sum_bytes(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (std::uint32_t{data[i]} << 8) | data[i + 1];
  }
  if (i < data.size()) sum += std::uint32_t{data[i]} << 8;
  return sum;
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> data,
                                std::uint32_t initial) noexcept {
  return fold_checksum(initial + sum_bytes(data));
}

std::uint32_t pseudo_header_sum(const Ipv4Header& ip, std::uint8_t protocol,
                                std::uint16_t l4_length) noexcept {
  std::uint32_t sum = 0;
  sum += ip.src.value() >> 16;
  sum += ip.src.value() & 0xffff;
  sum += ip.dst.value() >> 16;
  sum += ip.dst.value() & 0xffff;
  sum += protocol;
  sum += l4_length;
  return sum;
}

void EthernetHeader::encode(ByteWriter& w) const {
  w.bytes(dst.octets());
  w.bytes(src.octets());
  w.u16be(ether_type);
}

std::optional<EthernetHeader> EthernetHeader::decode(ByteReader& r) {
  EthernetHeader h;
  const auto dst = r.bytes(6);
  const auto src = r.bytes(6);
  const auto type = r.u16be();
  if (!dst || !src || !type) return std::nullopt;
  std::array<std::uint8_t, 6> octets{};
  std::copy(dst->begin(), dst->end(), octets.begin());
  h.dst = MacAddress(octets);
  std::copy(src->begin(), src->end(), octets.begin());
  h.src = MacAddress(octets);
  h.ether_type = *type;
  return h;
}

void Ipv4Header::encode(ByteWriter& w) const {
  const std::size_t start = w.size();
  w.u8(0x45);  // version 4, IHL 5
  w.u8(dscp_ecn);
  w.u16be(total_length);
  w.u16be(identification);
  w.u16be(0x4000);  // flags: don't fragment
  w.u8(ttl);
  w.u8(protocol);
  w.u16be(0);  // checksum placeholder
  w.u32be(src.value());
  w.u32be(dst.value());
  const std::span<const std::uint8_t> header{w.data().data() + start, kSize};
  w.patch_u16be(start + 10, internet_checksum(header));
}

std::optional<Ipv4Header> Ipv4Header::decode(ByteReader& r) {
  const auto version_ihl = r.u8();
  if (!version_ihl || (*version_ihl >> 4) != 4) return std::nullopt;
  const std::size_t ihl = (*version_ihl & 0x0f) * 4u;
  if (ihl < kSize) return std::nullopt;

  Ipv4Header h;
  const auto dscp = r.u8();
  const auto total_len = r.u16be();
  const auto ident = r.u16be();
  const auto flags_frag = r.u16be();
  const auto ttl = r.u8();
  const auto proto = r.u8();
  const auto checksum = r.u16be();
  const auto src = r.u32be();
  const auto dst = r.u32be();
  if (!dscp || !total_len || !ident || !flags_frag || !ttl || !proto ||
      !checksum || !src || !dst) {
    return std::nullopt;
  }
  if (ihl > kSize && !r.skip(ihl - kSize)) return std::nullopt;
  h.dscp_ecn = *dscp;
  h.total_length = *total_len;
  h.identification = *ident;
  h.ttl = *ttl;
  h.protocol = *proto;
  h.src = Ipv4Address(*src);
  h.dst = Ipv4Address(*dst);
  return h;
}

void TcpHeader::encode(ByteWriter& w, const Ipv4Header& ip,
                       std::span<const std::uint8_t> payload) const {
  const std::size_t start = w.size();
  w.u16be(src_port);
  w.u16be(dst_port);
  w.u32be(seq);
  w.u32be(ack);
  w.u8(0x50);  // data offset 5 words
  w.u8(flags);
  w.u16be(window);
  w.u16be(0);  // checksum placeholder
  w.u16be(0);  // urgent pointer
  const auto l4_len = static_cast<std::uint16_t>(kSize + payload.size());
  std::uint32_t sum = pseudo_header_sum(
      ip, static_cast<std::uint8_t>(IpProtocol::kTcp), l4_len);
  const std::span<const std::uint8_t> header{w.data().data() + start, kSize};
  std::uint32_t acc = sum;
  // Sum header (checksum field currently zero) then payload.
  for (std::size_t i = 0; i + 1 < header.size(); i += 2) {
    acc += (std::uint32_t{header[i]} << 8) | header[i + 1];
  }
  w.patch_u16be(start + 16, internet_checksum(payload, acc));
}

std::optional<TcpHeader> TcpHeader::decode(ByteReader& r) {
  TcpHeader h;
  const auto sport = r.u16be();
  const auto dport = r.u16be();
  const auto seq = r.u32be();
  const auto ack = r.u32be();
  const auto offset_byte = r.u8();
  const auto flags = r.u8();
  const auto window = r.u16be();
  const auto checksum = r.u16be();
  const auto urgent = r.u16be();
  if (!sport || !dport || !seq || !ack || !offset_byte || !flags || !window ||
      !checksum || !urgent) {
    return std::nullopt;
  }
  const std::size_t data_offset = (*offset_byte >> 4) * 4u;
  if (data_offset < kSize) return std::nullopt;
  if (data_offset > kSize && !r.skip(data_offset - kSize)) return std::nullopt;
  h.src_port = *sport;
  h.dst_port = *dport;
  h.seq = *seq;
  h.ack = *ack;
  h.flags = *flags;
  h.window = *window;
  return h;
}

void UdpHeader::encode(ByteWriter& w, const Ipv4Header& ip,
                       std::span<const std::uint8_t> payload) const {
  const std::size_t start = w.size();
  const auto l4_len = static_cast<std::uint16_t>(kSize + payload.size());
  w.u16be(src_port);
  w.u16be(dst_port);
  w.u16be(l4_len);
  w.u16be(0);  // checksum placeholder
  std::uint32_t acc = pseudo_header_sum(
      ip, static_cast<std::uint8_t>(IpProtocol::kUdp), l4_len);
  const std::span<const std::uint8_t> header{w.data().data() + start, kSize};
  for (std::size_t i = 0; i + 1 < header.size(); i += 2) {
    acc += (std::uint32_t{header[i]} << 8) | header[i + 1];
  }
  std::uint16_t checksum = internet_checksum(payload, acc);
  if (checksum == 0) checksum = 0xffff;  // RFC 768: 0 means "no checksum"
  w.patch_u16be(start + 6, checksum);
}

std::optional<UdpHeader> UdpHeader::decode(ByteReader& r) {
  UdpHeader h;
  const auto sport = r.u16be();
  const auto dport = r.u16be();
  const auto length = r.u16be();
  const auto checksum = r.u16be();
  if (!sport || !dport || !length || !checksum) return std::nullopt;
  h.src_port = *sport;
  h.dst_port = *dport;
  return h;
}

}  // namespace iotx::net
