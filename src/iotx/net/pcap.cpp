#include "iotx/net/pcap.hpp"

#include <cmath>
#include <cstdio>
#include <memory>

#include "iotx/net/bytes.hpp"

namespace iotx::net {

namespace {
constexpr std::uint32_t kMagicMicro = 0xa1b2c3d4;
constexpr std::uint32_t kMagicNano = 0xa1b23c4d;
constexpr std::uint32_t kLinkTypeEthernet = 1;

struct FileCloser {
  void operator()(std::FILE* f) const noexcept {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

std::vector<std::uint8_t> pcap_serialize(const std::vector<Packet>& packets) {
  ByteWriter w;
  w.u32le(kMagicMicro);
  w.u16le(2);  // version major
  w.u16le(4);  // version minor
  w.u32le(0);  // thiszone
  w.u32le(0);  // sigfigs
  w.u32le(kPcapSnapLen);
  w.u32le(kLinkTypeEthernet);
  for (const Packet& p : packets) {
    auto seconds = static_cast<std::uint32_t>(p.timestamp);
    // A fraction that rounds up to a full second must carry into the
    // seconds field, not wrap to micros == 0 under the same second.
    auto micros = static_cast<std::uint32_t>(
        std::llround((p.timestamp - std::floor(p.timestamp)) * 1e6));
    if (micros >= 1000000) {
      seconds += micros / 1000000;
      micros %= 1000000;
    }
    const auto incl_len = static_cast<std::uint32_t>(
        std::min<std::size_t>(p.frame.size(), kPcapSnapLen));
    w.u32le(seconds);
    w.u32le(micros);
    w.u32le(incl_len);
    w.u32le(static_cast<std::uint32_t>(p.frame.size()));  // orig_len, truthful
    w.bytes(std::span(p.frame).first(incl_len));
  }
  return std::move(w).take();
}

std::optional<std::vector<PacketView>> pcap_parse_views(
    std::span<const std::uint8_t> file_bytes,
    faults::CaptureHealth* health) {
  ByteReader r(file_bytes);
  const auto magic_le = r.u32le();
  if (!magic_le) return std::nullopt;

  bool little_endian = true;
  bool nanosecond = false;
  switch (*magic_le) {
    case kMagicMicro:
      break;
    case kMagicNano:
      nanosecond = true;
      break;
    case 0xd4c3b2a1:  // byte-swapped micro
      little_endian = false;
      break;
    case 0x4d3cb2a1:  // byte-swapped nano
      little_endian = false;
      nanosecond = true;
      break;
    default:
      return std::nullopt;
  }

  const auto rd16 = [&]() { return little_endian ? r.u16le() : r.u16be(); };
  const auto rd32 = [&]() { return little_endian ? r.u32le() : r.u32be(); };

  const auto vmajor = rd16();
  const auto vminor = rd16();
  const auto thiszone = rd32();
  const auto sigfigs = rd32();
  const auto snaplen = rd32();
  const auto linktype = rd32();
  if (!vmajor || !vminor || !thiszone || !sigfigs || !snaplen || !linktype) {
    return std::nullopt;
  }
  if (*linktype != kLinkTypeEthernet) return std::nullopt;

  std::vector<PacketView> packets;
  while (!r.at_end()) {
    const auto seconds = rd32();
    const auto subsec = rd32();
    const auto incl_len = rd32();
    const auto orig_len = rd32();
    std::optional<std::span<const std::uint8_t>> data;
    if (seconds && subsec && incl_len && orig_len) data = r.bytes(*incl_len);
    if (!data) {
      // Record cut mid-write (capture-box power loss): salvage the
      // packets parsed so far instead of rejecting the whole file.
      if (health != nullptr) ++health->pcap_truncated_tail;
      break;
    }
    if (*incl_len < *orig_len && health != nullptr) {
      ++health->snaplen_clipped_frames;  // writer clipped past its snaplen
    }
    PacketView p;
    const double frac = nanosecond ? *subsec * 1e-9 : *subsec * 1e-6;
    p.timestamp = static_cast<double>(*seconds) + frac;
    p.frame = *data;  // aliases file_bytes: the file buffer is the arena
    packets.push_back(p);
  }
  return packets;
}

std::optional<std::vector<Packet>> pcap_parse(
    std::span<const std::uint8_t> file_bytes, faults::CaptureHealth* health) {
  auto views = pcap_parse_views(file_bytes, health);
  if (!views) return std::nullopt;
  std::vector<Packet> packets;
  packets.reserve(views->size());
  for (const PacketView& v : *views) {
    Packet p;
    p.timestamp = v.timestamp;
    p.frame.assign(v.frame.begin(), v.frame.end());
    packets.push_back(std::move(p));
  }
  return packets;
}

bool pcap_write_file(const std::string& path,
                     const std::vector<Packet>& packets) {
  const std::vector<std::uint8_t> bytes = pcap_serialize(packets);
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return false;
  return std::fwrite(bytes.data(), 1, bytes.size(), f.get()) == bytes.size();
}

namespace {

std::optional<std::vector<std::uint8_t>> read_file_bytes(
    const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  return bytes;
}

}  // namespace

std::optional<std::vector<Packet>> pcap_read_file(
    const std::string& path, faults::CaptureHealth* health) {
  const auto bytes = read_file_bytes(path);
  if (!bytes) return std::nullopt;
  return pcap_parse(*bytes, health);
}

std::optional<PcapCapture> pcap_load(const std::string& path,
                                     faults::CaptureHealth* health) {
  auto bytes = read_file_bytes(path);
  if (!bytes) return std::nullopt;
  auto views = pcap_parse_views(*bytes, health);
  if (!views) return std::nullopt;
  return PcapCapture(std::move(*bytes), std::move(*views));
}

std::map<MacAddress, std::vector<Packet>> split_by_mac(
    const std::vector<Packet>& packets) {
  std::map<MacAddress, std::vector<Packet>> out;
  for (const Packet& p : packets) {
    // Same decoder as every other consumer: a frame that the ingest
    // pipeline would reject as undecodable is not attributed to any unit.
    const auto d = decode_packet(p);
    if (!d) continue;
    out[d->eth.src].push_back(p);
    if (!d->eth.dst.is_broadcast() && d->eth.dst != d->eth.src) {
      out[d->eth.dst].push_back(p);
    }
  }
  return out;
}

}  // namespace iotx::net
