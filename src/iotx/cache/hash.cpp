#include "iotx/cache/hash.hpp"

#include <bit>
#include <cstring>

#include "iotx/util/simd.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define IOTX_SHA_X86 1
#endif

#if defined(__aarch64__) && defined(__ARM_FEATURE_SHA2)
#include <arm_neon.h>
#define IOTX_SHA_ARM 1
#endif

namespace iotx::cache {

namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

// Runs the 64 compression rounds for one block whose message schedule
// `w` is already expanded, updating `state` in place.
inline void compress_rounds(std::uint32_t* state,
                            const std::uint32_t* w) noexcept {
  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  for (int i = 0; i < 64; ++i) {
    std::uint32_t s1 = std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
    std::uint32_t ch = (e & f) ^ (~e & g);
    std::uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
    std::uint32_t s0 = std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
    std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

}  // namespace

namespace detail {

// Portable multi-block compression. The chaining value must flow from
// one block into the next, so the rounds themselves cannot be run in
// parallel across blocks of one stream — but the message schedules are
// pure functions of the input bytes. Expanding four schedules with the
// expansion loop interleaved (inner loop over blocks) gives the
// compiler four independent dependency chains per w[t], which it can
// software-pipeline or vectorize; the rounds then run back to back on
// schedules that are already hot in L1.
void sha256_blocks_portable(std::uint32_t* state, const std::uint8_t* data,
                            std::size_t blocks) noexcept {
  while (blocks >= 4) {
    std::uint32_t w[4][64];
    for (int j = 0; j < 4; ++j) {
      const std::uint8_t* block = data + 64 * j;
      for (int t = 0; t < 16; ++t) w[j][t] = load_be32(block + 4 * t);
    }
    for (int t = 16; t < 64; ++t) {
      for (int j = 0; j < 4; ++j) {
        std::uint32_t s0 = std::rotr(w[j][t - 15], 7) ^
                           std::rotr(w[j][t - 15], 18) ^ (w[j][t - 15] >> 3);
        std::uint32_t s1 = std::rotr(w[j][t - 2], 17) ^
                           std::rotr(w[j][t - 2], 19) ^ (w[j][t - 2] >> 10);
        w[j][t] = w[j][t - 16] + s0 + w[j][t - 7] + s1;
      }
    }
    for (int j = 0; j < 4; ++j) compress_rounds(state, w[j]);
    data += 256;
    blocks -= 4;
  }
  while (blocks > 0) {
    std::uint32_t w[64];
    for (int t = 0; t < 16; ++t) w[t] = load_be32(data + 4 * t);
    for (int t = 16; t < 64; ++t) {
      std::uint32_t s0 = std::rotr(w[t - 15], 7) ^ std::rotr(w[t - 15], 18) ^
                         (w[t - 15] >> 3);
      std::uint32_t s1 = std::rotr(w[t - 2], 17) ^ std::rotr(w[t - 2], 19) ^
                         (w[t - 2] >> 10);
      w[t] = w[t - 16] + s0 + w[t - 7] + s1;
    }
    compress_rounds(state, w);
    data += 64;
    --blocks;
  }
}

}  // namespace detail

namespace {

#if defined(IOTX_SHA_X86)
// SHA-NI two-rounds-per-instruction compression (Gulley et al. layout:
// state held as ABEF/CDGH vectors). Compiled with a per-function target
// attribute so the rest of the TU keeps the baseline ISA; only entered
// after the runtime simd::caps().sha_ni check.
__attribute__((target("sha,sse4.1,ssse3"))) void sha256_blocks_shani(
    std::uint32_t* state, const std::uint8_t* data,
    std::size_t blocks) noexcept {
  const __m128i kShuffle =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);    // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);         // CDGH

  while (blocks > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;
    __m128i msg, msgtmp;

    // Rounds 0-3
    msg = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0));
    __m128i msg0 = _mm_shuffle_epi8(msg, kShuffle);
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0xE9B5DBA5B5C0FBCFULL, 0x71374491428A2F98ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 4-7
    __m128i msg1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16));
    msg1 = _mm_shuffle_epi8(msg1, kShuffle);
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0xAB1C5ED5923F82A4ULL, 0x59F111F13956C25BULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11
    __m128i msg2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32));
    msg2 = _mm_shuffle_epi8(msg2, kShuffle);
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0x550C7DC3243185BEULL, 0x12835B01D807AA98ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15
    __m128i msg3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48));
    msg3 = _mm_shuffle_epi8(msg3, kShuffle);
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0xC19BF1749BDC06A7ULL, 0x80DEB1FE72BE5D74ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, msgtmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-19
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0x240CA1CC0FC19DC6ULL, 0xEFBE4786E49B69C1ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, msgtmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 20-23
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x76F988DA5CB0A9DCULL, 0x4A7484AA2DE92C6FULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, msgtmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 24-27
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0xBF597FC7B00327C8ULL, 0xA831C66D983E5152ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, msgtmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 28-31
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0x1429296706CA6351ULL, 0xD5A79147C6E00BF3ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, msgtmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 32-35
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0x53380D134D2C6DFCULL, 0x2E1B213827B70A85ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, msgtmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 36-39
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x92722C8581C2C92EULL, 0x766A0ABB650A7354ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, msgtmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 40-43
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0xC76C51A3C24B8B70ULL, 0xA81A664BA2BFE8A1ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, msgtmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 44-47
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0x106AA070F40E3585ULL, 0xD6990624D192E819ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, msgtmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 48-51
    msg = _mm_add_epi32(
        msg0, _mm_set_epi64x(0x34B0BCB52748774CULL, 0x1E376C0819A4C116ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, msgtmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 52-55
    msg = _mm_add_epi32(
        msg1, _mm_set_epi64x(0x682E6FF35B9CCA4FULL, 0x4ED8AA4A391C0CB3ULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, msgtmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 56-59
    msg = _mm_add_epi32(
        msg2, _mm_set_epi64x(0x8CC7020884C87814ULL, 0x78A5636F748F82EEULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msgtmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, msgtmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 60-63
    msg = _mm_add_epi32(
        msg3, _mm_set_epi64x(0xC67178F2BEF9A3F7ULL, 0xA4506CEB90BEFFFAULL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);

    data += 64;
    --blocks;
  }

  // Invert the ABEF/CDGH working layout back to linear a..h: after the
  // two shuffles tmp holds (e,f,a,b) and state1 holds (c,d,g,h) in
  // low-to-high lanes, so alignr picks out (a,b,c,d) and blend (e,f,g,h).
  tmp = _mm_shuffle_epi32(state0, 0xB1);
  state1 = _mm_shuffle_epi32(state1, 0x1B);
  state0 = _mm_alignr_epi8(state1, tmp, 8);
  state1 = _mm_blend_epi16(tmp, state1, 0xF0);

  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}
#endif  // IOTX_SHA_X86

#if defined(IOTX_SHA_ARM)
// ARMv8 crypto-extension compression. Only compiled when the build
// target enables SHA2 (__ARM_FEATURE_SHA2); simd::probe() zeroes the
// runtime bit otherwise, so this cannot be reached from a build that
// lacks the intrinsics.
void sha256_blocks_armv8(std::uint32_t* state, const std::uint8_t* data,
                         std::size_t blocks) noexcept {
  uint32x4_t state0 = vld1q_u32(&state[0]);
  uint32x4_t state1 = vld1q_u32(&state[4]);
  const std::uint32_t* k = kRoundConstants.data();

  while (blocks > 0) {
    const uint32x4_t abcd_save = state0;
    const uint32x4_t efgh_save = state1;

    uint32x4_t msg0 = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(data + 0)));
    uint32x4_t msg1 = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(data + 16)));
    uint32x4_t msg2 = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(data + 32)));
    uint32x4_t msg3 = vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(data + 48)));

    uint32x4_t tmp0 = vaddq_u32(msg0, vld1q_u32(&k[0]));
    uint32x4_t tmp1, tmp2;

    // Rounds 0-3
    msg0 = vsha256su0q_u32(msg0, msg1);
    tmp2 = state0;
    tmp1 = vaddq_u32(msg1, vld1q_u32(&k[4]));
    state0 = vsha256hq_u32(state0, state1, tmp0);
    state1 = vsha256h2q_u32(state1, tmp2, tmp0);
    msg0 = vsha256su1q_u32(msg0, msg2, msg3);

    // Rounds 4-7
    msg1 = vsha256su0q_u32(msg1, msg2);
    tmp2 = state0;
    tmp0 = vaddq_u32(msg2, vld1q_u32(&k[8]));
    state0 = vsha256hq_u32(state0, state1, tmp1);
    state1 = vsha256h2q_u32(state1, tmp2, tmp1);
    msg1 = vsha256su1q_u32(msg1, msg3, msg0);

    // Rounds 8-11
    msg2 = vsha256su0q_u32(msg2, msg3);
    tmp2 = state0;
    tmp1 = vaddq_u32(msg3, vld1q_u32(&k[12]));
    state0 = vsha256hq_u32(state0, state1, tmp0);
    state1 = vsha256h2q_u32(state1, tmp2, tmp0);
    msg2 = vsha256su1q_u32(msg2, msg0, msg1);

    // Rounds 12-15
    msg3 = vsha256su0q_u32(msg3, msg0);
    tmp2 = state0;
    tmp0 = vaddq_u32(msg0, vld1q_u32(&k[16]));
    state0 = vsha256hq_u32(state0, state1, tmp1);
    state1 = vsha256h2q_u32(state1, tmp2, tmp1);
    msg3 = vsha256su1q_u32(msg3, msg1, msg2);

    // Rounds 16-19
    msg0 = vsha256su0q_u32(msg0, msg1);
    tmp2 = state0;
    tmp1 = vaddq_u32(msg1, vld1q_u32(&k[20]));
    state0 = vsha256hq_u32(state0, state1, tmp0);
    state1 = vsha256h2q_u32(state1, tmp2, tmp0);
    msg0 = vsha256su1q_u32(msg0, msg2, msg3);

    // Rounds 20-23
    msg1 = vsha256su0q_u32(msg1, msg2);
    tmp2 = state0;
    tmp0 = vaddq_u32(msg2, vld1q_u32(&k[24]));
    state0 = vsha256hq_u32(state0, state1, tmp1);
    state1 = vsha256h2q_u32(state1, tmp2, tmp1);
    msg1 = vsha256su1q_u32(msg1, msg3, msg0);

    // Rounds 24-27
    msg2 = vsha256su0q_u32(msg2, msg3);
    tmp2 = state0;
    tmp1 = vaddq_u32(msg3, vld1q_u32(&k[28]));
    state0 = vsha256hq_u32(state0, state1, tmp0);
    state1 = vsha256h2q_u32(state1, tmp2, tmp0);
    msg2 = vsha256su1q_u32(msg2, msg0, msg1);

    // Rounds 28-31
    msg3 = vsha256su0q_u32(msg3, msg0);
    tmp2 = state0;
    tmp0 = vaddq_u32(msg0, vld1q_u32(&k[32]));
    state0 = vsha256hq_u32(state0, state1, tmp1);
    state1 = vsha256h2q_u32(state1, tmp2, tmp1);
    msg3 = vsha256su1q_u32(msg3, msg1, msg2);

    // Rounds 32-35
    msg0 = vsha256su0q_u32(msg0, msg1);
    tmp2 = state0;
    tmp1 = vaddq_u32(msg1, vld1q_u32(&k[36]));
    state0 = vsha256hq_u32(state0, state1, tmp0);
    state1 = vsha256h2q_u32(state1, tmp2, tmp0);
    msg0 = vsha256su1q_u32(msg0, msg2, msg3);

    // Rounds 36-39
    msg1 = vsha256su0q_u32(msg1, msg2);
    tmp2 = state0;
    tmp0 = vaddq_u32(msg2, vld1q_u32(&k[40]));
    state0 = vsha256hq_u32(state0, state1, tmp1);
    state1 = vsha256h2q_u32(state1, tmp2, tmp1);
    msg1 = vsha256su1q_u32(msg1, msg3, msg0);

    // Rounds 40-43
    msg2 = vsha256su0q_u32(msg2, msg3);
    tmp2 = state0;
    tmp1 = vaddq_u32(msg3, vld1q_u32(&k[44]));
    state0 = vsha256hq_u32(state0, state1, tmp0);
    state1 = vsha256h2q_u32(state1, tmp2, tmp0);
    msg2 = vsha256su1q_u32(msg2, msg0, msg1);

    // Rounds 44-47
    msg3 = vsha256su0q_u32(msg3, msg0);
    tmp2 = state0;
    tmp0 = vaddq_u32(msg0, vld1q_u32(&k[48]));
    state0 = vsha256hq_u32(state0, state1, tmp1);
    state1 = vsha256h2q_u32(state1, tmp2, tmp1);
    msg3 = vsha256su1q_u32(msg3, msg1, msg2);

    // Rounds 48-51
    tmp2 = state0;
    tmp1 = vaddq_u32(msg1, vld1q_u32(&k[52]));
    state0 = vsha256hq_u32(state0, state1, tmp0);
    state1 = vsha256h2q_u32(state1, tmp2, tmp0);

    // Rounds 52-55
    tmp2 = state0;
    tmp0 = vaddq_u32(msg2, vld1q_u32(&k[56]));
    state0 = vsha256hq_u32(state0, state1, tmp1);
    state1 = vsha256h2q_u32(state1, tmp2, tmp1);

    // Rounds 56-59
    tmp2 = state0;
    tmp1 = vaddq_u32(msg3, vld1q_u32(&k[60]));
    state0 = vsha256hq_u32(state0, state1, tmp0);
    state1 = vsha256h2q_u32(state1, tmp2, tmp0);

    // Rounds 60-63
    tmp2 = state0;
    state0 = vsha256hq_u32(state0, state1, tmp1);
    state1 = vsha256h2q_u32(state1, tmp2, tmp1);

    state0 = vaddq_u32(state0, abcd_save);
    state1 = vaddq_u32(state1, efgh_save);

    data += 64;
    --blocks;
  }

  vst1q_u32(&state[0], state0);
  vst1q_u32(&state[4], state1);
}
#endif  // IOTX_SHA_ARM

}  // namespace

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
             0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19} {}

void Sha256::process_blocks(const std::uint8_t* data, std::size_t blocks) {
  if (simd::force_scalar()) {
    for (std::size_t i = 0; i < blocks; ++i) process_block(data + 64 * i);
    return;
  }
#if defined(IOTX_SHA_X86)
  if (simd::caps().sha_ni) {
    sha256_blocks_shani(state_.data(), data, blocks);
    return;
  }
#endif
#if defined(IOTX_SHA_ARM)
  if (simd::caps().arm_sha2) {
    sha256_blocks_armv8(state_.data(), data, blocks);
    return;
  }
#endif
  detail::sha256_blocks_portable(state_.data(), data, blocks);
}

void Sha256::update(const void* data, std::size_t len) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  total_bytes_ += len;
  if (buffered_ > 0) {
    std::size_t take = std::min<std::size_t>(64 - buffered_, len);
    std::memcpy(buffer_.data() + buffered_, bytes, take);
    buffered_ += take;
    bytes += take;
    len -= take;
    if (buffered_ == 64) {
      process_blocks(buffer_.data(), 1);
      buffered_ = 0;
    }
  }
  if (len >= 64) {
    const std::size_t blocks = len / 64;
    process_blocks(bytes, blocks);
    bytes += blocks * 64;
    len -= blocks * 64;
  }
  if (len > 0) {
    std::memcpy(buffer_.data(), bytes, len);
    buffered_ = len;
  }
}

std::array<std::uint8_t, 32> Sha256::finish() {
  std::uint64_t bit_length = total_bytes_ * 8;
  const std::uint8_t pad = 0x80;
  update(&pad, 1);
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update(&zero, 1);
  std::array<std::uint8_t, 8> length_be;
  for (int i = 0; i < 8; ++i)
    length_be[i] = static_cast<std::uint8_t>(bit_length >> (8 * (7 - i)));
  update(length_be.data(), 8);

  std::array<std::uint8_t, 32> digest;
  for (int i = 0; i < 8; ++i) {
    digest[4 * i + 0] = static_cast<std::uint8_t>(state_[i] >> 24);
    digest[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    digest[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    digest[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return digest;
}

void Sha256::process_block(const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    std::uint32_t s0 = std::rotr(w[i - 15], 7) ^ std::rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    std::uint32_t s1 = std::rotr(w[i - 2], 17) ^ std::rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    std::uint32_t s1 = std::rotr(e, 6) ^ std::rotr(e, 11) ^ std::rotr(e, 25);
    std::uint32_t ch = (e & f) ^ (~e & g);
    std::uint32_t temp1 = h + s1 + ch + kRoundConstants[i] + w[i];
    std::uint32_t s0 = std::rotr(a, 2) ^ std::rotr(a, 13) ^ std::rotr(a, 22);
    std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    std::uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

std::array<std::uint8_t, 32> Sha256::hash(std::span<const std::uint8_t> data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

std::string Sha256::hex(const std::array<std::uint8_t, 32>& digest) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (std::uint8_t byte : digest) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0x0f]);
  }
  return out;
}

}  // namespace iotx::cache
