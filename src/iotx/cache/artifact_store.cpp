#include "iotx/cache/artifact_store.hpp"

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "iotx/cache/binio.hpp"
#include "iotx/obs/registry.hpp"

namespace iotx::cache {

namespace {

constexpr char kMagic[8] = {'I', 'O', 'T', 'X', 'A', 'R', 'T', '1'};
constexpr std::uint32_t kStoreFormatVersion = 1;
// magic + format version + payload size + payload SHA-256.
constexpr std::size_t kHeaderSize = sizeof(kMagic) + 4 + 8 + 32;

}  // namespace

StageKey::StageKey(std::string_view stage, std::string_view code_salt) {
  append("salt", "", code_salt.data(), code_salt.size());
  append("stage", "", stage.data(), stage.size());
}

void StageKey::append(std::string_view tag, std::string_view name, const void* data,
                      std::size_t len) {
  // Every component is length-prefixed so field boundaries cannot
  // alias regardless of content.
  BinWriter w;
  w.str(tag);
  w.str(name);
  w.u64(len);
  hasher_.update(w.buffer().data(), w.buffer().size());
  hasher_.update(data, len);
}

StageKey& StageKey::field(std::string_view name, std::string_view value) {
  append("s", name, value.data(), value.size());
  return *this;
}

StageKey& StageKey::field(std::string_view name, std::uint64_t value) {
  BinWriter w;
  w.u64(value);
  append("u", name, w.buffer().data(), w.buffer().size());
  return *this;
}

StageKey& StageKey::field(std::string_view name, std::int64_t value) {
  BinWriter w;
  w.i64(value);
  append("i", name, w.buffer().data(), w.buffer().size());
  return *this;
}

StageKey& StageKey::field(std::string_view name, double value) {
  BinWriter w;
  w.f64(value);
  append("d", name, w.buffer().data(), w.buffer().size());
  return *this;
}

StageKey& StageKey::field(std::string_view name, bool value) {
  BinWriter w;
  w.boolean(value);
  append("b", name, w.buffer().data(), w.buffer().size());
  return *this;
}

std::string StageKey::hex() const {
  Sha256 copy = hasher_;
  return Sha256::hex(copy.finish());
}

ArtifactStore::ArtifactStore(std::string root) : root_(std::move(root)) {}

std::string ArtifactStore::object_path(const std::string& key_hex) const {
  return root_ + "/" + key_hex.substr(0, 2) + "/" + key_hex + ".art";
}

std::optional<ArtifactStore::Loaded> ArtifactStore::load(const std::string& key_hex,
                                                         faults::CaptureHealth* health) {
  std::ifstream in(object_path(key_hex), std::ios::binary);
  if (!in) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  std::vector<std::uint8_t> file((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());

  auto corrupt = [&]() -> std::optional<Loaded> {
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (health != nullptr) ++health->cache_corrupt_artifacts;
    return std::nullopt;
  };

  if (file.size() < kHeaderSize) return corrupt();
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) return corrupt();
  const std::span<const std::uint8_t> whole(file.data(), file.size());
  BinReader header(whole.subspan(sizeof(kMagic), kHeaderSize - sizeof(kMagic)));
  std::uint32_t version = header.u32();
  std::uint64_t payload_size = header.u64();
  if (version != kStoreFormatVersion) return corrupt();
  if (payload_size != file.size() - kHeaderSize) return corrupt();

  const std::span<const std::uint8_t> payload = whole.subspan(kHeaderSize);
  auto digest = Sha256::hash(payload);
  if (std::memcmp(digest.data(), file.data() + kHeaderSize - 32, 32) != 0) return corrupt();

  hits_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(file.size(), std::memory_order_relaxed);
  Loaded loaded;
  loaded.payload.assign(payload.begin(), payload.end());
  loaded.content_hex = Sha256::hex(digest);
  return loaded;
}

std::string ArtifactStore::store(const std::string& key_hex,
                                 std::span<const std::uint8_t> payload) {
  namespace fs = std::filesystem;
  auto digest = Sha256::hash(payload);

  std::string final_path = object_path(key_hex);
  fs::create_directories(fs::path(final_path).parent_path());

  // Unique temp name per store call so concurrent workers writing the
  // same key never interleave; the final rename is atomic on POSIX.
  static std::atomic<std::uint64_t> temp_serial{0};
  std::string temp_path = final_path + ".tmp" +
                          std::to_string(temp_serial.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(temp_path, std::ios::binary | std::ios::trunc);
    BinWriter header;
    header.raw(kMagic, sizeof(kMagic));
    header.u32(kStoreFormatVersion);
    header.u64(payload.size());
    header.raw(digest.data(), digest.size());
    out.write(reinterpret_cast<const char*>(header.buffer().data()),
              static_cast<std::streamsize>(header.buffer().size()));
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
  }
  std::error_code ec;
  fs::rename(temp_path, final_path, ec);
  if (ec) fs::remove(temp_path, ec);

  stores_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(kHeaderSize + payload.size(), std::memory_order_relaxed);
  return Sha256::hex(digest);
}

ArtifactStoreStats ArtifactStore::stats() const {
  ArtifactStoreStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.corrupt = corrupt_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  s.orphan_claims_removed =
      orphan_claims_removed_.load(std::memory_order_relaxed);
  return s;
}

std::size_t ArtifactStore::remove_stale_temp_files() {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::size_t removed = 0;
  fs::recursive_directory_iterator it(root_, ec);
  if (ec) return 0;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    // store() names temps "<key>.art.tmp<serial>".
    if (entry.path().filename().string().find(".art.tmp") ==
        std::string::npos) {
      continue;
    }
    if (fs::remove(entry.path(), ec)) ++removed;
  }
  return removed;
}

std::size_t ArtifactStore::remove_orphaned_claims(std::uint64_t lease_ms) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::size_t removed = 0;
  fs::recursive_directory_iterator it(root_, ec);
  if (ec) return 0;
  const auto now = fs::file_time_type::clock::now();
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    const std::size_t claim_pos = name.find(".claim");
    if (claim_pos == std::string::npos) continue;
    bool orphaned = false;
    if (claim_pos + 6 < name.size()) {
      // ".claim.stage*" staging debris never survives a live try_claim;
      // anything left on disk belongs to a killed worker.
      orphaned = true;
    } else {
      // "<key>.claim": orphaned when its stage already finished (the
      // artifact exists — the owner died between store and release) or
      // when the owner stopped heartbeating for a whole lease.
      const fs::path artifact =
          entry.path().parent_path() / (name.substr(0, claim_pos) + ".art");
      if (fs::exists(artifact, ec)) {
        orphaned = true;
      } else {
        const fs::file_time_type mtime = fs::last_write_time(entry.path(), ec);
        orphaned = !ec && (now - mtime) > std::chrono::milliseconds(lease_ms);
      }
    }
    if (orphaned && fs::remove(entry.path(), ec) && !ec) ++removed;
  }
  orphan_claims_removed_.fetch_add(removed, std::memory_order_relaxed);
  return removed;
}

void ArtifactStore::publish_metrics() const {
  if (!obs::metrics_enabled()) return;
  auto& registry = obs::Registry::global();
  ArtifactStoreStats s = stats();
  registry.add(registry.counter("cache/hits"), s.hits);
  registry.add(registry.counter("cache/misses"), s.misses);
  registry.add(registry.counter("cache/stores"), s.stores);
  registry.add(registry.counter("cache/corrupt_artifacts"), s.corrupt);
  registry.add(registry.counter("cache/bytes_read"), s.bytes_read);
  registry.add(registry.counter("cache/bytes_written"), s.bytes_written);
  registry.add(registry.counter("cache/orphan_claims_removed"),
               s.orphan_claims_removed);
}

}  // namespace iotx::cache
