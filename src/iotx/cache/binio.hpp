#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace iotx::cache {

// Thrown by BinReader (and by artifact decoders built on it) when a
// serialized payload is malformed: truncated, over-long length prefix,
// out-of-range enum, etc. Callers treat it as "cache miss + corrupt
// artifact", never as a fatal error.
class CorruptArtifact : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Append-only little-endian binary writer. Doubles are serialized as
// their IEEE-754 bit pattern so a round-trip is exact — required for
// the warm-vs-cold byte-identical-tables invariant.
class BinWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(std::string_view s) {
    u64(s.size());
    raw(s.data(), s.size());
  }

  void raw(const void* data, std::size_t len) {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    out_.insert(out_.end(), bytes, bytes + len);
  }

  /// Length-prefixed bulk f64 write. On little-endian hosts the whole
  /// span is one memcpy of the IEEE-754 bit patterns — byte-identical to
  /// the per-element f64() loop it replaces — so flat double arrays
  /// (ml::Dataset rows, feature matrices) serialize without touching
  /// each element; big-endian hosts fall back to the loop.
  void f64_span(std::span<const double> values) {
    u64(values.size());
    if constexpr (std::endian::native == std::endian::little) {
      static_assert(sizeof(double) == 8);
      raw(values.data(), values.size() * sizeof(double));
    } else {
      for (double v : values) f64(v);
    }
  }

  /// Pre-sizes the buffer for a known payload (e.g. records * stride).
  void reserve(std::size_t additional_bytes) {
    out_.reserve(out_.size() + additional_bytes);
  }

  const std::vector<std::uint8_t>& buffer() const { return out_; }
  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

// Bounds-checked reader over a byte span. Every read that would run
// past the end throws CorruptArtifact; length prefixes are validated
// against the remaining byte count *before* any allocation so a
// corrupted prefix cannot trigger a huge reserve.
class BinReader {
 public:
  explicit BinReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() { return std::bit_cast<double>(u64()); }

  bool boolean() {
    std::uint8_t v = u8();
    if (v > 1) throw CorruptArtifact("boolean byte out of range");
    return v != 0;
  }

  std::string str() {
    std::uint64_t len = u64();
    need(len);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  /// Bulk counterpart of BinWriter::f64_span: length-prefixed f64 array,
  /// one memcpy on little-endian hosts.
  std::vector<double> f64_span() {
    const std::size_t n = length(8);
    std::vector<double> values;
    if constexpr (std::endian::native == std::endian::little) {
      values.resize(n);
      std::memcpy(values.data(), data_.data() + pos_, n * sizeof(double));
      pos_ += n * sizeof(double);
    } else {
      values.reserve(n);
      for (std::size_t i = 0; i < n; ++i) values.push_back(f64());
    }
    return values;
  }

  // Reads an element-count prefix and checks that `count *
  // min_bytes_per_element` still fits in the remaining payload.
  std::size_t length(std::size_t min_bytes_per_element) {
    std::uint64_t n = u64();
    std::size_t left = remaining();
    if (min_bytes_per_element == 0) min_bytes_per_element = 1;
    if (n > left / min_bytes_per_element)
      throw CorruptArtifact("length prefix exceeds remaining payload");
    return static_cast<std::size_t>(n);
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  void need(std::uint64_t n) const {
    if (n > remaining()) throw CorruptArtifact("payload truncated");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace iotx::cache
