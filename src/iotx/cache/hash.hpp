#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace iotx::cache {

// Streaming SHA-256 (FIPS 180-4). Used both for content digests of
// stored artifact payloads and for deriving stage cache keys from
// canonical serialized inputs. Copyable: StageKey snapshots the
// running state to produce a digest without consuming the builder.
class Sha256 {
 public:
  Sha256();

  void update(const void* data, std::size_t len);
  void update(std::span<const std::uint8_t> data) { update(data.data(), data.size()); }
  void update(std::string_view s) { update(s.data(), s.size()); }

  // Finalizes and returns the digest. Consumes the instance's state;
  // copy first if more input will follow.
  std::array<std::uint8_t, 32> finish();

  static std::array<std::uint8_t, 32> hash(std::span<const std::uint8_t> data);
  static std::string hex(const std::array<std::uint8_t, 32>& digest);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace iotx::cache
