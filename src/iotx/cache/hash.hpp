#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace iotx::cache {

namespace detail {
/// Portable schedule-interleaved SHA-256 compression over `blocks`
/// consecutive 64-byte blocks. Exposed so equivalence tests can pin
/// this variant even on hosts where hardware dispatch would win.
void sha256_blocks_portable(std::uint32_t* state, const std::uint8_t* data,
                            std::size_t blocks) noexcept;
}  // namespace detail

// Streaming SHA-256 (FIPS 180-4). Used both for content digests of
// stored artifact payloads and for deriving stage cache keys from
// canonical serialized inputs. Copyable: StageKey snapshots the
// running state to produce a digest without consuming the builder.
//
// Bulk input is compressed through process_blocks(), which dispatches
// via the iotx::simd shim: SHA-NI on x86-64 and the ARMv8 crypto
// extension where available, otherwise a 4-block schedule-interleaved
// portable loop. The one-block scalar process_block() stays as the
// oracle (simd::force_scalar() pins it); every variant produces the
// same digest bit-for-bit — verified against the NIST CAVS vectors at
// every streaming split point in tests/test_simd_equivalence.cpp.
class Sha256 {
 public:
  Sha256();

  void update(const void* data, std::size_t len);
  void update(std::span<const std::uint8_t> data) { update(data.data(), data.size()); }
  void update(std::string_view s) { update(s.data(), s.size()); }

  // Finalizes and returns the digest. Consumes the instance's state;
  // copy first if more input will follow.
  std::array<std::uint8_t, 32> finish();

  static std::array<std::uint8_t, 32> hash(std::span<const std::uint8_t> data);
  static std::string hex(const std::array<std::uint8_t, 32>& digest);

 private:
  void process_block(const std::uint8_t* block);  ///< scalar oracle
  /// Compresses `blocks` consecutive 64-byte blocks (simd-dispatched).
  void process_blocks(const std::uint8_t* data, std::size_t blocks);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace iotx::cache
