#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "iotx/cache/hash.hpp"
#include "iotx/faults/health.hpp"

namespace iotx::cache {

// Code-version salt folded into every stage key. Bump whenever the
// serialized artifact layout or the semantics of a cached stage
// change, so stale artifacts become misses instead of poisoning runs.
inline constexpr std::string_view kCodeVersionSalt = "iotx-cache-v3";

// Deterministic cache-key builder: a SHA-256 over labeled,
// length-prefixed input fields. Labels keep adjacent fields from
// aliasing ("ab"+"c" vs "a"+"bc"), and every numeric field is hashed
// as fixed-width little-endian bytes (doubles as IEEE-754 bits), so a
// key is a pure function of the stage's canonical inputs on any host.
class StageKey {
 public:
  explicit StageKey(std::string_view stage, std::string_view code_salt = kCodeVersionSalt);

  StageKey& field(std::string_view name, std::string_view value);
  /// Without this overload a string literal would convert to bool.
  StageKey& field(std::string_view name, const char* value) {
    return field(name, std::string_view(value));
  }
  StageKey& field(std::string_view name, std::uint64_t value);
  StageKey& field(std::string_view name, std::int64_t value);
  StageKey& field(std::string_view name, double value);
  StageKey& field(std::string_view name, bool value);

  // Digest of everything appended so far; does not consume the
  // builder (more fields may follow, producing a different key).
  std::string hex() const;

 private:
  void append(std::string_view tag, std::string_view name, const void* data, std::size_t len);

  Sha256 hasher_;
};

struct ArtifactStoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t corrupt = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t orphan_claims_removed = 0;

  std::uint64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    return lookups() == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups());
  }
};

// Content-addressed on-disk artifact store. Artifacts live at
// `<root>/<key[0:2]>/<key>.art` where `key` is the 64-hex-digit stage
// key; each file carries a magic + format version + payload size +
// payload SHA-256 header so truncation and bit-rot are detected on
// load and degrade to a recompute (counted in CaptureHealth) rather
// than crashing or silently corrupting tables. Thread-safe: stores
// write to a unique temp file and rename into place; counters are
// atomics.
class ArtifactStore {
 public:
  explicit ArtifactStore(std::string root);

  struct Loaded {
    std::vector<std::uint8_t> payload;
    // Hex SHA-256 of the payload — used to chain downstream stage
    // keys on the *content* of upstream artifacts.
    std::string content_hex;
  };

  // nullopt on miss or on a corrupt/truncated artifact (the latter
  // also bumps `health->cache_corrupt_artifacts` when health is given).
  std::optional<Loaded> load(const std::string& key_hex,
                             faults::CaptureHealth* health = nullptr);

  // Persists the payload under the key; returns its content digest.
  std::string store(const std::string& key_hex, std::span<const std::uint8_t> payload);

  ArtifactStoreStats stats() const;
  const std::string& root() const { return root_; }

  // Mirrors the current counters into the global obs registry (no-op
  // when metrics are disabled).
  void publish_metrics() const;

  // Deletes leftover ".tmp<serial>" files under the root — the debris a
  // killed process leaves between temp-write and rename. Finished
  // artifacts are never touched (the rename is atomic, so a *.art file
  // is always whole). Returns the number of files removed. Call from a
  // single owner (e.g. the CLI after an interrupted study); racing a
  // concurrent writer could delete its in-flight temp and lose one
  // store (never corrupt one).
  std::size_t remove_stale_temp_files();

  // Removes orphaned "<key>.claim" files — debris of the dist
  // work-claiming protocol (dist::ClaimStore) when a worker fleet
  // crashes. A claim is an orphan when its artifact already exists (the
  // stage finished but the owner died before releasing) or when its
  // mtime is older than `lease_ms` (the owner stopped heartbeating).
  // Also sweeps ".claim.stage*" staging debris. Counted in stats() and
  // published as `cache/orphan_claims_removed`, so a wedged store is
  // visible in /metrics rather than silently slowing a fleet. Returns
  // the number of files removed.
  std::size_t remove_orphaned_claims(std::uint64_t lease_ms = 60'000);

 private:
  std::string object_path(const std::string& key_hex) const;

  std::string root_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> stores_{0};
  std::atomic<std::uint64_t> corrupt_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> orphan_claims_removed_{0};
};

}  // namespace iotx::cache
