// DHCP (RFC 2131) build/parse: the Discover/Offer/Request/Ack boot
// exchange IoT devices perform on every (re)connect. The paper verified
// idle-time "power" detections against DHCP server logs (§7.2); the
// gateway keeps the same log here.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "iotx/net/address.hpp"

namespace iotx::proto {

enum class DhcpMessageType : std::uint8_t {
  kDiscover = 1,
  kOffer = 2,
  kRequest = 3,
  kAck = 5,
};

std::string_view dhcp_type_name(DhcpMessageType t) noexcept;

struct DhcpMessage {
  DhcpMessageType type = DhcpMessageType::kDiscover;
  std::uint32_t transaction_id = 0;
  net::MacAddress client_mac;
  net::Ipv4Address client_ip;    ///< ciaddr (0 during discovery)
  net::Ipv4Address your_ip;      ///< yiaddr (server-assigned)
  net::Ipv4Address server_ip;    ///< siaddr
  std::string hostname;          ///< option 12, what IoT devices announce

  /// Serializes the 236-byte BOOTP header + magic cookie + options.
  std::vector<std::uint8_t> encode() const;
  static std::optional<DhcpMessage> decode(std::span<const std::uint8_t> data);
};

/// True when the payload begins with a plausible BOOTP header.
bool looks_like_dhcp(std::span<const std::uint8_t> data) noexcept;

}  // namespace iotx::proto
