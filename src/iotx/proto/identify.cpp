#include "iotx/proto/identify.hpp"

#include "iotx/proto/dhcp.hpp"
#include "iotx/proto/http.hpp"
#include "iotx/proto/ntp.hpp"
#include "iotx/proto/tls.hpp"

namespace iotx::proto {

namespace {
constexpr std::uint16_t kPortDns = 53;
constexpr std::uint16_t kPortMdns = 5353;
constexpr std::uint16_t kPortSsdp = 1900;
constexpr std::uint16_t kPortDhcpServer = 67;
constexpr std::uint16_t kPortDhcpClient = 68;
constexpr std::uint16_t kPortNtp = 123;
constexpr std::uint16_t kPortHttp = 80;
constexpr std::uint16_t kPortHttpAlt = 8080;
constexpr std::uint16_t kPortHttps = 443;
constexpr std::uint16_t kPortRtsp = 554;

bool port_match(const net::DecodedPacket& p, std::uint16_t port) noexcept {
  return p.src_port() == port || p.dst_port() == port;
}
}  // namespace

std::string_view protocol_name(ProtocolId id) noexcept {
  switch (id) {
    case ProtocolId::kDns: return "DNS";
    case ProtocolId::kMdns: return "mDNS";
    case ProtocolId::kSsdp: return "SSDP";
    case ProtocolId::kDhcp: return "DHCP";
    case ProtocolId::kNtp: return "NTP";
    case ProtocolId::kHttp: return "HTTP";
    case ProtocolId::kTls: return "TLS";
    case ProtocolId::kQuic: return "QUIC";
    case ProtocolId::kRtsp: return "RTSP";
    case ProtocolId::kUnknown: break;
  }
  return "unknown";
}

ProtocolId identify_protocol(const net::DecodedPacket& p) noexcept {
  const auto payload = p.payload;
  if (p.is_udp) {
    if (port_match(p, kPortMdns)) return ProtocolId::kMdns;
    if (port_match(p, kPortDns)) return ProtocolId::kDns;
    if (port_match(p, kPortSsdp)) return ProtocolId::kSsdp;
    if ((port_match(p, kPortDhcpServer) || port_match(p, kPortDhcpClient)) &&
        looks_like_dhcp(payload)) {
      return ProtocolId::kDhcp;
    }
    if (port_match(p, kPortNtp) && looks_like_ntp(payload)) {
      return ProtocolId::kNtp;
    }
    // QUIC: long-header bit on 443/UDP.
    if (port_match(p, kPortHttps) && !payload.empty() &&
        (payload[0] & 0x80) != 0) {
      return ProtocolId::kQuic;
    }
    return ProtocolId::kUnknown;
  }
  if (p.is_tcp) {
    if (payload.empty()) return ProtocolId::kUnknown;
    if (looks_like_tls(payload)) return ProtocolId::kTls;
    if (looks_like_http(payload)) {
      return port_match(p, kPortRtsp) ? ProtocolId::kRtsp : ProtocolId::kHttp;
    }
    if (port_match(p, kPortHttps)) return ProtocolId::kTls;
    if ((port_match(p, kPortHttp) || port_match(p, kPortHttpAlt)) &&
        looks_like_http(payload)) {
      return ProtocolId::kHttp;
    }
    return ProtocolId::kUnknown;
  }
  return ProtocolId::kUnknown;
}

std::string_view encoding_name(ContentEncoding e) noexcept {
  switch (e) {
    case ContentEncoding::kGzip: return "gzip";
    case ContentEncoding::kZlib: return "zlib";
    case ContentEncoding::kJpeg: return "jpeg";
    case ContentEncoding::kPng: return "png";
    case ContentEncoding::kMp4: return "mp4";
    case ContentEncoding::kMpegTs: return "mpeg-ts";
    case ContentEncoding::kMp3: return "mp3";
    case ContentEncoding::kWav: return "wav";
    case ContentEncoding::kH264AnnexB: return "h264";
    case ContentEncoding::kNone: break;
  }
  return "none";
}

ContentEncoding detect_encoding(
    std::span<const std::uint8_t> d) noexcept {
  if (d.size() >= 2 && d[0] == 0x1f && d[1] == 0x8b) {
    return ContentEncoding::kGzip;
  }
  if (d.size() >= 2 && d[0] == 0x78 &&
      (d[1] == 0x01 || d[1] == 0x9c || d[1] == 0xda)) {
    return ContentEncoding::kZlib;
  }
  if (d.size() >= 3 && d[0] == 0xff && d[1] == 0xd8 && d[2] == 0xff) {
    return ContentEncoding::kJpeg;
  }
  if (d.size() >= 8 && d[0] == 0x89 && d[1] == 'P' && d[2] == 'N' &&
      d[3] == 'G' && d[4] == 0x0d && d[5] == 0x0a && d[6] == 0x1a &&
      d[7] == 0x0a) {
    return ContentEncoding::kPng;
  }
  if (d.size() >= 8 && d[4] == 'f' && d[5] == 't' && d[6] == 'y' &&
      d[7] == 'p') {
    return ContentEncoding::kMp4;
  }
  if (d.size() >= 1 && d[0] == 0x47 && d.size() % 188 == 0 &&
      d.size() >= 188) {
    return ContentEncoding::kMpegTs;
  }
  if (d.size() >= 3 &&
      ((d[0] == 'I' && d[1] == 'D' && d[2] == '3') ||
       (d[0] == 0xff && (d[1] & 0xe0) == 0xe0 && (d[1] & 0x06) != 0))) {
    return ContentEncoding::kMp3;
  }
  if (d.size() >= 12 && d[0] == 'R' && d[1] == 'I' && d[2] == 'F' &&
      d[3] == 'F' && d[8] == 'W' && d[9] == 'A' && d[10] == 'V' &&
      d[11] == 'E') {
    return ContentEncoding::kWav;
  }
  if (d.size() >= 4 && d[0] == 0x00 && d[1] == 0x00 && d[2] == 0x00 &&
      d[3] == 0x01) {
    return ContentEncoding::kH264AnnexB;
  }
  return ContentEncoding::kNone;
}

}  // namespace iotx::proto
