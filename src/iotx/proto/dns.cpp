#include "iotx/proto/dns.hpp"

#include "iotx/net/bytes.hpp"
#include "iotx/util/strings.hpp"

namespace iotx::proto {

using net::ByteReader;
using net::ByteWriter;

namespace {

// Encodes a dotted name as length-prefixed labels plus the root label.
bool encode_name(ByteWriter& w, const std::string& name) {
  if (!is_valid_dns_name(name)) return false;
  for (const std::string& label : util::split(name, '.')) {
    w.u8(static_cast<std::uint8_t>(label.size()));
    w.text(label);
  }
  w.u8(0);
  return true;
}

// Decodes a possibly-compressed name starting at the reader's position.
// `whole` is the full message for pointer chasing.
std::optional<std::string> decode_name(ByteReader& r,
                                       std::span<const std::uint8_t> whole) {
  std::string out;
  int hops = 0;
  // Pointer-following happens on a secondary reader so the caller's
  // position ends just after the first pointer (per RFC 1035 §4.1.4).
  ByteReader* cur = &r;
  std::optional<ByteReader> jumped;
  while (true) {
    const auto len = cur->u8();
    if (!len) return std::nullopt;
    if (*len == 0) break;
    if ((*len & 0xc0) == 0xc0) {  // compression pointer
      const auto low = cur->u8();
      if (!low) return std::nullopt;
      if (++hops > 32) return std::nullopt;  // loop guard
      const std::size_t offset = ((*len & 0x3f) << 8) | *low;
      if (offset >= whole.size()) return std::nullopt;
      jumped.emplace(whole.subspan(offset));
      cur = &*jumped;
      continue;
    }
    if (*len > 63) return std::nullopt;
    const auto label = cur->bytes(*len);
    if (!label) return std::nullopt;
    if (!out.empty()) out.push_back('.');
    out.append(reinterpret_cast<const char*>(label->data()), label->size());
  }
  return out;
}

}  // namespace

bool is_valid_dns_name(const std::string& name) {
  if (name.empty() || name.size() > 253) return false;
  for (const std::string& label : util::split(name, '.')) {
    if (label.empty() || label.size() > 63) return false;
  }
  return true;
}

std::optional<net::Ipv4Address> DnsRecord::address() const {
  if (rtype != static_cast<std::uint16_t>(DnsType::kA) || rdata.size() != 4) {
    return std::nullopt;
  }
  return net::Ipv4Address(rdata[0], rdata[1], rdata[2], rdata[3]);
}

std::vector<std::uint8_t> DnsMessage::encode() const {
  ByteWriter w;
  w.u16be(id);
  std::uint16_t flags = 0;
  if (is_response) flags |= 0x8000;
  if (recursion_desired) flags |= 0x0100;
  if (is_response) flags |= 0x0080;  // recursion available
  flags |= rcode & 0x0f;
  w.u16be(flags);
  w.u16be(static_cast<std::uint16_t>(questions.size()));
  w.u16be(static_cast<std::uint16_t>(answers.size()));
  w.u16be(0);  // authority
  w.u16be(0);  // additional
  for (const DnsQuestion& q : questions) {
    encode_name(w, q.name);
    w.u16be(q.qtype);
    w.u16be(q.qclass);
  }
  for (const DnsRecord& rec : answers) {
    encode_name(w, rec.name);
    w.u16be(rec.rtype);
    w.u16be(rec.rclass);
    w.u32be(rec.ttl);
    if (!rec.rdata_name.empty()) {
      // Name-valued rdata (CNAME/NS/PTR): encode and backpatch length.
      const std::size_t len_at = w.size();
      w.u16be(0);
      const std::size_t start = w.size();
      encode_name(w, rec.rdata_name);
      w.patch_u16be(len_at, static_cast<std::uint16_t>(w.size() - start));
    } else {
      w.u16be(static_cast<std::uint16_t>(rec.rdata.size()));
      w.bytes(rec.rdata);
    }
  }
  return std::move(w).take();
}

std::optional<DnsMessage> DnsMessage::decode(
    std::span<const std::uint8_t> data) {
  ByteReader r(data);
  DnsMessage m;
  const auto id = r.u16be();
  const auto flags = r.u16be();
  const auto qd = r.u16be();
  const auto an = r.u16be();
  const auto ns = r.u16be();
  const auto ar = r.u16be();
  if (!id || !flags || !qd || !an || !ns || !ar) return std::nullopt;
  m.id = *id;
  m.is_response = (*flags & 0x8000) != 0;
  m.recursion_desired = (*flags & 0x0100) != 0;
  m.rcode = *flags & 0x0f;

  for (std::uint16_t i = 0; i < *qd; ++i) {
    DnsQuestion q;
    const auto name = decode_name(r, data);
    const auto qtype = r.u16be();
    const auto qclass = r.u16be();
    if (!name || !qtype || !qclass) return std::nullopt;
    q.name = *name;
    q.qtype = *qtype;
    q.qclass = *qclass;
    m.questions.push_back(std::move(q));
  }

  const std::uint32_t record_count = *an + *ns + *ar;
  for (std::uint32_t i = 0; i < record_count; ++i) {
    DnsRecord rec;
    const auto name = decode_name(r, data);
    const auto rtype = r.u16be();
    const auto rclass = r.u16be();
    const auto ttl = r.u32be();
    const auto rdlen = r.u16be();
    if (!name || !rtype || !rclass || !ttl || !rdlen) return std::nullopt;
    const std::size_t rdata_at = r.position();
    const auto rdata = r.bytes(*rdlen);
    if (!rdata) return std::nullopt;
    rec.name = *name;
    rec.rtype = *rtype;
    rec.rclass = *rclass;
    rec.ttl = *ttl;
    rec.rdata.assign(rdata->begin(), rdata->end());
    const bool name_valued =
        rec.rtype == static_cast<std::uint16_t>(DnsType::kCname) ||
        rec.rtype == static_cast<std::uint16_t>(DnsType::kNs) ||
        rec.rtype == static_cast<std::uint16_t>(DnsType::kPtr);
    if (name_valued) {
      ByteReader rd(data.subspan(rdata_at));
      if (auto decoded = decode_name(rd, data)) rec.rdata_name = *decoded;
    }
    if (i < *an) m.answers.push_back(std::move(rec));
    // Authority/additional records are parsed for well-formedness but
    // dropped; the analyses only need answers.
  }
  return m;
}

DnsMessage make_query(std::uint16_t id, const std::string& name) {
  DnsMessage m;
  m.id = id;
  m.questions.push_back(DnsQuestion{name});
  return m;
}

DnsMessage make_response(const DnsMessage& query, net::Ipv4Address addr,
                         std::uint32_t ttl) {
  DnsMessage m;
  m.id = query.id;
  m.is_response = true;
  m.questions = query.questions;
  if (!query.questions.empty()) {
    DnsRecord rec;
    rec.name = query.questions.front().name;
    rec.ttl = ttl;
    const std::uint32_t v = addr.value();
    rec.rdata = {static_cast<std::uint8_t>(v >> 24),
                 static_cast<std::uint8_t>(v >> 16),
                 static_cast<std::uint8_t>(v >> 8),
                 static_cast<std::uint8_t>(v)};
    m.answers.push_back(std::move(rec));
  }
  return m;
}

}  // namespace iotx::proto
