// Minimal TLS 1.2 record layer and ClientHello, sufficient to (a) emit
// realistic handshakes carrying an SNI, and (b) extract the Server Name
// Indication from captures — the paper's fallback for attributing flows to
// domains (§4.1: "we search ... TLS handshakes (Server Name Indication
// field) for the domain").
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace iotx::proto {

/// TLS record content types.
enum class TlsContentType : std::uint8_t {
  kChangeCipherSpec = 20,
  kAlert = 21,
  kHandshake = 22,
  kApplicationData = 23,
};

/// One TLS record (header + opaque fragment).
struct TlsRecord {
  TlsContentType content_type = TlsContentType::kHandshake;
  std::uint16_t version = 0x0303;  // TLS 1.2
  std::vector<std::uint8_t> fragment;

  std::vector<std::uint8_t> encode() const;
};

/// Parses all complete TLS records at the start of `data`. Stops at the
/// first byte sequence that is not a TLS record header. Records truncated
/// by the segment boundary are skipped.
std::vector<TlsRecord> parse_tls_records(std::span<const std::uint8_t> data);

/// Parsed view of a ClientHello.
struct ClientHello {
  std::uint16_t version = 0x0303;
  std::vector<std::uint8_t> random;  ///< 32 bytes
  std::vector<std::uint16_t> cipher_suites;
  std::string sni;  ///< empty when the extension is absent
};

/// Builds a handshake record containing a ClientHello with the given SNI
/// and cipher suites. `random32` must have exactly 32 bytes.
std::vector<std::uint8_t> build_client_hello(
    const std::string& sni, std::span<const std::uint16_t> cipher_suites,
    std::span<const std::uint8_t> random32);

/// Parses a ClientHello handshake from raw TLS record bytes (e.g. the first
/// TCP segment of a connection). Returns nullopt if the bytes do not start
/// with a well-formed ClientHello record.
std::optional<ClientHello> parse_client_hello(
    std::span<const std::uint8_t> data);

/// Extracts just the SNI (empty optional when not a ClientHello or no SNI).
std::optional<std::string> extract_sni(std::span<const std::uint8_t> data);

/// Builds an application-data record wrapping `ciphertext`.
std::vector<std::uint8_t> build_application_data(
    std::span<const std::uint8_t> ciphertext);

/// True if `data` plausibly begins with a TLS record (used by the protocol
/// identifier).
bool looks_like_tls(std::span<const std::uint8_t> data) noexcept;

}  // namespace iotx::proto
