#include "iotx/proto/ntp.hpp"

#include <cmath>

#include "iotx/net/bytes.hpp"

namespace iotx::proto {

namespace {
// Seconds between the NTP epoch (1900) and the Unix epoch (1970).
constexpr std::uint64_t kNtpUnixOffset = 2208988800ULL;
}  // namespace

std::uint64_t unix_to_ntp(double unix_seconds) noexcept {
  const double whole = std::floor(unix_seconds);
  const auto seconds = static_cast<std::uint64_t>(whole) + kNtpUnixOffset;
  const auto frac =
      static_cast<std::uint64_t>((unix_seconds - whole) * 4294967296.0);
  return (seconds << 32) | (frac & 0xffffffffULL);
}

std::vector<std::uint8_t> NtpPacket::encode() const {
  net::ByteWriter w;
  w.u8(static_cast<std::uint8_t>((leap << 6) | ((version & 7) << 3) |
                                 (mode & 7)));
  w.u8(stratum);
  w.u8(6);                    // poll interval
  w.u8(static_cast<std::uint8_t>(-20));  // precision (~1us)
  w.u32be(0);                 // root delay
  w.u32be(0);                 // root dispersion
  w.u32be(0x4e495354);        // reference id "NIST"
  w.u64be(0);                 // reference timestamp
  w.u64be(0);                 // origin timestamp
  w.u64be(0);                 // receive timestamp
  w.u64be(transmit_timestamp);
  return std::move(w).take();
}

std::optional<NtpPacket> NtpPacket::decode(
    std::span<const std::uint8_t> data) {
  if (data.size() < 48) return std::nullopt;
  net::ByteReader r(data);
  const auto li_vn_mode = r.u8();
  const auto stratum = r.u8();
  if (!li_vn_mode || !stratum) return std::nullopt;
  NtpPacket p;
  p.leap = *li_vn_mode >> 6;
  p.version = (*li_vn_mode >> 3) & 7;
  p.mode = *li_vn_mode & 7;
  p.stratum = *stratum;
  if (p.version < 1 || p.version > 4) return std::nullopt;
  if (p.mode < 1 || p.mode > 5) return std::nullopt;
  if (!r.skip(38)) return std::nullopt;
  const auto tx = r.u64be();
  if (!tx) return std::nullopt;
  p.transmit_timestamp = *tx;
  return p;
}

bool looks_like_ntp(std::span<const std::uint8_t> data) noexcept {
  if (data.size() != 48) return false;
  const std::uint8_t version = (data[0] >> 3) & 7;
  const std::uint8_t mode = data[0] & 7;
  return version >= 1 && version <= 4 && mode >= 1 && mode <= 5;
}

}  // namespace iotx::proto
