#include "iotx/proto/dhcp.hpp"

#include "iotx/net/bytes.hpp"

namespace iotx::proto {

namespace {
constexpr std::uint32_t kMagicCookie = 0x63825363;
constexpr std::uint8_t kOptMessageType = 53;
constexpr std::uint8_t kOptHostname = 12;
constexpr std::uint8_t kOptEnd = 255;
}  // namespace

std::string_view dhcp_type_name(DhcpMessageType t) noexcept {
  switch (t) {
    case DhcpMessageType::kDiscover: return "DISCOVER";
    case DhcpMessageType::kOffer: return "OFFER";
    case DhcpMessageType::kRequest: return "REQUEST";
    case DhcpMessageType::kAck: return "ACK";
  }
  return "?";
}

std::vector<std::uint8_t> DhcpMessage::encode() const {
  net::ByteWriter w;
  const bool from_client = type == DhcpMessageType::kDiscover ||
                           type == DhcpMessageType::kRequest;
  w.u8(from_client ? 1 : 2);  // op: BOOTREQUEST / BOOTREPLY
  w.u8(1);                    // htype: Ethernet
  w.u8(6);                    // hlen
  w.u8(0);                    // hops
  w.u32be(transaction_id);
  w.u16be(0);  // secs
  w.u16be(from_client ? 0x8000 : 0);  // broadcast flag on requests
  w.u32be(client_ip.value());
  w.u32be(your_ip.value());
  w.u32be(server_ip.value());
  w.u32be(0);  // giaddr
  w.bytes(client_mac.octets());
  for (int i = 0; i < 10; ++i) w.u8(0);   // chaddr padding
  for (int i = 0; i < 192; ++i) w.u8(0);  // sname + file
  w.u32be(kMagicCookie);
  w.u8(kOptMessageType);
  w.u8(1);
  w.u8(static_cast<std::uint8_t>(type));
  if (!hostname.empty()) {
    w.u8(kOptHostname);
    w.u8(static_cast<std::uint8_t>(hostname.size()));
    w.text(hostname);
  }
  w.u8(kOptEnd);
  return std::move(w).take();
}

std::optional<DhcpMessage> DhcpMessage::decode(
    std::span<const std::uint8_t> data) {
  net::ByteReader r(data);
  DhcpMessage m;
  const auto op = r.u8();
  const auto htype = r.u8();
  const auto hlen = r.u8();
  if (!op || !htype || !hlen) return std::nullopt;
  if ((*op != 1 && *op != 2) || *htype != 1 || *hlen != 6) {
    return std::nullopt;
  }
  if (!r.skip(1)) return std::nullopt;  // hops
  const auto xid = r.u32be();
  if (!xid || !r.skip(4)) return std::nullopt;  // secs + flags
  const auto ciaddr = r.u32be();
  const auto yiaddr = r.u32be();
  const auto siaddr = r.u32be();
  const auto giaddr = r.u32be();
  const auto chaddr = r.bytes(6);
  if (!ciaddr || !yiaddr || !siaddr || !giaddr || !chaddr) {
    return std::nullopt;
  }
  m.transaction_id = *xid;
  m.client_ip = net::Ipv4Address(*ciaddr);
  m.your_ip = net::Ipv4Address(*yiaddr);
  m.server_ip = net::Ipv4Address(*siaddr);
  std::array<std::uint8_t, 6> mac{};
  std::copy(chaddr->begin(), chaddr->end(), mac.begin());
  m.client_mac = net::MacAddress(mac);

  if (!r.skip(10 + 192)) return std::nullopt;  // chaddr pad + sname + file
  const auto cookie = r.u32be();
  if (!cookie || *cookie != kMagicCookie) return std::nullopt;

  while (true) {
    const auto opt = r.u8();
    if (!opt) return std::nullopt;  // no End option: malformed
    if (*opt == kOptEnd) break;
    if (*opt == 0) continue;  // pad
    const auto len = r.u8();
    if (!len) return std::nullopt;
    const auto value = r.bytes(*len);
    if (!value) return std::nullopt;
    if (*opt == kOptMessageType && *len == 1) {
      m.type = static_cast<DhcpMessageType>((*value)[0]);
    } else if (*opt == kOptHostname) {
      m.hostname.assign(reinterpret_cast<const char*>(value->data()),
                        value->size());
    }
  }
  return m;
}

bool looks_like_dhcp(std::span<const std::uint8_t> data) noexcept {
  if (data.size() < 240) return false;
  const bool op_ok = data[0] == 1 || data[0] == 2;
  const bool ethernet = data[1] == 1 && data[2] == 6;
  const bool cookie = data[236] == 0x63 && data[237] == 0x82 &&
                      data[238] == 0x53 && data[239] == 0x63;
  return op_ok && ethernet && cookie;
}

}  // namespace iotx::proto
