// HTTP/1.1 request/response build + parse.
//
// Used by the simulator for plaintext device chatter, by destination
// attribution (Host header, paper §4.1) and by the PII scanner (§6.2),
// which searches unencrypted payloads for identifiers.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace iotx::proto {

struct HttpMessageBase {
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; nullopt when absent.
  std::optional<std::string> header(std::string_view name) const;
  void set_header(std::string_view name, std::string_view value);
};

struct HttpRequest : HttpMessageBase {
  std::string method = "GET";
  std::string target = "/";
  std::string version = "HTTP/1.1";

  /// Serializes with a correct Content-Length when a body is present.
  std::string encode() const;
  static std::optional<HttpRequest> decode(std::string_view data);
  static std::optional<HttpRequest> decode(std::span<const std::uint8_t> data);

  /// The Host header, if present.
  std::optional<std::string> host() const { return header("Host"); }
};

struct HttpResponse : HttpMessageBase {
  std::string version = "HTTP/1.1";
  int status = 200;
  std::string reason = "OK";

  std::string encode() const;
  static std::optional<HttpResponse> decode(std::string_view data);
};

/// True if `data` starts with a plausible HTTP request line or status line.
bool looks_like_http(std::span<const std::uint8_t> data) noexcept;

}  // namespace iotx::proto
