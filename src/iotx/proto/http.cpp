#include "iotx/proto/http.hpp"

#include <array>
#include <charconv>

#include "iotx/util/strings.hpp"

namespace iotx::proto {

namespace {

constexpr std::string_view kCrlf = "\r\n";

// Splits "Name: value" lines until the blank line; returns the body offset
// or npos on malformed framing.
std::size_t parse_headers(
    std::string_view data, std::size_t start,
    std::vector<std::pair<std::string, std::string>>& out) {
  std::size_t pos = start;
  while (true) {
    const std::size_t eol = data.find(kCrlf, pos);
    if (eol == std::string_view::npos) return std::string_view::npos;
    if (eol == pos) return pos + 2;  // blank line: body follows
    const std::string_view line = data.substr(pos, eol - pos);
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return std::string_view::npos;
    out.emplace_back(std::string(util::trim(line.substr(0, colon))),
                     std::string(util::trim(line.substr(colon + 1))));
    pos = eol + 2;
  }
}

void encode_headers(const HttpMessageBase& m, std::string& out) {
  for (const auto& [name, value] : m.headers) {
    out += name;
    out += ": ";
    out += value;
    out += kCrlf;
  }
  out += kCrlf;
  out += m.body;
}

}  // namespace

std::optional<std::string> HttpMessageBase::header(
    std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (util::iequals(key, name)) return value;
  }
  return std::nullopt;
}

void HttpMessageBase::set_header(std::string_view name,
                                 std::string_view value) {
  for (auto& [key, existing] : headers) {
    if (util::iequals(key, name)) {
      existing = std::string(value);
      return;
    }
  }
  headers.emplace_back(std::string(name), std::string(value));
}

std::string HttpRequest::encode() const {
  HttpRequest copy = *this;
  if (!copy.body.empty() && !copy.header("Content-Length")) {
    copy.set_header("Content-Length", std::to_string(copy.body.size()));
  }
  std::string out;
  out += copy.method;
  out += ' ';
  out += copy.target;
  out += ' ';
  out += copy.version;
  out += kCrlf;
  encode_headers(copy, out);
  return out;
}

std::optional<HttpRequest> HttpRequest::decode(std::string_view data) {
  const std::size_t eol = data.find(kCrlf);
  if (eol == std::string_view::npos) return std::nullopt;
  const auto parts = util::split(data.substr(0, eol), ' ');
  if (parts.size() != 3) return std::nullopt;
  HttpRequest req;
  req.method = parts[0];
  req.target = parts[1];
  req.version = parts[2];
  if (req.version.rfind("HTTP/", 0) != 0) return std::nullopt;
  const std::size_t body_at = parse_headers(data, eol + 2, req.headers);
  if (body_at == std::string_view::npos) return std::nullopt;
  req.body = std::string(data.substr(body_at));
  return req;
}

std::optional<HttpRequest> HttpRequest::decode(
    std::span<const std::uint8_t> data) {
  return decode(std::string_view(reinterpret_cast<const char*>(data.data()),
                                 data.size()));
}

std::string HttpResponse::encode() const {
  HttpResponse copy = *this;
  if (!copy.header("Content-Length")) {
    copy.set_header("Content-Length", std::to_string(copy.body.size()));
  }
  std::string out;
  out += copy.version;
  out += ' ';
  out += std::to_string(copy.status);
  out += ' ';
  out += copy.reason;
  out += kCrlf;
  encode_headers(copy, out);
  return out;
}

std::optional<HttpResponse> HttpResponse::decode(std::string_view data) {
  const std::size_t eol = data.find(kCrlf);
  if (eol == std::string_view::npos) return std::nullopt;
  const std::string_view line = data.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return std::nullopt;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  HttpResponse res;
  res.version = std::string(line.substr(0, sp1));
  if (res.version.rfind("HTTP/", 0) != 0) return std::nullopt;
  const std::string_view status_text =
      line.substr(sp1 + 1, sp2 == std::string_view::npos ? std::string_view::npos
                                                         : sp2 - sp1 - 1);
  int status = 0;
  const auto [ptr, ec] = std::from_chars(
      status_text.data(), status_text.data() + status_text.size(), status);
  if (ec != std::errc() || ptr != status_text.data() + status_text.size()) {
    return std::nullopt;
  }
  res.status = status;
  if (sp2 != std::string_view::npos) {
    res.reason = std::string(line.substr(sp2 + 1));
  }
  const std::size_t body_at = parse_headers(data, eol + 2, res.headers);
  if (body_at == std::string_view::npos) return std::nullopt;
  res.body = std::string(data.substr(body_at));
  return res;
}

bool looks_like_http(std::span<const std::uint8_t> data) noexcept {
  static constexpr std::array<std::string_view, 13> kPrefixes = {
      "GET ",     "POST ",  "PUT ",   "DELETE ",   "HEAD ",
      "OPTIONS ", "PATCH ", "HTTP/1.", "DESCRIBE ", "SETUP ",
      "PLAY ",    "TEARDOWN ", "RTSP/1.",
  };
  const std::string_view text(reinterpret_cast<const char*>(data.data()),
                              data.size());
  for (std::string_view prefix : kPrefixes) {
    if (text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix) {
      return true;
    }
  }
  return false;
}

}  // namespace iotx::proto
