#include "iotx/proto/tls.hpp"

#include "iotx/net/bytes.hpp"

namespace iotx::proto {

using net::ByteReader;
using net::ByteWriter;

namespace {
constexpr std::uint8_t kHandshakeClientHello = 1;
constexpr std::uint16_t kExtensionServerName = 0;

bool valid_record_version(std::uint16_t v) noexcept {
  // 0x0301..0x0304 (TLS 1.0 record version is used by many ClientHellos).
  return v >= 0x0301 && v <= 0x0304;
}
}  // namespace

std::vector<std::uint8_t> TlsRecord::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(content_type));
  w.u16be(version);
  w.u16be(static_cast<std::uint16_t>(fragment.size()));
  w.bytes(fragment);
  return std::move(w).take();
}

std::vector<TlsRecord> parse_tls_records(std::span<const std::uint8_t> data) {
  std::vector<TlsRecord> records;
  ByteReader r(data);
  while (r.remaining() >= 5) {
    const auto type = r.u8();
    const auto version = r.u16be();
    const auto length = r.u16be();
    if (!type || !version || !length) break;
    if (*type < 20 || *type > 24 || !valid_record_version(*version)) break;
    const auto fragment = r.bytes(*length);
    if (!fragment) break;  // truncated by segment boundary
    TlsRecord rec;
    rec.content_type = static_cast<TlsContentType>(*type);
    rec.version = *version;
    rec.fragment.assign(fragment->begin(), fragment->end());
    records.push_back(std::move(rec));
  }
  return records;
}

std::vector<std::uint8_t> build_client_hello(
    const std::string& sni, std::span<const std::uint16_t> cipher_suites,
    std::span<const std::uint8_t> random32) {
  ByteWriter body;
  body.u16be(0x0303);  // client version
  if (random32.size() == 32) {
    body.bytes(random32);
  } else {
    for (int i = 0; i < 32; ++i) body.u8(0);
  }
  body.u8(0);  // session id length
  body.u16be(static_cast<std::uint16_t>(cipher_suites.size() * 2));
  for (std::uint16_t suite : cipher_suites) body.u16be(suite);
  body.u8(1);  // compression methods length
  body.u8(0);  // null compression

  // Extensions: just server_name when present.
  ByteWriter ext;
  if (!sni.empty()) {
    ext.u16be(kExtensionServerName);
    const auto list_len = static_cast<std::uint16_t>(sni.size() + 3);
    ext.u16be(static_cast<std::uint16_t>(list_len + 2));  // extension length
    ext.u16be(list_len);                                  // server name list
    ext.u8(0);                                            // host_name type
    ext.u16be(static_cast<std::uint16_t>(sni.size()));
    ext.text(sni);
  }
  body.u16be(static_cast<std::uint16_t>(ext.size()));
  body.bytes(ext.data());

  ByteWriter handshake;
  handshake.u8(kHandshakeClientHello);
  const auto body_len = static_cast<std::uint32_t>(body.size());
  handshake.u8(static_cast<std::uint8_t>(body_len >> 16));
  handshake.u16be(static_cast<std::uint16_t>(body_len & 0xffff));
  handshake.bytes(body.data());

  TlsRecord record;
  record.content_type = TlsContentType::kHandshake;
  record.version = 0x0301;  // common record-layer version for ClientHello
  record.fragment = std::move(handshake).take();
  return record.encode();
}

std::optional<ClientHello> parse_client_hello(
    std::span<const std::uint8_t> data) {
  const auto records = parse_tls_records(data);
  if (records.empty() ||
      records.front().content_type != TlsContentType::kHandshake) {
    return std::nullopt;
  }
  ByteReader r(records.front().fragment);
  const auto msg_type = r.u8();
  if (!msg_type || *msg_type != kHandshakeClientHello) return std::nullopt;
  const auto len_hi = r.u8();
  const auto len_lo = r.u16be();
  if (!len_hi || !len_lo) return std::nullopt;

  ClientHello hello;
  const auto version = r.u16be();
  const auto random = r.bytes(32);
  if (!version || !random) return std::nullopt;
  hello.version = *version;
  hello.random.assign(random->begin(), random->end());

  const auto session_len = r.u8();
  if (!session_len || !r.skip(*session_len)) return std::nullopt;

  const auto suites_len = r.u16be();
  if (!suites_len || *suites_len % 2 != 0) return std::nullopt;
  for (int i = 0; i < *suites_len / 2; ++i) {
    const auto suite = r.u16be();
    if (!suite) return std::nullopt;
    hello.cipher_suites.push_back(*suite);
  }

  const auto compression_len = r.u8();
  if (!compression_len || !r.skip(*compression_len)) return std::nullopt;

  if (r.at_end()) return hello;  // extensions are optional
  const auto ext_total = r.u16be();
  if (!ext_total) return std::nullopt;
  std::size_t consumed = 0;
  while (consumed + 4 <= *ext_total) {
    const auto ext_type = r.u16be();
    const auto ext_len = r.u16be();
    if (!ext_type || !ext_len) return std::nullopt;
    consumed += 4 + *ext_len;
    if (*ext_type == kExtensionServerName) {
      const auto list_len = r.u16be();
      const auto name_type = r.u8();
      const auto name_len = r.u16be();
      if (!list_len || !name_type || !name_len) return std::nullopt;
      const auto name = r.bytes(*name_len);
      if (!name) return std::nullopt;
      hello.sni.assign(reinterpret_cast<const char*>(name->data()),
                       name->size());
      // Skip any trailing bytes of this extension.
      const std::size_t used = 2 + 1 + 2 + *name_len;
      if (*ext_len > used && !r.skip(*ext_len - used)) return std::nullopt;
    } else {
      if (!r.skip(*ext_len)) return std::nullopt;
    }
  }
  return hello;
}

std::optional<std::string> extract_sni(std::span<const std::uint8_t> data) {
  const auto hello = parse_client_hello(data);
  if (!hello || hello->sni.empty()) return std::nullopt;
  return hello->sni;
}

std::vector<std::uint8_t> build_application_data(
    std::span<const std::uint8_t> ciphertext) {
  TlsRecord record;
  record.content_type = TlsContentType::kApplicationData;
  record.fragment.assign(ciphertext.begin(), ciphertext.end());
  return record.encode();
}

bool looks_like_tls(std::span<const std::uint8_t> data) noexcept {
  if (data.size() < 5) return false;
  if (data[0] < 20 || data[0] > 24) return false;
  const std::uint16_t version =
      static_cast<std::uint16_t>((data[1] << 8) | data[2]);
  return valid_record_version(version);
}

}  // namespace iotx::proto
