// Protocol and content-encoding identification — the stand-in for
// "Wireshark's protocol analyzer" in the paper's encryption pipeline
// (§5.1): identify TLS/QUIC as encrypted, recognize known plaintext
// protocols, and detect encoded/compressed media by magic bytes.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "iotx/net/packet.hpp"

namespace iotx::proto {

enum class ProtocolId {
  kUnknown,
  kDns,
  kMdns,
  kSsdp,
  kDhcp,
  kNtp,
  kHttp,
  kTls,
  kQuic,
  kRtsp,
};

/// Human-readable protocol name ("TLS", "DNS", ...).
std::string_view protocol_name(ProtocolId id) noexcept;

/// Identifies the application protocol of a decoded packet from ports and
/// payload heuristics. Like a real analyzer, this fails to classify
/// proprietary protocols (returns kUnknown), which is exactly the gap the
/// entropy analysis fills.
ProtocolId identify_protocol(const net::DecodedPacket& packet) noexcept;

/// Known media / compression encodings detectable by magic bytes.
enum class ContentEncoding {
  kNone,
  kGzip,
  kZlib,
  kJpeg,
  kPng,
  kMp4,
  kMpegTs,
  kMp3,
  kWav,
  kH264AnnexB,
};

std::string_view encoding_name(ContentEncoding e) noexcept;

/// Checks payload magic bytes for known encodings. The paper marks flows
/// carrying recognized encodings as *unencrypted* even when their entropy
/// is high ("We search for encoding-specific bytes in headers of such
/// flows, and mark any traffic that contains them as unencrypted").
ContentEncoding detect_encoding(std::span<const std::uint8_t> payload) noexcept;

}  // namespace iotx::proto
