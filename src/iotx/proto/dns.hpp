// DNS wire format (RFC 1035): build and parse queries/responses, including
// compression-pointer decoding.
//
// Destination attribution (paper §4.1) maps each flow's destination IP to
// the domain the device resolved: "we determine the SLD by first
// identifying whether the destination IP address corresponds to a DNS
// response for a request issued by the device".
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "iotx/net/address.hpp"

namespace iotx::proto {

/// Record types we emit/consume.
enum class DnsType : std::uint16_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kPtr = 12,
  kTxt = 16,
  kAaaa = 28,
};

struct DnsQuestion {
  std::string name;  ///< dotted form, no trailing dot
  std::uint16_t qtype = static_cast<std::uint16_t>(DnsType::kA);
  std::uint16_t qclass = 1;  // IN
};

struct DnsRecord {
  std::string name;
  std::uint16_t rtype = static_cast<std::uint16_t>(DnsType::kA);
  std::uint16_t rclass = 1;
  std::uint32_t ttl = 300;
  std::vector<std::uint8_t> rdata;  ///< raw; A records carry 4 bytes
  std::string rdata_name;  ///< decoded name for CNAME/NS/PTR answers

  /// For A records: the address carried in rdata.
  std::optional<net::Ipv4Address> address() const;
};

struct DnsMessage {
  std::uint16_t id = 0;
  bool is_response = false;
  bool recursion_desired = true;
  std::uint8_t rcode = 0;
  std::vector<DnsQuestion> questions;
  std::vector<DnsRecord> answers;

  /// Serializes to wire format (no name compression on output).
  std::vector<std::uint8_t> encode() const;

  /// Parses wire format, following compression pointers (with loop guard).
  static std::optional<DnsMessage> decode(std::span<const std::uint8_t> data);
};

/// Convenience: A-record query for `name`.
DnsMessage make_query(std::uint16_t id, const std::string& name);

/// Convenience: response to `query` resolving its first question to `addr`.
DnsMessage make_response(const DnsMessage& query, net::Ipv4Address addr,
                         std::uint32_t ttl = 300);

/// Validates an encodable DNS name: non-empty labels of <= 63 bytes,
/// total <= 253 bytes.
bool is_valid_dns_name(const std::string& name);

}  // namespace iotx::proto
