// NTPv4 client/server packets (RFC 5905, 48-byte header only).
//
// The paper notes that experiment captures contain unrelated traffic such
// as "time synchronization via NTP" (§6.1); the simulator emits genuine
// NTP exchanges as that background noise, and the protocol identifier
// recognizes them.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace iotx::proto {

struct NtpPacket {
  std::uint8_t leap = 0;
  std::uint8_t version = 4;
  std::uint8_t mode = 3;  ///< 3 = client, 4 = server
  std::uint8_t stratum = 0;
  std::uint64_t transmit_timestamp = 0;  ///< NTP 64-bit fixed-point

  std::vector<std::uint8_t> encode() const;
  static std::optional<NtpPacket> decode(std::span<const std::uint8_t> data);
};

/// Converts a Unix timestamp (seconds) to NTP 64-bit fixed-point.
std::uint64_t unix_to_ntp(double unix_seconds) noexcept;

/// True if `data` looks like an NTP packet (48 bytes, valid version/mode).
bool looks_like_ntp(std::span<const std::uint8_t> data) noexcept;

}  // namespace iotx::proto
