#include "iotx/dist/claim.hpp"

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>

#include "iotx/obs/registry.hpp"

namespace iotx::dist {

namespace fs = std::filesystem;

std::string ClaimStore::claim_path(const std::string& root,
                                   const std::string& key_hex) {
  return root + "/" + key_hex.substr(0, 2) + "/" + key_hex + ".claim";
}

std::string ClaimStore::default_owner() {
  char host[256] = {0};
  if (gethostname(host, sizeof(host) - 1) != 0) host[0] = '\0';
  return std::string(host[0] == '\0' ? "unknown-host" : host) + "/" +
         std::to_string(static_cast<long>(getpid()));
}

ClaimStore::ClaimStore(std::string root, ClaimConfig config)
    : root_(std::move(root)), config_(std::move(config)) {
  if (config_.owner.empty()) config_.owner = default_owner();
}

namespace {

bool claim_is_stale(const fs::path& path, std::uint64_t lease_ms) {
  std::error_code ec;
  const fs::file_time_type mtime = fs::last_write_time(path, ec);
  if (ec) return false;  // vanished or unreadable: treat as live, retry later
  const auto age = fs::file_time_type::clock::now() - mtime;
  return age > std::chrono::milliseconds(lease_ms);
}

}  // namespace

bool ClaimStore::try_claim(const std::string& key_hex) {
  attempts_.fetch_add(1, std::memory_order_relaxed);
  const fs::path claim = claim_path(root_, key_hex);
  std::error_code ec;
  fs::create_directories(claim.parent_path(), ec);

  // Unique staging file carrying the owner tag. The link step below is
  // the atomic no-clobber primitive: link(2) fails with EEXIST when the
  // claim already exists, unlike rename(2), which would silently steal a
  // live claim from its owner.
  static std::atomic<std::uint64_t> serial{0};
  const fs::path staged =
      claim.string() + ".stage" + std::to_string(static_cast<long>(getpid())) +
      "." + std::to_string(serial.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(staged, std::ios::binary | std::ios::trunc);
    out << "owner " << config_.owner << "\nlease_ms " << config_.lease_ms
        << "\n";
    if (!out.good()) {
      contended_.fetch_add(1, std::memory_order_relaxed);
      return false;  // unwritable store: behave as if contended
    }
  }

  // Two attempts: the second one runs only after reaping a stale claim,
  // and may still lose the race to another reaping worker — which is
  // fine, exactly one of them wins the link.
  for (int attempt = 0; attempt < 2; ++attempt) {
    fs::create_hard_link(staged, claim, ec);
    if (!ec) {
      fs::remove(staged, ec);
      acquired_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mutex_);
      held_.insert(key_hex);
      return true;
    }
    if (attempt == 0 && claim_is_stale(claim, config_.lease_ms)) {
      // The owner stopped heartbeating (killed mid-stage, wedged, or it
      // threw and abandoned the claim on purpose): reap and re-claim.
      // Recomputing a stage someone half-finished is safe — the store is
      // content-addressed and the half-finished temp never became an
      // artifact.
      if (fs::remove(claim, ec) && !ec) {
        reaped_.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    break;
  }
  fs::remove(staged, ec);
  contended_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void ClaimStore::release(const std::string& key_hex) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (held_.erase(key_hex) == 0) return;
  }
  std::error_code ec;
  fs::remove(claim_path(root_, key_hex), ec);
  released_.fetch_add(1, std::memory_order_relaxed);
}

void ClaimStore::heartbeat_all() {
  std::set<std::string> held;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    held = held_;
  }
  const fs::file_time_type now = fs::file_time_type::clock::now();
  for (const std::string& key : held) {
    std::error_code ec;
    fs::last_write_time(claim_path(root_, key), now, ec);
    if (!ec) heartbeats_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t ClaimStore::held() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return held_.size();
}

ClaimStats ClaimStore::stats() const {
  ClaimStats s;
  s.attempts = attempts_.load(std::memory_order_relaxed);
  s.acquired = acquired_.load(std::memory_order_relaxed);
  s.contended = contended_.load(std::memory_order_relaxed);
  s.reaped = reaped_.load(std::memory_order_relaxed);
  s.released = released_.load(std::memory_order_relaxed);
  s.heartbeats = heartbeats_.load(std::memory_order_relaxed);
  return s;
}

void ClaimStore::publish_metrics() const {
  if (!obs::metrics_enabled()) return;
  auto& registry = obs::Registry::global();
  const ClaimStats s = stats();
  registry.add(registry.counter("dist/claims_attempted"), s.attempts);
  registry.add(registry.counter("dist/claims_acquired"), s.acquired);
  registry.add(registry.counter("dist/claims_contended"), s.contended);
  registry.add(registry.counter("dist/claims_reaped"), s.reaped);
  registry.add(registry.counter("dist/claims_released"), s.released);
  registry.add(registry.counter("dist/heartbeats"), s.heartbeats);
}

}  // namespace iotx::dist
