// iotx::dist — coordinator-free work claiming over a shared artifact
// store (DESIGN.md §"Distributed campaigns").
//
// N worker processes point at one cache directory and partition the
// (config, device) stage graph among themselves with per-stage claim
// files: `<root>/<key[0:2]>/<key>.claim`, created next to the artifact
// the stage would produce. A claim is advisory — it prevents duplicate
// *work*, not duplicate *results* — because every artifact is a pure
// function of its content-addressed key: if two workers ever do compute
// the same stage (a reaped lease, a crashed-then-restarted worker), both
// write byte-identical artifacts and the store's atomic temp+rename
// keeps the last one whole. Correctness therefore never depends on the
// claim protocol; only efficiency does.
//
// Liveness comes from leases, not from graceful shutdown: a worker
// heartbeats its held claims by bumping their mtimes, and a claim whose
// mtime is older than the lease is considered abandoned (its owner was
// killed or wedged) and may be reaped by any other worker. A worker
// deliberately does NOT release a claim when the stage throws — the
// abandoned claim ages out exactly like a kill -9 would leave it, so the
// two failure modes share one recovery path.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>

namespace iotx::dist {

struct ClaimConfig {
  /// Diagnostic owner tag written into the claim file; defaults to
  /// "<host>/<pid>" when empty. Never parsed by the protocol — staleness
  /// is judged by mtime alone, so clock-skewed hosts disagree only about
  /// *when* to reap, never about *what* an artifact contains.
  std::string owner;
  /// A claim untouched for this long is abandoned and may be reaped.
  /// Must comfortably exceed the heartbeat interval (lease / 4).
  std::uint64_t lease_ms = 60'000;
};

struct ClaimStats {
  std::uint64_t attempts = 0;   ///< try_claim calls
  std::uint64_t acquired = 0;   ///< claims won (attempts == acquired + contended)
  std::uint64_t contended = 0;  ///< lost to a live claim held elsewhere
  std::uint64_t reaped = 0;     ///< stale claims removed before re-claiming
  std::uint64_t released = 0;   ///< claims released after a completed stage
  std::uint64_t heartbeats = 0; ///< mtime bumps across all held claims
};

/// The claim protocol for one worker process over one shared store root.
/// Thread-safe: a worker's pool threads may claim/release concurrently.
class ClaimStore {
 public:
  explicit ClaimStore(std::string root, ClaimConfig config = {});

  /// Attempts to claim the stage named by the 64-hex-digit key. True
  /// when this ClaimStore now holds the claim (tracked for heartbeat and
  /// release); false when a live claim is held elsewhere. A stale claim
  /// (mtime beyond the lease) is reaped and re-claimed in the same call.
  bool try_claim(const std::string& key_hex);

  /// Releases a held claim after its stage completed (the artifact is in
  /// the store, so nobody needs to recompute it; a later claim of the
  /// same key would just load the hit). No-op for claims not held here.
  void release(const std::string& key_hex);

  /// Bumps the mtime of every claim this store currently holds. Call
  /// periodically (lease / 4) from a heartbeat thread so long-running
  /// stages are not reaped out from under a live worker.
  void heartbeat_all();

  /// Number of claims currently held by this store.
  std::size_t held() const;

  ClaimStats stats() const;

  /// Mirrors the counters into the global obs registry as `dist/*`
  /// metrics (no-op when metrics are disabled).
  void publish_metrics() const;

  const std::string& root() const noexcept { return root_; }
  const ClaimConfig& config() const noexcept { return config_; }

  /// `<root>/<key[0:2]>/<key>.claim` — beside the artifact it guards.
  static std::string claim_path(const std::string& root,
                                const std::string& key_hex);

  /// "<host>/<pid>" — the default diagnostic owner tag.
  static std::string default_owner();

 private:
  std::string root_;
  ClaimConfig config_;

  mutable std::mutex mutex_;
  std::set<std::string> held_;  ///< keys claimed and not yet released

  std::atomic<std::uint64_t> attempts_{0};
  std::atomic<std::uint64_t> acquired_{0};
  std::atomic<std::uint64_t> contended_{0};
  std::atomic<std::uint64_t> reaped_{0};
  std::atomic<std::uint64_t> released_{0};
  std::atomic<std::uint64_t> heartbeats_{0};
};

}  // namespace iotx::dist
