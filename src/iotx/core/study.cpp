#include "iotx/core/study.hpp"
#include <algorithm>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <stdexcept>
#include <tuple>
#include <thread>
#include <utility>

#include "iotx/cache/binio.hpp"
#include "iotx/core/study_cache.hpp"
#include "iotx/net/packet.hpp"
#include "iotx/obs/registry.hpp"
#include "iotx/obs/trace.hpp"
#include "iotx/testbed/endpoints.hpp"

namespace iotx::core {

StudyParams StudyParams::paper_scale() {
  StudyParams p;
  p.plan = testbed::SchedulePlan::paper_scale();
  p.inference.validation.forest.n_trees = 100;
  p.inference.validation.repetitions = 10;
  p.user_study.days = 180;
  return p;
}

std::string_view run_status_name(RunStatus status) noexcept {
  switch (status) {
    case RunStatus::kClean: return "clean";
    case RunStatus::kDegraded: return "degraded";
    case RunStatus::kQuarantined: return "quarantined";
    case RunStatus::kSkipped: return "skipped";
  }
  return "?";
}

std::string experiment_group(const testbed::ExperimentSpec& spec) {
  switch (spec.type) {
    case testbed::ExperimentType::kPower: return "Power";
    case testbed::ExperimentType::kIdle: return "Idle";
    case testbed::ExperimentType::kUncontrolled: return "Uncontrolled";
    case testbed::ExperimentType::kLifecycle: return "Lifecycle";
    case testbed::ExperimentType::kInteraction: break;
  }
  const std::string_view group = testbed::activity_group(spec.activity);
  if (group == "Voice") return "Voice";
  if (group == "Video") return "Video";
  return "Others";
}

Study::Study(StudyParams params)
    : params_(std::move(params)),
      store_(params_.cache_dir.empty()
                 ? nullptr
                 : std::make_unique<cache::ArtifactStore>(params_.cache_dir)),
      claims_(params_.worker && !params_.cache_dir.empty()
                  ? std::make_unique<dist::ClaimStore>(
                        params_.cache_dir,
                        dist::ClaimConfig{/*owner=*/"",
                                          /*lease_ms=*/params_.claim_lease_ms})
                  : nullptr),
      runner_(params_.plan),
      orgs_(testbed::EndpointRegistry::builtin().make_org_database()),
      geo_(testbed::EndpointRegistry::builtin().make_geo_database()) {
  // The legacy --impair knob joins the chain first (seed label "impair",
  // so a lone impairment reproduces the pre-chain Prng stream exactly),
  // followed by the explicitly configured transforms, in order.
  if (params_.impairment.enabled()) {
    transforms_.push_back(std::make_shared<const faults::ImpairmentTransform>(
        params_.impairment));
  }
  for (const auto& t : params_.transforms.items()) transforms_.push_back(t);
}

analysis::AttributionContext Study::attribution_context(
    const testbed::NetworkConfig& config) const {
  analysis::AttributionContext ctx;
  ctx.orgs = &orgs_;
  ctx.geo = &geo_;
  ctx.vantage = config.vantage();
  const auto& registry = testbed::EndpointRegistry::builtin();
  ctx.rtt_ms = [config, &registry](net::Ipv4Address addr) {
    const testbed::Endpoint* e = registry.find_by_ip(addr);
    const std::string country =
        e == nullptr
            ? std::string("US")
            : (e->replica_country.empty() || addr == e->address
                   ? e->country
                   : e->replica_country);
    return testbed::simulated_rtt_ms(config, country);
  };
  ctx.registry_country = [&registry](net::Ipv4Address addr)
      -> std::optional<std::string> {
    const testbed::Endpoint* e = registry.find_by_ip(addr);
    if (e == nullptr) return std::nullopt;
    if (!e->replica_country.empty() && addr == e->replica_address) {
      return e->replica_country;
    }
    return e->country;
  };
  return ctx;
}

void Study::note_ingest(const flow::IngestPipeline& pipeline) {
  packets_ingested_.fetch_add(pipeline.packets_seen(),
                              std::memory_order_relaxed);
  note_peak(pipeline.bytes_seen());
}

void Study::note_peak(std::uint64_t bytes) {
  std::uint64_t peak = peak_capture_bytes_.load(std::memory_order_relaxed);
  while (peak < bytes && !peak_capture_bytes_.compare_exchange_weak(
                             peak, bytes, std::memory_order_relaxed)) {
  }
}

// The per-run working set every stage helper reads and writes. One
// instance lives on run_device's stack; helpers mutate it in stage order,
// so the data flow between stages is visible in the member list instead
// of being captured implicitly by a lambda.
struct Study::RunScratch {
  analysis::AttributionContext ctx;
  analysis::PiiScanner scanner;
  net::MacAddress device_mac;
  /// Merged destination records across experiments (by address; named
  /// attributions survive captures that missed the DNS response).
  analysis::DestinationAccumulator merged;
  /// PII findings deduplicated across experiments by (kind, destination).
  std::set<std::pair<std::string, std::uint32_t>> seen_pii;
  /// Same dedup scoped per lifecycle phase (phase, kind, destination) —
  /// a leak repeating in setup AND normal traffic is a finding in both
  /// phase slices.
  std::set<std::tuple<std::string, std::string, std::uint32_t>>
      seen_phase_pii;
  std::vector<analysis::LabeledMeta> training;
  std::vector<flow::PacketMeta> idle_meta;

  // Per-run ingest counters, accumulated locally (not straight into the
  // Study atomics) so a cache hit can replay a prior run's counts and
  // keep the campaign-wide totals byte-identical warm vs cold. run_device
  // folds them into the atomics exactly once.
  std::size_t experiments = 0;
  std::uint64_t packets = 0;
  std::uint64_t peak_bytes = 0;

  void note_ingest(const flow::IngestPipeline& pipeline) {
    packets += pipeline.packets_seen();
    peak_bytes = std::max(peak_bytes, pipeline.bytes_seen());
  }
};

DeviceRunResult Study::run_device(const testbed::DeviceSpec& device,
                                  const testbed::NetworkConfig& config,
                                  util::TaskPool* pool) {
  if (params_.chaos_hook) params_.chaos_hook(device, config);
  obs::Span span("study/device_run",
                 obs::observability_active()
                     ? "\"device\":\"" + device.id + "\",\"config\":\"" +
                           config.key() + "\""
                     : std::string());
  DeviceRunResult result;
  result.device = &device;
  result.config = config;
  result.idle_hours = params_.plan.idle_hours;

  const testbed::PiiTokens tokens = testbed::pii_tokens(device, config.lab);
  RunScratch scratch{
      attribution_context(config),
      analysis::PiiScanner({
          {"mac", tokens.mac},
          {"uuid", tokens.uuid},
          {"device_id", tokens.device_id},
          {"owner_name", tokens.owner_name},
          {"email", tokens.email},
          {"geo_city", tokens.geo_city},
      }),
      testbed::device_mac(device, config.lab == testbed::LabSite::kUs),
  };

  // --- ingest stage: cached when a store is configured ---------------
  // The artifact covers everything through background training: table
  // partials, health, training/idle meta, and this run's ingest
  // counters (replayed on a hit so campaign totals match a cold run).
  std::string ingest_key;
  std::string ingest_digest;  // content digest; chains the model key
  bool ingest_cached = false;
  if (store_ != nullptr) {
    ingest_key = ingest_stage_key(params_, device, config);
    obs::Span load_span("study/cache_load");
    if (auto loaded = store_->load(ingest_key, &result.health)) {
      try {
        IngestArtifact artifact = IngestArtifact::decode(loaded->payload);
        load_span.add_bytes_in(loaded->payload.size());
        result.health.merge(artifact.health);
        result.destinations = std::move(artifact.destinations);
        result.parties_by_group = std::move(artifact.parties_by_group);
        result.enc_by_group = std::move(artifact.enc_by_group);
        result.enc_total = artifact.enc_total;
        result.pii_findings = std::move(artifact.pii_findings);
        result.parties_by_phase = std::move(artifact.parties_by_phase);
        result.enc_by_phase = std::move(artifact.enc_by_phase);
        result.pii_by_phase = std::move(artifact.pii_by_phase);
        scratch.training = std::move(artifact.training);
        scratch.idle_meta = std::move(artifact.idle_meta);
        scratch.experiments = artifact.experiments;
        scratch.packets = artifact.packets_ingested;
        scratch.peak_bytes = artifact.peak_capture_bytes;
        ingest_digest = loaded->content_hex;
        ingest_cached = true;
      } catch (const cache::CorruptArtifact&) {
        // The payload digest matched but the content didn't decode
        // (e.g. a layout change without a salt bump): recompute.
        ++result.health.cache_corrupt_artifacts;
      }
    }
  }
  if (!ingest_cached) {
    run_experiment_schedule(device, config, scratch, result);
    result.destinations = scratch.merged.merged();
    add_background_training(device, config, scratch);
    if (store_ != nullptr) {
      IngestArtifact artifact;
      artifact.health = result.health;
      // This run's cache mishaps are not part of the measurement; a
      // future warm run must not inherit them.
      artifact.health.cache_corrupt_artifacts = 0;
      artifact.destinations = result.destinations;
      artifact.parties_by_group = result.parties_by_group;
      artifact.enc_by_group = result.enc_by_group;
      artifact.enc_total = result.enc_total;
      artifact.pii_findings = result.pii_findings;
      artifact.parties_by_phase = result.parties_by_phase;
      artifact.enc_by_phase = result.enc_by_phase;
      artifact.pii_by_phase = result.pii_by_phase;
      artifact.training = scratch.training;
      artifact.idle_meta = scratch.idle_meta;
      artifact.experiments = scratch.experiments;
      artifact.packets_ingested = scratch.packets;
      artifact.peak_capture_bytes = scratch.peak_bytes;
      obs::Span store_span("study/cache_store");
      const std::vector<std::uint8_t> payload = artifact.encode();
      store_span.add_bytes_out(payload.size());
      ingest_digest = store_->store(ingest_key, payload);
    }
  }
  experiments_run_.fetch_add(scratch.experiments, std::memory_order_relaxed);
  packets_ingested_.fetch_add(scratch.packets, std::memory_order_relaxed);
  note_peak(scratch.peak_bytes);

  // --- model stage: keyed on the ingest artifact's content digest ----
  std::string model_key;
  bool model_cached = false;
  if (store_ != nullptr && !ingest_digest.empty()) {
    model_key = model_stage_key(params_, device, config, ingest_digest);
    obs::Span load_span("study/cache_load");
    if (auto loaded = store_->load(model_key, &result.health)) {
      try {
        ModelArtifact artifact = ModelArtifact::decode(loaded->payload);
        load_span.add_bytes_in(loaded->payload.size());
        result.model = std::move(artifact.model);
        result.idle = std::move(artifact.idle);
        model_cached = true;
      } catch (const cache::CorruptArtifact&) {
        ++result.health.cache_corrupt_artifacts;
      }
    }
  }
  if (!model_cached) {
    train_and_detect(device, config, scratch, result, pool);
    if (store_ != nullptr && !model_key.empty()) {
      ModelArtifact artifact;
      artifact.model = result.model;
      artifact.idle = result.idle;
      obs::Span store_span("study/cache_store");
      const std::vector<std::uint8_t> payload = artifact.encode();
      store_span.add_bytes_out(payload.size());
      store_->store(model_key, payload);
    }
  }

  result.status = result.health.total_anomalies() > 0 ? RunStatus::kDegraded
                                                      : RunStatus::kClean;
  faults::record_health_metrics(result.health);
  return result;
}

void Study::run_experiment_schedule(const testbed::DeviceSpec& device,
                                    const testbed::NetworkConfig& config,
                                    RunScratch& scratch,
                                    DeviceRunResult& result) {
  obs::Span span("study/experiments");
  for (const testbed::ExperimentSpec& spec :
       runner_.schedule(device, config)) {
    testbed::LabeledCapture capture = runner_.run(spec, device);
    ++scratch.experiments;
    if (transforms_.enabled()) {
      // Every chain element is seeded by the experiment key alone, never
      // by execution order, so a transformed campaign stays bit-identical
      // at any --jobs count. Transforms run at the stream head: the
      // pipeline ingests what a degraded (or defended) gateway would
      // actually have captured.
      obs::Span impair_span("study/impair");
      transforms_.apply(capture.packets, spec.key()).add_to(result.health);
    }
    std::vector<flow::PacketMeta> meta =
        ingest_labeled_capture(capture, scratch, result);
    if (spec.type == testbed::ExperimentType::kIdle) {
      scratch.idle_meta = std::move(meta);
    } else {
      scratch.training.push_back(analysis::LabeledMeta{
          capture.spec.activity, std::move(meta),
          std::string(testbed::lifecycle_phase_name(spec.phase))});
    }
    // `capture` — and with it the raw packet buffers — dies here; only
    // the per-packet meta survives until model training.
  }
}

// Streams one capture through a single-decode pipeline — every consumer
// (DNS cache, flow table, feature front-end) rides the same pass — and
// runs the per-capture analyses on the sinks' outputs. Returns the
// device-traffic meta: the only thing that must survive the capture,
// whose raw packet buffers die with the caller's scope.
std::vector<flow::PacketMeta> Study::ingest_labeled_capture(
    const testbed::LabeledCapture& capture, RunScratch& scratch,
    DeviceRunResult& result) {
  flow::DnsCache dns;
  flow::FlowTable table;
  flow::MetaCollector collector(scratch.device_mac);
  // Per-sink accounting is opt-in: the wrappers join the pipeline only
  // when the metrics registry is on, so the default path stays free of
  // clock reads.
  const bool instrument = obs::metrics_enabled();
  flow::InstrumentedSink dns_shim(dns, "dns_cache");
  flow::InstrumentedSink table_shim(table, "flow_table");
  flow::InstrumentedSink collector_shim(collector, "meta_collector");
  flow::IngestPipeline pipeline;
  pipeline.add_sink(instrument ? static_cast<flow::PacketSink&>(dns_shim)
                               : dns);
  pipeline.add_sink(instrument ? static_cast<flow::PacketSink&>(table_shim)
                               : table);
  pipeline.add_sink(instrument
                        ? static_cast<flow::PacketSink&>(collector_shim)
                        : collector);
  {
    obs::Span span("study/ingest");
    pipeline.ingest_all(capture.packets);
    pipeline.finish();
    span.add_bytes_in(pipeline.bytes_seen());
    span.note_peak_bytes(pipeline.bytes_seen());
  }
  scratch.note_ingest(pipeline);
  result.health.merge(pipeline.health());
  result.health.merge(dns.health());
  result.health.merge(table.health());
  result.health.merge(collector.health());

  obs::Span span("study/attribute");
  const std::vector<flow::Flow> flows = table.flows();
  const std::vector<analysis::DestinationRecord> records =
      analysis::attribute_destinations(flows, dns, scratch.ctx,
                                       result.device->first_party_orgs);
  const analysis::EncryptionBytes enc = analysis::account_flows(flows);
  const bool lifecycle =
      capture.spec.type == testbed::ExperimentType::kLifecycle;

  // Lifecycle slices accumulate for every capture (default runs only see
  // the "normal" slice); the paper-table accumulators below are skipped
  // for lifecycle captures, so Tables 2-11 never move when lifecycle
  // experiments are scheduled.
  const std::string phase(
      testbed::lifecycle_phase_name(capture.spec.phase));
  result.parties_by_phase[phase].merge(
      analysis::count_non_first_parties(records));
  result.enc_by_phase[phase] += enc;
  std::vector<analysis::PiiFinding> found = scratch.scanner.scan(flows);
  for (const analysis::PiiFinding& f : found) {
    if (scratch.seen_phase_pii
            .emplace(phase, f.kind, f.destination.value())
            .second) {
      result.pii_by_phase[phase].push_back(f);
    }
  }

  if (!lifecycle) {
    const std::string group = experiment_group(capture.spec);
    analysis::PartyCounts& group_counts = result.parties_by_group[group];
    group_counts.merge(analysis::count_non_first_parties(records));
    if (capture.spec.type != testbed::ExperimentType::kIdle) {
      result.parties_by_group["Control"].merge(
          analysis::count_non_first_parties(records));
    }
    scratch.merged.add_all(records);

    result.enc_by_group[group] += enc;
    if (capture.spec.type != testbed::ExperimentType::kIdle) {
      // "Control" aggregates all controlled experiments (Table 8's first
      // row), exactly like the party counts above.
      result.enc_by_group["Control"] += enc;
    }
    result.enc_total += enc;

    for (analysis::PiiFinding& f : found) {
      if (scratch.seen_pii.emplace(f.kind, f.destination.value()).second) {
        result.pii_findings.push_back(std::move(f));
      }
    }
  }
  return collector.take();
}

// Augments the training set with labeled background windows so the model
// learns what "no interaction" looks like; otherwise idle heartbeats are
// force-assigned to a real class when classifying unlabeled traffic.
void Study::add_background_training(const testbed::DeviceSpec& device,
                                    const testbed::NetworkConfig& config,
                                    RunScratch& scratch) {
  obs::Span span("study/background");
  const int n_background = std::max(4, params_.plan.automated_reps / 2);
  for (int i = 0; i < n_background; ++i) {
    testbed::ExperimentSpec spec;
    spec.device_id = device.id;
    spec.config = config;
    spec.type = testbed::ExperimentType::kInteraction;
    spec.activity = std::string(analysis::kBackgroundLabel);
    spec.repetition = i;
    spec.start_time = testbed::kSimulationEpoch + 50000.0 + i * 100.0;
    util::Prng prng("bg/" + spec.key());
    const std::vector<net::Packet> packets = runner_.synthesizer().background(
        device, config, spec.start_time, spec.start_time + 60.0, prng);
    flow::MetaCollector collector(scratch.device_mac);
    flow::IngestPipeline pipeline;
    pipeline.add_sink(collector);
    pipeline.ingest_all(packets);
    pipeline.finish();
    scratch.note_ingest(pipeline);
    scratch.training.push_back(
        analysis::LabeledMeta{spec.activity, collector.take()});
  }
}

void Study::train_and_detect(const testbed::DeviceSpec& device,
                             const testbed::NetworkConfig& config,
                             RunScratch& scratch, DeviceRunResult& result,
                             util::TaskPool* pool) {
  {
    obs::Span span("study/train");
    result.model = analysis::train_activity_model(
        device, config, scratch.training, params_.inference, pool);
  }
  obs::Span span("study/idle_detect");
  result.idle = analysis::detect_activity(device, scratch.idle_meta,
                                          result.model, params_.detector);
}

void Study::run() {
  obs::Span run_span("study/run");
  // Sampled once per campaign, not per packet: instrumenting the decode
  // hot path would cost the single-decode pipeline its throughput, so the
  // registry gets the whole run's delta instead.
  const std::uint64_t decode_before = net::decode_packet_calls();
  // Every (config, device) run is independent: captures are synthesized
  // from per-experiment seed keys and analyzed locally. Enumerate the
  // pairs in the serial loop's order, pre-size each config's bucket, and
  // let the pool fill the slots by index — the aggregate tables read the
  // exact ordering the serial loop produced.
  struct PendingRun {
    std::vector<DeviceRunResult>* bucket;
    std::size_t slot;
    const testbed::DeviceSpec* device;
    testbed::NetworkConfig config;
  };
  std::vector<PendingRun> pending;
  for (const testbed::NetworkConfig& config : testbed::all_network_configs()) {
    if (config.vpn && !params_.run_vpn) continue;
    std::vector<DeviceRunResult>& bucket = results_[config.key()];
    for (const testbed::DeviceSpec& device : catalog()) {
      const bool present = config.lab == testbed::LabSite::kUs
                               ? device.in_us()
                               : device.in_uk();
      if (!present) continue;
      if (!params_.device_filter.empty()) {
        const auto& filter = params_.device_filter;
        if (std::find(filter.begin(), filter.end(), device.id) ==
            filter.end()) {
          continue;
        }
      }
      pending.push_back(PendingRun{&bucket, bucket.size(), &device, config});
      bucket.emplace_back();
    }
  }

  // Worker mode: keep held claims fresh while the pool grinds. A worker
  // that dies (kill -9, OOM) simply stops heartbeating and its claims age
  // out after the lease; no unwind code has to run for recovery to work.
  std::thread heartbeat;
  std::mutex hb_mutex;
  std::condition_variable hb_cv;
  bool hb_stop = false;
  if (claims_ != nullptr) {
    heartbeat = std::thread([&] {
      const auto interval = std::chrono::milliseconds(
          std::max<std::uint64_t>(10, params_.claim_lease_ms / 4));
      std::unique_lock<std::mutex> lock(hb_mutex);
      while (!hb_cv.wait_for(lock, interval, [&] { return hb_stop; })) {
        lock.unlock();
        claims_->heartbeat_all();
        lock.lock();
      }
    });
  }

  util::TaskPool pool(params_.jobs);
  pool.parallel_for_each(pending.size(), [&](std::size_t i) {
    const PendingRun& p = pending[i];
    // Cooperative interruption (SIGINT/SIGTERM via params.cancel): runs
    // already executing finish normally; runs not yet started are marked
    // skipped so the partial report says exactly what is missing.
    if (params_.cancel != nullptr &&
        params_.cancel->load(std::memory_order_relaxed)) {
      interrupted_.store(true, std::memory_order_relaxed);
      DeviceRunResult skipped;
      skipped.device = p.device;
      skipped.config = p.config;
      skipped.status = RunStatus::kSkipped;
      skipped.error = "campaign interrupted before this run started";
      (*p.bucket)[p.slot] = std::move(skipped);
      return;
    }
    // Worker partitioning: claim the run's ingest stage key before doing
    // any work. Losing the claim means a peer worker owns (or already
    // computed) this run — mark it skipped and move on; the reducer pass
    // recomputes nothing because the artifacts are content-addressed.
    std::string claim_key;
    if (claims_ != nullptr) {
      claim_key = ingest_stage_key(params_, *p.device, p.config);
      if (!claims_->try_claim(claim_key)) {
        DeviceRunResult skipped;
        skipped.device = p.device;
        skipped.config = p.config;
        skipped.status = RunStatus::kSkipped;
        skipped.error = "claimed by another worker";
        (*p.bucket)[p.slot] = std::move(skipped);
        return;
      }
    }
    // Pool-boundary fault isolation: one (config, device) run that still
    // throws after all the graceful-degradation layers is quarantined —
    // slot recorded with the exception text — and the campaign continues.
    // A quarantined run's claim is deliberately NOT released: the abandoned
    // claim ages out exactly like a killed worker's would, so there is one
    // recovery path (lease expiry) instead of two.
    try {
      (*p.bucket)[p.slot] = run_device(*p.device, p.config, &pool);
      if (claims_ != nullptr) claims_->release(claim_key);
    } catch (const std::exception& e) {
      DeviceRunResult failed;
      failed.device = p.device;
      failed.config = p.config;
      failed.status = RunStatus::kQuarantined;
      failed.error = e.what();
      (*p.bucket)[p.slot] = std::move(failed);
    } catch (...) {
      DeviceRunResult failed;
      failed.device = p.device;
      failed.config = p.config;
      failed.status = RunStatus::kQuarantined;
      failed.error = "unknown exception";
      (*p.bucket)[p.slot] = std::move(failed);
    }
  });

  if (claims_ != nullptr) {
    {
      std::lock_guard<std::mutex> lock(hb_mutex);
      hb_stop = true;
    }
    hb_cv.notify_all();
    heartbeat.join();
  }

  const bool cancelled = params_.cancel != nullptr &&
                         params_.cancel->load(std::memory_order_relaxed);
  if (cancelled) interrupted_.store(true, std::memory_order_relaxed);
  if (params_.run_uncontrolled && !cancelled) run_uncontrolled();

  if (obs::metrics_enabled()) {
    obs::Registry& registry = obs::Registry::global();
    registry.add(registry.counter("study/experiments"), experiments_run());
    registry.add(registry.counter("study/packets_ingested"),
                 packets_ingested());
    registry.add(registry.maximum("study/peak_capture_bytes"),
                 peak_capture_bytes());
    registry.add(registry.counter("net/decode_packet_calls"),
                 net::decode_packet_calls() - decode_before);
  }
  if (store_ != nullptr) store_->publish_metrics();
  if (claims_ != nullptr) claims_->publish_metrics();
}

void Study::run_uncontrolled() {
  obs::Span span("study/uncontrolled");
  const testbed::UserStudySimulator simulator;
  user_study_ = simulator.simulate(params_.user_study);

  const std::vector<DeviceRunResult>& us_results = results("us");
  for (const auto& [device_id, capture] : user_study_.captures) {
    const testbed::DeviceSpec* device = testbed::find_device(device_id);
    if (device == nullptr) continue;

    // One streaming pass per user-study capture: encryption accounting and
    // the §7.3 audit's feature front-end share the same decode.
    flow::FlowTable table;
    flow::MetaCollector collector(testbed::device_mac(*device, true));
    flow::IngestPipeline pipeline;
    pipeline.add_sink(table);
    pipeline.add_sink(collector);
    pipeline.ingest_all(capture);
    pipeline.finish();
    note_ingest(pipeline);
    uncontrolled_enc_ += analysis::account_flows(table.flows());

    for (const DeviceRunResult& r : us_results) {
      if (r.device->id != device_id) continue;
      // A quarantined or skipped run has no trained model to audit
      // against.
      if (r.status == RunStatus::kQuarantined ||
          r.status == RunStatus::kSkipped) {
        break;
      }
      uncontrolled_findings_[device_id] = analysis::audit_uncontrolled(
          *device, collector.take(), r.model, user_study_.events,
          params_.detector);
      break;
    }
  }
}

std::vector<const DeviceRunResult*> Study::quarantined() const {
  std::vector<const DeviceRunResult*> out;
  for (const auto& [key, bucket] : results_) {
    for (const DeviceRunResult& r : bucket) {
      if (r.status == RunStatus::kQuarantined) out.push_back(&r);
    }
  }
  return out;
}

std::vector<const DeviceRunResult*> Study::degraded() const {
  std::vector<const DeviceRunResult*> out;
  for (const auto& [key, bucket] : results_) {
    for (const DeviceRunResult& r : bucket) {
      if (r.status == RunStatus::kDegraded) out.push_back(&r);
    }
  }
  return out;
}

const std::vector<DeviceRunResult>& Study::results(
    const std::string& config_key) const {
  static const std::vector<DeviceRunResult> kEmpty;
  const auto it = results_.find(config_key);
  return it == results_.end() ? kEmpty : it->second;
}

std::vector<std::string> Study::config_keys() const {
  std::vector<std::string> keys;
  for (const testbed::NetworkConfig& config : testbed::all_network_configs()) {
    if (results_.contains(config.key())) keys.push_back(config.key());
  }
  return keys;
}

const DeviceRunResult* Study::result_for(const std::string& config_key,
                                         std::string_view device_id) const {
  for (const DeviceRunResult& r : results(config_key)) {
    if (r.device->id == device_id) return &r;
  }
  return nullptr;
}

}  // namespace iotx::core
