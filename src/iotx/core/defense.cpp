#include "iotx/core/defense.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "iotx/obs/trace.hpp"
#include "iotx/testbed/catalog.hpp"
#include "iotx/util/task_pool.hpp"

namespace iotx::core {

namespace {

std::uint64_t capture_bytes(
    const std::vector<testbed::LabeledCapture>& captures) {
  std::uint64_t total = 0;
  for (const testbed::LabeledCapture& capture : captures) {
    for (const net::Packet& packet : capture.packets) {
      total += packet.frame.size();
    }
  }
  return total;
}

}  // namespace

DefenseEvalResult run_defense_eval(const DefenseEvalParams& params) {
  obs::Span span("defense/eval");

  // Resolve the defense set up front so an unknown name fails before any
  // synthesis work.
  std::vector<std::shared_ptr<const faults::CaptureTransform>> defenses;
  if (params.defenses.empty()) {
    for (const faults::ShapingProfile& profile :
         faults::builtin_shaping_profiles()) {
      defenses.push_back(
          std::make_shared<const faults::ShapingTransform>(profile));
    }
  } else {
    for (const std::string& name : params.defenses) {
      std::shared_ptr<const faults::CaptureTransform> transform =
          faults::find_transform(name);
      if (transform == nullptr) {
        throw std::invalid_argument("unknown defense transform: " + name +
                                    " (available: " +
                                    faults::transform_names() + ")");
      }
      defenses.push_back(std::move(transform));
    }
  }

  std::vector<const testbed::DeviceSpec*> devices;
  for (const testbed::DeviceSpec& device : testbed::device_catalog()) {
    if (!params.device_filter.empty()) {
      bool wanted = false;
      for (const std::string& id : params.device_filter) {
        if (device.id == id) {
          wanted = true;
          break;
        }
      }
      if (!wanted) continue;
    }
    devices.push_back(&device);
    if (params.max_devices != 0 && devices.size() >= params.max_devices) break;
  }

  testbed::ExperimentRunner runner(params.plan);

  DefenseEvalResult result;
  result.devices = devices.size();
  // Slot-indexed so the fan-out below cannot reorder rows.
  std::vector<std::vector<DefenseRow>> slots(devices.size());

  util::TaskPool pool(params.jobs);
  pool.parallel_for_each(devices.size(), [&](std::size_t i) {
    const testbed::DeviceSpec& device = *devices[i];
    const std::vector<testbed::LabeledCapture> captures =
        runner.run_all(device, params.config);
    const std::uint64_t baseline_bytes = capture_bytes(captures);
    const analysis::ActivityModel baseline = analysis::train_activity_model(
        device, params.config, captures, params.inference);
    const double baseline_f1 = baseline.device_f1();

    std::vector<DefenseRow>& rows = slots[i];
    rows.reserve(defenses.size());
    for (const std::shared_ptr<const faults::CaptureTransform>& defense :
         defenses) {
      faults::TransformChain chain;
      chain.push_back(defense);
      std::vector<testbed::LabeledCapture> defended = captures;
      faults::TransformSummary summary;
      for (testbed::LabeledCapture& capture : defended) {
        summary.merge(chain.apply(capture.packets, capture.spec.key()));
      }
      const analysis::ActivityModel model = analysis::train_activity_model(
          device, params.config, defended, params.inference);
      DefenseRow row;
      row.defense = std::string(defense->name());
      row.device_id = device.id;
      row.baseline_f1 = baseline_f1;
      row.defended_f1 = model.device_f1();
      row.baseline_bytes = baseline_bytes;
      row.defended_bytes = capture_bytes(defended);
      row.padding_bytes = summary.shaped_padding_bytes;
      rows.push_back(std::move(row));
    }
  });

  for (std::vector<DefenseRow>& rows : slots) {
    for (DefenseRow& row : rows) result.rows.push_back(std::move(row));
  }

  for (std::size_t j = 0; j < defenses.size(); ++j) {
    DefenseAggregate agg;
    agg.defense = std::string(defenses[j]->name());
    for (const std::vector<DefenseRow>& rows : slots) {
      if (j >= rows.size()) continue;
      const DefenseRow& row = rows[j];
      ++agg.devices;
      agg.mean_baseline_f1 += row.baseline_f1;
      agg.mean_defended_f1 += row.defended_f1;
      agg.mean_f1_delta += row.f1_delta();
      agg.mean_overhead_pct += row.overhead_pct();
    }
    if (agg.devices > 0) {
      const double n = static_cast<double>(agg.devices);
      agg.mean_baseline_f1 /= n;
      agg.mean_defended_f1 /= n;
      agg.mean_f1_delta /= n;
      agg.mean_overhead_pct /= n;
    }
    result.aggregates.push_back(std::move(agg));
  }

  return result;
}

}  // namespace iotx::core
