#include "iotx/core/tables.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "iotx/util/stats.hpp"

namespace iotx::core {

namespace {

constexpr std::array<const char*, 5> kExperimentGroups = {
    "Idle", "Control", "Power", "Voice", "Video"};

constexpr std::array<testbed::Category, 6> kCategories = {
    testbed::Category::kAppliance,   testbed::Category::kAudio,
    testbed::Category::kSmartHub,    testbed::Category::kHomeAutomation,
    testbed::Category::kCamera,      testbed::Category::kTv,
};

/// Applies a function to every device result selected by a column.
template <typename Fn>
void for_column(const Study& study, std::size_t column, Fn&& fn) {
  const ColumnSelector sel = column_selector(column);
  for (const DeviceRunResult& r : study.results(sel.config_key)) {
    if (sel.common_only && !r.device->common()) continue;
    fn(r);
  }
}

}  // namespace

ColumnSelector column_selector(std::size_t column) {
  switch (column) {
    case 0: return {"us", false};
    case 1: return {"uk", false};
    case 2: return {"us", true};
    case 3: return {"uk", true};
    case 4: return {"us-vpn", false};
    case 5: return {"uk-vpn", false};
    case 6: return {"us-vpn", true};
    default: return {"uk-vpn", true};
  }
}

// ---- Table 2 -----------------------------------------------------------

std::vector<Table2Row> build_table2(const Study& study) {
  std::vector<Table2Row> rows;
  analysis::PartyCounts totals[8];

  for (const char* group : kExperimentGroups) {
    Table2Row support{group, "Support", {}};
    Table2Row third{group, "Third", {}};
    for (std::size_t c = 0; c < 8; ++c) {
      analysis::PartyCounts merged;
      for_column(study, c, [&](const DeviceRunResult& r) {
        const auto it = r.parties_by_group.find(group);
        if (it != r.parties_by_group.end()) merged.merge(it->second);
      });
      support.counts[c] = static_cast<int>(merged.support.size());
      third.counts[c] = static_cast<int>(merged.third.size());
      totals[c].merge(merged);
    }
    rows.push_back(std::move(support));
    rows.push_back(std::move(third));
  }

  Table2Row total_support{"Total", "Support", {}};
  Table2Row total_third{"Total", "Third", {}};
  for (std::size_t c = 0; c < 8; ++c) {
    total_support.counts[c] = static_cast<int>(totals[c].support.size());
    total_third.counts[c] = static_cast<int>(totals[c].third.size());
  }
  rows.push_back(std::move(total_support));
  rows.push_back(std::move(total_third));
  return rows;
}

// ---- Table 3 -----------------------------------------------------------

std::vector<Table3Row> build_table3(const Study& study) {
  std::vector<Table3Row> rows;
  for (testbed::Category category : kCategories) {
    Table3Row support{std::string(testbed::category_name(category)),
                      "Support", {}};
    Table3Row third{support.category, "Third", {}};
    for (std::size_t c = 0; c < 8; ++c) {
      analysis::PartyCounts merged;
      for_column(study, c, [&](const DeviceRunResult& r) {
        if (r.device->category != category) return;
        for (const auto& [group, counts] : r.parties_by_group) {
          merged.merge(counts);
        }
      });
      support.counts[c] = static_cast<int>(merged.support.size());
      third.counts[c] = static_cast<int>(merged.third.size());
    }
    rows.push_back(std::move(support));
    rows.push_back(std::move(third));
  }
  return rows;
}

// ---- Table 4 -----------------------------------------------------------

std::vector<Table4Row> build_table4(const Study& study, std::size_t top_n) {
  // Count devices contacting each organization as a non-first party.
  std::map<std::string, std::array<std::set<std::string>, 8>> org_devices;
  for (std::size_t c = 0; c < 8; ++c) {
    for_column(study, c, [&](const DeviceRunResult& r) {
      for (const analysis::DestinationRecord& rec : r.destinations) {
        if (rec.party == geo::PartyType::kFirst) continue;
        org_devices[rec.organization][c].insert(r.device->id);
      }
    });
  }

  std::vector<Table4Row> rows;
  for (const auto& [org, per_column] : org_devices) {
    Table4Row row;
    row.organization = org;
    for (std::size_t c = 0; c < 8; ++c) {
      row.device_counts[c] = static_cast<int>(per_column[c].size());
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const Table4Row& a,
                                         const Table4Row& b) {
    if (a.device_counts[0] != b.device_counts[0]) {
      return a.device_counts[0] > b.device_counts[0];
    }
    return a.organization < b.organization;
  });
  if (rows.size() > top_n) rows.resize(top_n);
  return rows;
}

// ---- Figure 2 -----------------------------------------------------------

std::vector<analysis::SankeyEdge> build_figure2(const Study& study) {
  analysis::SankeyBuilder builder;
  for (const char* key : {"us", "uk"}) {
    const std::string lab = key[1] == 's' ? "US" : "UK";
    for (const DeviceRunResult& r : study.results(key)) {
      builder.add(lab, std::string(testbed::category_name(r.device->category)),
                  r.destinations);
    }
  }
  return builder.edges();
}

// ---- Table 5 -----------------------------------------------------------

std::vector<Table5Row> build_table5(const Study& study) {
  constexpr std::array<const char*, 3> kClasses = {"unencrypted", "encrypted",
                                                   "unknown"};
  constexpr std::array<const char*, 4> kRanges = {">75", "50-75", "25-50",
                                                  "<25"};
  const auto bucket = [](double pct) {
    if (pct > 75.0) return 0;
    if (pct >= 50.0) return 1;
    if (pct >= 25.0) return 2;
    return 3;
  };

  std::vector<Table5Row> rows;
  for (const char* cls : kClasses) {
    std::array<Table5Row, 4> quartiles;
    for (std::size_t q = 0; q < 4; ++q) {
      quartiles[q].enc_class = cls;
      quartiles[q].range = kRanges[q];
    }
    for (std::size_t c = 0; c < 8; ++c) {
      for_column(study, c, [&](const DeviceRunResult& r) {
        double pct = 0.0;
        if (std::string_view(cls) == "unencrypted") {
          pct = r.enc_total.pct_unencrypted();
        } else if (std::string_view(cls) == "encrypted") {
          pct = r.enc_total.pct_encrypted();
        } else {
          pct = r.enc_total.pct_unknown();
        }
        quartiles[static_cast<std::size_t>(bucket(pct))].device_counts[c]++;
      });
    }
    for (Table5Row& row : quartiles) rows.push_back(std::move(row));
  }
  return rows;
}

// ---- Table 6 -----------------------------------------------------------

std::vector<Table6Row> build_table6(const Study& study) {
  constexpr std::array<const char*, 3> kClasses = {"unencrypted", "encrypted",
                                                   "unknown"};
  std::vector<Table6Row> rows;
  for (const char* cls : kClasses) {
    for (testbed::Category category : kCategories) {
      Table6Row row;
      row.enc_class = cls;
      row.category = std::string(testbed::category_name(category));
      for (std::size_t c = 0; c < 8; ++c) {
        analysis::EncryptionBytes total;
        for_column(study, c, [&](const DeviceRunResult& r) {
          if (r.device->category == category) total += r.enc_total;
        });
        if (std::string_view(cls) == "unencrypted") {
          row.pct[c] = total.pct_unencrypted();
        } else if (std::string_view(cls) == "encrypted") {
          row.pct[c] = total.pct_encrypted();
        } else {
          row.pct[c] = total.pct_unknown();
        }
      }
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

// ---- Table 7 -----------------------------------------------------------

std::vector<Table7Row> build_table7(const Study& study,
                                    std::size_t top_common,
                                    std::size_t top_us_only) {
  const auto pct_of = [&study](const char* key, const std::string& id,
                               const analysis::EncryptionBytes** out_bytes)
      -> double {
    const DeviceRunResult* r = study.result_for(key, id);
    if (r == nullptr) {
      *out_bytes = nullptr;
      return 0.0;
    }
    *out_bytes = &r->enc_total;
    return r->enc_total.pct_unencrypted();
  };

  std::vector<Table7Row> common_rows, us_rows;
  for (const testbed::DeviceSpec& device : testbed::device_catalog()) {
    Table7Row row;
    row.device_name = device.name;
    row.common = device.common();
    const analysis::EncryptionBytes* us = nullptr;
    const analysis::EncryptionBytes* uk = nullptr;
    const analysis::EncryptionBytes* vus = nullptr;
    const analysis::EncryptionBytes* vuk = nullptr;
    row.us = pct_of("us", device.id, &us);
    row.uk = pct_of("uk", device.id, &uk);
    row.vpn_us = pct_of("us-vpn", device.id, &vus);
    row.vpn_uk = pct_of("uk-vpn", device.id, &vuk);

    // Significance of VPN-vs-direct and US-vs-UK byte-share differences.
    if (us != nullptr && vus != nullptr) {
      const double z = util::two_proportion_z(
          static_cast<double>(us->unencrypted),
          static_cast<double>(us->classified_total()),
          static_cast<double>(vus->unencrypted),
          static_cast<double>(vus->classified_total()));
      row.significant_vpn = util::significant_at_95(z);
    }
    if (us != nullptr && uk != nullptr) {
      const double z = util::two_proportion_z(
          static_cast<double>(us->unencrypted),
          static_cast<double>(us->classified_total()),
          static_cast<double>(uk->unencrypted),
          static_cast<double>(uk->classified_total()));
      row.significant_region = util::significant_at_95(z);
    }

    if (device.common()) {
      common_rows.push_back(std::move(row));
    } else if (device.presence == testbed::LabPresence::kUsOnly) {
      us_rows.push_back(std::move(row));
    }
  }

  const auto by_max_pct = [](const Table7Row& a, const Table7Row& b) {
    return std::max(a.us, a.uk) > std::max(b.us, b.uk);
  };
  std::sort(common_rows.begin(), common_rows.end(), by_max_pct);
  std::sort(us_rows.begin(), us_rows.end(), by_max_pct);
  if (common_rows.size() > top_common) common_rows.resize(top_common);
  if (us_rows.size() > top_us_only) us_rows.resize(top_us_only);

  std::vector<Table7Row> rows = std::move(common_rows);
  rows.insert(rows.end(), us_rows.begin(), us_rows.end());
  return rows;
}

// ---- Table 8 -----------------------------------------------------------

std::vector<Table8Row> build_table8(const Study& study) {
  constexpr std::array<const char*, 3> kClasses = {"unencrypted", "encrypted",
                                                   "unknown"};
  constexpr std::array<const char*, 6> kGroups = {"Control", "Power", "Voice",
                                                  "Video", "Others", "Idle"};
  const auto pct_for = [](const analysis::EncryptionBytes& b,
                          std::string_view cls) {
    if (cls == "unencrypted") return b.pct_unencrypted();
    if (cls == "encrypted") return b.pct_encrypted();
    return b.pct_unknown();
  };

  std::vector<Table8Row> rows;
  for (const char* cls : kClasses) {
    for (const char* group : kGroups) {
      Table8Row row;
      row.enc_class = cls;
      row.experiment = group;
      std::set<std::string> contributing;
      for (const char* key : {"us", "uk"}) {
        for (const DeviceRunResult& r : study.results(key)) {
          if (r.enc_by_group.contains(group)) contributing.insert(
              r.device->id + std::string("/") + key);
        }
      }
      row.device_count = static_cast<int>(contributing.size());
      for (std::size_t c = 0; c < 8; ++c) {
        analysis::EncryptionBytes total;
        for_column(study, c, [&](const DeviceRunResult& r) {
          const auto it = r.enc_by_group.find(group);
          if (it != r.enc_by_group.end()) total += it->second;
        });
        row.pct[c] = pct_for(total, cls);
      }
      rows.push_back(std::move(row));
    }
    // Uncontrolled row (US only).
    Table8Row unc;
    unc.enc_class = cls;
    unc.experiment = "Uncontrol";
    unc.device_count =
        static_cast<int>(study.user_study().captures.size());
    unc.uncontrolled_pct = pct_for(study.uncontrolled_encryption(), cls);
    rows.push_back(std::move(unc));
  }
  return rows;
}

// ---- Table 9 -----------------------------------------------------------

std::vector<Table9Row> build_table9(const Study& study) {
  std::vector<Table9Row> rows;
  for (testbed::Category category : kCategories) {
    Table9Row row;
    row.category = std::string(testbed::category_name(category));
    std::set<std::string> units;
    for (const char* key : {"us", "uk"}) {
      for (const DeviceRunResult& r : study.results(key)) {
        if (r.device->category == category) {
          units.insert(r.device->id + std::string("/") + key);
        }
      }
    }
    row.device_count = static_cast<int>(units.size());
    for (std::size_t c = 0; c < 8; ++c) {
      for_column(study, c, [&](const DeviceRunResult& r) {
        if (r.device->category != category) return;
        if (r.model.device_f1() > ml::kInferrableF1) row.inferrable[c]++;
      });
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

// ---- Table 10 ----------------------------------------------------------

std::vector<Table10Row> build_table10(const Study& study) {
  constexpr std::array<const char*, 6> kGroups = {"Power",    "Voice",
                                                  "Video",    "On/Off",
                                                  "Movement", "Others"};
  std::vector<Table10Row> rows;
  for (const char* group : kGroups) {
    Table10Row row;
    row.group = group;

    const auto device_has_group = [&](const DeviceRunResult& r) {
      for (const std::string& activity : r.device->activity_names()) {
        if (testbed::activity_group(activity) == group) return true;
      }
      return false;
    };
    std::set<std::string> units;
    for (const char* key : {"us", "uk"}) {
      for (const DeviceRunResult& r : study.results(key)) {
        if (device_has_group(r)) {
          units.insert(r.device->id + std::string("/") + key);
        }
      }
    }
    row.device_count = static_cast<int>(units.size());

    for (std::size_t c = 0; c < 8; ++c) {
      for_column(study, c, [&](const DeviceRunResult& r) {
        for (const std::string& activity : r.device->activity_names()) {
          if (testbed::activity_group(activity) != group) continue;
          const auto f1 = r.model.activity_f1(activity);
          if (f1 && *f1 > ml::kInferrableF1) {
            row.inferrable[c]++;
            return;  // count each device once per group
          }
        }
      });
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

// ---- Table 11 ----------------------------------------------------------

Table11 build_table11(const Study& study, int min_instances) {
  Table11 table;
  constexpr std::array<const char*, 4> kKeys = {"us", "uk", "us-vpn",
                                                "uk-vpn"};
  for (std::size_t c = 0; c < 4; ++c) {
    const auto& results = study.results(kKeys[c]);
    table.hours[c] = results.empty() ? 0.0 : results.front().idle_hours;
  }

  std::map<std::pair<std::string, std::string>, Table11Row> by_key;
  for (std::size_t c = 0; c < 4; ++c) {
    for (const DeviceRunResult& r : study.results(kKeys[c])) {
      for (const auto& [activity, count] : r.idle.instances) {
        Table11Row& row = by_key[{r.device->name, activity}];
        row.device_name = r.device->name;
        row.activity = activity;
        row.instances[c] += count;
      }
    }
  }

  for (auto& [key, row] : by_key) {
    const int max_count =
        *std::max_element(row.instances.begin(), row.instances.end());
    if (max_count >= min_instances) table.rows.push_back(row);
  }
  std::sort(table.rows.begin(), table.rows.end(),
            [](const Table11Row& a, const Table11Row& b) {
              const int ta = a.instances[0] + a.instances[1] +
                             a.instances[2] + a.instances[3];
              const int tb = b.instances[0] + b.instances[1] +
                             b.instances[2] + b.instances[3];
              return ta > tb;
            });
  return table;
}

// ---- PII report ----------------------------------------------------------

std::vector<PiiReportRow> build_pii_report(const Study& study) {
  std::vector<PiiReportRow> rows;
  for (const std::string& key : study.config_keys()) {
    for (const DeviceRunResult& r : study.results(key)) {
      for (const analysis::PiiFinding& f : r.pii_findings) {
        rows.push_back(PiiReportRow{r.device->name, key, f.kind, f.encoding,
                                    f.domain});
      }
    }
  }
  return rows;
}

}  // namespace iotx::core
