#include "iotx/core/options.hpp"

#include <cstdlib>
#include <cstring>

#include "iotx/faults/impairment.hpp"
#include "iotx/faults/transform.hpp"
#include "iotx/testbed/catalog_gen.hpp"

namespace iotx::core {

StudyOptions::ParseResult StudyOptions::parse_shared_flag(int argc,
                                                          char** argv,
                                                          int& i) {
  const char* flag = argv[i];
  if (std::strcmp(flag, "--jobs") == 0) {
    if (i + 1 >= argc) {
      error_ = "--jobs requires a positive integer";
      return ParseResult::kError;
    }
    const int jobs = std::atoi(argv[++i]);
    if (jobs < 1) {
      error_ = "--jobs requires a positive integer";
      return ParseResult::kError;
    }
    params_.jobs = static_cast<std::size_t>(jobs);
    return ParseResult::kConsumed;
  }
  if (std::strcmp(flag, "--impair") == 0) {
    if (i + 1 >= argc) {
      error_ = "--impair requires a profile name; available: " +
               faults::profile_names();
      return ParseResult::kError;
    }
    const faults::ImpairmentProfile* profile = faults::find_profile(argv[++i]);
    if (profile == nullptr) {
      error_ = "unknown impairment profile '" + std::string(argv[i]) +
               "'; available: " + faults::profile_names();
      return ParseResult::kError;
    }
    params_.impairment = *profile;
    return ParseResult::kConsumed;
  }
  if (std::strcmp(flag, "--transform") == 0) {
    if (i + 1 >= argc) {
      error_ = "--transform requires a comma-separated transform list; "
               "available: " +
               faults::transform_names();
      return ParseResult::kError;
    }
    if (!faults::parse_transform_chain(argv[++i], params_.transforms,
                                       error_)) {
      return ParseResult::kError;
    }
    return ParseResult::kConsumed;
  }
  if (std::strcmp(flag, "--shape") == 0) {
    // Thin alias: --shape <profile> appends one shaping transform, the
    // same way --impair sets one impairment.
    if (i + 1 >= argc) {
      error_ = "--shape requires a shaping profile name; available: " +
               faults::shaping_profile_names();
      return ParseResult::kError;
    }
    const faults::ShapingProfile* profile =
        faults::find_shaping_profile(argv[++i]);
    if (profile == nullptr) {
      error_ = "unknown shaping profile '" + std::string(argv[i]) +
               "'; available: " + faults::shaping_profile_names();
      return ParseResult::kError;
    }
    params_.transforms.push_back(
        std::make_shared<const faults::ShapingTransform>(*profile));
    return ParseResult::kConsumed;
  }
  if (std::strcmp(flag, "--trace") == 0) {
    trace_ = true;
    // An optional path follows (classify's `--trace out.json`); a flag
    // token is the next option instead.
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      trace_path_ = argv[++i];
    }
    return ParseResult::kConsumed;
  }
  if (std::strcmp(flag, "--metrics") == 0) {
    metrics_ = true;
    return ParseResult::kConsumed;
  }
  if (std::strcmp(flag, "--cache") == 0) {
    if (i + 1 >= argc) {
      error_ = "--cache requires a directory path";
      return ParseResult::kError;
    }
    params_.cache_dir = argv[++i];
    return ParseResult::kConsumed;
  }
  return ParseResult::kNotMine;
}

StudyOptions& StudyOptions::paper_scale() {
  const StudyParams scaled = StudyParams::paper_scale();
  params_.plan = scaled.plan;
  params_.inference = scaled.inference;
  params_.user_study = scaled.user_study;
  return *this;
}

StudyOptions& StudyOptions::devices(std::vector<std::string> ids) {
  params_.device_filter = std::move(ids);
  return *this;
}

StudyOptions& StudyOptions::vpn(bool enabled) {
  params_.run_vpn = enabled;
  return *this;
}

StudyOptions& StudyOptions::out_dir(std::string dir) {
  out_ = std::move(dir);
  return *this;
}

StudyOptions& StudyOptions::worker(bool enabled) {
  params_.worker = enabled;
  return *this;
}

StudyOptions& StudyOptions::lifecycle_reps(int reps) {
  params_.plan.lifecycle_reps = reps;
  return *this;
}

StudyOptions& StudyOptions::claim_lease_ms(std::uint64_t lease_ms) {
  params_.claim_lease_ms = lease_ms;
  return *this;
}

StudyOptions& StudyOptions::synthetic_devices(std::size_t count,
                                              std::uint64_t seed) {
  testbed::CatalogGenParams gen;
  gen.count = count;
  gen.seed = seed;
  params_.catalog = std::make_shared<const std::vector<testbed::DeviceSpec>>(
      testbed::generate_catalog(gen, params_.jobs));
  params_.catalog_id = testbed::catalog_cache_id(gen);
  // The uncontrolled user study simulates the builtin deployment's real
  // households; it has no meaning for a synthetic fleet.
  params_.run_uncontrolled = false;
  return *this;
}

TraceSession::TraceSession(bool enabled) {
  if (!enabled) return;
  if (obs::tracing_active()) {
    collector_ = obs::trace_collector();
  } else {
    owned_ = std::make_unique<obs::TraceCollector>();
    owned_->install();
    collector_ = owned_.get();
  }
}

TraceSession::~TraceSession() { uninstall_owned(); }

std::size_t TraceSession::event_count() const {
  return collector_ == nullptr ? 0 : collector_->event_count();
}

bool TraceSession::write(const std::string& path) {
  if (collector_ == nullptr) return false;
  // Only an owned collector stops recording; an env-installed one stays
  // live for the rest of the process.
  uninstall_owned();
  return collector_->write(path);
}

void TraceSession::uninstall_owned() {
  if (owned_ != nullptr && !uninstalled_) {
    owned_->uninstall();
    uninstalled_ = true;
  }
}

}  // namespace iotx::core
