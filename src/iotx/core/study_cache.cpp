#include "iotx/core/study_cache.hpp"

#include "iotx/analysis/serialize.hpp"
#include "iotx/cache/artifact_store.hpp"
#include "iotx/cache/binio.hpp"
#include "iotx/flow/traffic_unit.hpp"

namespace iotx::core {

std::vector<std::uint8_t> IngestArtifact::encode() const {
  cache::BinWriter w;
  w.u32(kVersion);
  analysis::write_health(w, health);
  analysis::write_destinations(w, destinations);
  analysis::write_parties_by_group(w, parties_by_group);
  analysis::write_enc_by_group(w, enc_by_group);
  analysis::write_encryption(w, enc_total);
  analysis::write_pii_findings(w, pii_findings);
  analysis::write_parties_by_group(w, parties_by_phase);
  analysis::write_enc_by_group(w, enc_by_phase);
  w.u64(pii_by_phase.size());
  for (const auto& [phase, findings] : pii_by_phase) {
    w.str(phase);
    analysis::write_pii_findings(w, findings);
  }
  analysis::write_labeled_meta(w, training);
  flow::write_meta(w, idle_meta);
  w.u64(experiments);
  w.u64(packets_ingested);
  w.u64(peak_capture_bytes);
  return w.take();
}

IngestArtifact IngestArtifact::decode(std::span<const std::uint8_t> payload) {
  cache::BinReader r(payload);
  if (r.u32() != kVersion)
    throw cache::CorruptArtifact("ingest artifact version mismatch");
  IngestArtifact artifact;
  artifact.health = analysis::read_health(r);
  artifact.destinations = analysis::read_destinations(r);
  artifact.parties_by_group = analysis::read_parties_by_group(r);
  artifact.enc_by_group = analysis::read_enc_by_group(r);
  artifact.enc_total = analysis::read_encryption(r);
  artifact.pii_findings = analysis::read_pii_findings(r);
  artifact.parties_by_phase = analysis::read_parties_by_group(r);
  artifact.enc_by_phase = analysis::read_enc_by_group(r);
  std::size_t n_phases = r.length(1);
  for (std::size_t i = 0; i < n_phases; ++i) {
    std::string phase = r.str();
    artifact.pii_by_phase.emplace(std::move(phase),
                                  analysis::read_pii_findings(r));
  }
  artifact.training = analysis::read_labeled_meta(r);
  artifact.idle_meta = flow::read_meta(r);
  artifact.experiments = r.u64();
  artifact.packets_ingested = r.u64();
  artifact.peak_capture_bytes = r.u64();
  if (!r.done())
    throw cache::CorruptArtifact("ingest artifact has trailing bytes");
  return artifact;
}

std::vector<std::uint8_t> ModelArtifact::encode() const {
  cache::BinWriter w;
  w.u32(kVersion);
  analysis::write_activity_model(w, model);
  analysis::write_idle_detections(w, idle);
  return w.take();
}

ModelArtifact ModelArtifact::decode(std::span<const std::uint8_t> payload) {
  cache::BinReader r(payload);
  if (r.u32() != kVersion)
    throw cache::CorruptArtifact("model artifact version mismatch");
  ModelArtifact artifact;
  artifact.model = analysis::read_activity_model(r);
  artifact.idle = analysis::read_idle_detections(r);
  if (!r.done())
    throw cache::CorruptArtifact("model artifact has trailing bytes");
  return artifact;
}

namespace {

// Inputs shared by both stages: who is measured, where, under which
// schedule and which injected network conditions.
void common_key_fields(cache::StageKey& key, const StudyParams& params,
                       const testbed::DeviceSpec& device,
                       const testbed::NetworkConfig& config) {
  // Which catalog the device came from: a synthetic fleet device and a
  // builtin device must never share a key even if their specs collide.
  key.field("catalog", params.catalog_id);
  key.field("device_id", device.id)
      .field("device_name", device.name)
      .field("manufacturer", device.manufacturer);
  std::string orgs;
  for (const std::string& org : device.first_party_orgs) {
    orgs += org;
    orgs += '\n';
  }
  key.field("first_party_orgs", orgs);
  key.field("config", config.key());
  key.field("automated_reps", std::int64_t{params.plan.automated_reps})
      .field("manual_reps", std::int64_t{params.plan.manual_reps})
      .field("power_reps", std::int64_t{params.plan.power_reps})
      .field("idle_hours", params.plan.idle_hours)
      .field("lifecycle_reps", std::int64_t{params.plan.lifecycle_reps});
  const faults::ImpairmentProfile& imp = params.impairment;
  key.field("impair_name", imp.name)
      .field("impair_enabled", imp.enabled())
      .field("impair_loss", imp.loss)
      .field("impair_duplicate", imp.duplicate)
      .field("impair_reorder", imp.reorder)
      .field("impair_reorder_jitter", imp.reorder_jitter)
      .field("impair_truncate", imp.truncate)
      .field("impair_truncate_snaplen", std::uint64_t{imp.truncate_snaplen})
      .field("impair_corrupt", imp.corrupt)
      .field("impair_corrupt_bytes", std::uint64_t{imp.corrupt_bytes})
      .field("impair_dns_drop", imp.dns_drop)
      .field("impair_cutoff", imp.cutoff)
      .field("impair_cutoff_min_fraction", imp.cutoff_min_fraction);
  // Canonical spec of the extra capture-transform chain (beyond the
  // impairment knobs above): element order, names, and every shaping
  // parameter. An empty chain canonicalizes to the empty string.
  key.field("transform_chain", params.transforms.spec());
  // The Prng fork roots: every per-experiment generator is derived from
  // one of these labels plus the experiment key, so renaming a stream
  // re-randomizes the synthetic captures and must re-key the stage.
  key.field("prng_impair_label", "impair/").field("prng_bg_label", "bg/");
}

}  // namespace

std::string ingest_stage_key(const StudyParams& params,
                             const testbed::DeviceSpec& device,
                             const testbed::NetworkConfig& config) {
  cache::StageKey key("study/ingest");
  key.field("artifact_version", std::uint64_t{IngestArtifact::kVersion});
  common_key_fields(key, params, device, config);
  key.field("entropy_encrypted_threshold",
            analysis::kEncryptedEntropyThreshold)
      .field("entropy_unencrypted_threshold",
             analysis::kUnencryptedEntropyThreshold);
  return key.hex();
}

std::string model_stage_key(const StudyParams& params,
                            const testbed::DeviceSpec& device,
                            const testbed::NetworkConfig& config,
                            std::string_view ingest_digest) {
  cache::StageKey key("study/model");
  key.field("artifact_version", std::uint64_t{ModelArtifact::kVersion});
  common_key_fields(key, params, device, config);
  key.field("ingest_digest", ingest_digest);
  const ml::ValidationParams& v = params.inference.validation;
  key.field("n_trees", std::uint64_t{v.forest.n_trees})
      .field("max_depth", std::uint64_t{v.forest.tree.max_depth})
      .field("min_samples_split", std::uint64_t{v.forest.tree.min_samples_split})
      .field("min_samples_leaf", std::uint64_t{v.forest.tree.min_samples_leaf})
      .field("features_per_split", std::uint64_t{v.forest.tree.features_per_split})
      .field("train_fraction", v.train_fraction)
      .field("repetitions", std::uint64_t{v.repetitions});
  key.field("min_model_f1", params.detector.min_model_f1)
      .field("unit_gap_seconds", params.detector.unit_gap_seconds)
      .field("min_unit_packets", std::uint64_t{params.detector.min_unit_packets})
      .field("min_vote", params.detector.min_vote);
  return key.hex();
}

}  // namespace iotx::core
