// The top-level Study: runs the full measurement campaign of the paper —
// both labs, direct and VPN egress, power/interaction/idle experiments,
// plus the uncontrolled user study — and exposes per-device results that
// the table builders (tables.hpp) aggregate into every table and figure
// of the evaluation.
//
// Quickstart:
//   iotx::core::Study study;           // scaled-down default parameters
//   study.run();
//   auto t2 = iotx::core::build_table2(study);
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "iotx/analysis/destinations.hpp"
#include "iotx/analysis/encryption.hpp"
#include "iotx/analysis/inference.hpp"
#include "iotx/analysis/pii.hpp"
#include "iotx/analysis/unexpected.hpp"
#include "iotx/cache/artifact_store.hpp"
#include "iotx/dist/claim.hpp"
#include "iotx/faults/impairment.hpp"
#include "iotx/faults/transform.hpp"
#include "iotx/flow/ingest.hpp"
#include "iotx/testbed/experiment.hpp"
#include "iotx/testbed/user_study.hpp"
#include "iotx/util/task_pool.hpp"

namespace iotx::core {

struct StudyParams {
  testbed::SchedulePlan plan{/*automated_reps=*/12, /*manual_reps=*/3,
                             /*power_reps=*/5, /*idle_hours=*/2.0};
  analysis::InferenceParams inference{
      ml::ValidationParams{ml::ForestParams{/*n_trees=*/30, ml::TreeParams{}},
                           /*train_fraction=*/0.7, /*repetitions=*/5}};
  analysis::DetectorParams detector;
  testbed::UserStudyParams user_study;
  bool run_vpn = true;           ///< include the VPN egress experiments
  bool run_uncontrolled = true;  ///< include the user-study simulation
  /// When non-empty, restricts the run to these device ids (useful for
  /// focused analyses and fast tests).
  std::vector<std::string> device_filter;
  /// Worker threads for the campaign (device runs, forest training,
  /// validation repetitions). 0 means hardware_concurrency; 1 runs
  /// serially. Results are bit-identical at any value (see DESIGN.md
  /// §"Concurrency model").
  std::size_t jobs = 0;
  /// Network impairment injected into every controlled capture at the
  /// gateway (seeded per experiment key, so bit-reproducible at any job
  /// count). Default-constructed = disabled: captures are byte-identical
  /// to a build without fault injection.
  faults::ImpairmentProfile impairment;
  /// Ordered capture-transform chain applied at the capture head after
  /// `impairment` (which stays a separate knob for the legacy --impair
  /// surface; internally both run through the same chain machinery).
  /// Empty = no-op: the chain never materializes or reorders anything,
  /// so default campaigns stay byte-identical. Each element is seeded
  /// per experiment key ("<seed_label>/<spec key>") — bit-reproducible
  /// at any jobs count, and folded into every cache stage key.
  faults::TransformChain transforms;
  /// Chaos/testing hook invoked at the start of every (config, device)
  /// run; a throw here exercises the quarantine path the same way a
  /// genuinely corrupt capture would. Null by default.
  std::function<void(const testbed::DeviceSpec&,
                     const testbed::NetworkConfig&)>
      chaos_hook;
  /// Cooperative cancellation: when non-null and set (e.g. by a SIGINT/
  /// SIGTERM handler), run() finishes the (config, device) runs already
  /// in flight, marks every run not yet started RunStatus::kSkipped, and
  /// skips the uncontrolled phase. The partial campaign still writes a
  /// coherent report — robustness.json carries "status": "interrupted".
  const std::atomic<bool>* cancel = nullptr;
  /// When non-empty, run() keeps a content-addressed artifact cache in
  /// this directory: each (config, device) stage (ingest partials,
  /// trained model) is stored under a key derived from its canonical
  /// inputs, and a warm rerun loads hits instead of recomputing. Warm
  /// and cold runs produce byte-identical tables at any `jobs` count; a
  /// corrupt/truncated artifact falls back to recompute and is counted
  /// in the run's CaptureHealth (see DESIGN.md §"Artifact cache").
  std::string cache_dir;
  /// Distributed worker mode (requires cache_dir): before computing a
  /// (config, device) pair, the run claims its ingest stage key through
  /// dist::ClaimStore over the shared cache directory. A pair whose
  /// claim is held by another live worker is marked RunStatus::kSkipped
  /// (error "claimed by another worker") — N workers over one cache dir
  /// partition the stage graph with no coordinator, and a follow-up
  /// non-worker run ("iotx reduce") merges the partials byte-
  /// identically. See DESIGN.md §"Distributed campaigns".
  bool worker = false;
  /// Claim lease for worker mode: a claim not heartbeated for this long
  /// is considered abandoned (worker killed mid-stage) and reaped.
  std::uint64_t claim_lease_ms = 60'000;
  /// Catalog override for fleet-scale campaigns: when set, run()
  /// enumerates these devices instead of testbed::device_catalog().
  /// Shared ownership keeps DeviceRunResult::device pointers valid for
  /// the Study's lifetime. Pair with catalog_id so cache keys never
  /// alias across catalogs.
  std::shared_ptr<const std::vector<testbed::DeviceSpec>> catalog;
  /// Cache identity of the catalog, folded into every stage key:
  /// "builtin" for the paper catalog, testbed::catalog_cache_id() for a
  /// generated fleet.
  std::string catalog_id = "builtin";

  /// Paper-scale settings (30 automated reps, 10 CV repetitions, 100
  /// trees, 28 h idle, ~6-month user study). Minutes of CPU.
  static StudyParams paper_scale();
};

/// Disposition of one (config, device) run after graceful degradation.
enum class RunStatus {
  kClean,        ///< no anomalies observed, no impairment injected
  kDegraded,     ///< completed, but with nonzero health counters
  kQuarantined,  ///< threw; excluded from analysis, error text retained
  kSkipped,      ///< never started: the campaign was cancelled first
};

std::string_view run_status_name(RunStatus status) noexcept;

/// Everything measured for one device unit under one network config.
struct DeviceRunResult {
  const testbed::DeviceSpec* device = nullptr;
  testbed::NetworkConfig config;

  /// Typed anomaly counters aggregated over every capture of this run
  /// (ingest-side observations plus injected-impairment ground truth).
  faults::CaptureHealth health;
  RunStatus status = RunStatus::kClean;
  /// Exception text when quarantined; empty otherwise.
  std::string error;

  /// Merged destination records over all experiments.
  std::vector<analysis::DestinationRecord> destinations;
  /// Unique non-first parties per experiment group ("Power", "Voice",
  /// "Video", "Others", "Idle") plus "Control" (all controlled).
  std::map<std::string, analysis::PartyCounts> parties_by_group;
  /// Encryption byte accounting per experiment group and overall.
  std::map<std::string, analysis::EncryptionBytes> enc_by_group;
  analysis::EncryptionBytes enc_total;
  /// Plaintext PII exposures found across all captures.
  std::vector<analysis::PiiFinding> pii_findings;
  /// Lifecycle slices: the same destination/encryption/PII accounting
  /// keyed by lifecycle phase ("normal" plus — when the plan schedules
  /// lifecycle experiments — "setup", "ota_update", "deprovision").
  /// Lifecycle captures accumulate ONLY here, never into the paper
  /// tables above, so enabling lifecycle measurement cannot perturb
  /// Tables 2-11.
  std::map<std::string, analysis::PartyCounts> parties_by_phase;
  std::map<std::string, analysis::EncryptionBytes> enc_by_phase;
  std::map<std::string, std::vector<analysis::PiiFinding>> pii_by_phase;
  /// The trained activity model and its validation scores.
  analysis::ActivityModel model;
  /// Idle-period detections (using only >0.9-F1 classes).
  analysis::IdleDetections idle;
  double idle_hours = 0.0;
};

class Study {
 public:
  explicit Study(StudyParams params = {});

  /// Runs the full campaign, fanning (config, device) pairs across
  /// params().jobs worker threads. Deterministic at any job count; safe to
  /// call once.
  void run();

  const StudyParams& params() const noexcept { return params_; }

  /// Results per network config key ("us", "uk", "us-vpn", "uk-vpn");
  /// populated by run().
  const std::vector<DeviceRunResult>& results(const std::string& config_key)
      const;

  /// All config keys that were run, in canonical order.
  std::vector<std::string> config_keys() const;

  /// The result for one device under one config; nullptr when absent.
  const DeviceRunResult* result_for(const std::string& config_key,
                                    std::string_view device_id) const;

  /// Uncontrolled (user-study) outputs; empty unless run_uncontrolled.
  const testbed::UserStudyResult& user_study() const noexcept {
    return user_study_;
  }
  /// Encryption accounting over the uncontrolled captures.
  const analysis::EncryptionBytes& uncontrolled_encryption() const noexcept {
    return uncontrolled_enc_;
  }
  /// §7.3 audit findings per device.
  const std::map<std::string, std::vector<analysis::UncontrolledFinding>>&
  uncontrolled_findings() const noexcept {
    return uncontrolled_findings_;
  }

  /// Total number of controlled experiments executed.
  std::size_t experiments_run() const noexcept {
    return experiments_run_.load(std::memory_order_relaxed);
  }

  /// Frames streamed through ingest pipelines during run() — the
  /// denominator of the single-decode invariant: with impairment disabled,
  /// net::decode_packet_calls() grows by exactly this much across run().
  std::uint64_t packets_ingested() const noexcept {
    return packets_ingested_.load(std::memory_order_relaxed);
  }

  /// Largest raw-capture byte footprint any single ingest pass held. The
  /// streaming pipeline drops each capture's packet buffers as soon as its
  /// sinks finish, so this is one capture's bytes — not a whole training
  /// set's, as the pre-pipeline run_device retained.
  std::uint64_t peak_capture_bytes() const noexcept {
    return peak_capture_bytes_.load(std::memory_order_relaxed);
  }

  /// Artifact-cache counters for this study (all zero when
  /// params().cache_dir is empty): hits/misses/stores, corrupt
  /// artifacts, and bytes moved. Two lookups happen per (config,
  /// device) run — the ingest stage and the model stage.
  cache::ArtifactStoreStats cache_stats() const {
    return store_ == nullptr ? cache::ArtifactStoreStats{} : store_->stats();
  }

  /// Claim-protocol counters for this study (all zero unless
  /// params().worker): attempts/acquired/contended/reaped/released.
  dist::ClaimStats claim_stats() const {
    return claims_ == nullptr ? dist::ClaimStats{} : claims_->stats();
  }

  /// The device catalog this study enumerates: the override from
  /// params().catalog, or the builtin 81-device paper catalog.
  const std::vector<testbed::DeviceSpec>& catalog() const {
    return params_.catalog != nullptr ? *params_.catalog
                                      : testbed::device_catalog();
  }

  /// The effective capture-transform chain this study applies at every
  /// capture head: params().impairment (wrapped, when enabled) followed
  /// by params().transforms. Empty on a clean run.
  const faults::TransformChain& transform_chain() const noexcept {
    return transforms_;
  }

  /// True once run() observed the params().cancel flag: some runs (or
  /// the uncontrolled phase) were skipped and the report is partial.
  bool interrupted() const noexcept {
    return interrupted_.load(std::memory_order_relaxed);
  }

  /// All quarantined runs across configs, in result order; empty when
  /// every run completed.
  std::vector<const DeviceRunResult*> quarantined() const;

  /// All degraded (completed-with-anomalies) runs across configs.
  std::vector<const DeviceRunResult*> degraded() const;

  /// The attribution context used for a config (exposed for examples).
  analysis::AttributionContext attribution_context(
      const testbed::NetworkConfig& config) const;

 private:
  /// Per-run working set shared by the stage helpers below (study.cpp).
  struct RunScratch;

  DeviceRunResult run_device(const testbed::DeviceSpec& device,
                             const testbed::NetworkConfig& config,
                             util::TaskPool* pool);

  // Stage boundaries of one (config, device) run, hoisted into named
  // helpers so observability spans (and future optimizations) have clean
  // seams. Each helper is one row of the span taxonomy in DESIGN.md
  // §"Observability".

  /// Runs the experiment schedule: synthesize, impair (optional), and
  /// stream every capture through one ingest pipeline, accumulating
  /// destinations / encryption / PII / training meta into the scratch.
  void run_experiment_schedule(const testbed::DeviceSpec& device,
                               const testbed::NetworkConfig& config,
                               RunScratch& scratch, DeviceRunResult& result);

  /// Streams one labeled capture (single-decode pipeline) and runs the
  /// per-capture analyses; returns the surviving device-traffic meta.
  std::vector<flow::PacketMeta> ingest_labeled_capture(
      const testbed::LabeledCapture& capture, RunScratch& scratch,
      DeviceRunResult& result);

  /// Synthesizes labeled background windows into the training set.
  void add_background_training(const testbed::DeviceSpec& device,
                               const testbed::NetworkConfig& config,
                               RunScratch& scratch);

  /// Trains/validates the activity model and runs idle detection.
  void train_and_detect(const testbed::DeviceSpec& device,
                        const testbed::NetworkConfig& config,
                        RunScratch& scratch, DeviceRunResult& result,
                        util::TaskPool* pool);

  void run_uncontrolled();
  /// Folds one finished pipeline pass into the run-wide ingest stats.
  void note_ingest(const flow::IngestPipeline& pipeline);
  /// Raises the peak-capture-bytes high-water mark.
  void note_peak(std::uint64_t bytes);

  StudyParams params_;
  /// The effective capture-transform chain: params_.impairment (wrapped,
  /// when enabled) followed by params_.transforms. Built once in the
  /// constructor; empty on a clean run.
  faults::TransformChain transforms_;
  /// Non-null when params_.cache_dir is set.
  std::unique_ptr<cache::ArtifactStore> store_;
  /// Non-null in worker mode (params_.worker with a cache_dir).
  std::unique_ptr<dist::ClaimStore> claims_;
  testbed::ExperimentRunner runner_;
  geo::OrgDatabase orgs_;
  geo::GeoDatabase geo_;
  std::map<std::string, std::vector<DeviceRunResult>> results_;
  testbed::UserStudyResult user_study_;
  analysis::EncryptionBytes uncontrolled_enc_;
  std::map<std::string, std::vector<analysis::UncontrolledFinding>>
      uncontrolled_findings_;
  std::atomic<bool> interrupted_{false};
  std::atomic<std::size_t> experiments_run_{0};
  std::atomic<std::uint64_t> packets_ingested_{0};
  std::atomic<std::uint64_t> peak_capture_bytes_{0};
};

/// Experiment group of a spec, matching the tables' row labels:
/// "Power", "Voice", "Video", "Others" (controlled), or "Idle".
std::string experiment_group(const testbed::ExperimentSpec& spec);

}  // namespace iotx::core
