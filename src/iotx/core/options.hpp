// StudyOptions: one builder for everything the CLI used to assemble by
// mutating StudyParams ad hoc inside each subcommand. The shared flags
// (--jobs / --impair / --transform / --shape / --trace / --metrics /
// --cache) are parsed in one place — parse_shared_flag() — so `study`,
// `classify`, `serve` and `defend-eval` accept the same spellings with
// the same validation, and a new shared flag is added once instead of
// per subcommand.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "iotx/core/study.hpp"
#include "iotx/obs/trace.hpp"

namespace iotx::core {

class StudyOptions {
 public:
  enum class ParseResult {
    kConsumed,  ///< a shared flag, recognized and applied
    kNotMine,   ///< not a shared flag; the subcommand handles it
    kError,     ///< a shared flag with an invalid value; see error()
  };

  /// Examines argv[i]; on a shared flag, applies it and advances `i`
  /// past any consumed value token. `--trace` consumes a following
  /// token as its output path when one is present and is not a flag
  /// (so `classify --trace out.json` and the bare `study --trace` both
  /// parse).
  ParseResult parse_shared_flag(int argc, char** argv, int& i);

  /// Diagnostic for the last kError result.
  const std::string& error() const noexcept { return error_; }

  // Fluent setters for the subcommand-specific knobs.
  /// Applies paper-scale schedule/inference/user-study settings while
  /// preserving any already-parsed shared flags (jobs, impairment,
  /// cache directory).
  StudyOptions& paper_scale();
  StudyOptions& devices(std::vector<std::string> ids);
  StudyOptions& vpn(bool enabled);
  StudyOptions& out_dir(std::string dir);
  /// Worker mode: claim (config, device) runs through the shared cache
  /// before computing them (requires a cache directory; validated by the
  /// CLI, not here).
  StudyOptions& worker(bool enabled);
  /// Schedules `reps` repetitions of each lifecycle phase (setup /
  /// ota_update / deprovision) per (config, device) run; 0 — the
  /// default — reproduces the paper campaign byte-identically.
  StudyOptions& lifecycle_reps(int reps);
  StudyOptions& claim_lease_ms(std::uint64_t lease_ms);
  /// Replaces the builtin catalog with `count` synthetic devices from
  /// testbed::generate_catalog (seeded, bit-reproducible) and disables
  /// the uncontrolled user-study stage, which only models the builtin
  /// deployment. Sets params().catalog_id so cache keys cannot collide
  /// across catalogs.
  StudyOptions& synthetic_devices(std::size_t count, std::uint64_t seed);

  /// The assembled study parameters (cache_dir included).
  const StudyParams& params() const noexcept { return params_; }

  const std::string& out() const noexcept { return out_; }
  bool metrics() const noexcept { return metrics_; }
  bool trace() const noexcept { return trace_; }
  /// Explicit trace output path; empty means "derive from out()".
  const std::string& trace_path() const noexcept { return trace_path_; }
  const std::string& cache_dir() const noexcept { return params_.cache_dir; }

 private:
  StudyParams params_;
  std::string out_;
  bool trace_ = false;
  std::string trace_path_;
  bool metrics_ = false;
  std::string error_;
};

/// RAII wrapper for the CLI's trace-collector lifecycle. With
/// IOTX_OBS=trace in the environment a process-lifetime collector is
/// already installed — reuse it rather than double-installing (the env
/// hook would lose the slot race); otherwise install an owned collector
/// and uninstall it before writing.
class TraceSession {
 public:
  explicit TraceSession(bool enabled);
  ~TraceSession();

  bool active() const noexcept { return collector_ != nullptr; }
  std::size_t event_count() const;

  /// Stops an owned collector and writes the trace JSON; false on I/O
  /// failure. An env-installed collector keeps recording afterwards.
  bool write(const std::string& path);

 private:
  void uninstall_owned();

  std::unique_ptr<obs::TraceCollector> owned_;
  obs::TraceCollector* collector_ = nullptr;
  bool uninstalled_ = false;
};

}  // namespace iotx::core
