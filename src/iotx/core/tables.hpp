// Table builders: aggregate a completed Study into the exact row/column
// structure of every table and figure in the paper's evaluation
// (Tables 2-11, Figure 2, and the §6.2 PII findings).
//
// Column convention, matching the paper:
//   US, UK         all devices of each lab, direct egress
//   US^, UK^       only the 26 common device models
//   VPN US->UK     US lab egressing through the UK (and vice versa)
//   VPN US^, UK^   common devices over VPN
#pragma once

#include <array>
#include <string>
#include <vector>

#include "iotx/core/study.hpp"

namespace iotx::core {

/// The eight standard columns.
inline constexpr std::array<const char*, 8> kColumnHeaders = {
    "US", "UK", "US^", "UK^", "VPN US>UK", "VPN UK>US", "VPN US^",
    "VPN UK^"};

/// Selects (config key, common-only) for column i.
struct ColumnSelector {
  std::string config_key;
  bool common_only;
};
ColumnSelector column_selector(std::size_t column);

// ---- Table 2: non-first parties by experiment type --------------------
struct Table2Row {
  std::string experiment;  ///< Idle, Control, Power, Voice, Video, Total
  std::string party;       ///< Support / Third
  std::array<int, 8> counts{};
};
std::vector<Table2Row> build_table2(const Study& study);

// ---- Table 3: non-first parties by device category --------------------
struct Table3Row {
  std::string category;
  std::string party;
  std::array<int, 8> counts{};
};
std::vector<Table3Row> build_table3(const Study& study);

// ---- Table 4: organizations contacted by multiple devices -------------
struct Table4Row {
  std::string organization;
  std::array<int, 8> device_counts{};
};
std::vector<Table4Row> build_table4(const Study& study, std::size_t top_n = 10);

// ---- Figure 2: lab -> category -> region byte flows --------------------
std::vector<analysis::SankeyEdge> build_figure2(const Study& study);

// ---- Table 5: devices by encryption-percentage quartile ----------------
struct Table5Row {
  std::string enc_class;  ///< "unencrypted" / "encrypted" / "unknown"
  std::string range;      ///< ">75", "50-75", "25-50", "<25"
  std::array<int, 8> device_counts{};
};
std::vector<Table5Row> build_table5(const Study& study);

// ---- Table 6: percent bytes per class per category ---------------------
struct Table6Row {
  std::string enc_class;
  std::string category;
  std::array<double, 8> pct{};
};
std::vector<Table6Row> build_table6(const Study& study);

// ---- Table 7: percent unencrypted bytes per device ---------------------
struct Table7Row {
  std::string device_name;
  bool common = false;       ///< in both testbeds
  double us = 0.0, uk = 0.0, vpn_us = 0.0, vpn_uk = 0.0;  ///< percents
  bool significant_vpn = false;     ///< bold in the paper
  bool significant_region = false;  ///< italic in the paper
};
std::vector<Table7Row> build_table7(const Study& study,
                                    std::size_t top_common = 10,
                                    std::size_t top_us_only = 3);

// ---- Table 8: percent bytes per class per experiment type --------------
struct Table8Row {
  std::string enc_class;
  std::string experiment;  ///< Control/Power/Voice/Video/Others/Idle/Uncontrol
  int device_count = 0;    ///< devices contributing (US+UK direct)
  std::array<double, 8> pct{};
  double uncontrolled_pct = -1.0;  ///< only on Uncontrol rows, US column
};
std::vector<Table8Row> build_table8(const Study& study);

// ---- Table 9: inferrable devices (F1 > 0.75) per category --------------
struct Table9Row {
  std::string category;
  int device_count = 0;  ///< units across both labs (direct)
  std::array<int, 8> inferrable{};
};
std::vector<Table9Row> build_table9(const Study& study);

// ---- Table 10: inferrable activities per activity group ----------------
struct Table10Row {
  std::string group;     ///< Power, Voice, Video, On/Off, Movement, Others
  int device_count = 0;  ///< units having such an activity (direct)
  std::array<int, 8> inferrable{};
};
std::vector<Table10Row> build_table10(const Study& study);

// ---- Table 11: idle-period detected activity instances -----------------
struct Table11Row {
  std::string device_name;
  std::string activity;
  /// Columns: US, UK, VPN US->UK, VPN UK->US (the paper's four).
  std::array<int, 4> instances{};
};
struct Table11 {
  std::array<double, 4> hours{};
  std::vector<Table11Row> rows;  ///< rows with >= min_instances somewhere
};
Table11 build_table11(const Study& study, int min_instances = 3);

// ---- §6.2: plaintext PII findings ---------------------------------------
struct PiiReportRow {
  std::string device_name;
  std::string config_key;
  std::string kind;
  std::string encoding;
  std::string destination_domain;
};
std::vector<PiiReportRow> build_pii_report(const Study& study);

}  // namespace iotx::core
