// Traffic-shaping defense evaluation (`iotx defend-eval`): how much does
// each shaping defense (pad-to-bucket, constant-rate release,
// batch-and-delay) degrade the §6.3 activity-inference attack, and at
// what byte overhead?
//
// For every selected device the evaluator synthesizes the controlled
// labeled captures once, trains the baseline activity classifier, then
// re-applies each defense transform at the capture head (seeded per
// experiment key — bit-reproducible at any jobs count) and retrains.
// The report pairs the F1 degradation with the padding-byte overhead,
// the defender's cost/benefit curve.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "iotx/analysis/inference.hpp"
#include "iotx/faults/transform.hpp"
#include "iotx/testbed/experiment.hpp"

namespace iotx::core {

struct DefenseEvalParams {
  /// Capture schedule per device; scaled below Study defaults — the
  /// sweep retrains one model per (device, defense).
  testbed::SchedulePlan plan{/*automated_reps=*/6, /*manual_reps=*/2,
                             /*power_reps=*/2, /*idle_hours=*/0.25};
  analysis::InferenceParams inference{
      ml::ValidationParams{ml::ForestParams{/*n_trees=*/20, ml::TreeParams{}},
                           /*train_fraction=*/0.7, /*repetitions=*/3}};
  /// Network config the captures are synthesized under (default: US lab,
  /// direct egress — the defense effect is config-independent here).
  testbed::NetworkConfig config;
  /// Defense transform names (registry lookup). Empty = every builtin
  /// shaping profile. Unknown names throw std::invalid_argument.
  std::vector<std::string> defenses;
  /// When non-empty, restricts the sweep to these device ids.
  std::vector<std::string> device_filter;
  /// Cap on swept devices after filtering (0 = no cap). The default
  /// keeps `iotx defend-eval` in CI-friendly seconds.
  std::size_t max_devices = 6;
  /// Worker threads (0 = hardware concurrency, 1 = serial). Results are
  /// bit-identical at any value.
  std::size_t jobs = 0;
};

/// One (device, defense) measurement.
struct DefenseRow {
  std::string defense;
  std::string device_id;
  double baseline_f1 = 0.0;  ///< device F1 with no defense
  double defended_f1 = 0.0;  ///< device F1 after the defense transform
  std::uint64_t baseline_bytes = 0;  ///< capture bytes, undefended
  std::uint64_t defended_bytes = 0;  ///< capture bytes after shaping
  std::uint64_t padding_bytes = 0;   ///< pure padding added by the defense

  /// Positive when the defense reduced inference accuracy.
  double f1_delta() const noexcept { return baseline_f1 - defended_f1; }
  /// Byte overhead relative to the undefended capture, in percent.
  double overhead_pct() const noexcept {
    return baseline_bytes == 0
               ? 0.0
               : 100.0 *
                     (static_cast<double>(defended_bytes) -
                      static_cast<double>(baseline_bytes)) /
                     static_cast<double>(baseline_bytes);
  }
};

/// Per-defense means across the swept devices.
struct DefenseAggregate {
  std::string defense;
  std::size_t devices = 0;
  double mean_baseline_f1 = 0.0;
  double mean_defended_f1 = 0.0;
  double mean_f1_delta = 0.0;
  double mean_overhead_pct = 0.0;
};

struct DefenseEvalResult {
  /// Device-major, defense order as requested.
  std::vector<DefenseRow> rows;
  std::vector<DefenseAggregate> aggregates;
  std::size_t devices = 0;
};

/// Runs the sweep. Throws std::invalid_argument on an unknown defense
/// name. Deterministic at any `jobs` (slot-indexed results, per-capture
/// seeds).
DefenseEvalResult run_defense_eval(const DefenseEvalParams& params);

}  // namespace iotx::core
