// Cacheable stage artifacts of one (config, device) Study run and their
// deterministic stage keys (DESIGN.md §"Artifact cache").
//
// Two stages per run:
//   "ingest" — everything up to and including background-training
//     synthesis: the mergeable table partials (destinations, party
//     counts, encryption bytes, PII findings), the run's CaptureHealth,
//     the labeled training meta and idle meta, and the run's ingest
//     counters (experiments / packets / peak bytes, replayed on a hit
//     so campaign-wide totals stay byte-identical warm vs cold).
//   "model" — the trained ActivityModel plus idle detections. Its key
//     chains on the *content digest* of the ingest artifact, so any
//     change that alters the ingest output automatically invalidates
//     the model without enumerating the dependency.
//
// A stage key hashes the stage's canonical inputs: the code-version
// salt, device identity, network config, schedule plan, impairment
// profile knobs, Prng root labels, entropy thresholds, and (for the
// model stage) inference + detector parameters.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "iotx/core/study.hpp"

namespace iotx::core {

struct IngestArtifact {
  static constexpr std::uint32_t kVersion = 2;

  faults::CaptureHealth health;
  std::vector<analysis::DestinationRecord> destinations;
  std::map<std::string, analysis::PartyCounts> parties_by_group;
  std::map<std::string, analysis::EncryptionBytes> enc_by_group;
  analysis::EncryptionBytes enc_total;
  std::vector<analysis::PiiFinding> pii_findings;
  /// Lifecycle-phase slices (DeviceRunResult::*_by_phase).
  std::map<std::string, analysis::PartyCounts> parties_by_phase;
  std::map<std::string, analysis::EncryptionBytes> enc_by_phase;
  std::map<std::string, std::vector<analysis::PiiFinding>> pii_by_phase;
  std::vector<analysis::LabeledMeta> training;
  std::vector<flow::PacketMeta> idle_meta;
  std::uint64_t experiments = 0;
  std::uint64_t packets_ingested = 0;
  std::uint64_t peak_capture_bytes = 0;

  std::vector<std::uint8_t> encode() const;
  /// Throws cache::CorruptArtifact on malformed payloads (including a
  /// version mismatch or trailing bytes).
  static IngestArtifact decode(std::span<const std::uint8_t> payload);
};

struct ModelArtifact {
  static constexpr std::uint32_t kVersion = 1;

  analysis::ActivityModel model;
  analysis::IdleDetections idle;

  std::vector<std::uint8_t> encode() const;
  static ModelArtifact decode(std::span<const std::uint8_t> payload);
};

std::string ingest_stage_key(const StudyParams& params,
                             const testbed::DeviceSpec& device,
                             const testbed::NetworkConfig& config);

std::string model_stage_key(const StudyParams& params,
                            const testbed::DeviceSpec& device,
                            const testbed::NetworkConfig& config,
                            std::string_view ingest_digest);

}  // namespace iotx::core
