#include "iotx/ml/validation.hpp"

#include <string>

#include "iotx/ml/metrics.hpp"

namespace iotx::ml {

ValidationResult cross_validate(const Dataset& data,
                                const ValidationParams& params,
                                std::string_view seed_key) {
  ValidationResult result;
  result.class_f1.assign(data.class_count(), 0.0);
  if (data.empty() || data.class_count() == 0) return result;

  util::Prng prng(seed_key);
  // Per-class mean is taken only over repetitions where the class appears
  // in the test split, so rare classes are not unfairly zeroed.
  std::vector<std::size_t> class_rounds(data.class_count(), 0);

  for (std::size_t rep = 0; rep < params.repetitions; ++rep) {
    util::Prng rep_prng = prng.fork("rep" + std::to_string(rep));
    const Dataset::Split split =
        data.stratified_split(params.train_fraction, rep_prng);
    if (split.test.empty() || split.train.empty()) continue;

    // Rebuild a train view (the forest API takes a whole Dataset, so we
    // materialize the subset; rows are small and this keeps the API clean).
    Dataset train;
    for (std::size_t i : split.train) {
      train.add(data.row(i), data.class_name(data.label(i)));
    }

    RandomForest forest;
    forest.fit(train, params.forest, rep_prng);

    ConfusionMatrix confusion(data.class_count());
    std::vector<bool> present(data.class_count(), false);
    for (std::size_t i : split.test) {
      const int truth = data.label(i);
      present[static_cast<std::size_t>(truth)] = true;
      const int predicted_train_id = forest.predict(data.row(i));
      // Map the train-dataset class id back to the full dataset's id space.
      int predicted = -1;
      if (predicted_train_id >= 0 &&
          static_cast<std::size_t>(predicted_train_id) < train.class_count()) {
        if (const auto id =
                data.class_id(train.class_name(predicted_train_id))) {
          predicted = *id;
        }
      }
      confusion.add(truth, predicted);
    }

    result.accuracy += confusion.accuracy();
    result.macro_f1 += confusion.macro_f1();
    for (std::size_t c = 0; c < data.class_count(); ++c) {
      if (present[c]) {
        result.class_f1[c] += confusion.f1(static_cast<int>(c));
        ++class_rounds[c];
      }
    }
    ++result.repetitions;
  }

  if (result.repetitions > 0) {
    result.accuracy /= static_cast<double>(result.repetitions);
    result.macro_f1 /= static_cast<double>(result.repetitions);
  }
  for (std::size_t c = 0; c < data.class_count(); ++c) {
    if (class_rounds[c] > 0) {
      result.class_f1[c] /= static_cast<double>(class_rounds[c]);
    }
  }
  return result;
}

}  // namespace iotx::ml
