#include "iotx/ml/validation.hpp"

#include <string>

#include "iotx/ml/metrics.hpp"
#include "iotx/obs/trace.hpp"

namespace iotx::ml {

namespace {

/// One repetition's scores, computed independently so repetitions can run
/// in parallel and be reduced in index order afterwards.
struct RepetitionOutcome {
  bool valid = false;
  double accuracy = 0.0;
  double macro_f1 = 0.0;
  std::vector<double> class_f1;
  std::vector<bool> present;
};

}  // namespace

ValidationResult cross_validate(const Dataset& data,
                                const ValidationParams& params,
                                std::string_view seed_key,
                                util::TaskPool* pool) {
  ValidationResult result;
  result.class_f1.assign(data.class_count(), 0.0);
  if (data.empty() || data.class_count() == 0) return result;

  const util::Prng prng(seed_key);
  std::vector<RepetitionOutcome> outcomes(params.repetitions);

  const auto run_repetition = [&](std::size_t rep) {
    obs::Span span("ml/cv_rep", obs::observability_active()
                                    ? "\"rep\":" + std::to_string(rep)
                                    : std::string());
    util::Prng rep_prng = prng.fork("rep" + std::to_string(rep));
    const Dataset::Split split =
        data.stratified_split(params.train_fraction, rep_prng);
    if (split.test.empty() || split.train.empty()) return;

    // Rebuild a train view (the forest API takes a whole Dataset, so we
    // materialize the subset; rows are small and this keeps the API clean).
    Dataset train;
    for (std::size_t i : split.train) {
      train.add(data.row(i), data.class_name(data.label(i)));
    }

    RandomForest forest;
    forest.fit(train, params.forest, rep_prng, pool);

    ConfusionMatrix confusion(data.class_count());
    RepetitionOutcome& outcome = outcomes[rep];
    outcome.present.assign(data.class_count(), false);
    for (std::size_t i : split.test) {
      const int truth = data.label(i);
      outcome.present[static_cast<std::size_t>(truth)] = true;
      const int predicted_train_id = forest.predict(data.row(i));
      // Map the train-dataset class id back to the full dataset's id space.
      int predicted = -1;
      if (predicted_train_id >= 0 &&
          static_cast<std::size_t>(predicted_train_id) < train.class_count()) {
        if (const auto id =
                data.class_id(train.class_name(predicted_train_id))) {
          predicted = *id;
        }
      }
      confusion.add(truth, predicted);
    }

    outcome.accuracy = confusion.accuracy();
    outcome.macro_f1 = confusion.macro_f1();
    outcome.class_f1.resize(data.class_count());
    for (std::size_t c = 0; c < data.class_count(); ++c) {
      outcome.class_f1[c] = confusion.f1(static_cast<int>(c));
    }
    outcome.valid = true;
  };

  if (pool != nullptr) {
    pool->parallel_for_each(params.repetitions, run_repetition);
  } else {
    for (std::size_t rep = 0; rep < params.repetitions; ++rep) {
      run_repetition(rep);
    }
  }

  // Reduce in repetition order — the same floating-point addition order as
  // the serial loop, so parallel runs aggregate bit-identically.
  // Per-class mean is taken only over repetitions where the class appears
  // in the test split, so rare classes are not unfairly zeroed.
  std::vector<std::size_t> class_rounds(data.class_count(), 0);
  for (const RepetitionOutcome& outcome : outcomes) {
    if (!outcome.valid) continue;
    result.accuracy += outcome.accuracy;
    result.macro_f1 += outcome.macro_f1;
    for (std::size_t c = 0; c < data.class_count(); ++c) {
      if (outcome.present[c]) {
        result.class_f1[c] += outcome.class_f1[c];
        ++class_rounds[c];
      }
    }
    ++result.repetitions;
  }

  if (result.repetitions > 0) {
    result.accuracy /= static_cast<double>(result.repetitions);
    result.macro_f1 /= static_cast<double>(result.repetitions);
  }
  for (std::size_t c = 0; c < data.class_count(); ++c) {
    if (class_rounds[c] > 0) {
      result.class_f1[c] /= static_cast<double>(class_rounds[c]);
    }
  }
  return result;
}

}  // namespace iotx::ml
