// Labeled feature matrices for supervised learning.
//
// Each row is one experiment's feature vector (paper §6.1: timing
// statistics of packet sizes and inter-arrival times); the label is the
// experiment's interaction name ("power", "local_move", ...).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "iotx/util/prng.hpp"

namespace iotx::cache {
class BinWriter;
class BinReader;
}  // namespace iotx::cache

namespace iotx::ml {

class Dataset {
 public:
  /// Appends one example; the label name is interned to a class id.
  void add(std::vector<double> features, std::string_view label);

  std::size_t size() const noexcept { return labels_.size(); }
  bool empty() const noexcept { return labels_.empty(); }
  std::size_t feature_count() const noexcept {
    return rows_.empty() ? 0 : rows_.front().size();
  }
  std::size_t class_count() const noexcept { return class_names_.size(); }

  const std::vector<double>& row(std::size_t i) const { return rows_[i]; }
  int label(std::size_t i) const { return labels_[i]; }
  const std::string& class_name(int id) const { return class_names_[id]; }
  const std::vector<std::string>& class_names() const { return class_names_; }

  /// Class id for a label name, if seen.
  std::optional<int> class_id(std::string_view label) const;

  /// Number of examples carrying each class id.
  std::vector<std::size_t> class_histogram() const;

  /// Stratified split: each class contributes ~train_fraction of its
  /// examples to the train set (at least 1 when it has >= 2 examples).
  struct Split {
    std::vector<std::size_t> train;
    std::vector<std::size_t> test;
  };
  Split stratified_split(double train_fraction, util::Prng& prng) const;

  /// Versioned binary round-trip for the artifact cache. Doubles are
  /// stored as IEEE-754 bits, so load() reproduces the dataset exactly.
  void save(cache::BinWriter& w) const;
  /// Throws cache::CorruptArtifact on malformed payloads.
  static Dataset load(cache::BinReader& r);

 private:
  std::vector<std::vector<double>> rows_;
  std::vector<int> labels_;
  std::vector<std::string> class_names_;
};

}  // namespace iotx::ml
