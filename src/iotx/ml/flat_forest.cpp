#include "iotx/ml/flat_forest.hpp"
#include "iotx/cache/binio.hpp"

#include <algorithm>
#include <stdexcept>

namespace iotx::ml {

namespace {

/// Widest feature index any internal node splits on, plus one: the
/// shortest feature vector a descent may safely index.
std::size_t required_features(const std::vector<FlatForest::Node>& nodes) {
  std::int32_t max_feature = -1;
  for (const FlatForest::Node& node : nodes) {
    max_feature = std::max(max_feature, node.feature);
  }
  return static_cast<std::size_t>(max_feature + 1);
}

}  // namespace

std::int32_t FlatForest::flatten(const std::vector<DecisionTree::Node>& src,
                                 int src_index) {
  const auto dst = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  const DecisionTree::Node& node = src[static_cast<std::size_t>(src_index)];
  if (node.feature < 0) {
    // Leaf: materialize the class distribution as an n_classes_-wide row.
    // The pointer forest's vote loop only reads `c < n_classes_ &&
    // c < proba.size()`, so copying min(n_classes_, proba.size()) entries
    // and zero-padding the rest reproduces its sums exactly; an empty
    // stored distribution becomes the same one-hot predict_proba builds.
    const auto row = static_cast<std::int32_t>(
        n_classes_ == 0 ? 0 : leaf_proba_.size() / n_classes_);
    leaf_proba_.resize(leaf_proba_.size() + n_classes_, 0.0);
    double* out = leaf_proba_.data() + leaf_proba_.size() - n_classes_;
    if (!node.proba.empty()) {
      const std::size_t n = std::min(n_classes_, node.proba.size());
      std::copy_n(node.proba.begin(), n, out);
    } else if (node.label >= 0 &&
               static_cast<std::size_t>(node.label) < n_classes_) {
      out[node.label] = 1.0;
    }
    nodes_[static_cast<std::size_t>(dst)].right = row;
  } else {
    flatten(src, node.left);  // preorder: left child lands at dst + 1
    const std::int32_t right = flatten(src, node.right);
    Node& flat = nodes_[static_cast<std::size_t>(dst)];
    flat.feature = node.feature;
    flat.threshold = node.threshold;
    flat.right = right;
  }
  return dst;
}

FlatForest FlatForest::compile(const RandomForest& forest) {
  FlatForest flat;
  flat.n_classes_ = forest.class_count();
  const std::vector<DecisionTree>& trees = forest.trees();
  flat.roots_.reserve(trees.size());
  std::size_t total_nodes = 0;
  for (const DecisionTree& tree : trees) total_nodes += tree.node_count();
  flat.nodes_.reserve(total_nodes);
  for (const DecisionTree& tree : trees) {
    if (tree.nodes().empty()) {
      throw std::invalid_argument("FlatForest::compile: unfitted tree");
    }
    flat.roots_.push_back(static_cast<std::uint32_t>(flat.nodes_.size()));
    flat.flatten(tree.nodes(), 0);
  }
  flat.min_features_ = required_features(flat.nodes_);
  return flat;
}

std::size_t FlatForest::descend(std::size_t root,
                                std::span<const double> features) const {
  const Node* nodes = nodes_.data();
  std::size_t idx = root;
  std::int32_t feature = nodes[idx].feature;
  while (feature >= 0) {
    // The select compiles to a conditional move: no branch to
    // mispredict on the data-dependent descent.
    const bool go_left =
        features[static_cast<std::size_t>(feature)] <= nodes[idx].threshold;
    idx = go_left ? idx + 1 : static_cast<std::size_t>(nodes[idx].right);
    feature = nodes[idx].feature;
  }
  return static_cast<std::size_t>(nodes[idx].right);
}

std::vector<double> FlatForest::predict_proba(
    std::span<const double> features) const {
  // A probe narrower than the widest split feature cannot be classified
  // — refusing it here (instead of reading past the span) is what makes
  // a fuzz-loaded artifact safe to query with any input. Legitimately
  // compiled forests only split on trained feature indices, so this
  // branch never fires for them and equivalence with the pointer forest
  // is untouched.
  if (features.size() < min_features_) return {};
  std::vector<double> total(n_classes_, 0.0);
  for (const std::uint32_t root : roots_) {
    const std::size_t row = descend(root, features);
    const double* p = leaf_proba_.data() + row * n_classes_;
    for (std::size_t c = 0; c < n_classes_; ++c) total[c] += p[c];
  }
  if (!roots_.empty()) {
    for (double& v : total) v /= static_cast<double>(roots_.size());
  }
  return total;
}

int FlatForest::predict(std::span<const double> features) const {
  const std::vector<double> proba = predict_proba(features);
  if (proba.empty()) return -1;
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

void FlatForest::save(cache::BinWriter& w) const {
  w.u64(n_classes_);
  w.u64(roots_.size());
  for (const std::uint32_t root : roots_) w.u64(root);
  w.u64(nodes_.size());
  for (const Node& node : nodes_) {
    w.f64(node.threshold);
    w.i64(node.feature);
    w.i64(node.right);
  }
  w.f64_span(leaf_proba_);
}

FlatForest FlatForest::load(cache::BinReader& r) {
  FlatForest flat;
  flat.n_classes_ = static_cast<std::size_t>(r.u64());
  if (flat.n_classes_ > (1u << 20))
    throw cache::CorruptArtifact("flat forest class count implausibly large");

  const std::size_t n_roots = r.length(8);
  flat.roots_.reserve(n_roots);
  for (std::size_t i = 0; i < n_roots; ++i) {
    flat.roots_.push_back(static_cast<std::uint32_t>(r.u64()));
  }

  const std::size_t n_nodes = r.length(24);
  flat.nodes_.reserve(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    Node node;
    node.threshold = r.f64();
    const std::int64_t feature = r.i64();
    const std::int64_t right = r.i64();
    if (feature < -1 || feature > (1 << 20))
      throw cache::CorruptArtifact("flat node feature out of range");
    node.feature = static_cast<std::int32_t>(feature);
    if (node.feature >= 0) {
      // Internal node: both children must exist, and the preorder layout
      // guarantees they lie strictly after the parent — enforcing that
      // makes a descent on any accepted payload terminate.
      if (i + 1 >= n_nodes || right <= static_cast<std::int64_t>(i + 1) ||
          right >= static_cast<std::int64_t>(n_nodes)) {
        throw cache::CorruptArtifact("flat node child out of range");
      }
    } else if (right < 0) {
      throw cache::CorruptArtifact("flat leaf row negative");
    }
    node.right = static_cast<std::int32_t>(right);
    flat.nodes_.push_back(node);
  }

  for (const std::uint32_t root : flat.roots_) {
    if (root >= n_nodes)
      throw cache::CorruptArtifact("flat tree root out of range");
  }

  flat.leaf_proba_ = r.f64_span();
  if (flat.n_classes_ == 0) {
    if (!flat.leaf_proba_.empty())
      throw cache::CorruptArtifact("flat leaf table without classes");
  } else if (flat.leaf_proba_.size() % flat.n_classes_ != 0) {
    throw cache::CorruptArtifact("flat leaf table size not a row multiple");
  }
  const std::size_t n_rows = flat.leaf_count();
  for (const Node& node : flat.nodes_) {
    if (node.feature < 0 && static_cast<std::size_t>(node.right) >= n_rows) {
      throw cache::CorruptArtifact("flat leaf row out of range");
    }
  }
  flat.min_features_ = required_features(flat.nodes_);
  return flat;
}

}  // namespace iotx::ml
