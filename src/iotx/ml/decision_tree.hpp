// CART decision tree (gini impurity, axis-aligned threshold splits) —
// the base learner of the random forest in paper §6.1.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "iotx/ml/dataset.hpp"
#include "iotx/util/prng.hpp"

namespace iotx::cache {
class BinWriter;
class BinReader;
}  // namespace iotx::cache

namespace iotx::ml {

struct TreeParams {
  std::size_t max_depth = 16;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Number of features examined per split; 0 means "all features"
  /// (single tree) — the forest sets it to ~sqrt(d).
  std::size_t features_per_split = 0;
};

class DecisionTree {
 public:
  struct Node {
    int feature = -1;           ///< -1 for leaf
    double threshold = 0.0;     ///< go left when x[feature] <= threshold
    int left = -1;
    int right = -1;
    int label = -1;             ///< majority class at this node
    std::vector<double> proba;  ///< class distribution (leaves only)
  };

  /// Fits on the examples indexed by `indices` (duplicates allowed — the
  /// forest passes bootstrap samples).
  void fit(const Dataset& data, std::span<const std::size_t> indices,
           const TreeParams& params, util::Prng& prng);

  /// Predicted class id. Must be fitted first.
  int predict(std::span<const double> features) const;

  /// Per-class vote distribution at the reached leaf (sums to 1).
  std::vector<double> predict_proba(std::span<const double> features) const;

  std::size_t node_count() const noexcept { return nodes_.size(); }
  bool fitted() const noexcept { return !nodes_.empty(); }

  /// Read-only node storage (node 0 is the root) — what FlatForest
  /// compiles from.
  const std::vector<Node>& nodes() const noexcept { return nodes_; }

  /// Exact binary round-trip for the artifact cache (node structure and
  /// IEEE-754 threshold/proba bits preserved).
  void save(cache::BinWriter& w) const;
  /// Throws cache::CorruptArtifact on malformed payloads.
  static DecisionTree load(cache::BinReader& r);

 private:
  int build(const Dataset& data, std::vector<std::size_t>& indices,
            std::size_t depth, const TreeParams& params, util::Prng& prng);
  const Node& descend(std::span<const double> features) const;

  std::vector<Node> nodes_;
  std::size_t n_classes_ = 0;
};

}  // namespace iotx::ml
