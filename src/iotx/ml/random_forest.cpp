#include "iotx/ml/random_forest.hpp"
#include "iotx/cache/binio.hpp"

#include <algorithm>
#include <cmath>

namespace iotx::ml {

void RandomForest::fit(const Dataset& data, const ForestParams& params,
                       util::Prng& prng, util::TaskPool* pool) {
  trees_.clear();
  n_classes_ = data.class_count();
  if (data.empty()) return;

  TreeParams tree_params = params.tree;
  if (tree_params.features_per_split == 0) {
    tree_params.features_per_split = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(data.feature_count()))));
  }

  trees_.resize(params.n_trees);
  // Each tree is a pure function of (caller seed, tree index): it forks its
  // own generator and writes into its pre-sized slot, so the parallel and
  // serial fits produce the same forest bit for bit.
  const auto fit_tree = [&](std::size_t t) {
    util::Prng tree_prng = prng.fork("tree" + std::to_string(t));
    std::vector<std::size_t> bootstrap(data.size());
    for (auto& idx : bootstrap) idx = tree_prng.uniform(data.size());
    trees_[t].fit(data, bootstrap, tree_params, tree_prng);
  };
  if (pool != nullptr) {
    pool->parallel_for_each(params.n_trees, fit_tree);
  } else {
    for (std::size_t t = 0; t < params.n_trees; ++t) fit_tree(t);
  }
}

std::vector<double> RandomForest::predict_proba(
    std::span<const double> features) const {
  std::vector<double> total(n_classes_, 0.0);
  for (const DecisionTree& tree : trees_) {
    const std::vector<double> p = tree.predict_proba(features);
    for (std::size_t c = 0; c < n_classes_ && c < p.size(); ++c) {
      total[c] += p[c];
    }
  }
  if (!trees_.empty()) {
    for (double& v : total) v /= static_cast<double>(trees_.size());
  }
  return total;
}

int RandomForest::predict(std::span<const double> features) const {
  const std::vector<double> proba = predict_proba(features);
  if (proba.empty()) return -1;
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}


void RandomForest::save(cache::BinWriter& w) const {
  w.u64(n_classes_);
  w.u64(trees_.size());
  for (const DecisionTree& tree : trees_) tree.save(w);
}

RandomForest RandomForest::load(cache::BinReader& r) {
  RandomForest forest;
  forest.n_classes_ = static_cast<std::size_t>(r.u64());
  if (forest.n_classes_ > (1u << 20))
    throw cache::CorruptArtifact("forest class count implausibly large");
  std::size_t n_trees = r.length(1);
  forest.trees_.reserve(n_trees);
  for (std::size_t i = 0; i < n_trees; ++i)
    forest.trees_.push_back(DecisionTree::load(r));
  return forest;
}

}  // namespace iotx::ml
