#include "iotx/ml/dataset.hpp"
#include "iotx/cache/binio.hpp"

#include <algorithm>
#include <cmath>

namespace iotx::ml {

void Dataset::add(std::vector<double> features, std::string_view label) {
  int id = -1;
  for (std::size_t i = 0; i < class_names_.size(); ++i) {
    if (class_names_[i] == label) {
      id = static_cast<int>(i);
      break;
    }
  }
  if (id < 0) {
    id = static_cast<int>(class_names_.size());
    class_names_.emplace_back(label);
  }
  rows_.push_back(std::move(features));
  labels_.push_back(id);
}

std::optional<int> Dataset::class_id(std::string_view label) const {
  for (std::size_t i = 0; i < class_names_.size(); ++i) {
    if (class_names_[i] == label) return static_cast<int>(i);
  }
  return std::nullopt;
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> hist(class_names_.size(), 0);
  for (int label : labels_) ++hist[static_cast<std::size_t>(label)];
  return hist;
}

Dataset::Split Dataset::stratified_split(double train_fraction,
                                         util::Prng& prng) const {
  Split split;
  std::vector<std::vector<std::size_t>> by_class(class_names_.size());
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    by_class[static_cast<std::size_t>(labels_[i])].push_back(i);
  }
  for (auto& members : by_class) {
    prng.shuffle(members);
    std::size_t n_train = static_cast<std::size_t>(
        std::llround(train_fraction * static_cast<double>(members.size())));
    if (members.size() >= 2) {
      n_train = std::clamp<std::size_t>(n_train, 1, members.size() - 1);
    } else {
      n_train = members.size();  // singleton classes go to train
    }
    for (std::size_t i = 0; i < members.size(); ++i) {
      (i < n_train ? split.train : split.test).push_back(members[i]);
    }
  }
  // Deterministic order independent of class interleaving.
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.test.begin(), split.test.end());
  return split;
}


void Dataset::save(cache::BinWriter& w) const {
  w.u64(class_names_.size());
  for (const std::string& name : class_names_) w.str(name);
  w.u64(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    // Per-record stride: i64 label + row length prefix + the doubles.
    w.reserve(16 + rows_[i].size() * 8);
    w.i64(labels_[i]);
    // Bulk span write — byte-identical to the old per-element loop.
    w.f64_span(rows_[i]);
  }
}

Dataset Dataset::load(cache::BinReader& r) {
  Dataset data;
  std::size_t n_classes = r.length(1);
  data.class_names_.reserve(n_classes);
  for (std::size_t i = 0; i < n_classes; ++i) data.class_names_.push_back(r.str());
  std::size_t n_rows = r.length(8);
  data.rows_.reserve(n_rows);
  data.labels_.reserve(n_rows);
  for (std::size_t i = 0; i < n_rows; ++i) {
    std::int64_t label = r.i64();
    if (label < 0 || static_cast<std::size_t>(label) >= n_classes)
      throw cache::CorruptArtifact("dataset label out of class range");
    data.labels_.push_back(static_cast<int>(label));
    data.rows_.push_back(r.f64_span());
  }
  return data;
}

}  // namespace iotx::ml
