#include "iotx/ml/metrics.hpp"

#include <stdexcept>

namespace iotx::ml {

ConfusionMatrix::ConfusionMatrix(std::size_t n_classes)
    : n_(n_classes),
      cells_(n_classes * n_classes, 0),
      misses_(n_classes, 0) {}

void ConfusionMatrix::add(int truth, int predicted) {
  if (truth < 0 || static_cast<std::size_t>(truth) >= n_) return;
  if (predicted < 0 || static_cast<std::size_t>(predicted) >= n_) {
    ++misses_[static_cast<std::size_t>(truth)];
    ++total_;
    return;
  }
  ++cells_[static_cast<std::size_t>(truth) * n_ +
           static_cast<std::size_t>(predicted)];
  ++total_;
}

std::size_t ConfusionMatrix::count(int truth, int predicted) const {
  return cells_.at(static_cast<std::size_t>(truth) * n_ +
                   static_cast<std::size_t>(predicted));
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t c = 0; c < n_; ++c) correct += cells_[c * n_ + c];
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(int cls) const {
  const auto c = static_cast<std::size_t>(cls);
  std::size_t predicted = 0;
  for (std::size_t t = 0; t < n_; ++t) predicted += cells_[t * n_ + c];
  if (predicted == 0) return 0.0;
  return static_cast<double>(cells_[c * n_ + c]) /
         static_cast<double>(predicted);
}

double ConfusionMatrix::recall(int cls) const {
  const auto c = static_cast<std::size_t>(cls);
  std::size_t actual = misses_[c];
  for (std::size_t p = 0; p < n_; ++p) actual += cells_[c * n_ + p];
  if (actual == 0) return 0.0;
  return static_cast<double>(cells_[c * n_ + c]) / static_cast<double>(actual);
}

double ConfusionMatrix::f1(int cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  std::size_t n_present = 0;
  for (std::size_t c = 0; c < n_; ++c) {
    std::size_t actual = misses_[c];
    for (std::size_t p = 0; p < n_; ++p) actual += cells_[c * n_ + p];
    if (actual == 0) continue;  // class absent from the test set
    sum += f1(static_cast<int>(c));
    ++n_present;
  }
  return n_present == 0 ? 0.0 : sum / static_cast<double>(n_present);
}

void ConfusionMatrix::merge(const ConfusionMatrix& other) {
  if (other.n_ != n_) {
    throw std::invalid_argument("ConfusionMatrix::merge: shape mismatch");
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  for (std::size_t i = 0; i < misses_.size(); ++i) misses_[i] += other.misses_[i];
  total_ += other.total_;
}

}  // namespace iotx::ml
