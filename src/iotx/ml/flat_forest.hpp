// Flattened random forest for the hot inference path (serve detection,
// batch classification): the pointer-chasing CART trees are compiled
// once into one contiguous node array laid out in preorder, so a
// descent touches a run of nearby cache lines instead of scattered
// heap nodes, and the child select compiles to a conditional move.
// Leaf class distributions live in a separate contiguous table; votes
// are summed in the same tree order (and with the same leaf-width
// guard) as RandomForest::predict_proba, so the flat forest predicts
// bit-identically to the pointer forest it was compiled from.
//
// Features and thresholds stay double precision: the pointer forest
// compares doubles, and narrowing to float would move thresholds off
// the training split midpoints and break the exact-equivalence oracle.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "iotx/ml/random_forest.hpp"

namespace iotx::ml {

class FlatForest {
 public:
  /// One compiled node, 16 bytes so four pack per cache line. The
  /// preorder layout places every internal node's left child at the
  /// next index, so only the right child is stored; leaves
  /// (feature < 0) store the row index of their class distribution in
  /// the leaf table instead.
  struct Node {
    double threshold = 0.0;
    std::int32_t feature = -1;  ///< -1: leaf, `right` is a leaf row
    std::int32_t right = 0;
  };
  static_assert(sizeof(Node) == 16, "nodes must pack 4 per cache line");

  FlatForest() = default;

  /// One-time compile from a (fitted or empty) pointer forest. Leaf
  /// distributions are copied — or synthesized one-hot from the
  /// majority label, exactly as DecisionTree::predict_proba does — into
  /// class_count()-wide rows.
  static FlatForest compile(const RandomForest& forest);

  /// Majority-vote class id (first argmax); -1 when unfitted.
  int predict(std::span<const double> features) const;

  /// Mean leaf distribution across trees, bit-identical to the pointer
  /// forest's.
  std::vector<double> predict_proba(std::span<const double> features) const;

  std::size_t tree_count() const noexcept { return roots_.size(); }
  bool fitted() const noexcept { return !roots_.empty(); }
  std::size_t class_count() const noexcept { return n_classes_; }
  /// Smallest feature-vector length a descent may index (max split
  /// feature + 1). predict()/predict_proba() refuse shorter inputs
  /// instead of reading out of bounds — the guard that makes a
  /// fuzz-loaded artifact safe to query with any probe.
  std::size_t min_feature_count() const noexcept { return min_features_; }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t leaf_count() const noexcept {
    return n_classes_ == 0 ? 0 : leaf_proba_.size() / n_classes_;
  }

  /// Exact binary round-trip for model artifacts: a loaded flat forest
  /// votes identically to the one that was saved.
  void save(cache::BinWriter& w) const;
  /// Throws cache::CorruptArtifact on malformed payloads (truncation,
  /// out-of-range children or leaf rows, non-advancing node links that
  /// could loop a descent).
  static FlatForest load(cache::BinReader& r);

 private:
  std::int32_t flatten(const std::vector<DecisionTree::Node>& src,
                       int src_index);
  std::size_t descend(std::size_t root,
                      std::span<const double> features) const;

  std::vector<Node> nodes_;          ///< all trees, preorder, concatenated
  std::vector<std::uint32_t> roots_; ///< per-tree root index into nodes_
  std::vector<double> leaf_proba_;   ///< leaf_count x n_classes, row-major
  std::size_t n_classes_ = 0;
  std::size_t min_features_ = 0;     ///< max split feature + 1
};

}  // namespace iotx::ml
