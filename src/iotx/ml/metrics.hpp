// Classification metrics. The paper's quality measure is the F1 score —
// per activity ("F1 score for the activity") and macro-averaged per device
// ("the F1 score across all activities for each device"); a score above
// 0.75 deems the activity/device *inferrable* (§6.3).
#pragma once

#include <cstddef>
#include <vector>

namespace iotx::ml {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t n_classes);

  /// Records one prediction. A predicted id outside [0, n_classes) counts
  /// as a miss for the truth class (hurting recall and accuracy); a truth
  /// id outside the range is ignored entirely.
  void add(int truth, int predicted);

  std::size_t n_classes() const noexcept { return n_; }
  std::size_t count(int truth, int predicted) const;
  std::size_t total() const noexcept { return total_; }

  double accuracy() const;
  double precision(int cls) const;  ///< 0 when the class was never predicted
  double recall(int cls) const;     ///< 0 when the class never occurred
  double f1(int cls) const;         ///< harmonic mean; 0 when undefined
  double macro_f1() const;          ///< unweighted mean over classes that occur

  /// Merges another matrix of the same shape.
  void merge(const ConfusionMatrix& other);

 private:
  std::size_t n_;
  std::vector<std::size_t> cells_;   // row = truth, col = predicted
  std::vector<std::size_t> misses_;  // per-truth predictions outside range
  std::size_t total_ = 0;
};

}  // namespace iotx::ml
