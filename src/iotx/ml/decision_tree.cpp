#include "iotx/ml/decision_tree.hpp"
#include "iotx/cache/binio.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace iotx::ml {

namespace {

double gini_from_counts(std::span<const std::size_t> counts,
                        std::size_t total) noexcept {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

struct BestSplit {
  int feature = -1;
  double threshold = 0.0;
  double impurity = std::numeric_limits<double>::infinity();
};

}  // namespace

void DecisionTree::fit(const Dataset& data,
                       std::span<const std::size_t> indices,
                       const TreeParams& params, util::Prng& prng) {
  nodes_.clear();
  n_classes_ = data.class_count();
  std::vector<std::size_t> work(indices.begin(), indices.end());
  build(data, work, 0, params, prng);
}

int DecisionTree::build(const Dataset& data, std::vector<std::size_t>& indices,
                        std::size_t depth, const TreeParams& params,
                        util::Prng& prng) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  // Class distribution at this node.
  std::vector<std::size_t> counts(n_classes_, 0);
  for (std::size_t i : indices) {
    ++counts[static_cast<std::size_t>(data.label(i))];
  }
  const auto majority =
      std::max_element(counts.begin(), counts.end()) - counts.begin();
  nodes_[node_id].label = static_cast<int>(majority);

  const double node_gini = gini_from_counts(counts, indices.size());
  const bool stop = depth >= params.max_depth ||
                    indices.size() < params.min_samples_split ||
                    node_gini == 0.0;
  if (!stop) {
    // Candidate features: all, or a random subset of the requested size.
    const std::size_t d = data.feature_count();
    std::vector<int> features(d);
    std::iota(features.begin(), features.end(), 0);
    std::size_t n_candidates = params.features_per_split == 0
                                   ? d
                                   : std::min(params.features_per_split, d);
    if (n_candidates < d) {
      // Partial Fisher-Yates: first n_candidates entries become the subset.
      for (std::size_t i = 0; i < n_candidates; ++i) {
        const std::size_t j = i + prng.uniform(d - i);
        std::swap(features[i], features[j]);
      }
      features.resize(n_candidates);
    }

    BestSplit best;
    std::vector<std::pair<double, int>> column(indices.size());
    std::vector<std::size_t> left_counts(n_classes_);
    for (int f : features) {
      for (std::size_t i = 0; i < indices.size(); ++i) {
        column[i] = {data.row(indices[i])[static_cast<std::size_t>(f)],
                     data.label(indices[i])};
      }
      std::sort(column.begin(), column.end());
      std::fill(left_counts.begin(), left_counts.end(), 0);
      std::size_t n_left = 0;
      const std::size_t n = column.size();
      for (std::size_t i = 0; i + 1 < n; ++i) {
        ++left_counts[static_cast<std::size_t>(column[i].second)];
        ++n_left;
        if (column[i].first == column[i + 1].first) continue;  // no boundary
        const std::size_t n_right = n - n_left;
        if (n_left < params.min_samples_leaf ||
            n_right < params.min_samples_leaf) {
          continue;
        }
        // Right counts = total - left.
        double right_gini;
        {
          double sum_sq = 0.0;
          for (std::size_t c = 0; c < n_classes_; ++c) {
            const double rc =
                static_cast<double>(counts[c] - left_counts[c]) /
                static_cast<double>(n_right);
            sum_sq += rc * rc;
          }
          right_gini = 1.0 - sum_sq;
        }
        const double left_gini = gini_from_counts(left_counts, n_left);
        const double weighted =
            (static_cast<double>(n_left) * left_gini +
             static_cast<double>(n_right) * right_gini) /
            static_cast<double>(n);
        if (weighted < best.impurity) {
          best.impurity = weighted;
          best.feature = f;
          best.threshold = 0.5 * (column[i].first + column[i + 1].first);
        }
      }
    }

    if (best.feature >= 0 && best.impurity < node_gini - 1e-12) {
      std::vector<std::size_t> left_idx, right_idx;
      left_idx.reserve(indices.size());
      right_idx.reserve(indices.size());
      for (std::size_t i : indices) {
        const double v = data.row(i)[static_cast<std::size_t>(best.feature)];
        (v <= best.threshold ? left_idx : right_idx).push_back(i);
      }
      if (!left_idx.empty() && !right_idx.empty()) {
        indices.clear();
        indices.shrink_to_fit();
        const int left = build(data, left_idx, depth + 1, params, prng);
        const int right = build(data, right_idx, depth + 1, params, prng);
        nodes_[node_id].feature = best.feature;
        nodes_[node_id].threshold = best.threshold;
        nodes_[node_id].left = left;
        nodes_[node_id].right = right;
        return node_id;
      }
    }
  }

  // Leaf: store the class distribution.
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  nodes_[node_id].proba.resize(n_classes_, 0.0);
  if (total > 0) {
    for (std::size_t c = 0; c < n_classes_; ++c) {
      nodes_[node_id].proba[c] =
          static_cast<double>(counts[c]) / static_cast<double>(total);
    }
  }
  return node_id;
}

const DecisionTree::Node& DecisionTree::descend(
    std::span<const double> features) const {
  int node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    const double v = features[static_cast<std::size_t>(n.feature)];
    node = v <= n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<std::size_t>(node)];
}

int DecisionTree::predict(std::span<const double> features) const {
  return descend(features).label;
}

std::vector<double> DecisionTree::predict_proba(
    std::span<const double> features) const {
  const Node& leaf = descend(features);
  if (!leaf.proba.empty()) return leaf.proba;
  std::vector<double> proba(n_classes_, 0.0);
  if (leaf.label >= 0) proba[static_cast<std::size_t>(leaf.label)] = 1.0;
  return proba;
}


void DecisionTree::save(cache::BinWriter& w) const {
  w.u64(n_classes_);
  w.u64(nodes_.size());
  for (const Node& node : nodes_) {
    w.i64(node.feature);
    w.f64(node.threshold);
    w.i64(node.left);
    w.i64(node.right);
    w.i64(node.label);
    w.u64(node.proba.size());
    for (double p : node.proba) w.f64(p);
  }
}

DecisionTree DecisionTree::load(cache::BinReader& r) {
  DecisionTree tree;
  tree.n_classes_ = static_cast<std::size_t>(r.u64());
  if (tree.n_classes_ > (1u << 20))
    throw cache::CorruptArtifact("tree class count implausibly large");
  std::size_t n_nodes = r.length(8);
  tree.nodes_.reserve(n_nodes);
  auto child_in_range = [n_nodes](std::int64_t child) {
    return child >= -1 && child < static_cast<std::int64_t>(n_nodes);
  };
  for (std::size_t i = 0; i < n_nodes; ++i) {
    Node node;
    node.feature = static_cast<int>(r.i64());
    node.threshold = r.f64();
    std::int64_t left = r.i64();
    std::int64_t right = r.i64();
    if (!child_in_range(left) || !child_in_range(right))
      throw cache::CorruptArtifact("tree child index out of range");
    node.left = static_cast<int>(left);
    node.right = static_cast<int>(right);
    node.label = static_cast<int>(r.i64());
    std::size_t n_proba = r.length(8);
    node.proba.reserve(n_proba);
    for (std::size_t j = 0; j < n_proba; ++j) node.proba.push_back(r.f64());
    tree.nodes_.push_back(std::move(node));
  }
  return tree;
}

}  // namespace iotx::ml
