// Repeated stratified 70/30 validation — the paper's protocol (§6.3):
// "train on randomly selected 70% of the data and test on the 30%
// remaining data, and we repeat the process for 10 times to get the
// average metrics."
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "iotx/ml/random_forest.hpp"

namespace iotx::ml {

struct ValidationResult {
  /// Mean F1 per class over the repetitions, indexed by dataset class id.
  std::vector<double> class_f1;
  /// Mean macro F1 over the repetitions — the paper's "device F1 score".
  double macro_f1 = 0.0;
  /// Mean accuracy over the repetitions.
  double accuracy = 0.0;
  std::size_t repetitions = 0;
};

struct ValidationParams {
  ForestParams forest;
  double train_fraction = 0.7;
  std::size_t repetitions = 10;
};

/// Runs the repeated-split protocol. `seed_key` makes results reproducible
/// per (device, lab, ...) context. Classes with a single example are always
/// placed in the train split, so their F1 contribution is 0.
///
/// When `pool` is non-null the repetitions (and each repetition's forest)
/// run in parallel. Every repetition seeds from fork("rep" + index) and
/// stores its outcome in a slot indexed the same way; outcomes are then
/// reduced in index order, so the result is bit-identical to a serial run
/// at any thread count.
ValidationResult cross_validate(const Dataset& data,
                                const ValidationParams& params,
                                std::string_view seed_key,
                                util::TaskPool* pool = nullptr);

/// Inferrability thresholds from the paper.
inline constexpr double kInferrableF1 = 0.75;        ///< §6.3
inline constexpr double kHighConfidenceF1 = 0.9;     ///< §7.1 idle models

}  // namespace iotx::ml
