// Random forest (bootstrap aggregation of CART trees with per-split
// feature subsampling) — the classifier the paper trains per device to
// infer activities from traffic statistics (§6.1, §6.3).
#pragma once

#include <span>
#include <vector>

#include "iotx/ml/decision_tree.hpp"
#include "iotx/util/task_pool.hpp"

namespace iotx::ml {

struct ForestParams {
  std::size_t n_trees = 100;
  TreeParams tree;
  /// When 0, features_per_split defaults to ceil(sqrt(feature_count)).
};

class RandomForest {
 public:
  /// Fits on the full dataset (bootstrap samples are drawn per tree).
  /// When `pool` is non-null, trees train in parallel; each tree's
  /// generator is forked from `prng` by tree index, so the forest is
  /// bit-identical to a serial fit at any thread count.
  void fit(const Dataset& data, const ForestParams& params, util::Prng& prng,
           util::TaskPool* pool = nullptr);

  /// Majority-vote class id (soft voting over leaf distributions).
  int predict(std::span<const double> features) const;

  /// Mean leaf distribution across trees (sums to 1).
  std::vector<double> predict_proba(std::span<const double> features) const;

  std::size_t tree_count() const noexcept { return trees_.size(); }
  bool fitted() const noexcept { return !trees_.empty(); }
  std::size_t class_count() const noexcept { return n_classes_; }

  /// Read-only tree storage — what FlatForest compiles from.
  const std::vector<DecisionTree>& trees() const noexcept { return trees_; }

  /// Exact binary round-trip for the artifact cache: a loaded forest
  /// votes identically to the one that was saved.
  void save(cache::BinWriter& w) const;
  /// Throws cache::CorruptArtifact on malformed payloads.
  static RandomForest load(cache::BinReader& r);

 private:
  std::vector<DecisionTree> trees_;
  std::size_t n_classes_ = 0;
};

}  // namespace iotx::ml
