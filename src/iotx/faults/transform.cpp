#include "iotx/faults/transform.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace iotx::faults {

namespace {

// Canonical double formatting for spec strings: %.17g round-trips every
// IEEE-754 double, so two profiles differing in any knob bit produce
// different specs (and therefore different cache keys).
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string num(std::size_t v) { return std::to_string(v); }

const char* mode_name(ShapingProfile::Mode mode) {
  switch (mode) {
    case ShapingProfile::Mode::kPadBucket: return "pad";
    case ShapingProfile::Mode::kConstantRate: return "rate";
    case ShapingProfile::Mode::kBatchDelay: return "batch";
  }
  return "?";
}

}  // namespace

bool ShapingProfile::enabled() const noexcept {
  switch (mode) {
    case Mode::kPadBucket: return bucket_bytes > 0;
    case Mode::kConstantRate:
    case Mode::kBatchDelay: return interval > 0.0;
  }
  return false;
}

void TransformSummary::add_to(CaptureHealth& health) const noexcept {
  impair.add_to(health);
  health.shaped_padded_frames += shaped_padded_frames;
  health.shaped_padding_bytes += shaped_padding_bytes;
  health.shaped_delayed_packets += shaped_delayed_packets;
  health.shaped_batched_packets += shaped_batched_packets;
}

TransformSummary& TransformSummary::merge(const TransformSummary& o) noexcept {
  impair.merge(o.impair);
  shaped_padded_frames += o.shaped_padded_frames;
  shaped_padding_bytes += o.shaped_padding_bytes;
  shaped_delayed_packets += o.shaped_delayed_packets;
  shaped_batched_packets += o.shaped_batched_packets;
  return *this;
}

TransformSummary apply_shaping(std::vector<net::Packet>& packets,
                               const ShapingProfile& profile) {
  TransformSummary summary;
  summary.impair.packets_in = packets.size();
  summary.impair.packets_out = packets.size();
  if (!profile.enabled() || packets.empty()) return summary;

  switch (profile.mode) {
    case ShapingProfile::Mode::kPadBucket: {
      // Pad every frame to the next bucket multiple with zero bytes.
      // decode_frame() clamps the L3 payload to ip.total_length, so the
      // padding is invisible to protocol parsing but raises frame_size —
      // exactly the size-channel the defense is meant to blunt.
      const std::size_t bucket = profile.bucket_bytes;
      for (net::Packet& p : packets) {
        const std::size_t size = p.frame.size();
        const std::size_t target = ((size + bucket - 1) / bucket) * bucket;
        if (target > size) {
          p.frame.resize(target, 0);
          ++summary.shaped_padded_frames;
          summary.shaped_padding_bytes += target - size;
        }
      }
      break;
    }
    case ShapingProfile::Mode::kConstantRate: {
      // Quantize release times onto a fixed clock anchored at the first
      // packet: t -> t0 + ceil((t - t0) / dt) * dt. Monotone in t, so a
      // sorted capture stays sorted and per-flow order is preserved.
      const double t0 = packets.front().timestamp;
      const double dt = profile.interval;
      for (net::Packet& p : packets) {
        const double ticks = std::ceil((p.timestamp - t0) / dt);
        const double release = t0 + ticks * dt;
        if (release != p.timestamp) {
          p.timestamp = release;
          ++summary.shaped_delayed_packets;
        }
      }
      break;
    }
    case ShapingProfile::Mode::kBatchDelay: {
      // Hold packets and flush each batch at its window's end, so an
      // observer sees bursts on a fixed cadence instead of the device's
      // own timing. Relative order within a batch is preserved by the
      // stable sort below.
      const double t0 = packets.front().timestamp;
      const double dt = profile.interval;
      for (net::Packet& p : packets) {
        const double window = std::floor((p.timestamp - t0) / dt);
        const double release = t0 + (window + 1.0) * dt;
        if (release != p.timestamp) ++summary.shaped_batched_packets;
        p.timestamp = release;
      }
      break;
    }
  }
  std::stable_sort(packets.begin(), packets.end(),
                   [](const net::Packet& a, const net::Packet& b) {
                     return a.timestamp < b.timestamp;
                   });
  return summary;
}

std::string ImpairmentTransform::spec() const {
  const ImpairmentProfile& p = profile_;
  std::string s = "impair{name=";
  s += p.name;
  s += ",loss=" + num(p.loss);
  s += ",duplicate=" + num(p.duplicate);
  s += ",reorder=" + num(p.reorder);
  s += ",reorder_jitter=" + num(p.reorder_jitter);
  s += ",truncate=" + num(p.truncate);
  s += ",truncate_snaplen=" + num(p.truncate_snaplen);
  s += ",corrupt=" + num(p.corrupt);
  s += ",corrupt_bytes=" + num(p.corrupt_bytes);
  s += ",dns_drop=" + num(p.dns_drop);
  s += ",cutoff=" + num(p.cutoff);
  s += ",cutoff_min_fraction=" + num(p.cutoff_min_fraction);
  s += "}";
  return s;
}

TransformSummary ImpairmentTransform::apply(std::vector<net::Packet>& packets,
                                            util::Prng& prng) const {
  TransformSummary summary;
  summary.impair = apply_impairment(packets, profile_, prng);
  return summary;
}

std::string ShapingTransform::spec() const {
  std::string s = "shape{name=";
  s += profile_.name;
  s += ",mode=";
  s += mode_name(profile_.mode);
  s += ",bucket=" + num(profile_.bucket_bytes);
  s += ",interval=" + num(profile_.interval);
  s += "}";
  return s;
}

TransformSummary ShapingTransform::apply(std::vector<net::Packet>& packets,
                                         util::Prng& prng) const {
  (void)prng;  // shaping is a fixed policy; no randomness consumed
  return apply_shaping(packets, profile_);
}

void TransformChain::push_back(
    std::shared_ptr<const CaptureTransform> transform) {
  if (transform != nullptr) items_.push_back(std::move(transform));
}

bool TransformChain::enabled() const noexcept {
  for (const auto& t : items_) {
    if (t->enabled()) return true;
  }
  return false;
}

std::string TransformChain::spec() const {
  std::string s;
  for (const auto& t : items_) {
    if (!s.empty()) s += ';';
    s += t->spec();
  }
  return s;
}

TransformSummary TransformChain::apply(std::vector<net::Packet>& packets,
                                       std::string_view base_key) const {
  TransformSummary summary;
  for (const auto& t : items_) {
    // Disabled elements are skipped without forking a Prng, matching the
    // legacy no-profile fast path (clean runs never touch randomness).
    if (!t->enabled()) continue;
    util::Prng prng(std::string(t->seed_label()) + "/" +
                    std::string(base_key));
    summary.merge(t->apply(packets, prng));
  }
  return summary;
}

std::span<const net::PacketView> TransformChain::apply_views(
    std::span<const net::PacketView> views, std::string_view base_key,
    std::vector<net::Packet>& owned, std::vector<net::PacketView>& owned_views,
    CaptureHealth& health) const {
  if (!enabled()) return views;  // zero-copy fast path: nothing touched
  owned.clear();
  owned.reserve(views.size());
  for (const net::PacketView& v : views) {
    owned.push_back(net::Packet{
        v.timestamp,
        std::vector<std::uint8_t>(v.frame.begin(), v.frame.end())});
  }
  apply(owned, base_key).add_to(health);
  owned_views.clear();
  owned_views.reserve(owned.size());
  for (const net::Packet& p : owned) owned_views.push_back(net::view_of(p));
  return owned_views;
}

const std::vector<ShapingProfile>& builtin_shaping_profiles() {
  static const std::vector<ShapingProfile>* profiles = [] {
    auto* v = new std::vector<ShapingProfile>;
    ShapingProfile pad128;
    pad128.name = "pad-128";
    pad128.mode = ShapingProfile::Mode::kPadBucket;
    pad128.bucket_bytes = 128;
    v->push_back(pad128);
    ShapingProfile pad512;
    pad512.name = "pad-512";
    pad512.mode = ShapingProfile::Mode::kPadBucket;
    pad512.bucket_bytes = 512;
    v->push_back(pad512);
    ShapingProfile pad1500;
    pad1500.name = "pad-1500";
    pad1500.mode = ShapingProfile::Mode::kPadBucket;
    pad1500.bucket_bytes = 1500;
    v->push_back(pad1500);
    ShapingProfile rate;
    rate.name = "rate-100ms";
    rate.mode = ShapingProfile::Mode::kConstantRate;
    rate.interval = 0.1;
    v->push_back(rate);
    ShapingProfile batch;
    batch.name = "batch-1s";
    batch.mode = ShapingProfile::Mode::kBatchDelay;
    batch.interval = 1.0;
    v->push_back(batch);
    return v;
  }();
  return *profiles;
}

const std::vector<std::shared_ptr<const CaptureTransform>>&
builtin_transforms() {
  static const std::vector<std::shared_ptr<const CaptureTransform>>*
      transforms = [] {
        auto* v = new std::vector<std::shared_ptr<const CaptureTransform>>;
        for (const ImpairmentProfile& p : builtin_profiles()) {
          v->push_back(std::make_shared<const ImpairmentTransform>(p));
        }
        for (const ShapingProfile& p : builtin_shaping_profiles()) {
          v->push_back(std::make_shared<const ShapingTransform>(p));
        }
        return v;
      }();
  return *transforms;
}

std::shared_ptr<const CaptureTransform> find_transform(std::string_view name) {
  for (const auto& t : builtin_transforms()) {
    if (t->name() == name) return t;
  }
  return nullptr;
}

const ShapingProfile* find_shaping_profile(std::string_view name) {
  for (const ShapingProfile& p : builtin_shaping_profiles()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::string transform_names() {
  std::string names;
  for (const auto& t : builtin_transforms()) {
    if (!names.empty()) names += ", ";
    names += t->name();
  }
  return names;
}

std::string shaping_profile_names() {
  std::string names;
  for (const ShapingProfile& p : builtin_shaping_profiles()) {
    if (!names.empty()) names += ", ";
    names += p.name;
  }
  return names;
}

bool parse_transform_chain(std::string_view csv, TransformChain& chain,
                           std::string& error) {
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t end = csv.find(',', start);
    if (end == std::string_view::npos) end = csv.size();
    const std::string_view name = csv.substr(start, end - start);
    if (!name.empty()) {
      std::shared_ptr<const CaptureTransform> t = find_transform(name);
      if (t == nullptr) {
        error = "unknown transform '" + std::string(name) +
                "'; available: " + transform_names();
        return false;
      }
      chain.push_back(std::move(t));
    }
    if (end == csv.size()) break;
    start = end + 1;
  }
  return true;
}

}  // namespace iotx::faults
