#include "iotx/faults/impairment.hpp"

#include <algorithm>

namespace iotx::faults {

namespace {

/// Server->client UDP traffic from a DNS port; the resolver heuristic
/// the drop knob targets (a lost response, not a lost query, is what
/// breaks IP->domain attribution downstream).
bool is_dns_response(const net::Packet& pkt) {
  const auto d = net::decode_packet(pkt);
  if (!d || !d->is_udp || d->payload.empty()) return false;
  return d->udp.src_port == 53 || d->udp.src_port == 5353;
}

}  // namespace

bool ImpairmentProfile::enabled() const noexcept {
  return loss > 0.0 || duplicate > 0.0 || reorder > 0.0 || truncate > 0.0 ||
         corrupt > 0.0 || dns_drop > 0.0 || cutoff > 0.0;
}

void ImpairmentSummary::add_to(CaptureHealth& health) const noexcept {
  health.impaired_dropped_packets += dropped_packets;
  health.impaired_dropped_bytes += dropped_bytes;
  health.impaired_duplicated_packets += duplicated_packets;
  health.impaired_reordered_packets += reordered_packets;
  health.impaired_truncated_frames += truncated_frames;
  health.impaired_corrupted_frames += corrupted_frames;
  health.impaired_dns_responses_dropped += dns_responses_dropped;
  health.impaired_capture_cutoffs += cutoff_applied ? 1 : 0;
}

ImpairmentSummary& ImpairmentSummary::merge(
    const ImpairmentSummary& o) noexcept {
  packets_in += o.packets_in;
  packets_out += o.packets_out;
  dropped_packets += o.dropped_packets;
  dropped_bytes += o.dropped_bytes;
  duplicated_packets += o.duplicated_packets;
  reordered_packets += o.reordered_packets;
  truncated_frames += o.truncated_frames;
  corrupted_frames += o.corrupted_frames;
  dns_responses_dropped += o.dns_responses_dropped;
  cutoff_applied = cutoff_applied || o.cutoff_applied;
  return *this;
}

ImpairmentSummary apply_impairment(std::vector<net::Packet>& packets,
                                   const ImpairmentProfile& profile,
                                   util::Prng& prng) {
  ImpairmentSummary summary;
  summary.packets_in = packets.size();
  summary.packets_out = packets.size();
  if (!profile.enabled() || packets.empty()) return summary;

  // One draw order, fixed by the input packet sequence alone: capture-level
  // cutoff first, then one pass over the packets. Every branch below either
  // always draws or draws behind a condition that depends only on the input
  // and earlier draws, so the same (packets, profile, seed) triple always
  // degrades identically.
  std::size_t limit = packets.size();
  if (profile.cutoff > 0.0 && prng.chance(profile.cutoff)) {
    const double keep =
        prng.uniform_real(profile.cutoff_min_fraction, 1.0);
    limit = static_cast<std::size_t>(keep *
                                     static_cast<double>(packets.size()));
    summary.cutoff_applied = true;
  }

  std::vector<net::Packet> out;
  out.reserve(packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    net::Packet& pkt = packets[i];
    if (i >= limit) {  // capture ended early: everything after is gone
      ++summary.dropped_packets;
      summary.dropped_bytes += pkt.frame.size();
      continue;
    }
    if (profile.loss > 0.0 && prng.chance(profile.loss)) {
      ++summary.dropped_packets;
      summary.dropped_bytes += pkt.frame.size();
      continue;
    }
    if (profile.dns_drop > 0.0 && is_dns_response(pkt) &&
        prng.chance(profile.dns_drop)) {
      ++summary.dropped_packets;
      summary.dropped_bytes += pkt.frame.size();
      ++summary.dns_responses_dropped;
      continue;
    }
    if (profile.truncate > 0.0 && pkt.frame.size() > profile.truncate_snaplen &&
        prng.chance(profile.truncate)) {
      summary.dropped_bytes += pkt.frame.size() - profile.truncate_snaplen;
      pkt.frame.resize(profile.truncate_snaplen);
      ++summary.truncated_frames;
    }
    if (profile.corrupt > 0.0 && !pkt.frame.empty() &&
        prng.chance(profile.corrupt)) {
      for (std::size_t n = 0; n < profile.corrupt_bytes; ++n) {
        const std::size_t at = prng.uniform(pkt.frame.size());
        pkt.frame[at] ^= static_cast<std::uint8_t>(1u << prng.uniform(8));
      }
      ++summary.corrupted_frames;
    }
    if (profile.reorder > 0.0 && prng.chance(profile.reorder)) {
      pkt.timestamp +=
          prng.uniform_real(-profile.reorder_jitter, profile.reorder_jitter);
      ++summary.reordered_packets;
    }
    const bool duplicated =
        profile.duplicate > 0.0 && prng.chance(profile.duplicate);
    out.push_back(std::move(pkt));
    if (duplicated) {
      net::Packet copy = out.back();
      copy.timestamp += 1e-6;  // dup arrives just behind the original
      out.push_back(std::move(copy));
      ++summary.duplicated_packets;
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const net::Packet& a, const net::Packet& b) {
                     return a.timestamp < b.timestamp;
                   });
  packets = std::move(out);
  summary.packets_out = packets.size();
  return summary;
}

const std::vector<ImpairmentProfile>& builtin_profiles() {
  static const std::vector<ImpairmentProfile> kProfiles = [] {
    std::vector<ImpairmentProfile> v;

    ImpairmentProfile none;
    v.push_back(none);

    ImpairmentProfile mild;
    mild.name = "mild-loss";
    mild.loss = 0.01;
    mild.reorder = 0.02;
    mild.reorder_jitter = 0.005;
    v.push_back(mild);

    ImpairmentProfile wifi;  // congested 2.4 GHz + overloaded capture box
    wifi.name = "lossy-wifi";
    wifi.loss = 0.08;
    wifi.duplicate = 0.02;
    wifi.reorder = 0.10;
    wifi.reorder_jitter = 0.05;
    wifi.truncate = 0.02;
    wifi.truncate_snaplen = 96;
    wifi.corrupt = 0.005;
    wifi.corrupt_bytes = 4;
    wifi.dns_drop = 0.05;
    wifi.cutoff = 0.02;
    wifi.cutoff_min_fraction = 0.6;
    v.push_back(wifi);

    ImpairmentProfile vpn;  // tunnel flaps: bursts reorder, sessions die
    vpn.name = "flaky-vpn";
    vpn.loss = 0.03;
    vpn.duplicate = 0.05;
    vpn.reorder = 0.25;
    vpn.reorder_jitter = 0.2;
    vpn.dns_drop = 0.15;
    vpn.cutoff = 0.10;
    vpn.cutoff_min_fraction = 0.5;
    v.push_back(vpn);

    ImpairmentProfile tap;  // tcpdump -s 68 style header-only capture
    tap.name = "truncating-tap";
    tap.loss = 0.01;
    tap.truncate = 0.65;
    tap.truncate_snaplen = 68;
    tap.cutoff = 0.05;
    tap.cutoff_min_fraction = 0.7;
    v.push_back(tap);

    return v;
  }();
  return kProfiles;
}

const ImpairmentProfile* find_profile(std::string_view name) {
  for (const ImpairmentProfile& p : builtin_profiles()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::string profile_names() {
  std::string out;
  for (const ImpairmentProfile& p : builtin_profiles()) {
    if (!out.empty()) out += ", ";
    out += p.name;
  }
  return out;
}

}  // namespace iotx::faults
