// CaptureHealth: the typed error taxonomy for lossy/partial captures.
//
// Real testbed captures suffer truncated pcaps, undecodable frames,
// mangled protocol messages, and capped reassembly buffers (Mon(IoT)r
// §3). Instead of throwing or silently discarding, every ingest layer
// (net::pcap_parse, proto sniffing in flow::FlowTable, flow::DnsCache,
// flow::TcpStreamReassembler, faults::apply_impairment) increments a
// counter here; the Study aggregates one CaptureHealth per (config,
// device) run and the report's robustness section surfaces them.
//
// Header-only by design: net/ and flow/ include it without linking
// against the faults library, so the dependency graph stays acyclic
// (faults links proto links net).
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace iotx::faults {

/// Typed counters for every recoverable ingest anomaly. All zeros on a
/// clean capture; any nonzero ingest-side counter marks a run "degraded".
struct CaptureHealth {
  // --- pcap file layer -----------------------------------------------
  /// Files whose trailing record was cut mid-write; the parsed prefix
  /// was salvaged instead of rejecting the whole file.
  std::uint64_t pcap_truncated_tail = 0;
  /// Frames stored shorter than their original wire length
  /// (incl_len < orig_len, i.e. snaplen clipping at capture time).
  std::uint64_t snaplen_clipped_frames = 0;

  // --- frame decode layer --------------------------------------------
  /// Frames that failed Ethernet/IPv4/L4 decoding during flow assembly.
  std::uint64_t undecodable_frames = 0;
  /// Frames whose size exceeded the 32-bit PacketMeta field and were
  /// clamped to UINT32_MAX instead of silently wrapping.
  std::uint64_t oversized_meta_frames = 0;

  // --- protocol parse layer ------------------------------------------
  /// Port-53/5353 UDP payloads that failed DNS wire-format decoding.
  std::uint64_t dns_parse_failures = 0;
  /// TLS handshake records announcing a ClientHello that failed to parse.
  std::uint64_t tls_parse_failures = 0;
  /// HTTP request payloads (method line present) that failed to parse.
  std::uint64_t http_parse_failures = 0;

  // --- TCP reassembly layer ------------------------------------------
  /// Segments discarded because they landed past the reassembly cap.
  std::uint64_t reassembly_dropped_segments = 0;
  /// Payload bytes discarded with those segments.
  std::uint64_t reassembly_dropped_bytes = 0;
  /// Retransmitted segments whose overlap bytes disagreed with the bytes
  /// already assembled (corruption or mid-stream capture confusion).
  std::uint64_t reassembly_overlap_conflicts = 0;

  // --- injected impairment (ground truth from faults::apply_impairment)
  std::uint64_t impaired_dropped_packets = 0;
  std::uint64_t impaired_dropped_bytes = 0;
  std::uint64_t impaired_duplicated_packets = 0;
  std::uint64_t impaired_reordered_packets = 0;
  std::uint64_t impaired_truncated_frames = 0;
  std::uint64_t impaired_corrupted_frames = 0;
  std::uint64_t impaired_dns_responses_dropped = 0;
  /// Captures cut short mid-experiment (power cut / capture crash).
  std::uint64_t impaired_capture_cutoffs = 0;

  // --- artifact cache layer ------------------------------------------
  /// Cached stage artifacts that failed validation on load (truncated
  /// file, bad magic/version, payload digest mismatch). Each one falls
  /// back to a full recompute, so results are unaffected but the run
  /// is marked degraded.
  std::uint64_t cache_corrupt_artifacts = 0;

  /// Sum of the ingest-side anomaly counters — the ones observed while
  /// parsing, not the injection ground truth. Nonzero => degraded run.
  std::uint64_t observed_anomalies() const noexcept {
    return pcap_truncated_tail + snaplen_clipped_frames +
           undecodable_frames + oversized_meta_frames + dns_parse_failures +
           tls_parse_failures + http_parse_failures +
           reassembly_dropped_segments + reassembly_overlap_conflicts +
           cache_corrupt_artifacts;
  }

  /// Sum of every counter, injected impairment included.
  std::uint64_t total_anomalies() const noexcept {
    return observed_anomalies() + impaired_dropped_packets +
           impaired_duplicated_packets + impaired_reordered_packets +
           impaired_truncated_frames + impaired_corrupted_frames +
           impaired_dns_responses_dropped + impaired_capture_cutoffs;
  }

  CaptureHealth& merge(const CaptureHealth& o) noexcept {
    pcap_truncated_tail += o.pcap_truncated_tail;
    snaplen_clipped_frames += o.snaplen_clipped_frames;
    undecodable_frames += o.undecodable_frames;
    oversized_meta_frames += o.oversized_meta_frames;
    dns_parse_failures += o.dns_parse_failures;
    tls_parse_failures += o.tls_parse_failures;
    http_parse_failures += o.http_parse_failures;
    reassembly_dropped_segments += o.reassembly_dropped_segments;
    reassembly_dropped_bytes += o.reassembly_dropped_bytes;
    reassembly_overlap_conflicts += o.reassembly_overlap_conflicts;
    impaired_dropped_packets += o.impaired_dropped_packets;
    impaired_dropped_bytes += o.impaired_dropped_bytes;
    impaired_duplicated_packets += o.impaired_duplicated_packets;
    impaired_reordered_packets += o.impaired_reordered_packets;
    impaired_truncated_frames += o.impaired_truncated_frames;
    impaired_corrupted_frames += o.impaired_corrupted_frames;
    impaired_dns_responses_dropped += o.impaired_dns_responses_dropped;
    impaired_capture_cutoffs += o.impaired_capture_cutoffs;
    cache_corrupt_artifacts += o.cache_corrupt_artifacts;
    return *this;
  }

  bool operator==(const CaptureHealth&) const = default;
};

/// (counter name, value) pairs in declaration order — one stable walk
/// used by the JSON robustness report, the text tables, and the CLI.
std::vector<std::pair<std::string_view, std::uint64_t>> health_counters(
    const CaptureHealth& health);

/// Like health_counters() but only the nonzero entries.
std::vector<std::pair<std::string_view, std::uint64_t>> nonzero_counters(
    const CaptureHealth& health);

/// Adds the nonzero counters into the global metrics registry as
/// "health/<counter>" sums. No-op unless obs::metrics_enabled(); callers
/// (Study, CLI) invoke it once per finished run, so the registry carries
/// the campaign-wide health aggregate without a second walk.
void record_health_metrics(const CaptureHealth& health);

}  // namespace iotx::faults
