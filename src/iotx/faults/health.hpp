// CaptureHealth: the typed error taxonomy for lossy/partial captures.
//
// Real testbed captures suffer truncated pcaps, undecodable frames,
// mangled protocol messages, and capped reassembly buffers (Mon(IoT)r
// §3). Instead of throwing or silently discarding, every ingest layer
// (net::pcap_parse, proto sniffing in flow::FlowTable, flow::DnsCache,
// flow::TcpStreamReassembler, faults::apply_impairment, and the
// iotx::serve ingest daemon's admission/degradation machinery)
// increments a counter here; the Study aggregates one CaptureHealth per
// (config, device) run, the serve daemon one per tenant, and the
// report's robustness section surfaces them.
//
// Header-only by design: net/ and flow/ include it without linking
// against the faults library, so the dependency graph stays acyclic
// (faults links proto links net).
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace iotx::faults {

// The single source of truth for the counter set. Every walker —
// merge(), operator==, health_counters(), the checkpoint serializer —
// expands this list, so adding a counter means adding one X(...) row
// and one struct field; forget either half and the static_assert below
// (field count vs struct size) or the member reference in merge() fails
// the build. PR 6 grew the hand-written walk to 19 counters; this makes
// the 20th un-forgettable.
#define IOTX_CAPTURE_HEALTH_COUNTERS(X) \
  X(pcap_truncated_tail)                \
  X(snaplen_clipped_frames)             \
  X(undecodable_frames)                 \
  X(oversized_meta_frames)              \
  X(dns_parse_failures)                 \
  X(tls_parse_failures)                 \
  X(http_parse_failures)                \
  X(reassembly_dropped_segments)        \
  X(reassembly_dropped_bytes)           \
  X(reassembly_overlap_conflicts)       \
  X(impaired_dropped_packets)           \
  X(impaired_dropped_bytes)             \
  X(impaired_duplicated_packets)        \
  X(impaired_reordered_packets)         \
  X(impaired_truncated_frames)          \
  X(impaired_corrupted_frames)          \
  X(impaired_dns_responses_dropped)     \
  X(impaired_capture_cutoffs)           \
  X(cache_corrupt_artifacts)            \
  X(serve_oversized_frames)             \
  X(serve_malformed_streams)            \
  X(serve_deadline_expirations)         \
  X(serve_budget_exhaustions)           \
  X(serve_truncated_frames)             \
  X(serve_sampled_out_packets)          \
  X(serve_sessions_shed)                \
  X(serve_sessions_quarantined)         \
  X(serve_sessions_drained)             \
  X(shaped_padded_frames)               \
  X(shaped_padding_bytes)               \
  X(shaped_delayed_packets)             \
  X(shaped_batched_packets)

/// Number of counters in the taxonomy (i.e. rows in the X-macro list).
inline constexpr std::size_t kCaptureHealthCounterCount =
    0
#define IOTX_HEALTH_COUNT(name) +1
    IOTX_CAPTURE_HEALTH_COUNTERS(IOTX_HEALTH_COUNT)
#undef IOTX_HEALTH_COUNT
    ;

/// Typed counters for every recoverable ingest anomaly. All zeros on a
/// clean capture; any nonzero ingest-side counter marks a run "degraded".
struct CaptureHealth {
  // --- pcap file layer -----------------------------------------------
  /// Files whose trailing record was cut mid-write; the parsed prefix
  /// was salvaged instead of rejecting the whole file.
  std::uint64_t pcap_truncated_tail = 0;
  /// Frames stored shorter than their original wire length
  /// (incl_len < orig_len, i.e. snaplen clipping at capture time).
  std::uint64_t snaplen_clipped_frames = 0;

  // --- frame decode layer --------------------------------------------
  /// Frames that failed Ethernet/IPv4/L4 decoding during flow assembly.
  std::uint64_t undecodable_frames = 0;
  /// Frames whose size exceeded the 32-bit PacketMeta field and were
  /// clamped to UINT32_MAX instead of silently wrapping.
  std::uint64_t oversized_meta_frames = 0;

  // --- protocol parse layer ------------------------------------------
  /// Port-53/5353 UDP payloads that failed DNS wire-format decoding.
  std::uint64_t dns_parse_failures = 0;
  /// TLS handshake records announcing a ClientHello that failed to parse.
  std::uint64_t tls_parse_failures = 0;
  /// HTTP request payloads (method line present) that failed to parse.
  std::uint64_t http_parse_failures = 0;

  // --- TCP reassembly layer ------------------------------------------
  /// Segments discarded because they landed past the reassembly cap.
  std::uint64_t reassembly_dropped_segments = 0;
  /// Payload bytes discarded with those segments.
  std::uint64_t reassembly_dropped_bytes = 0;
  /// Retransmitted segments whose overlap bytes disagreed with the bytes
  /// already assembled (corruption or mid-stream capture confusion).
  std::uint64_t reassembly_overlap_conflicts = 0;

  // --- injected impairment (ground truth from faults::apply_impairment)
  std::uint64_t impaired_dropped_packets = 0;
  std::uint64_t impaired_dropped_bytes = 0;
  std::uint64_t impaired_duplicated_packets = 0;
  std::uint64_t impaired_reordered_packets = 0;
  std::uint64_t impaired_truncated_frames = 0;
  std::uint64_t impaired_corrupted_frames = 0;
  std::uint64_t impaired_dns_responses_dropped = 0;
  /// Captures cut short mid-experiment (power cut / capture crash).
  std::uint64_t impaired_capture_cutoffs = 0;

  // --- artifact cache layer ------------------------------------------
  /// Cached stage artifacts that failed validation on load (truncated
  /// file, bad magic/version, payload digest mismatch). Each one falls
  /// back to a full recompute, so results are unaffected but the run
  /// is marked degraded.
  std::uint64_t cache_corrupt_artifacts = 0;

  // --- serve daemon layer (iotx::serve) -------------------------------
  /// Stream records announcing a frame longer than the daemon's
  /// max-frame cap; the session is quarantined (the length prefix can
  /// no longer be trusted to delimit records).
  std::uint64_t serve_oversized_frames = 0;
  /// Upload streams that failed HTTP/chunked/pcap framing validation.
  std::uint64_t serve_malformed_streams = 0;
  /// Sessions cut by the read/idle deadline (slow-loris defence).
  std::uint64_t serve_deadline_expirations = 0;
  /// Sessions stopped at their byte or flow budget.
  std::uint64_t serve_budget_exhaustions = 0;
  /// Frames snaplen-truncated by the degradation ladder (kTruncate).
  std::uint64_t serve_truncated_frames = 0;
  /// Packets dropped by ladder sampling (kSample keeps 1-in-N).
  std::uint64_t serve_sampled_out_packets = 0;
  /// Upload sessions refused outright at admission (kShed).
  std::uint64_t serve_sessions_shed = 0;
  /// Sessions whose stream was quarantined mid-flight (malformed input,
  /// oversized frame, client disconnect); their partial flows are
  /// excluded from the tenant report, the process keeps serving.
  std::uint64_t serve_sessions_quarantined = 0;
  /// In-flight sessions cut by a drain (SIGTERM) before completion.
  std::uint64_t serve_sessions_drained = 0;

  // --- shaping defenses (ground truth from faults::apply_shaping) ------
  /// Frames padded up to their size bucket by a padding defense.
  std::uint64_t shaped_padded_frames = 0;
  /// Cover bytes appended by padding (the defense's byte overhead).
  std::uint64_t shaped_padding_bytes = 0;
  /// Packets whose release was delayed onto a constant-rate clock.
  std::uint64_t shaped_delayed_packets = 0;
  /// Packets held and flushed at a batch-window boundary.
  std::uint64_t shaped_batched_packets = 0;

  /// Sum of the ingest-side anomaly counters — the ones observed while
  /// parsing, not the injection ground truth or deliberate ladder
  /// degradations. Nonzero => degraded run.
  std::uint64_t observed_anomalies() const noexcept {
    return pcap_truncated_tail + snaplen_clipped_frames +
           undecodable_frames + oversized_meta_frames + dns_parse_failures +
           tls_parse_failures + http_parse_failures +
           reassembly_dropped_segments + reassembly_overlap_conflicts +
           cache_corrupt_artifacts + serve_oversized_frames +
           serve_malformed_streams + serve_deadline_expirations +
           serve_budget_exhaustions + serve_sessions_quarantined;
  }

  /// Sum of every counter except the pure byte tallies — injected
  /// impairment and deliberate serve-ladder degradations included.
  std::uint64_t total_anomalies() const noexcept {
    return observed_anomalies() + impaired_dropped_packets +
           impaired_duplicated_packets + impaired_reordered_packets +
           impaired_truncated_frames + impaired_corrupted_frames +
           impaired_dns_responses_dropped + impaired_capture_cutoffs +
           serve_truncated_frames + serve_sampled_out_packets +
           serve_sessions_shed + serve_sessions_drained +
           shaped_padded_frames + shaped_delayed_packets +
           shaped_batched_packets;
  }

  CaptureHealth& merge(const CaptureHealth& o) noexcept {
#define IOTX_HEALTH_MERGE(name) name += o.name;
    IOTX_CAPTURE_HEALTH_COUNTERS(IOTX_HEALTH_MERGE)
#undef IOTX_HEALTH_MERGE
    return *this;
  }

  bool operator==(const CaptureHealth&) const = default;
};

// The walk-count guard: every field is a uint64_t counter, so the struct
// size is field-count * 8 on every supported ABI. A field added to the
// struct but not to IOTX_CAPTURE_HEALTH_COUNTERS trips this; a row added
// to the macro without its field fails to compile inside merge().
static_assert(sizeof(CaptureHealth) ==
                  kCaptureHealthCounterCount * sizeof(std::uint64_t),
              "CaptureHealth fields and IOTX_CAPTURE_HEALTH_COUNTERS are out "
              "of sync: add the new counter to the X-macro list (merge, "
              "walk, serialization all derive from it)");

/// (counter name, value) pairs in declaration order — one stable walk
/// used by the JSON robustness report, the text tables, the serve
/// checkpoint serializer, and the CLI. Always exactly
/// kCaptureHealthCounterCount entries.
std::vector<std::pair<std::string_view, std::uint64_t>> health_counters(
    const CaptureHealth& health);

/// Like health_counters() but only the nonzero entries.
std::vector<std::pair<std::string_view, std::uint64_t>> nonzero_counters(
    const CaptureHealth& health);

/// Adds the nonzero counters into the global metrics registry as
/// "health/<counter>" sums. No-op unless obs::metrics_enabled(); callers
/// (Study, CLI, serve daemon) invoke it once per finished run, so the
/// registry carries the campaign-wide health aggregate without a second
/// walk.
void record_health_metrics(const CaptureHealth& health);

}  // namespace iotx::faults
