// Deterministic network-impairment injection at the testbed gateway.
//
// Real deployments see packet loss, duplication, reordering, snaplen
// clipping, byte corruption, dropped DNS responses, and captures cut
// short by power failures; in-the-wild IoT measurement must ingest all
// of it. apply_impairment() degrades a synthesized capture the way a
// flaky gateway would, driven entirely by a caller-supplied Prng — the
// Study forks that Prng from the per-experiment seed key
// ("impair/" + spec.key()), so an impaired campaign is bit-reproducible
// at any --jobs count, exactly like the clean one.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "iotx/faults/health.hpp"
#include "iotx/net/packet.hpp"
#include "iotx/util/prng.hpp"

namespace iotx::faults {

/// Knobs of one impairment scenario. All probabilities are per-packet
/// (per-capture for `cutoff`); a default-constructed profile is a no-op.
struct ImpairmentProfile {
  std::string name = "none";

  double loss = 0.0;       ///< P(drop) per packet
  double duplicate = 0.0;  ///< P(emit a duplicate) per packet
  double reorder = 0.0;    ///< P(timestamp jitter) per packet
  double reorder_jitter = 0.0;  ///< max +/- seconds of jitter
  double truncate = 0.0;   ///< P(clip frame to truncate_snaplen)
  std::size_t truncate_snaplen = 68;  ///< bytes kept on a clipped frame
  double corrupt = 0.0;    ///< P(flip bytes) per packet
  std::size_t corrupt_bytes = 4;  ///< bytes flipped per corrupted frame
  double dns_drop = 0.0;   ///< extra P(drop) for DNS responses
  double cutoff = 0.0;     ///< P(capture ends early) per capture
  double cutoff_min_fraction = 0.5;  ///< earliest cut point (fraction kept)

  /// True when any knob is nonzero (the profile actually does something).
  bool enabled() const noexcept;
};

/// What one apply_impairment() call did; `add_to` folds the counts into
/// the capture's CaptureHealth as injection ground truth.
struct ImpairmentSummary {
  std::uint64_t packets_in = 0;
  std::uint64_t packets_out = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t duplicated_packets = 0;
  std::uint64_t reordered_packets = 0;
  std::uint64_t truncated_frames = 0;
  std::uint64_t corrupted_frames = 0;
  std::uint64_t dns_responses_dropped = 0;
  bool cutoff_applied = false;

  void add_to(CaptureHealth& health) const noexcept;
  ImpairmentSummary& merge(const ImpairmentSummary& o) noexcept;
};

/// Degrades `packets` in place per `profile`, consuming randomness only
/// from `prng` (fork it from a stable per-capture key for determinism).
/// Packets stay timestamp-sorted on return. A disabled profile returns
/// immediately without touching the Prng, so clean runs stay bit-for-bit
/// identical to pre-fault-injection builds.
ImpairmentSummary apply_impairment(std::vector<net::Packet>& packets,
                                   const ImpairmentProfile& profile,
                                   util::Prng& prng);

/// The built-in named scenarios: "none", "mild-loss", "lossy-wifi",
/// "flaky-vpn", "truncating-tap".
const std::vector<ImpairmentProfile>& builtin_profiles();

/// Looks up a built-in profile by name; nullptr when unknown.
const ImpairmentProfile* find_profile(std::string_view name);

/// Comma-separated list of the built-in profile names (for CLI help).
std::string profile_names();

}  // namespace iotx::faults
