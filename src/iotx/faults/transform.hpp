// Composable capture transforms: the one API behind --impair/--shape.
//
// A CaptureTransform is a named, seeded mutation of a captured packet
// vector applied at the capture head — network impairment (loss,
// duplication, reordering) and traffic-shaping defenses (padding to a
// bucket, constant-rate release, batch-and-delay) are both
// implementations. Transforms compose into an ordered TransformChain;
// each chain element consumes randomness only from its own Prng forked
// as "<seed_label>/<capture key>", so a chained campaign is
// bit-reproducible at any --jobs count and a single-impairment chain is
// bit-for-bit identical to the legacy apply_impairment() path.
//
// The chain also has a zero-copy entry point (apply_views): an
// empty/disabled chain returns the caller's views untouched — no
// allocation, no materialization — so clean runs stay byte-identical to
// pre-transform builds; an enabled chain materializes owned packets
// exactly once.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "iotx/faults/impairment.hpp"
#include "iotx/net/packet.hpp"
#include "iotx/util/prng.hpp"

namespace iotx::faults {

/// Knobs of one traffic-shaping defense. A default-constructed profile
/// is a no-op. Shaping is deterministic (no randomness consumed): the
/// defenses the paper's threat model allows a gateway to deploy are
/// fixed policies, not stochastic ones.
struct ShapingProfile {
  enum class Mode {
    kPadBucket,      ///< pad every frame up to the next bucket multiple
    kConstantRate,   ///< quantize timestamps onto a fixed release clock
    kBatchDelay,     ///< hold packets and release them at window ends
  };

  std::string name = "none";
  Mode mode = Mode::kPadBucket;
  std::size_t bucket_bytes = 0;  ///< kPadBucket: bucket size (0 = off)
  double interval = 0.0;  ///< kConstantRate/kBatchDelay: seconds (0 = off)

  /// True when the profile actually does something.
  bool enabled() const noexcept;
};

/// What one transform (or chain) application did. Impairment counters
/// ride the existing ImpairmentSummary; the shaping counters are the
/// defense-overhead ground truth (padding bytes is the headline overhead
/// number defend-eval reports).
struct TransformSummary {
  ImpairmentSummary impair;
  std::uint64_t shaped_padded_frames = 0;
  std::uint64_t shaped_padding_bytes = 0;
  std::uint64_t shaped_delayed_packets = 0;
  std::uint64_t shaped_batched_packets = 0;

  void add_to(CaptureHealth& health) const noexcept;
  TransformSummary& merge(const TransformSummary& o) noexcept;
};

/// Shapes `packets` in place per `profile`. Deterministic: consumes no
/// randomness, preserves per-flow packet order, and returns the packets
/// timestamp-sorted. A disabled profile returns immediately.
TransformSummary apply_shaping(std::vector<net::Packet>& packets,
                               const ShapingProfile& profile);

/// A named, seeded capture mutation. Implementations must be
/// deterministic functions of (packets, profile knobs, prng stream) —
/// never of wall clock, thread schedule, or call order.
class CaptureTransform {
 public:
  virtual ~CaptureTransform() = default;

  /// Registry name (unique across impairment and shaping builtins).
  virtual std::string_view name() const noexcept = 0;

  /// False for a no-op configuration; the chain skips disabled
  /// transforms without forking a Prng for them.
  virtual bool enabled() const noexcept = 0;

  /// Prng fork label: the chain seeds this transform's stream as
  /// "<seed_label>/<capture key>". Impairment uses "impair" so a
  /// one-element chain reproduces the legacy seed exactly.
  virtual std::string_view seed_label() const noexcept = 0;

  /// Canonical spec string covering every knob — folded into
  /// cache::StageKey so runs with different transform parameters can
  /// never alias a cached artifact (faults cannot depend on cache, so
  /// the contract is a string, not a StageKey&).
  virtual std::string spec() const = 0;

  virtual TransformSummary apply(std::vector<net::Packet>& packets,
                                 util::Prng& prng) const = 0;
};

/// apply_impairment() re-homed behind the transform interface. Delegates
/// to the free function, so registry-driven impairment is bit-for-bit
/// the legacy path.
class ImpairmentTransform final : public CaptureTransform {
 public:
  explicit ImpairmentTransform(ImpairmentProfile profile)
      : profile_(std::move(profile)) {}

  std::string_view name() const noexcept override { return profile_.name; }
  bool enabled() const noexcept override { return profile_.enabled(); }
  std::string_view seed_label() const noexcept override { return "impair"; }
  std::string spec() const override;
  TransformSummary apply(std::vector<net::Packet>& packets,
                         util::Prng& prng) const override;

  const ImpairmentProfile& profile() const noexcept { return profile_; }

 private:
  ImpairmentProfile profile_;
};

/// Traffic-shaping defense behind the transform interface.
class ShapingTransform final : public CaptureTransform {
 public:
  explicit ShapingTransform(ShapingProfile profile)
      : profile_(std::move(profile)) {}

  std::string_view name() const noexcept override { return profile_.name; }
  bool enabled() const noexcept override { return profile_.enabled(); }
  std::string_view seed_label() const noexcept override { return "shape"; }
  std::string spec() const override;
  TransformSummary apply(std::vector<net::Packet>& packets,
                         util::Prng& prng) const override;

  const ShapingProfile& profile() const noexcept { return profile_; }

 private:
  ShapingProfile profile_;
};

/// An ordered chain of transforms applied left to right at the capture
/// head. Value type (shared_ptr elements), cheap to copy into
/// StudyParams/ServeConfig.
class TransformChain {
 public:
  TransformChain() = default;

  void push_back(std::shared_ptr<const CaptureTransform> transform);

  bool empty() const noexcept { return items_.empty(); }
  std::size_t size() const noexcept { return items_.size(); }
  const std::vector<std::shared_ptr<const CaptureTransform>>& items()
      const noexcept {
    return items_;
  }

  /// True when any element would actually mutate the capture.
  bool enabled() const noexcept;

  /// Canonical chain spec: the ';'-joined element specs (enabled or
  /// not — order and configuration both matter). Empty string for an
  /// empty chain, so pre-chain cache keys are reproduced by default.
  std::string spec() const;

  /// Applies every enabled element in order. `base_key` is the stable
  /// per-capture seed key (e.g. ExperimentSpec::key()); each element's
  /// Prng forks as "<seed_label>/<base_key>" so a one-impairment chain
  /// matches the legacy "impair/" stream bit-for-bit.
  TransformSummary apply(std::vector<net::Packet>& packets,
                         std::string_view base_key) const;

  /// Zero-copy entry point. A disabled/empty chain returns `views`
  /// unchanged and leaves `owned`/`owned_views` untouched (no
  /// allocation). Otherwise the views are materialized into `owned`
  /// once, transformed, and the returned span aliases `owned_views`
  /// (both must outlive the returned span). The summary is folded into
  /// `health` either way (no-op when disabled).
  std::span<const net::PacketView> apply_views(
      std::span<const net::PacketView> views, std::string_view base_key,
      std::vector<net::Packet>& owned,
      std::vector<net::PacketView>& owned_views,
      CaptureHealth& health) const;

 private:
  std::vector<std::shared_ptr<const CaptureTransform>> items_;
};

/// The built-in named transforms: every impairment profile from
/// builtin_profiles() ("none", "mild-loss", "lossy-wifi", "flaky-vpn",
/// "truncating-tap") plus the shaping defenses ("pad-128", "pad-512",
/// "pad-1500", "rate-100ms", "batch-1s").
const std::vector<std::shared_ptr<const CaptureTransform>>&
builtin_transforms();

/// The built-in shaping defenses only (defend-eval sweeps these).
const std::vector<ShapingProfile>& builtin_shaping_profiles();

/// Looks up a built-in transform by name; nullptr when unknown.
std::shared_ptr<const CaptureTransform> find_transform(std::string_view name);

/// Looks up a built-in shaping profile by name; nullptr when unknown.
const ShapingProfile* find_shaping_profile(std::string_view name);

/// Comma-separated built-in transform names (for CLI help).
std::string transform_names();

/// Comma-separated built-in shaping profile names (for CLI help).
std::string shaping_profile_names();

/// Parses a comma-separated transform list ("lossy-wifi,pad-512") into
/// an ordered chain. Returns false and sets `error` on an unknown name.
bool parse_transform_chain(std::string_view csv, TransformChain& chain,
                           std::string& error);

}  // namespace iotx::faults
