#include "iotx/faults/health.hpp"

#include <string>

#include "iotx/obs/registry.hpp"

namespace iotx::faults {

std::vector<std::pair<std::string_view, std::uint64_t>> health_counters(
    const CaptureHealth& h) {
  return {
      {"pcap_truncated_tail", h.pcap_truncated_tail},
      {"snaplen_clipped_frames", h.snaplen_clipped_frames},
      {"undecodable_frames", h.undecodable_frames},
      {"oversized_meta_frames", h.oversized_meta_frames},
      {"dns_parse_failures", h.dns_parse_failures},
      {"tls_parse_failures", h.tls_parse_failures},
      {"http_parse_failures", h.http_parse_failures},
      {"reassembly_dropped_segments", h.reassembly_dropped_segments},
      {"reassembly_dropped_bytes", h.reassembly_dropped_bytes},
      {"reassembly_overlap_conflicts", h.reassembly_overlap_conflicts},
      {"impaired_dropped_packets", h.impaired_dropped_packets},
      {"impaired_dropped_bytes", h.impaired_dropped_bytes},
      {"impaired_duplicated_packets", h.impaired_duplicated_packets},
      {"impaired_reordered_packets", h.impaired_reordered_packets},
      {"impaired_truncated_frames", h.impaired_truncated_frames},
      {"impaired_corrupted_frames", h.impaired_corrupted_frames},
      {"impaired_dns_responses_dropped", h.impaired_dns_responses_dropped},
      {"impaired_capture_cutoffs", h.impaired_capture_cutoffs},
      {"cache_corrupt_artifacts", h.cache_corrupt_artifacts},
  };
}

std::vector<std::pair<std::string_view, std::uint64_t>> nonzero_counters(
    const CaptureHealth& h) {
  std::vector<std::pair<std::string_view, std::uint64_t>> out;
  for (const auto& [name, value] : health_counters(h)) {
    if (value != 0) out.emplace_back(name, value);
  }
  return out;
}

void record_health_metrics(const CaptureHealth& health) {
  if (!obs::metrics_enabled()) return;
  obs::Registry& registry = obs::Registry::global();
  for (const auto& [name, value] : nonzero_counters(health)) {
    registry.add(registry.counter("health/" + std::string(name)), value);
  }
}

}  // namespace iotx::faults
