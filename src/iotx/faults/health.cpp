#include "iotx/faults/health.hpp"

#include <string>

#include "iotx/obs/registry.hpp"

namespace iotx::faults {

std::vector<std::pair<std::string_view, std::uint64_t>> health_counters(
    const CaptureHealth& h) {
  std::vector<std::pair<std::string_view, std::uint64_t>> out;
  out.reserve(kCaptureHealthCounterCount);
#define IOTX_HEALTH_WALK(name) out.emplace_back(#name, h.name);
  IOTX_CAPTURE_HEALTH_COUNTERS(IOTX_HEALTH_WALK)
#undef IOTX_HEALTH_WALK
  return out;
}

std::vector<std::pair<std::string_view, std::uint64_t>> nonzero_counters(
    const CaptureHealth& h) {
  std::vector<std::pair<std::string_view, std::uint64_t>> out;
  for (const auto& [name, value] : health_counters(h)) {
    if (value != 0) out.emplace_back(name, value);
  }
  return out;
}

void record_health_metrics(const CaptureHealth& health) {
  if (!obs::metrics_enabled()) return;
  obs::Registry& registry = obs::Registry::global();
  for (const auto& [name, value] : nonzero_counters(health)) {
    registry.add(registry.counter("health/" + std::string(name)), value);
  }
}

}  // namespace iotx::faults
