// Study report export: every table/figure of the paper's evaluation as
// JSON (machine-readable) and as rendered text, written to a directory.
// This is what a downstream user consumes to post-process results without
// re-running the campaign.
#pragma once

#include <cstdint>
#include <string>

#include "iotx/core/defense.hpp"
#include "iotx/core/study.hpp"
#include "iotx/core/tables.hpp"

namespace iotx::report {

/// Version stamped as the first `schema_version` field of every JSON
/// document this module emits (tables, figure, pii, robustness, the
/// bundled report). Bump it when a document's shape changes so
/// downstream consumers (and scripts/check_ingest_baseline.py-style
/// gates) can reject mixed-version comparisons instead of silently
/// mis-parsing.
inline constexpr std::uint64_t kReportSchemaVersion = 1;

/// JSON documents for the individual tables.
std::string table2_json(const core::Study& study);
std::string table3_json(const core::Study& study);
std::string table4_json(const core::Study& study);
std::string figure2_json(const core::Study& study);
std::string table5_json(const core::Study& study);
std::string table6_json(const core::Study& study);
std::string table7_json(const core::Study& study);
std::string table8_json(const core::Study& study);
std::string table9_json(const core::Study& study);
std::string table10_json(const core::Study& study);
std::string table11_json(const core::Study& study);
std::string pii_json(const core::Study& study);

/// Lifecycle section: destination / encryption / PII exposure sliced by
/// lifecycle phase (setup, normal, ota_update, deprovision), aggregated
/// across every (config, device) run. Phases appear only when the plan
/// scheduled them (lifecycle_reps > 0 adds the three non-normal phases).
std::string lifecycle_json(const core::Study& study);

/// Defense-evaluation report (`iotx defend-eval`): per-(device, defense)
/// F1 degradation vs byte overhead, plus per-defense means.
std::string defense_report_json(const core::DefenseEvalResult& result);

/// The same defense data rendered as a text table.
std::string defense_report_text(const core::DefenseEvalResult& result);

/// Robustness section: per-(config, device) run status and typed health
/// counters, the quarantine list with exception texts, and per-config
/// loss-adjusted byte totals (observed + known-lost bytes).
std::string robustness_json(const core::Study& study);

/// The same robustness data rendered as text tables (for terminals/logs).
std::string robustness_text(const core::Study& study);

/// One JSON document bundling everything plus run metadata.
std::string full_report_json(const core::Study& study);

/// Writes `<dir>/tableN.json`, `<dir>/figure2.json`, `<dir>/pii.json`,
/// `<dir>/lifecycle.json`, `<dir>/robustness.json`, `<dir>/robustness.txt`
/// and `<dir>/report.json`. Creates the directory. Returns false on I/O
/// error.
bool write_report_directory(const core::Study& study, const std::string& dir);

}  // namespace iotx::report
