// Minimal streaming JSON writer (no external dependency): enough to export
// every table the Study produces in a machine-readable form.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace iotx::report {

/// Builds a JSON document incrementally. The caller is responsible for
/// balanced begin/end calls; `document()` validates balance.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key (must be inside an object, before its value).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number) { return value(std::int64_t{number}); }
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// The finished document. Throws std::logic_error when scopes are
  /// unbalanced.
  std::string document() const;

  /// JSON string escaping (exposed for tests).
  static std::string escape(std::string_view text);

 private:
  void comma();
  std::string out_;
  std::vector<char> stack_;       // '{' or '['
  std::vector<bool> has_items_;   // per scope
  bool expecting_value_ = false;  // a key was just written
};

}  // namespace iotx::report
