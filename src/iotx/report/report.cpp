#include "iotx/report/report.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <tuple>

#include "iotx/faults/health.hpp"
#include "iotx/obs/trace.hpp"
#include "iotx/report/json.hpp"
#include "iotx/util/table.hpp"

namespace iotx::report {

namespace {

/// Every document leads with its schema version so consumers can reject
/// a mixed-version comparison before reading anything else.
void doc_header(JsonWriter& w) {
  w.field("schema_version", kReportSchemaVersion);
}

void columns_array(JsonWriter& w) {
  w.key("columns").begin_array();
  for (const char* c : core::kColumnHeaders) w.value(c);
  w.end_array();
}

template <typename T, std::size_t N>
void number_array(JsonWriter& w, std::string_view name,
                  const std::array<T, N>& values) {
  w.key(name).begin_array();
  for (const T& v : values) w.value(v);
  w.end_array();
}

}  // namespace

std::string table2_json(const core::Study& study) {
  JsonWriter w;
  w.begin_object();
  doc_header(w);
  w.field("table", "2");
  w.field("title", "non-first parties by experiment type");
  columns_array(w);
  w.key("rows").begin_array();
  for (const core::Table2Row& row : core::build_table2(study)) {
    w.begin_object();
    w.field("experiment", row.experiment);
    w.field("party", row.party);
    number_array(w, "counts", row.counts);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.document();
}

std::string table3_json(const core::Study& study) {
  JsonWriter w;
  w.begin_object();
  doc_header(w);
  w.field("table", "3");
  w.field("title", "non-first parties by device category");
  columns_array(w);
  w.key("rows").begin_array();
  for (const core::Table3Row& row : core::build_table3(study)) {
    w.begin_object();
    w.field("category", row.category);
    w.field("party", row.party);
    number_array(w, "counts", row.counts);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.document();
}

std::string table4_json(const core::Study& study) {
  JsonWriter w;
  w.begin_object();
  doc_header(w);
  w.field("table", "4");
  w.field("title", "organizations contacted by multiple devices");
  columns_array(w);
  w.key("rows").begin_array();
  for (const core::Table4Row& row : core::build_table4(study)) {
    w.begin_object();
    w.field("organization", row.organization);
    number_array(w, "device_counts", row.device_counts);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.document();
}

std::string figure2_json(const core::Study& study) {
  JsonWriter w;
  w.begin_object();
  doc_header(w);
  w.field("figure", "2");
  w.field("title", "traffic volume lab->category->region");
  w.key("edges").begin_array();
  for (const auto& e : core::build_figure2(study)) {
    w.begin_object();
    w.field("lab", e.lab);
    w.field("category", e.category);
    w.field("region", e.region);
    w.field("bytes", e.bytes);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.document();
}

std::string table5_json(const core::Study& study) {
  JsonWriter w;
  w.begin_object();
  doc_header(w);
  w.field("table", "5");
  w.field("title", "devices by encryption percentage quartile");
  columns_array(w);
  w.key("rows").begin_array();
  for (const core::Table5Row& row : core::build_table5(study)) {
    w.begin_object();
    w.field("class", row.enc_class);
    w.field("range", row.range);
    number_array(w, "device_counts", row.device_counts);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.document();
}

std::string table6_json(const core::Study& study) {
  JsonWriter w;
  w.begin_object();
  doc_header(w);
  w.field("table", "6");
  w.field("title", "percent bytes per class per category");
  columns_array(w);
  w.key("rows").begin_array();
  for (const core::Table6Row& row : core::build_table6(study)) {
    w.begin_object();
    w.field("class", row.enc_class);
    w.field("category", row.category);
    number_array(w, "pct", row.pct);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.document();
}

std::string table7_json(const core::Study& study) {
  JsonWriter w;
  w.begin_object();
  doc_header(w);
  w.field("table", "7");
  w.field("title", "percent unencrypted bytes per device");
  w.key("rows").begin_array();
  for (const core::Table7Row& row : core::build_table7(study)) {
    w.begin_object();
    w.field("device", row.device_name);
    w.field("common", row.common);
    w.field("us", row.us);
    w.field("uk", row.uk);
    w.field("vpn_us_to_uk", row.vpn_us);
    w.field("vpn_uk_to_us", row.vpn_uk);
    w.field("significant_vpn", row.significant_vpn);
    w.field("significant_region", row.significant_region);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.document();
}

std::string table8_json(const core::Study& study) {
  JsonWriter w;
  w.begin_object();
  doc_header(w);
  w.field("table", "8");
  w.field("title", "percent bytes per class per experiment type");
  columns_array(w);
  w.key("rows").begin_array();
  for (const core::Table8Row& row : core::build_table8(study)) {
    w.begin_object();
    w.field("class", row.enc_class);
    w.field("experiment", row.experiment);
    w.field("devices", row.device_count);
    if (row.uncontrolled_pct >= 0.0) {
      w.field("uncontrolled_pct", row.uncontrolled_pct);
    } else {
      number_array(w, "pct", row.pct);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.document();
}

std::string table9_json(const core::Study& study) {
  JsonWriter w;
  w.begin_object();
  doc_header(w);
  w.field("table", "9");
  w.field("title", "inferrable devices (F1 > 0.75) per category");
  columns_array(w);
  w.key("rows").begin_array();
  for (const core::Table9Row& row : core::build_table9(study)) {
    w.begin_object();
    w.field("category", row.category);
    w.field("devices", row.device_count);
    number_array(w, "inferrable", row.inferrable);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.document();
}

std::string table10_json(const core::Study& study) {
  JsonWriter w;
  w.begin_object();
  doc_header(w);
  w.field("table", "10");
  w.field("title", "inferrable activities (F1 > 0.75) per activity group");
  columns_array(w);
  w.key("rows").begin_array();
  for (const core::Table10Row& row : core::build_table10(study)) {
    w.begin_object();
    w.field("group", row.group);
    w.field("devices", row.device_count);
    number_array(w, "inferrable", row.inferrable);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.document();
}

std::string table11_json(const core::Study& study) {
  const core::Table11 table = core::build_table11(study);
  JsonWriter w;
  w.begin_object();
  doc_header(w);
  w.field("table", "11");
  w.field("title", "idle-period detected activity instances");
  number_array(w, "hours", table.hours);
  w.key("rows").begin_array();
  for (const core::Table11Row& row : table.rows) {
    w.begin_object();
    w.field("device", row.device_name);
    w.field("activity", row.activity);
    number_array(w, "instances", row.instances);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.document();
}

std::string pii_json(const core::Study& study) {
  JsonWriter w;
  w.begin_object();
  doc_header(w);
  w.field("section", "6.2");
  w.field("title", "plaintext PII exposures");
  w.key("findings").begin_array();
  for (const core::PiiReportRow& row : core::build_pii_report(study)) {
    w.begin_object();
    w.field("device", row.device_name);
    w.field("config", row.config_key);
    w.field("kind", row.kind);
    w.field("encoding", row.encoding);
    w.field("destination", row.destination_domain);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.document();
}

std::string lifecycle_json(const core::Study& study) {
  // Aggregate the per-run phase slices campaign-wide. Default campaigns
  // only carry the "normal" slice; lifecycle_reps > 0 adds the setup /
  // ota_update / deprovision phases.
  std::map<std::string, analysis::PartyCounts> parties;
  std::map<std::string, analysis::EncryptionBytes> enc;
  std::map<std::string,
           std::map<std::tuple<std::string, std::string, std::string>,
                    std::uint64_t>>
      pii;
  std::map<std::string, std::set<std::string>> pii_devices;
  for (const std::string& key : study.config_keys()) {
    for (const core::DeviceRunResult& r : study.results(key)) {
      for (const auto& [phase, counts] : r.parties_by_phase) {
        parties[phase].merge(counts);
      }
      for (const auto& [phase, bytes] : r.enc_by_phase) {
        enc[phase] += bytes;
      }
      for (const auto& [phase, findings] : r.pii_by_phase) {
        for (const analysis::PiiFinding& f : findings) {
          ++pii[phase][{f.kind, f.encoding, f.domain}];
          pii_devices[phase].insert(r.device->id);
        }
      }
    }
  }

  // Canonical phase order (absent phases skipped): the device's life,
  // not the map's alphabet.
  std::vector<std::string> phases;
  for (const char* name : {"setup", "normal", "ota_update", "deprovision"}) {
    if (parties.count(name) || enc.count(name) || pii.count(name)) {
      phases.emplace_back(name);
    }
  }

  JsonWriter w;
  w.begin_object();
  doc_header(w);
  w.field("section", "lifecycle");
  w.field("title", "per-lifecycle-phase destinations, encryption, PII");
  w.key("phases").begin_array();
  for (const std::string& phase : phases) {
    const analysis::PartyCounts& counts = parties[phase];
    const analysis::EncryptionBytes& bytes = enc[phase];
    w.begin_object();
    w.field("phase", phase);
    w.key("destinations").begin_object();
    w.field("support_parties", static_cast<std::uint64_t>(counts.support.size()));
    w.field("third_parties", static_cast<std::uint64_t>(counts.third.size()));
    w.key("support").begin_array();
    for (const std::string& org : counts.support) w.value(org);
    w.end_array();
    w.key("third").begin_array();
    for (const std::string& org : counts.third) w.value(org);
    w.end_array();
    w.end_object();
    w.key("encryption").begin_object();
    w.field("encrypted_bytes", bytes.encrypted);
    w.field("unencrypted_bytes", bytes.unencrypted);
    w.field("unknown_bytes", bytes.unknown);
    w.field("media_bytes", bytes.media);
    w.end_object();
    w.field("pii_exposing_devices",
            static_cast<std::uint64_t>(pii_devices[phase].size()));
    w.key("pii").begin_array();
    for (const auto& [finding, count] : pii[phase]) {
      const auto& [kind, encoding, domain] = finding;
      w.begin_object();
      w.field("kind", kind);
      w.field("encoding", encoding);
      w.field("destination", domain);
      w.field("findings", count);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.document();
}

std::string defense_report_json(const core::DefenseEvalResult& result) {
  JsonWriter w;
  w.begin_object();
  doc_header(w);
  w.field("section", "defense");
  w.field("title", "traffic-shaping defense evaluation");
  w.field("devices", static_cast<std::uint64_t>(result.devices));
  w.key("defenses").begin_array();
  for (const core::DefenseAggregate& agg : result.aggregates) {
    w.begin_object();
    w.field("defense", agg.defense);
    w.field("devices", static_cast<std::uint64_t>(agg.devices));
    w.field("mean_baseline_f1", agg.mean_baseline_f1);
    w.field("mean_defended_f1", agg.mean_defended_f1);
    w.field("mean_f1_delta", agg.mean_f1_delta);
    w.field("mean_overhead_pct", agg.mean_overhead_pct);
    w.end_object();
  }
  w.end_array();
  w.key("rows").begin_array();
  for (const core::DefenseRow& row : result.rows) {
    w.begin_object();
    w.field("defense", row.defense);
    w.field("device", row.device_id);
    w.field("baseline_f1", row.baseline_f1);
    w.field("defended_f1", row.defended_f1);
    w.field("f1_delta", row.f1_delta());
    w.field("baseline_bytes", row.baseline_bytes);
    w.field("defended_bytes", row.defended_bytes);
    w.field("padding_bytes", row.padding_bytes);
    w.field("overhead_pct", row.overhead_pct());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.document();
}

namespace {

std::string fixed2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return std::string(buf);
}

}  // namespace

std::string defense_report_text(const core::DefenseEvalResult& result) {
  std::string out = "Defense evaluation — " +
                    std::to_string(result.devices) + " devices\n\n";
  util::TextTable table({"defense", "devices", "baseline F1", "defended F1",
                         "F1 delta", "overhead %"});
  for (const core::DefenseAggregate& agg : result.aggregates) {
    table.add_row({agg.defense, std::to_string(agg.devices),
                   fixed2(agg.mean_baseline_f1), fixed2(agg.mean_defended_f1),
                   fixed2(agg.mean_f1_delta), fixed2(agg.mean_overhead_pct)});
  }
  out += table.render();
  return out;
}

namespace {

/// Bytes the run actually classified (media included) — the observable
/// side of the loss-adjusted accounting.
std::uint64_t observed_bytes(const core::DeviceRunResult& r) {
  return r.enc_total.encrypted + r.enc_total.unencrypted +
         r.enc_total.unknown + r.enc_total.media;
}

/// Bytes known to be missing from the observation: injected drops plus
/// reassembly-capped payload.
std::uint64_t lost_bytes(const core::DeviceRunResult& r) {
  return r.health.impaired_dropped_bytes + r.health.reassembly_dropped_bytes;
}

}  // namespace

std::string robustness_json(const core::Study& study) {
  JsonWriter w;
  w.begin_object();
  doc_header(w);
  w.field("section", "robustness");
  // "interrupted" = the campaign was cancelled (SIGINT/SIGTERM) and some
  // runs carry status "skipped"; every run that did execute is complete.
  w.field("status", study.interrupted() ? "interrupted" : "complete");
  w.field("impairment_profile", study.params().impairment.name);
  w.field("impairment_enabled", study.params().impairment.enabled());

  w.key("runs").begin_array();
  for (const std::string& key : study.config_keys()) {
    for (const core::DeviceRunResult& r : study.results(key)) {
      w.begin_object();
      w.field("config", key);
      w.field("device", r.device->id);
      w.field("status", core::run_status_name(r.status));
      if (!r.error.empty()) w.field("error", r.error);
      w.field("anomalies", r.health.total_anomalies());
      w.key("health").begin_object();
      for (const auto& [name, value] : faults::nonzero_counters(r.health)) {
        w.field(name, value);
      }
      w.end_object();
      w.end_object();
    }
  }
  w.end_array();

  w.key("quarantined").begin_array();
  for (const core::DeviceRunResult* r : study.quarantined()) {
    w.begin_object();
    w.field("config", r->config.key());
    w.field("device", r->device->id);
    w.field("error", r->error);
    w.end_object();
  }
  w.end_array();

  w.key("loss_adjusted_totals").begin_array();
  for (const std::string& key : study.config_keys()) {
    std::uint64_t observed = 0;
    std::uint64_t lost = 0;
    std::uint64_t quarantined_runs = 0;
    for (const core::DeviceRunResult& r : study.results(key)) {
      observed += observed_bytes(r);
      lost += lost_bytes(r);
      if (r.status == core::RunStatus::kQuarantined) ++quarantined_runs;
    }
    w.begin_object();
    w.field("config", key);
    w.field("observed_bytes", observed);
    w.field("known_lost_bytes", lost);
    w.field("loss_adjusted_bytes", observed + lost);
    w.field("quarantined_runs", quarantined_runs);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.document();
}

std::string robustness_text(const core::Study& study) {
  std::string out = "Robustness report — impairment profile: " +
                    study.params().impairment.name + "\n";
  out += study.interrupted()
             ? "status: interrupted (campaign cancelled; skipped runs "
               "below)\n\n"
             : "status: complete\n\n";

  util::TextTable runs({"config", "device", "status", "anomalies", "error"});
  std::size_t clean = 0;
  for (const std::string& key : study.config_keys()) {
    for (const core::DeviceRunResult& r : study.results(key)) {
      if (r.status == core::RunStatus::kClean) {
        ++clean;
        continue;  // thousands of all-zero rows help nobody
      }
      runs.add_row({key, r.device->id,
                    std::string(core::run_status_name(r.status)),
                    std::to_string(r.health.total_anomalies()), r.error});
    }
  }
  if (runs.row_count() > 0) {
    out += runs.render();
    out += "\n";
  }
  out += std::to_string(clean) + " clean runs, " +
         std::to_string(study.degraded().size()) + " degraded, " +
         std::to_string(study.quarantined().size()) + " quarantined\n\n";

  util::TextTable totals({"config", "observed bytes", "known lost",
                          "loss-adjusted"});
  for (const std::string& key : study.config_keys()) {
    std::uint64_t observed = 0;
    std::uint64_t lost = 0;
    for (const core::DeviceRunResult& r : study.results(key)) {
      observed += observed_bytes(r);
      lost += lost_bytes(r);
    }
    totals.add_row({key, std::to_string(observed), std::to_string(lost),
                    std::to_string(observed + lost)});
  }
  out += totals.render();
  return out;
}

std::string full_report_json(const core::Study& study) {
  JsonWriter w;
  w.begin_object();
  doc_header(w);
  w.field("paper",
          "Information Exposure From Consumer IoT Devices (IMC 2019)");
  w.field("experiments_run",
          static_cast<std::uint64_t>(study.experiments_run()));
  w.field("impairment_profile", study.params().impairment.name);
  w.field("quarantined_runs",
          static_cast<std::uint64_t>(study.quarantined().size()));
  w.field("degraded_runs",
          static_cast<std::uint64_t>(study.degraded().size()));
  w.key("configs").begin_array();
  for (const std::string& key : study.config_keys()) w.value(key);
  w.end_array();
  // Individual documents are embedded as pre-rendered strings to avoid a
  // generic JSON tree; consumers usually read the per-table files instead.
  w.field("tables_note",
          "see table2.json ... table11.json, figure2.json, pii.json");
  w.end_object();
  return w.document();
}

bool write_report_directory(const core::Study& study, const std::string& dir) {
  obs::Span report_span("report/write_directory");
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return false;

  // One span per document, covering the table build and the write, so
  // the profile attributes report time to the expensive builders rather
  // than to this function's argument list.
  const auto emit = [&study, &dir](const char* name,
                                   std::string (*build)(const core::Study&)) {
    obs::Span span("report/table", obs::observability_active()
                                       ? "\"file\":\"" + std::string(name) +
                                             "\""
                                       : std::string());
    const std::string content = build(study);
    std::ofstream out(fs::path(dir) / name, std::ios::binary);
    out << content << '\n';
    span.add_bytes_out(content.size());
    return out.good();
  };

  return emit("table2.json", table2_json) &&
         emit("table3.json", table3_json) &&
         emit("table4.json", table4_json) &&
         emit("figure2.json", figure2_json) &&
         emit("table5.json", table5_json) &&
         emit("table6.json", table6_json) &&
         emit("table7.json", table7_json) &&
         emit("table8.json", table8_json) &&
         emit("table9.json", table9_json) &&
         emit("table10.json", table10_json) &&
         emit("table11.json", table11_json) &&
         emit("pii.json", pii_json) &&
         emit("lifecycle.json", lifecycle_json) &&
         emit("robustness.json", robustness_json) &&
         emit("robustness.txt", robustness_text) &&
         emit("report.json", full_report_json);
}

}  // namespace iotx::report
