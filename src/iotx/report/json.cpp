#include "iotx/report/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace iotx::report {

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (expecting_value_) {
    expecting_value_ = false;
    return;  // value follows its key, no comma
  }
  if (!has_items_.empty() && has_items_.back()) out_ += ',';
  if (!has_items_.empty()) has_items_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  stack_.push_back('{');
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != '{') {
    throw std::logic_error("JsonWriter: unbalanced end_object");
  }
  stack_.pop_back();
  has_items_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  stack_.push_back('[');
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != '[') {
    throw std::logic_error("JsonWriter: unbalanced end_array");
  }
  stack_.pop_back();
  has_items_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back() != '{') {
    throw std::logic_error("JsonWriter: key outside object");
  }
  comma();
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  comma();
  out_ += '"';
  out_ += escape(text);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string_view(text));
}

JsonWriter& JsonWriter::value(double number) {
  comma();
  if (!std::isfinite(number)) {
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", number);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  comma();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  comma();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  comma();
  out_ += flag ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

std::string JsonWriter::document() const {
  if (!stack_.empty()) {
    throw std::logic_error("JsonWriter: unbalanced document");
  }
  return out_;
}

}  // namespace iotx::report
