#include "iotx/analysis/serialize.hpp"

#include "iotx/flow/traffic_unit.hpp"

namespace iotx::analysis {

void write_health(cache::BinWriter& w, const faults::CaptureHealth& h) {
  w.u64(h.pcap_truncated_tail);
  w.u64(h.snaplen_clipped_frames);
  w.u64(h.undecodable_frames);
  w.u64(h.dns_parse_failures);
  w.u64(h.tls_parse_failures);
  w.u64(h.http_parse_failures);
  w.u64(h.reassembly_dropped_segments);
  w.u64(h.reassembly_dropped_bytes);
  w.u64(h.reassembly_overlap_conflicts);
  w.u64(h.impaired_dropped_packets);
  w.u64(h.impaired_dropped_bytes);
  w.u64(h.impaired_duplicated_packets);
  w.u64(h.impaired_reordered_packets);
  w.u64(h.impaired_truncated_frames);
  w.u64(h.impaired_corrupted_frames);
  w.u64(h.impaired_dns_responses_dropped);
  w.u64(h.impaired_capture_cutoffs);
  w.u64(h.cache_corrupt_artifacts);
  w.u64(h.shaped_padded_frames);
  w.u64(h.shaped_padding_bytes);
  w.u64(h.shaped_delayed_packets);
  w.u64(h.shaped_batched_packets);
}

faults::CaptureHealth read_health(cache::BinReader& r) {
  faults::CaptureHealth h;
  h.pcap_truncated_tail = r.u64();
  h.snaplen_clipped_frames = r.u64();
  h.undecodable_frames = r.u64();
  h.dns_parse_failures = r.u64();
  h.tls_parse_failures = r.u64();
  h.http_parse_failures = r.u64();
  h.reassembly_dropped_segments = r.u64();
  h.reassembly_dropped_bytes = r.u64();
  h.reassembly_overlap_conflicts = r.u64();
  h.impaired_dropped_packets = r.u64();
  h.impaired_dropped_bytes = r.u64();
  h.impaired_duplicated_packets = r.u64();
  h.impaired_reordered_packets = r.u64();
  h.impaired_truncated_frames = r.u64();
  h.impaired_corrupted_frames = r.u64();
  h.impaired_dns_responses_dropped = r.u64();
  h.impaired_capture_cutoffs = r.u64();
  h.cache_corrupt_artifacts = r.u64();
  h.shaped_padded_frames = r.u64();
  h.shaped_padding_bytes = r.u64();
  h.shaped_delayed_packets = r.u64();
  h.shaped_batched_packets = r.u64();
  return h;
}

void write_destinations(cache::BinWriter& w,
                        const std::vector<DestinationRecord>& records) {
  w.u64(records.size());
  for (const DestinationRecord& rec : records) {
    w.u32(rec.address.value());
    w.str(rec.domain);
    w.str(rec.sld);
    w.str(rec.organization);
    w.u8(static_cast<std::uint8_t>(rec.party));
    w.str(rec.country);
    w.u64(rec.bytes);
    w.u64(rec.packets);
  }
}

std::vector<DestinationRecord> read_destinations(cache::BinReader& r) {
  std::size_t n = r.length(1);
  std::vector<DestinationRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    DestinationRecord rec;
    rec.address = net::Ipv4Address(r.u32());
    rec.domain = r.str();
    rec.sld = r.str();
    rec.organization = r.str();
    std::uint8_t party = r.u8();
    if (party > static_cast<std::uint8_t>(geo::PartyType::kThird))
      throw cache::CorruptArtifact("party type out of range");
    rec.party = static_cast<geo::PartyType>(party);
    rec.country = r.str();
    rec.bytes = r.u64();
    rec.packets = r.u64();
    records.push_back(std::move(rec));
  }
  return records;
}

namespace {

void write_string_set(cache::BinWriter& w, const std::set<std::string>& set) {
  w.u64(set.size());
  for (const std::string& s : set) w.str(s);
}

std::set<std::string> read_string_set(cache::BinReader& r) {
  std::size_t n = r.length(1);
  std::set<std::string> set;
  for (std::size_t i = 0; i < n; ++i) set.insert(r.str());
  return set;
}

}  // namespace

void write_parties_by_group(cache::BinWriter& w,
                            const std::map<std::string, PartyCounts>& groups) {
  w.u64(groups.size());
  for (const auto& [group, counts] : groups) {
    w.str(group);
    write_string_set(w, counts.support);
    write_string_set(w, counts.third);
  }
}

std::map<std::string, PartyCounts> read_parties_by_group(cache::BinReader& r) {
  std::size_t n = r.length(1);
  std::map<std::string, PartyCounts> groups;
  for (std::size_t i = 0; i < n; ++i) {
    std::string group = r.str();
    PartyCounts counts;
    counts.support = read_string_set(r);
    counts.third = read_string_set(r);
    groups.emplace(std::move(group), std::move(counts));
  }
  return groups;
}

void write_encryption(cache::BinWriter& w, const EncryptionBytes& enc) {
  w.u64(enc.encrypted);
  w.u64(enc.unencrypted);
  w.u64(enc.unknown);
  w.u64(enc.media);
}

EncryptionBytes read_encryption(cache::BinReader& r) {
  EncryptionBytes enc;
  enc.encrypted = r.u64();
  enc.unencrypted = r.u64();
  enc.unknown = r.u64();
  enc.media = r.u64();
  return enc;
}

void write_enc_by_group(cache::BinWriter& w,
                        const std::map<std::string, EncryptionBytes>& groups) {
  w.u64(groups.size());
  for (const auto& [group, enc] : groups) {
    w.str(group);
    write_encryption(w, enc);
  }
}

std::map<std::string, EncryptionBytes> read_enc_by_group(cache::BinReader& r) {
  std::size_t n = r.length(1);
  std::map<std::string, EncryptionBytes> groups;
  for (std::size_t i = 0; i < n; ++i) {
    std::string group = r.str();
    groups.emplace(std::move(group), read_encryption(r));
  }
  return groups;
}

void write_pii_findings(cache::BinWriter& w,
                        const std::vector<PiiFinding>& findings) {
  w.u64(findings.size());
  for (const PiiFinding& f : findings) {
    w.str(f.kind);
    w.str(f.encoding);
    w.str(f.domain);
    w.u32(f.destination.value());
  }
}

std::vector<PiiFinding> read_pii_findings(cache::BinReader& r) {
  std::size_t n = r.length(1);
  std::vector<PiiFinding> findings;
  findings.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PiiFinding f;
    f.kind = r.str();
    f.encoding = r.str();
    f.domain = r.str();
    f.destination = net::Ipv4Address(r.u32());
    findings.push_back(std::move(f));
  }
  return findings;
}

void write_labeled_meta(cache::BinWriter& w,
                        const std::vector<LabeledMeta>& examples) {
  w.u64(examples.size());
  for (const LabeledMeta& example : examples) {
    w.str(example.activity);
    flow::write_meta(w, example.meta);
    w.str(example.phase);
  }
}

std::vector<LabeledMeta> read_labeled_meta(cache::BinReader& r) {
  std::size_t n = r.length(1);
  std::vector<LabeledMeta> examples;
  examples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    LabeledMeta example;
    example.activity = r.str();
    example.meta = flow::read_meta(r);
    example.phase = r.str();
    examples.push_back(std::move(example));
  }
  return examples;
}

void write_network_config(cache::BinWriter& w,
                          const testbed::NetworkConfig& config) {
  w.u8(static_cast<std::uint8_t>(config.lab));
  w.boolean(config.vpn);
}

testbed::NetworkConfig read_network_config(cache::BinReader& r) {
  std::uint8_t lab = r.u8();
  if (lab > static_cast<std::uint8_t>(testbed::LabSite::kUk))
    throw cache::CorruptArtifact("lab site out of range");
  testbed::NetworkConfig config;
  config.lab = static_cast<testbed::LabSite>(lab);
  config.vpn = r.boolean();
  return config;
}

void write_activity_model(cache::BinWriter& w, const ActivityModel& model) {
  w.str(model.device_id);
  write_network_config(w, model.config);
  model.dataset.save(w);
  model.forest.save(w);
  w.u64(model.validation.class_f1.size());
  for (double f1 : model.validation.class_f1) w.f64(f1);
  w.f64(model.validation.macro_f1);
  w.f64(model.validation.accuracy);
  w.u64(model.validation.repetitions);
}

ActivityModel read_activity_model(cache::BinReader& r) {
  ActivityModel model;
  model.device_id = r.str();
  model.config = read_network_config(r);
  model.dataset = ml::Dataset::load(r);
  model.forest = ml::RandomForest::load(r);
  std::size_t n_f1 = r.length(8);
  model.validation.class_f1.reserve(n_f1);
  for (std::size_t i = 0; i < n_f1; ++i) model.validation.class_f1.push_back(r.f64());
  model.validation.macro_f1 = r.f64();
  model.validation.accuracy = r.f64();
  model.validation.repetitions = static_cast<std::size_t>(r.u64());
  return model;
}

void write_idle_detections(cache::BinWriter& w, const IdleDetections& idle) {
  w.str(idle.device_id);
  w.u64(idle.instances.size());
  for (const auto& [activity, count] : idle.instances) {
    w.str(activity);
    w.i64(count);
  }
  w.u64(idle.units_total);
  w.u64(idle.units_classified);
}

IdleDetections read_idle_detections(cache::BinReader& r) {
  IdleDetections idle;
  idle.device_id = r.str();
  std::size_t n = r.length(1);
  for (std::size_t i = 0; i < n; ++i) {
    std::string activity = r.str();
    idle.instances.emplace(std::move(activity), static_cast<int>(r.i64()));
  }
  idle.units_total = static_cast<std::size_t>(r.u64());
  idle.units_classified = static_cast<std::size_t>(r.u64());
  return idle;
}

}  // namespace iotx::analysis
