#include "iotx/analysis/mud.hpp"

#include <map>

#include "iotx/geo/sld.hpp"

namespace iotx::analysis {

namespace {

/// Canonical ACL entry for a flow: SLD (via DNS/SNI/Host) or IP literal.
std::optional<MudAclEntry> entry_for_flow(const flow::Flow& f,
                                          const flow::DnsCache& dns) {
  net::Ipv4Address remote;
  std::uint16_t port = 0;
  if (f.responder.is_global_unicast()) {
    remote = f.responder;
    port = f.responder_port;
  } else if (f.initiator.is_global_unicast()) {
    remote = f.initiator;
    port = f.initiator_port;
  } else {
    return std::nullopt;  // LAN traffic is implicitly allowed
  }

  MudAclEntry entry;
  entry.port = port;
  entry.protocol = f.key.protocol;
  if (const auto domain = dns.lookup(remote)) {
    entry.destination = geo::second_level_domain(*domain);
  } else if (!f.sni.empty()) {
    entry.destination = geo::second_level_domain(f.sni);
  } else if (!f.http_host.empty()) {
    entry.destination = geo::second_level_domain(f.http_host);
  } else {
    entry.destination = remote.to_string();
  }
  return entry;
}

}  // namespace

bool MudProfile::permits(const MudAclEntry& entry) const {
  return allowed.contains(entry);
}

std::string MudProfile::to_json() const {
  std::string out = "{\"ietf-mud:mud\":{\"systeminfo\":\"" + device_id +
                    "\"},\"acl\":[";
  bool first = true;
  for (const MudAclEntry& e : allowed) {
    if (!first) out += ',';
    first = false;
    out += "{\"dst\":\"" + e.destination +
           "\",\"port\":" + std::to_string(e.port) +
           ",\"protocol\":" + std::to_string(e.protocol) + "}";
  }
  out += "]}";
  return out;
}

MudProfile learn_mud_profile(
    const std::string& device_id,
    const std::vector<std::vector<net::Packet>>& captures) {
  MudProfile profile;
  profile.device_id = device_id;
  for (const std::vector<net::Packet>& capture : captures) {
    // DNS cache and flow table share one decode pass per capture.
    flow::DnsCache dns;
    flow::FlowTable table;
    flow::IngestPipeline pipeline;
    pipeline.add_sink(dns);
    pipeline.add_sink(table);
    pipeline.ingest_all(capture);
    pipeline.finish();
    for (const flow::Flow& f : table.flows()) {
      if (const auto entry = entry_for_flow(f, dns)) {
        profile.allowed.insert(*entry);
      }
    }
  }
  return profile;
}

std::vector<MudViolation> check_against_profile(
    const MudProfile& profile, const std::vector<net::Packet>& capture) {
  flow::DnsCache dns;
  flow::FlowTable table;
  flow::IngestPipeline pipeline;
  pipeline.add_sink(dns);
  pipeline.add_sink(table);
  pipeline.ingest_all(capture);
  pipeline.finish();
  std::map<MudAclEntry, MudViolation> violations;
  for (const flow::Flow& f : table.flows()) {
    const auto entry = entry_for_flow(f, dns);
    if (!entry || profile.permits(*entry)) continue;
    MudViolation& v = violations[*entry];
    v.observed = *entry;
    v.packets += f.total_packets();
    v.bytes += f.total_bytes();
  }
  std::vector<MudViolation> out;
  out.reserve(violations.size());
  for (auto& [entry, v] : violations) out.push_back(std::move(v));
  return out;
}

}  // namespace iotx::analysis
