#include "iotx/analysis/encryption.hpp"

#include "iotx/util/entropy.hpp"

namespace iotx::analysis {

std::string_view encryption_class_name(EncryptionClass c) noexcept {
  switch (c) {
    case EncryptionClass::kEncrypted: return "encrypted";
    case EncryptionClass::kUnencrypted: return "unencrypted";
    case EncryptionClass::kUnknown: return "unknown";
    case EncryptionClass::kMedia: return "media";
  }
  return "?";
}

namespace {

bool is_plaintext_protocol(proto::ProtocolId id) noexcept {
  switch (id) {
    case proto::ProtocolId::kDns:
    case proto::ProtocolId::kMdns:
    case proto::ProtocolId::kSsdp:
    case proto::ProtocolId::kDhcp:
    case proto::ProtocolId::kNtp:
    case proto::ProtocolId::kHttp:
    case proto::ProtocolId::kRtsp:
      return true;
    default:
      return false;
  }
}

}  // namespace

FlowEncryption classify_flow(const flow::Flow& flow) {
  FlowEncryption result;

  // Step 1: protocol analysis.
  if (flow.protocol == proto::ProtocolId::kTls ||
      flow.protocol == proto::ProtocolId::kQuic) {
    result.cls = EncryptionClass::kEncrypted;
    return result;
  }
  if (is_plaintext_protocol(flow.protocol)) {
    result.cls = EncryptionClass::kUnencrypted;
    return result;
  }

  // Step 2: encoding magic bytes. The paper marks traffic carrying
  // recognized encodings (media or compression) as *unencrypted* — this is
  // what makes unencrypted-streaming cameras the biggest plaintext
  // exposers (Table 6/7).
  if (flow.encoding != proto::ContentEncoding::kNone) {
    result.cls = EncryptionClass::kUnencrypted;
    return result;
  }

  // Step 3: entropy of the assembled payload sample.
  util::EntropyAccumulator acc;
  acc.add(flow.payload_sample_up);
  acc.add(flow.payload_sample_down);
  if (acc.count() == 0) {
    result.cls = EncryptionClass::kUnknown;
    return result;
  }
  result.entropy = acc.value();
  result.entropy_based = true;

  // Media that carries no recognizable encoding has ciphertext-level
  // entropy; the paper identifies it from traffic patterns (sustained
  // one-sided bulk of near-MTU packets) and excludes it from the
  // encryption statistics (§5.1, last paragraph).
  if (result.entropy > 0.78 && flow.total_packets() > 80) {
    const auto mean_size = [](const flow::DirectionStats& d) {
      return d.packets == 0 ? 0.0
                            : static_cast<double>(d.bytes) /
                                  static_cast<double>(d.packets);
    };
    const double up = mean_size(flow.up);
    const double down = mean_size(flow.down);
    const bool bulk_one_sided =
        (up > 900.0 && flow.up.packets > 4 * flow.down.packets) ||
        (down > 900.0 && flow.down.packets > 4 * flow.up.packets);
    if (bulk_one_sided) {
      result.cls = EncryptionClass::kMedia;
      return result;
    }
  }

  if (result.entropy > kEncryptedEntropyThreshold) {
    result.cls = EncryptionClass::kEncrypted;
  } else if (result.entropy < kUnencryptedEntropyThreshold) {
    result.cls = EncryptionClass::kUnencrypted;
  } else {
    result.cls = EncryptionClass::kUnknown;
  }
  return result;
}

double EncryptionBytes::pct_encrypted() const noexcept {
  const auto total = classified_total();
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(encrypted) /
                                static_cast<double>(total);
}

double EncryptionBytes::pct_unencrypted() const noexcept {
  const auto total = classified_total();
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(unencrypted) /
                                static_cast<double>(total);
}

double EncryptionBytes::pct_unknown() const noexcept {
  const auto total = classified_total();
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(unknown) /
                                static_cast<double>(total);
}

EncryptionBytes& EncryptionBytes::operator+=(
    const EncryptionBytes& other) noexcept {
  encrypted += other.encrypted;
  unencrypted += other.unencrypted;
  unknown += other.unknown;
  media += other.media;
  return *this;
}

EncryptionBytes account_flows(const std::vector<flow::Flow>& flows) {
  EncryptionBytes bytes;
  for (const flow::Flow& flow : flows) {
    const std::uint64_t payload = flow.total_payload_bytes();
    if (payload == 0) continue;
    switch (classify_flow(flow).cls) {
      case EncryptionClass::kEncrypted: bytes.encrypted += payload; break;
      case EncryptionClass::kUnencrypted: bytes.unencrypted += payload; break;
      case EncryptionClass::kUnknown: bytes.unknown += payload; break;
      case EncryptionClass::kMedia: bytes.media += payload; break;
    }
  }
  return bytes;
}

}  // namespace iotx::analysis
