#include "iotx/analysis/inference.hpp"

#include <algorithm>
#include <utility>

#include "iotx/obs/trace.hpp"
#include "iotx/testbed/catalog.hpp"

namespace iotx::analysis {

std::optional<double> ActivityModel::activity_f1(
    std::string_view activity) const {
  const auto id = dataset.class_id(activity);
  if (!id) return std::nullopt;
  return validation.class_f1[static_cast<std::size_t>(*id)];
}

double ActivityModel::device_f1() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t c = 0; c < dataset.class_count(); ++c) {
    if (dataset.class_name(static_cast<int>(c)) == kBackgroundLabel) continue;
    sum += validation.class_f1[c];
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

bool ActivityModelView::ready() const {
  return model_.forest.fitted() && !model_.dataset.empty();
}

std::size_t ActivityModelView::class_count() const {
  return model_.dataset.class_count();
}

std::string_view ActivityModelView::class_name(std::size_t cls) const {
  return model_.dataset.class_name(static_cast<int>(cls));
}

double ActivityModelView::class_f1(std::size_t cls) const {
  return model_.validation.class_f1[cls];
}

std::vector<double> ActivityModelView::predict_proba(
    std::span<const double> features) const {
  return model_.forest.predict_proba(features);
}

std::optional<std::string> ActivityModel::predict(
    const flow::TrafficUnit& unit, double min_f1, double min_vote) const {
  const ActivityModelView view(*this);
  const std::vector<double> features = FeatureAccumulator::extract(unit);
  const auto cls = classify_unit(view, features, min_f1, min_vote);
  if (!cls) return std::nullopt;
  return dataset.class_name(static_cast<int>(*cls));
}

ml::Dataset build_dataset(const std::vector<LabeledMeta>& examples) {
  obs::Span span("ml/build_dataset");
  ml::Dataset data;
  for (const LabeledMeta& example : examples) {
    if (example.activity.empty() || example.meta.size() < 4) continue;
    data.add(FeatureAccumulator::extract(example.meta), example.activity);
  }
  return data;
}

ml::Dataset build_dataset(
    const testbed::DeviceSpec& device,
    const std::vector<testbed::LabeledCapture>& captures) {
  std::vector<LabeledMeta> examples;
  const net::MacAddress mac_us = testbed::device_mac(device, true);
  const net::MacAddress mac_uk = testbed::device_mac(device, false);
  for (const testbed::LabeledCapture& capture : captures) {
    if (capture.spec.type == testbed::ExperimentType::kIdle ||
        capture.spec.activity.empty()) {
      continue;
    }
    const net::MacAddress mac =
        capture.spec.config.lab == testbed::LabSite::kUs ? mac_us : mac_uk;
    flow::MetaCollector collector(mac);
    flow::IngestPipeline pipeline;
    pipeline.add_sink(collector);
    pipeline.ingest_all(capture.packets);
    pipeline.finish();
    examples.push_back(LabeledMeta{capture.spec.activity, collector.take()});
  }
  return build_dataset(examples);
}

namespace {

/// Shared tail of both train_activity_model overloads: CV + final fit.
ActivityModel finish_model(const testbed::DeviceSpec& device,
                           const testbed::NetworkConfig& config,
                           ml::Dataset dataset, const InferenceParams& params,
                           util::TaskPool* pool) {
  ActivityModel model;
  model.device_id = device.id;
  model.config = config;
  model.dataset = std::move(dataset);
  if (model.dataset.empty()) return model;

  const std::string seed_key = "cv/" + config.key() + "/" + device.id;
  {
    obs::Span span("ml/cv");
    model.validation =
        ml::cross_validate(model.dataset, params.validation, seed_key, pool);
  }

  obs::Span span("ml/forest_fit");
  util::Prng prng("fit/" + config.key() + "/" + device.id);
  model.forest.fit(model.dataset, params.validation.forest, prng, pool);
  return model;
}

}  // namespace

ActivityModel train_activity_model(
    const testbed::DeviceSpec& device, const testbed::NetworkConfig& config,
    const std::vector<LabeledMeta>& examples, const InferenceParams& params,
    util::TaskPool* pool) {
  return finish_model(device, config, build_dataset(examples), params, pool);
}

ActivityModel train_activity_model(
    const testbed::DeviceSpec& device, const testbed::NetworkConfig& config,
    const std::vector<testbed::LabeledCapture>& captures,
    const InferenceParams& params, util::TaskPool* pool) {
  return finish_model(device, config, build_dataset(device, captures), params,
                      pool);
}

}  // namespace iotx::analysis
