// Feature extraction for activity inference (paper §6.1): "timing
// statistics of the traffic with respect to packet sizes and inter-arrival
// times ... min, max, mean, deciles of the distribution, skewness, and
// kurtosis", deliberately avoiding text/hostname features that vary across
// regions.
#pragma once

#include <vector>

#include "iotx/flow/traffic_unit.hpp"
#include "iotx/util/stats.hpp"

namespace iotx::analysis {

/// Dimensionality of the feature vector.
inline constexpr std::size_t kFeatureDimension = 90;

/// Incremental §6.1 feature extraction: packets stream in one at a time
/// (e.g. as flow::TrafficUnitSegmenter emits them) and the 90-dimensional
/// vector — {sizes, inter-arrival times} x {all, outbound, inbound} x 15
/// summary statistics (min, max, mean, stddev, skewness, kurtosis,
/// deciles 10..90) — comes out at the end. The single feature
/// implementation in the tree: the batch Study path and the live serve
/// detector both drive this accumulator.
///
/// Built on util::RunningMoments in its exact-small-sample mode
/// (RunningMoments::kExactSummaryVersion), so the emitted vector is
/// bit-identical to the historical two-pass extraction the golden tables
/// were captured under. Inter-arrival times are consecutive timestamp
/// differences *within* each direction class.
class FeatureAccumulator {
 public:
  FeatureAccumulator();

  /// Packets must arrive in timestamp order (MetaCollector sorts).
  void add(const flow::PacketMeta& packet);

  std::size_t packets() const noexcept { return packets_; }

  /// Appends the 90-dim feature vector for the packets seen so far, then
  /// resets the accumulator for the next traffic unit.
  void finish_into(std::vector<double>& out);
  /// Convenience form of finish_into.
  std::vector<double> finish();

  /// Back to the empty state without emitting.
  void reset();

  /// Batch drivers (one shot over a complete unit / meta sequence) —
  /// thin loops over add()/finish(), sharing the streaming implementation.
  static std::vector<double> extract(const std::vector<flow::PacketMeta>& meta);
  static std::vector<double> extract(const flow::TrafficUnit& unit);

 private:
  // Directional lane: size moments + IAT moments + the previous
  // timestamp in this lane (IATs are per-direction-class gaps).
  struct Lane {
    util::RunningMoments sizes;
    util::RunningMoments iats;
    bool has_last = false;
    double last_timestamp = 0.0;

    void add(const flow::PacketMeta& packet);
    void reset();
  };

  Lane all_;
  Lane outbound_;
  Lane inbound_;
  std::size_t packets_ = 0;
};

}  // namespace iotx::analysis
