// Feature extraction for activity inference (paper §6.1): "timing
// statistics of the traffic with respect to packet sizes and inter-arrival
// times ... min, max, mean, deciles of the distribution, skewness, and
// kurtosis", deliberately avoiding text/hostname features that vary across
// regions.
#pragma once

#include <vector>

#include "iotx/flow/traffic_unit.hpp"

namespace iotx::analysis {

/// 90-dimensional vector: {sizes, inter-arrival times} x {all, outbound,
/// inbound} x 15 summary statistics (min, max, mean, stddev, skewness,
/// kurtosis, deciles 10..90).
std::vector<double> extract_features(const std::vector<flow::PacketMeta>& meta);

/// Convenience overload for a segmented traffic unit.
std::vector<double> extract_features(const flow::TrafficUnit& unit);

/// Dimensionality of the feature vector.
inline constexpr std::size_t kFeatureDimension = 90;

}  // namespace iotx::analysis
