#include "iotx/analysis/destinations.hpp"

#include <algorithm>
#include <unordered_map>

namespace iotx::analysis {

std::vector<DestinationRecord> attribute_destinations(
    const std::vector<flow::Flow>& flows, const flow::DnsCache& dns,
    const AttributionContext& ctx,
    const std::vector<std::string>& first_party_names) {
  std::unordered_map<net::Ipv4Address, DestinationRecord> by_ip;

  for (const flow::Flow& flow : flows) {
    // The remote endpoint is the non-private side; LAN-internal traffic is
    // out of scope (paper footnote 1).
    net::Ipv4Address remote;
    if (flow.responder.is_global_unicast()) {
      remote = flow.responder;
    } else if (flow.initiator.is_global_unicast()) {
      remote = flow.initiator;
    } else {
      continue;  // LAN, multicast or broadcast traffic is out of scope
    }

    DestinationRecord& rec = by_ip[remote];
    rec.address = remote;
    rec.bytes += flow.total_bytes();
    rec.packets += flow.total_packets();

    // Domain: DNS answer first, then SNI, then HTTP Host (paper §4.1).
    if (rec.domain.empty() || rec.domain == remote.to_string()) {
      if (const auto resolved = dns.lookup(remote)) {
        rec.domain = *resolved;
      } else if (!flow.sni.empty()) {
        rec.domain = flow.sni;
      } else if (!flow.http_host.empty()) {
        rec.domain = flow.http_host;
      } else if (rec.domain.empty()) {
        rec.domain = remote.to_string();
      }
    }
  }

  std::vector<DestinationRecord> records;
  records.reserve(by_ip.size());
  for (auto& [addr, rec] : by_ip) {
    const bool has_domain = rec.domain != addr.to_string();
    rec.sld = geo::second_level_domain(rec.domain);
    if (has_domain) {
      rec.organization = ctx.orgs->organization_for_domain(rec.sld);
    } else if (const auto owner = ctx.orgs->organization_for_ip(addr)) {
      // No SLD: fall back to the registry owner of the address.
      rec.organization = *owner;
    } else {
      rec.organization = "Unknown";
    }
    rec.party = ctx.orgs->classify(rec.organization, first_party_names);

    const double rtt = ctx.rtt_ms ? ctx.rtt_ms(addr) : 0.0;
    const auto registry =
        ctx.registry_country ? ctx.registry_country(addr) : std::nullopt;
    const geo::PassportResolver passport(*ctx.geo);
    rec.country = passport.resolve(addr, ctx.vantage, rtt, registry);
    records.push_back(std::move(rec));
  }

  std::sort(records.begin(), records.end(),
            [](const DestinationRecord& a, const DestinationRecord& b) {
              return a.bytes > b.bytes;
            });
  return records;
}

void DestinationAccumulator::add(const DestinationRecord& rec) {
  const auto [it, inserted] = by_address_.try_emplace(rec.address.value(), rec);
  if (inserted) return;
  DestinationRecord& m = it->second;
  m.bytes += rec.bytes;
  m.packets += rec.packets;
  // A record whose domain is the bare IP literal was never resolved; an
  // attributed name from any other capture always wins over it.
  const bool merged_named = m.domain != m.address.to_string();
  const bool rec_named = rec.domain != rec.address.to_string();
  if (!merged_named && rec_named) {
    m.domain = rec.domain;
    m.sld = rec.sld;
    m.organization = rec.organization;
    m.party = rec.party;
    m.country = rec.country;
  }
}

void DestinationAccumulator::add_all(
    const std::vector<DestinationRecord>& records) {
  for (const DestinationRecord& rec : records) add(rec);
}

std::vector<DestinationRecord> DestinationAccumulator::merged() const {
  std::vector<DestinationRecord> out;
  out.reserve(by_address_.size());
  for (const auto& [addr, rec] : by_address_) out.push_back(rec);
  return out;
}

void PartyCounts::merge(const PartyCounts& other) {
  support.insert(other.support.begin(), other.support.end());
  third.insert(other.third.begin(), other.third.end());
}

PartyCounts count_non_first_parties(
    const std::vector<DestinationRecord>& records) {
  PartyCounts counts;
  for (const DestinationRecord& rec : records) {
    switch (rec.party) {
      case geo::PartyType::kSupport: counts.support.insert(rec.domain); break;
      case geo::PartyType::kThird: counts.third.insert(rec.domain); break;
      case geo::PartyType::kFirst: break;
    }
  }
  return counts;
}

void SankeyBuilder::add(const std::string& lab, const std::string& category,
                        const std::vector<DestinationRecord>& records) {
  for (const DestinationRecord& rec : records) {
    const std::string region(
        geo::region_name(geo::region_for_country(rec.country)));
    edges_[{lab, category, region}] += rec.bytes;
  }
}

std::vector<SankeyEdge> SankeyBuilder::edges() const {
  std::vector<SankeyEdge> out;
  out.reserve(edges_.size());
  for (const auto& [key, bytes] : edges_) {
    out.push_back(SankeyEdge{std::get<0>(key), std::get<1>(key),
                             std::get<2>(key), bytes});
  }
  std::sort(out.begin(), out.end(), [](const SankeyEdge& a,
                                       const SankeyEdge& b) {
    if (a.lab != b.lab) return a.lab < b.lab;
    return a.bytes > b.bytes;
  });
  return out;
}

std::uint64_t SankeyBuilder::lab_region_bytes(const std::string& lab,
                                              const std::string& region) const {
  std::uint64_t total = 0;
  for (const auto& [key, bytes] : edges_) {
    if (std::get<0>(key) == lab && std::get<2>(key) == region) total += bytes;
  }
  return total;
}

}  // namespace iotx::analysis
