#include "iotx/analysis/unexpected.hpp"

#include <cmath>

namespace iotx::analysis {

namespace {

std::vector<flow::PacketMeta> meta_of(const testbed::DeviceSpec& device,
                                      testbed::LabSite lab,
                                      const std::vector<net::Packet>& pkts) {
  const net::MacAddress mac =
      testbed::device_mac(device, lab == testbed::LabSite::kUs);
  flow::MetaCollector collector(mac);
  flow::IngestPipeline pipeline;
  pipeline.add_sink(collector);
  pipeline.ingest_all(pkts);
  pipeline.finish();
  return collector.take();
}

}  // namespace

StreamingDetector::StreamingDetector(const UnitModel& model,
                                     const DetectorParams& params,
                                     Callback on_detection)
    : model_(model), params_(params), on_detection_(std::move(on_detection)) {}

void StreamingDetector::on_unit_packet(const flow::PacketMeta& packet) {
  features_.add(packet);
}

void StreamingDetector::on_unit_end(double unit_start,
                                    std::size_t unit_packets) {
  // finish() always resets the accumulator, so undersized units leave no
  // state behind for the next one.
  const std::vector<double> features = features_.finish();
  if (unit_packets < params_.min_unit_packets) return;
  ++units_total_;
  const auto cls = classify_unit(model_, features, params_.min_model_f1,
                                 params_.min_vote);
  if (!cls) return;
  ++units_classified_;
  if (on_detection_) {
    on_detection_(Detection{std::string(model_.class_name(*cls)), unit_start,
                            unit_packets});
  }
}

IdleDetections detect_activity(const testbed::DeviceSpec& device,
                               const std::vector<flow::PacketMeta>& meta,
                               const ActivityModel& model,
                               const DetectorParams& params) {
  IdleDetections result;
  result.device_id = device.id;
  // Only high-confidence device models participate at all (§7.1).
  if (model.device_f1() <= 0.0) return result;

  const ActivityModelView view(model);
  StreamingDetector detector(view, params, [&](const Detection& d) {
    ++result.instances[d.activity];
  });
  flow::TrafficUnitSegmenter segmenter(detector, params.unit_gap_seconds);
  for (const flow::PacketMeta& p : meta) segmenter.add(p);
  segmenter.finish();
  result.units_total = detector.units_total();
  result.units_classified = detector.units_classified();
  return result;
}

IdleDetections detect_activity(const testbed::DeviceSpec& device,
                               testbed::LabSite lab,
                               const std::vector<net::Packet>& capture,
                               const ActivityModel& model,
                               const DetectorParams& params) {
  return detect_activity(device, meta_of(device, lab, capture), model,
                         params);
}

std::vector<UncontrolledFinding> audit_uncontrolled(
    const testbed::DeviceSpec& device,
    const std::vector<flow::PacketMeta>& meta, const ActivityModel& model,
    const std::vector<testbed::GroundTruthEvent>& events,
    const DetectorParams& params, double window_s) {
  std::map<std::string, UncontrolledFinding> by_activity;

  const ActivityModelView view(model);
  StreamingDetector detector(view, params, [&](const Detection& d) {
    UncontrolledFinding& finding = by_activity[d.activity];
    finding.device_id = device.id;
    finding.activity = d.activity;
    ++finding.detections;

    // Match against the ground truth.
    bool matched = false;
    bool intended = false;
    for (const testbed::GroundTruthEvent& ev : events) {
      if (ev.device_id != device.id || ev.activity != d.activity) continue;
      if (std::fabs(ev.timestamp - d.unit_start) <= window_s) {
        matched = true;
        intended = ev.user_intended;
        break;
      }
    }
    if (!matched) {
      ++finding.unmatched;
    } else if (intended) {
      ++finding.confirmed_intended;
    } else {
      ++finding.confirmed_unintended;
    }
  });
  flow::TrafficUnitSegmenter segmenter(detector, params.unit_gap_seconds);
  for (const flow::PacketMeta& p : meta) segmenter.add(p);
  segmenter.finish();

  std::vector<UncontrolledFinding> findings;
  findings.reserve(by_activity.size());
  for (auto& [name, finding] : by_activity) {
    findings.push_back(std::move(finding));
  }
  return findings;
}

std::vector<UncontrolledFinding> audit_uncontrolled(
    const testbed::DeviceSpec& device,
    const std::vector<net::Packet>& capture, const ActivityModel& model,
    const std::vector<testbed::GroundTruthEvent>& events,
    const DetectorParams& params, double window_s) {
  return audit_uncontrolled(device,
                            meta_of(device, testbed::LabSite::kUs, capture),
                            model, events, params, window_s);
}

}  // namespace iotx::analysis
