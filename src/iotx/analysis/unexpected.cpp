#include "iotx/analysis/unexpected.hpp"

#include <cmath>

namespace iotx::analysis {

namespace {

std::vector<flow::PacketMeta> meta_of(const testbed::DeviceSpec& device,
                                      testbed::LabSite lab,
                                      const std::vector<net::Packet>& pkts) {
  const net::MacAddress mac =
      testbed::device_mac(device, lab == testbed::LabSite::kUs);
  flow::MetaCollector collector(mac);
  flow::IngestPipeline pipeline;
  pipeline.add_sink(collector);
  pipeline.ingest_all(pkts);
  pipeline.finish();
  return collector.take();
}

}  // namespace

IdleDetections detect_activity(const testbed::DeviceSpec& device,
                               const std::vector<flow::PacketMeta>& meta,
                               const ActivityModel& model,
                               const DetectorParams& params) {
  IdleDetections result;
  result.device_id = device.id;
  // Only high-confidence device models participate at all (§7.1).
  if (model.device_f1() <= 0.0) return result;

  for (const flow::TrafficUnit& unit :
       flow::segment_traffic(meta, params.unit_gap_seconds)) {
    if (unit.packets.size() < params.min_unit_packets) continue;
    ++result.units_total;
    const auto activity =
        model.predict(unit, params.min_model_f1, params.min_vote);
    if (!activity) continue;
    ++result.units_classified;
    ++result.instances[*activity];
  }
  return result;
}

IdleDetections detect_activity(const testbed::DeviceSpec& device,
                               testbed::LabSite lab,
                               const std::vector<net::Packet>& capture,
                               const ActivityModel& model,
                               const DetectorParams& params) {
  return detect_activity(device, meta_of(device, lab, capture), model,
                         params);
}

std::vector<UncontrolledFinding> audit_uncontrolled(
    const testbed::DeviceSpec& device,
    const std::vector<flow::PacketMeta>& meta, const ActivityModel& model,
    const std::vector<testbed::GroundTruthEvent>& events,
    const DetectorParams& params, double window_s) {
  std::map<std::string, UncontrolledFinding> by_activity;

  for (const flow::TrafficUnit& unit :
       flow::segment_traffic(meta, params.unit_gap_seconds)) {
    if (unit.packets.size() < params.min_unit_packets) continue;
    const auto activity =
        model.predict(unit, params.min_model_f1, params.min_vote);
    if (!activity) continue;

    UncontrolledFinding& finding = by_activity[*activity];
    finding.device_id = device.id;
    finding.activity = *activity;
    ++finding.detections;

    // Match against the ground truth.
    const double at = unit.start();
    bool matched = false;
    bool intended = false;
    for (const testbed::GroundTruthEvent& ev : events) {
      if (ev.device_id != device.id || ev.activity != *activity) continue;
      if (std::fabs(ev.timestamp - at) <= window_s) {
        matched = true;
        intended = ev.user_intended;
        break;
      }
    }
    if (!matched) {
      ++finding.unmatched;
    } else if (intended) {
      ++finding.confirmed_intended;
    } else {
      ++finding.confirmed_unintended;
    }
  }

  std::vector<UncontrolledFinding> findings;
  findings.reserve(by_activity.size());
  for (auto& [name, finding] : by_activity) {
    findings.push_back(std::move(finding));
  }
  return findings;
}

std::vector<UncontrolledFinding> audit_uncontrolled(
    const testbed::DeviceSpec& device,
    const std::vector<net::Packet>& capture, const ActivityModel& model,
    const std::vector<testbed::GroundTruthEvent>& events,
    const DetectorParams& params, double window_s) {
  return audit_uncontrolled(device,
                            meta_of(device, testbed::LabSite::kUs, capture),
                            model, events, params, window_s);
}

}  // namespace iotx::analysis
