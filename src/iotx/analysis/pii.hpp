// Plaintext PII scanning (paper §6.1/§6.2): "we simply search for any PII
// known (in various encodings) in each device's network traffic" — device
// identifiers and registration-time personal information, in plaintext,
// hex, base64 and URL encodings.
#pragma once

#include <string>
#include <vector>

#include "iotx/flow/flow_table.hpp"

namespace iotx::analysis {

/// A PII item to search for.
struct PiiItem {
  std::string kind;   ///< "mac", "email", "owner_name", ...
  std::string value;  ///< the known plaintext value
};

/// One discovered exposure.
struct PiiFinding {
  std::string kind;
  std::string encoding;  ///< "plain", "hex", "base64", "url"
  std::string domain;    ///< flow SNI/Host when known, else responder IP
  net::Ipv4Address destination;
};

class PiiScanner {
 public:
  explicit PiiScanner(std::vector<PiiItem> items) : items_(std::move(items)) {}

  /// Scans the readable payload of flows that are not protocol-encrypted
  /// (an eavesdropper can only search what is in the clear). Findings are
  /// deduplicated by (kind, encoding, destination).
  std::vector<PiiFinding> scan(const std::vector<flow::Flow>& flows) const;

  const std::vector<PiiItem>& items() const noexcept { return items_; }

 private:
  std::vector<PiiFinding> scan_payload(const flow::Flow& flow,
                                       std::string_view payload) const;
  std::vector<PiiItem> items_;
};

}  // namespace iotx::analysis
