#include "iotx/analysis/features.hpp"

namespace iotx::analysis {

void FeatureAccumulator::Lane::add(const flow::PacketMeta& packet) {
  sizes.add(packet.size);
  if (has_last) iats.add(packet.timestamp - last_timestamp);
  last_timestamp = packet.timestamp;
  has_last = true;
}

void FeatureAccumulator::Lane::reset() {
  sizes.reset();
  iats.reset();
  has_last = false;
  last_timestamp = 0.0;
}

FeatureAccumulator::FeatureAccumulator() = default;

void FeatureAccumulator::add(const flow::PacketMeta& packet) {
  all_.add(packet);
  (packet.outbound ? outbound_ : inbound_).add(packet);
  ++packets_;
}

void FeatureAccumulator::finish_into(std::vector<double>& out) {
  out.reserve(out.size() + kFeatureDimension);
  all_.sizes.summary().append_features(out);
  outbound_.sizes.summary().append_features(out);
  inbound_.sizes.summary().append_features(out);
  all_.iats.summary().append_features(out);
  outbound_.iats.summary().append_features(out);
  inbound_.iats.summary().append_features(out);
  reset();
}

std::vector<double> FeatureAccumulator::finish() {
  std::vector<double> features;
  finish_into(features);
  return features;
}

void FeatureAccumulator::reset() {
  all_.reset();
  outbound_.reset();
  inbound_.reset();
  packets_ = 0;
}

std::vector<double> FeatureAccumulator::extract(
    const std::vector<flow::PacketMeta>& meta) {
  FeatureAccumulator acc;
  for (const flow::PacketMeta& p : meta) acc.add(p);
  return acc.finish();
}

std::vector<double> FeatureAccumulator::extract(const flow::TrafficUnit& unit) {
  return extract(unit.packets);
}

}  // namespace iotx::analysis
