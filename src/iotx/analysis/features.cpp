#include "iotx/analysis/features.hpp"

#include "iotx/util/stats.hpp"

namespace iotx::analysis {

namespace {

void append_summary(std::vector<double>& out,
                    const std::vector<double>& sample) {
  util::summarize(sample).append_features(out);
}

std::vector<double> iats(const std::vector<double>& times) {
  std::vector<double> gaps;
  if (times.size() < 2) return gaps;
  gaps.reserve(times.size() - 1);
  for (std::size_t i = 1; i < times.size(); ++i) {
    gaps.push_back(times[i] - times[i - 1]);
  }
  return gaps;
}

}  // namespace

std::vector<double> extract_features(
    const std::vector<flow::PacketMeta>& meta) {
  std::vector<double> sizes_all, sizes_out, sizes_in;
  std::vector<double> times_all, times_out, times_in;
  sizes_all.reserve(meta.size());
  times_all.reserve(meta.size());
  for (const flow::PacketMeta& p : meta) {
    sizes_all.push_back(p.size);
    times_all.push_back(p.timestamp);
    if (p.outbound) {
      sizes_out.push_back(p.size);
      times_out.push_back(p.timestamp);
    } else {
      sizes_in.push_back(p.size);
      times_in.push_back(p.timestamp);
    }
  }

  std::vector<double> features;
  features.reserve(kFeatureDimension);
  append_summary(features, sizes_all);
  append_summary(features, sizes_out);
  append_summary(features, sizes_in);
  append_summary(features, iats(times_all));
  append_summary(features, iats(times_out));
  append_summary(features, iats(times_in));
  return features;
}

std::vector<double> extract_features(const flow::TrafficUnit& unit) {
  return extract_features(unit.packets);
}

}  // namespace iotx::analysis
