// MUD-style behavioral profiles (inspired by RFC 8520, discussed in the
// paper's §8): learn the set of (domain, port, transport) endpoints a
// device legitimately uses from controlled captures, then flag traffic
// outside that envelope.
//
// This is the policy-enforcement alternative to the paper's ML detector —
// and the ablation bench shows its blind spot: a camera that uploads
// footage nobody asked for does so to its *usual* endpoints, which a MUD
// profile happily allows, while traffic-pattern inference catches it.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "iotx/flow/dns_cache.hpp"
#include "iotx/flow/flow_table.hpp"

namespace iotx::analysis {

/// One allowed communication pattern.
struct MudAclEntry {
  std::string destination;  ///< SLD when known, else the IP literal
  std::uint16_t port = 0;   ///< server port
  std::uint8_t protocol = 6;  ///< IP protocol (6 TCP / 17 UDP)

  auto operator<=>(const MudAclEntry&) const = default;
};

/// A learned device profile (the "MUD file" contents).
struct MudProfile {
  std::string device_id;
  std::set<MudAclEntry> allowed;

  bool permits(const MudAclEntry& entry) const;

  /// Serializes in the spirit of a MUD file: a JSON ACL list.
  std::string to_json() const;
};

/// Learns a profile from captures of known-good (controlled) operation.
/// Flows to LAN/multicast/broadcast destinations are implicitly allowed
/// and not recorded.
MudProfile learn_mud_profile(
    const std::string& device_id,
    const std::vector<std::vector<net::Packet>>& captures);

/// A flow outside the profile.
struct MudViolation {
  MudAclEntry observed;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

/// Checks a capture against a profile; one violation per distinct
/// disallowed (destination, port, protocol).
std::vector<MudViolation> check_against_profile(
    const MudProfile& profile, const std::vector<net::Packet>& capture);

}  // namespace iotx::analysis
