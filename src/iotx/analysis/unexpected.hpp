// Unexpected-behavior detection (paper §7): run the high-confidence
// (CV F1 > 0.9) activity models over idle and uncontrolled captures,
// segmented into 2-second-gap traffic units, and flag detected activity
// that no one triggered.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "iotx/analysis/inference.hpp"
#include "iotx/analysis/unit_model.hpp"
#include "iotx/testbed/user_study.hpp"

namespace iotx::analysis {

/// Activity instances detected in an unlabeled capture.
struct IdleDetections {
  std::string device_id;
  /// activity name -> number of detected instances
  std::map<std::string, int> instances;
  std::size_t units_total = 0;       ///< traffic units examined
  std::size_t units_classified = 0;  ///< units the model labeled
};

struct DetectorParams {
  double min_model_f1 = ml::kHighConfidenceF1;  ///< §7.1: only >0.9 models
  double unit_gap_seconds = flow::kDefaultUnitGapSeconds;
  /// Units smaller than this carry too little signal to classify.
  std::size_t min_unit_packets = 6;
  /// Minimum forest probability mass behind the winning class.
  double min_vote = 0.55;
};

/// One classified traffic unit, as emitted by the streaming detector.
struct Detection {
  std::string activity;
  double unit_start = 0.0;
  std::size_t unit_packets = 0;
};

/// The streaming detection core shared by every driver: a flow::UnitSink
/// that accumulates per-unit features incrementally (FeatureAccumulator)
/// and, when the segmenter closes a unit of at least
/// DetectorParams::min_unit_packets packets, runs the shared §7.1 filter
/// (classify_unit) and reports each detection through the callback.
/// detect_activity / audit_uncontrolled drive it over batch meta;
/// serve::Detector drives it packet-by-packet on the live path.
class StreamingDetector final : public flow::UnitSink {
 public:
  using Callback = std::function<void(const Detection&)>;

  /// Borrows the model; keep it alive while packets stream.
  StreamingDetector(const UnitModel& model, const DetectorParams& params,
                    Callback on_detection = {});

  void on_unit_packet(const flow::PacketMeta& packet) override;
  void on_unit_end(double unit_start, std::size_t unit_packets) override;

  /// Units of at least min_unit_packets examined so far.
  std::size_t units_total() const noexcept { return units_total_; }
  /// Units the model labeled with a (non-background) activity.
  std::size_t units_classified() const noexcept { return units_classified_; }

 private:
  const UnitModel& model_;
  DetectorParams params_;
  Callback on_detection_;
  FeatureAccumulator features_;
  std::size_t units_total_ = 0;
  std::size_t units_classified_ = 0;
};

/// Runs a device's model over pre-extracted, timestamp-sorted device
/// traffic meta — the streaming-ingest path, where the raw capture was
/// dropped after its pipeline pass and only the meta survives.
IdleDetections detect_activity(const testbed::DeviceSpec& device,
                               const std::vector<flow::PacketMeta>& meta,
                               const ActivityModel& model,
                               const DetectorParams& params = {});

/// Capture-based overload: extracts the device's meta, then detects.
IdleDetections detect_activity(const testbed::DeviceSpec& device,
                               testbed::LabSite lab,
                               const std::vector<net::Packet>& capture,
                               const ActivityModel& model,
                               const DetectorParams& params = {});

/// §7.3: cross-references detections against the user-study ground truth.
/// A detection is "expected" when a matching ground-truth event (same
/// device, same activity) lies within `window_s` of the unit start and
/// was user-intended.
struct UncontrolledFinding {
  std::string device_id;
  std::string activity;
  int detections = 0;
  int confirmed_intended = 0;    ///< matched an intended interaction
  int confirmed_unintended = 0;  ///< matched a passive/false trigger
  int unmatched = 0;             ///< nothing in the ground truth at all
};

std::vector<UncontrolledFinding> audit_uncontrolled(
    const testbed::DeviceSpec& device,
    const std::vector<flow::PacketMeta>& meta, const ActivityModel& model,
    const std::vector<testbed::GroundTruthEvent>& events,
    const DetectorParams& params = {}, double window_s = 30.0);

/// Capture-based overload: extracts the device's meta (US-lab MAC, like
/// the user study), then audits.
std::vector<UncontrolledFinding> audit_uncontrolled(
    const testbed::DeviceSpec& device,
    const std::vector<net::Packet>& capture, const ActivityModel& model,
    const std::vector<testbed::GroundTruthEvent>& events,
    const DetectorParams& params = {}, double window_s = 30.0);

}  // namespace iotx::analysis
