// Unexpected-behavior detection (paper §7): run the high-confidence
// (CV F1 > 0.9) activity models over idle and uncontrolled captures,
// segmented into 2-second-gap traffic units, and flag detected activity
// that no one triggered.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "iotx/analysis/inference.hpp"
#include "iotx/testbed/user_study.hpp"

namespace iotx::analysis {

/// Activity instances detected in an unlabeled capture.
struct IdleDetections {
  std::string device_id;
  /// activity name -> number of detected instances
  std::map<std::string, int> instances;
  std::size_t units_total = 0;       ///< traffic units examined
  std::size_t units_classified = 0;  ///< units the model labeled
};

struct DetectorParams {
  double min_model_f1 = ml::kHighConfidenceF1;  ///< §7.1: only >0.9 models
  double unit_gap_seconds = flow::kDefaultUnitGapSeconds;
  /// Units smaller than this carry too little signal to classify.
  std::size_t min_unit_packets = 6;
  /// Minimum forest probability mass behind the winning class.
  double min_vote = 0.55;
};

/// Runs a device's model over pre-extracted, timestamp-sorted device
/// traffic meta — the streaming-ingest path, where the raw capture was
/// dropped after its pipeline pass and only the meta survives.
IdleDetections detect_activity(const testbed::DeviceSpec& device,
                               const std::vector<flow::PacketMeta>& meta,
                               const ActivityModel& model,
                               const DetectorParams& params = {});

/// Capture-based overload: extracts the device's meta, then detects.
IdleDetections detect_activity(const testbed::DeviceSpec& device,
                               testbed::LabSite lab,
                               const std::vector<net::Packet>& capture,
                               const ActivityModel& model,
                               const DetectorParams& params = {});

/// §7.3: cross-references detections against the user-study ground truth.
/// A detection is "expected" when a matching ground-truth event (same
/// device, same activity) lies within `window_s` of the unit start and
/// was user-intended.
struct UncontrolledFinding {
  std::string device_id;
  std::string activity;
  int detections = 0;
  int confirmed_intended = 0;    ///< matched an intended interaction
  int confirmed_unintended = 0;  ///< matched a passive/false trigger
  int unmatched = 0;             ///< nothing in the ground truth at all
};

std::vector<UncontrolledFinding> audit_uncontrolled(
    const testbed::DeviceSpec& device,
    const std::vector<flow::PacketMeta>& meta, const ActivityModel& model,
    const std::vector<testbed::GroundTruthEvent>& events,
    const DetectorParams& params = {}, double window_s = 30.0);

/// Capture-based overload: extracts the device's meta (US-lab MAC, like
/// the user study), then audits.
std::vector<UncontrolledFinding> audit_uncontrolled(
    const testbed::DeviceSpec& device,
    const std::vector<net::Packet>& capture, const ActivityModel& model,
    const std::vector<testbed::GroundTruthEvent>& events,
    const DetectorParams& params = {}, double window_s = 30.0);

}  // namespace iotx::analysis
