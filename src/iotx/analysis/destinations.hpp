// Destination analysis (paper §4): attributes every flow to a domain
// (DNS answer -> SNI -> HTTP Host), an organization (WHOIS/registry), a
// party type relative to the device, and a country (Passport), then
// aggregates the paper's Tables 2-4 and Figure 2 inputs.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "iotx/flow/dns_cache.hpp"
#include "iotx/flow/flow_table.hpp"
#include "iotx/geo/org_db.hpp"
#include "iotx/geo/passport.hpp"
#include "iotx/geo/sld.hpp"

namespace iotx::analysis {

/// One attributed destination contacted by a device.
struct DestinationRecord {
  net::Ipv4Address address;
  std::string domain;  ///< FQDN when known, else the IP literal
  std::string sld;     ///< registrable domain (or IP literal)
  std::string organization;
  geo::PartyType party = geo::PartyType::kThird;
  std::string country;  ///< inferred by the Passport substitute
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;
};

/// Everything attribution needs about the environment.
struct AttributionContext {
  const geo::OrgDatabase* orgs = nullptr;
  const geo::GeoDatabase* geo = nullptr;
  geo::Vantage vantage = geo::Vantage::kUsLab;
  /// Measured min RTT (ms) from the lab to an address (traceroute
  /// substitute).
  std::function<double(net::Ipv4Address)> rtt_ms;
  /// RIR-registered country for an address, when known.
  std::function<std::optional<std::string>(net::Ipv4Address)>
      registry_country;
};

/// Attributes every remote (non-LAN) destination in `flows`. The DNS cache
/// must already have ingested the capture so IPs resolve to the domains
/// the device queried. Destinations are merged per remote address.
std::vector<DestinationRecord> attribute_destinations(
    const std::vector<flow::Flow>& flows, const flow::DnsCache& dns,
    const AttributionContext& ctx,
    const std::vector<std::string>& first_party_names);

/// Merges destination records across captures by remote address,
/// accumulating bytes/packets. Attribution fields keep the *named* record
/// (DNS answer / SNI / Host) over an IP-literal one regardless of capture
/// order, so a capture that happened to miss the DNS response cannot
/// clobber a previously resolved domain/organization/party (which would
/// skew the Tables 2-4 party counts).
class DestinationAccumulator {
 public:
  void add(const DestinationRecord& rec);
  void add_all(const std::vector<DestinationRecord>& records);

  /// Merged records, ordered by address.
  std::vector<DestinationRecord> merged() const;

 private:
  std::map<std::uint32_t, DestinationRecord> by_address_;
};

/// Counts unique non-first-party destinations by party type (the cell
/// structure of Tables 2 and 3). Uniqueness is by domain.
struct PartyCounts {
  std::set<std::string> support;
  std::set<std::string> third;

  void merge(const PartyCounts& other);
};

PartyCounts count_non_first_parties(
    const std::vector<DestinationRecord>& records);

/// Figure 2 input: bytes flowing from (lab, category) to a destination
/// region.
struct SankeyEdge {
  std::string lab;       ///< "US" or "UK"
  std::string category;  ///< device category name
  std::string region;    ///< Figure-2 region name
  std::uint64_t bytes = 0;
};

class SankeyBuilder {
 public:
  void add(const std::string& lab, const std::string& category,
           const std::vector<DestinationRecord>& records);

  /// Edges sorted by lab, then descending bytes.
  std::vector<SankeyEdge> edges() const;

  /// Total bytes from a lab into a region.
  std::uint64_t lab_region_bytes(const std::string& lab,
                                 const std::string& region) const;

 private:
  std::map<std::tuple<std::string, std::string, std::string>, std::uint64_t>
      edges_;
};

}  // namespace iotx::analysis
