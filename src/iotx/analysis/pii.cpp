#include "iotx/analysis/pii.hpp"

#include <set>

#include "iotx/analysis/encryption.hpp"
#include "iotx/util/codec.hpp"
#include "iotx/util/strings.hpp"

namespace iotx::analysis {

std::vector<PiiFinding> PiiScanner::scan_payload(
    const flow::Flow& flow, std::string_view payload) const {
  std::vector<PiiFinding> findings;
  const auto domain_of = [&flow]() {
    if (!flow.sni.empty()) return flow.sni;
    if (!flow.http_host.empty()) return flow.http_host;
    return flow.responder.to_string();
  };

  for (const PiiItem& item : items_) {
    struct Variant {
      std::string encoded;
      const char* name;
    };
    const Variant variants[] = {
        {item.value, "plain"},
        {util::hex_encode(item.value), "hex"},
        {util::base64_encode(item.value), "base64"},
        {util::url_encode(item.value), "url"},
    };
    for (const Variant& v : variants) {
      if (v.encoded.empty()) continue;
      // URL-encoding that equals the plain value adds no signal.
      if (std::string_view(v.name) == "url" && v.encoded == item.value) {
        continue;
      }
      if (util::icontains(payload, v.encoded)) {
        findings.push_back(PiiFinding{item.kind, v.name, domain_of(),
                                      flow.responder});
      }
    }
  }
  return findings;
}

std::vector<PiiFinding> PiiScanner::scan(
    const std::vector<flow::Flow>& flows) const {
  std::vector<PiiFinding> findings;
  std::set<std::tuple<std::string, std::string, std::uint32_t>> seen;

  for (const flow::Flow& flow : flows) {
    // Protocol-level encrypted traffic is opaque to the eavesdropper.
    const EncryptionClass cls = classify_flow(flow).cls;
    if (cls == EncryptionClass::kEncrypted) continue;

    for (const auto* sample :
         {&flow.payload_sample_up, &flow.payload_sample_down}) {
      const std::string_view payload(
          reinterpret_cast<const char*>(sample->data()), sample->size());
      for (PiiFinding& f : scan_payload(flow, payload)) {
        const auto key = std::tuple(f.kind, f.encoding,
                                    f.destination.value());
        if (seen.insert(key).second) findings.push_back(std::move(f));
      }
    }
  }
  return findings;
}

}  // namespace iotx::analysis
