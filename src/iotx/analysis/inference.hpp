// Device-activity inference (paper §6.3): one random-forest classifier per
// (device, network config), trained on labeled experiment captures,
// validated with 10x stratified 70/30 splits; an activity or device is
// "inferrable" when its (macro) F1 exceeds 0.75.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "iotx/analysis/features.hpp"
#include "iotx/analysis/unit_model.hpp"
#include "iotx/ml/validation.hpp"
#include "iotx/testbed/experiment.hpp"

namespace iotx::analysis {

/// A trained per-device model plus its validation scores.
struct ActivityModel {
  std::string device_id;
  testbed::NetworkConfig config;
  ml::Dataset dataset;          ///< training data (kept for re-validation)
  ml::RandomForest forest;      ///< trained on all labeled data
  ml::ValidationResult validation;

  /// Mean F1 of one activity (by name); nullopt when untrained for it.
  std::optional<double> activity_f1(std::string_view activity) const;

  /// The paper's device-level score: macro F1 across the device's
  /// *activities* (the synthetic background class does not count).
  double device_f1() const;

  /// Predicts the activity of a traffic unit. Returns nullopt when the
  /// model is empty, the unit classifies as background, fewer than
  /// `min_vote` of the forest's probability mass backs the winner, or the
  /// winning class's CV F1 is below `min_f1` (the §7.1 filter keeps only
  /// >0.9 models). Driver over classify_unit() + FeatureAccumulator.
  std::optional<std::string> predict(const flow::TrafficUnit& unit,
                                     double min_f1 = 0.0,
                                     double min_vote = 0.0) const;
};

/// UnitModel view over a trained ActivityModel — the batch-path adapter
/// feeding the shared detection filter (unit_model.hpp). Borrows the
/// model; keep the model alive while the view is used.
class ActivityModelView final : public UnitModel {
 public:
  explicit ActivityModelView(const ActivityModel& model) : model_(model) {}

  bool ready() const override;
  std::size_t class_count() const override;
  std::string_view class_name(std::size_t cls) const override;
  double class_f1(std::size_t cls) const override;
  std::vector<double> predict_proba(
      std::span<const double> features) const override;

 private:
  const ActivityModel& model_;
};

struct InferenceParams {
  ml::ValidationParams validation;  ///< forest + split settings
};

/// A labeled, pre-extracted packet-meta sequence: what survives of a
/// training capture once the ingest pipeline's MetaCollector has run and
/// the raw packet buffers are dropped. Only these per-packet records (and
/// the features derived from them) are needed for model training.
struct LabeledMeta {
  std::string activity;                ///< ground-truth label; may be empty
  std::vector<flow::PacketMeta> meta;  ///< timestamp-sorted device traffic
  /// Lifecycle phase the capture was taken in ("normal" for every paper
  /// experiment; "setup" / "ota_update" / "deprovision" for lifecycle
  /// captures). Feature extraction ignores it; the lifecycle report
  /// slices by it.
  std::string phase = "normal";
};

/// Builds the labeled dataset from pre-extracted meta. Examples with an
/// empty label or fewer than 4 packets are skipped; order is preserved.
ml::Dataset build_dataset(const std::vector<LabeledMeta>& examples);

/// Builds the labeled dataset for a device from its experiment captures
/// (power + interaction only; idle has no labels). Each capture becomes
/// one example labeled with its activity. Wrapper over the meta-based
/// overload (one decode pass per capture via IngestPipeline +
/// flow::MetaCollector).
ml::Dataset build_dataset(const testbed::DeviceSpec& device,
                          const std::vector<testbed::LabeledCapture>& captures);

/// Trains and validates the model for a device under one config, from
/// pre-extracted meta (the streaming-ingest path: no raw packets). A
/// non-null `pool` parallelizes the validation repetitions and per-tree
/// training; results are bit-identical at any thread count (seeds are
/// keyed by repetition/tree index, never by execution order).
ActivityModel train_activity_model(
    const testbed::DeviceSpec& device, const testbed::NetworkConfig& config,
    const std::vector<LabeledMeta>& examples, const InferenceParams& params,
    util::TaskPool* pool = nullptr);

/// Capture-based overload: extracts meta per capture, then trains.
ActivityModel train_activity_model(
    const testbed::DeviceSpec& device, const testbed::NetworkConfig& config,
    const std::vector<testbed::LabeledCapture>& captures,
    const InferenceParams& params, util::TaskPool* pool = nullptr);

}  // namespace iotx::analysis
