// The model view consumed by traffic-unit detection: enough to score and
// name a winning class without knowing the forest representation, so the
// batch path (analysis::ActivityModel over ml::RandomForest) and the live
// path (serve::DetectorModel over ml::FlatForest) share one detection
// filter and one streaming detector.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace iotx::analysis {

/// Label used for the explicit idle/keep-alive class. Training on labeled
/// background windows stops heartbeat traffic from being force-assigned to
/// a real interaction class when classifying unlabeled captures.
inline constexpr std::string_view kBackgroundLabel = "background";

/// Abstract trained classifier over per-unit feature vectors.
class UnitModel {
 public:
  virtual ~UnitModel() = default;

  /// False when there is nothing to predict with (empty or unfitted).
  virtual bool ready() const = 0;
  virtual std::size_t class_count() const = 0;
  virtual std::string_view class_name(std::size_t cls) const = 0;
  /// Cross-validated F1 of the class (the §7.1 confidence filter input).
  virtual double class_f1(std::size_t cls) const = 0;
  /// Class probabilities for a feature vector; empty when not ready.
  virtual std::vector<double> predict_proba(
      std::span<const double> features) const = 0;
};

/// The single winner-selection filter behind every detection path:
/// winner = first argmax of the class probabilities; returns nullopt when
/// the model is not ready, the winner index is out of class range, the
/// winner is the background class, less than `min_vote` of the forest's
/// probability mass backs it, or its CV F1 is below `min_f1`.
std::optional<std::size_t> classify_unit(const UnitModel& model,
                                         std::span<const double> features,
                                         double min_f1, double min_vote);

}  // namespace iotx::analysis
