// Encryption classification (paper §5.1):
//   1. protocol analysis: TLS application data / QUIC => encrypted; known
//      plaintext protocols (DNS, HTTP, NTP, SSDP, DHCP, mDNS) and TLS
//      handshake bytes => unencrypted;
//   2. known media/compression magic bytes => unencrypted (and, for
//      audio/video, excluded from the entropy statistics as the paper
//      does, because media entropy rivals ciphertext);
//   3. otherwise byte entropy H of the flow payload:
//      H > 0.8 likely encrypted, H < 0.4 likely unencrypted, else unknown.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "iotx/flow/flow_table.hpp"

namespace iotx::analysis {

enum class EncryptionClass {
  kEncrypted,
  kUnencrypted,
  kUnknown,
  kMedia,  ///< recognized media encoding; excluded from entropy analysis
};

std::string_view encryption_class_name(EncryptionClass c) noexcept;

/// The paper's entropy thresholds.
inline constexpr double kEncryptedEntropyThreshold = 0.8;
inline constexpr double kUnencryptedEntropyThreshold = 0.4;

struct FlowEncryption {
  EncryptionClass cls = EncryptionClass::kUnknown;
  double entropy = 0.0;       ///< payload entropy (0 when not computed)
  bool entropy_based = false; ///< true when step 3 decided
};

/// Classifies one assembled flow.
FlowEncryption classify_flow(const flow::Flow& flow);

/// Byte totals per class for a set of flows. Payload bytes are attributed
/// to the flow's class; flows without payload are ignored (pure
/// handshake/ACK traffic carries no content to classify).
struct EncryptionBytes {
  std::uint64_t encrypted = 0;
  std::uint64_t unencrypted = 0;
  std::uint64_t unknown = 0;
  std::uint64_t media = 0;

  std::uint64_t classified_total() const noexcept {
    return encrypted + unencrypted + unknown;
  }
  /// Percent helpers over the classified total (media excluded, as the
  /// paper excludes recognized media from the encryption statistics).
  double pct_encrypted() const noexcept;
  double pct_unencrypted() const noexcept;
  double pct_unknown() const noexcept;

  EncryptionBytes& operator+=(const EncryptionBytes& other) noexcept;
};

EncryptionBytes account_flows(const std::vector<flow::Flow>& flows);

}  // namespace iotx::analysis
