#include "iotx/analysis/unit_model.hpp"

#include <algorithm>

namespace iotx::analysis {

std::optional<std::size_t> classify_unit(const UnitModel& model,
                                         std::span<const double> features,
                                         double min_f1, double min_vote) {
  if (!model.ready()) return std::nullopt;
  const std::vector<double> proba = model.predict_proba(features);
  if (proba.empty()) return std::nullopt;
  const auto best = static_cast<std::size_t>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
  if (best >= model.class_count()) return std::nullopt;
  if (model.class_name(best) == kBackgroundLabel) return std::nullopt;
  if (proba[best] < min_vote) return std::nullopt;
  if (model.class_f1(best) < min_f1) return std::nullopt;
  return best;
}

}  // namespace iotx::analysis
