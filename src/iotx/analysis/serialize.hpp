// Binary (de)serialization of the analysis-layer artifacts that the
// Study caches per (config, device) stage: mergeable table partials
// (destinations, party counts, encryption accounting, PII findings),
// the training meta, the trained activity model, and idle detections.
//
// Every double round-trips through its IEEE-754 bits and every map/set
// is written in its sorted iteration order, so encode() is a canonical
// byte representation: re-encoding a decoded artifact is byte-identical
// — the property the warm-vs-cold golden tests and content-addressed
// stage chaining rely on. All read_* functions throw
// cache::CorruptArtifact on malformed payloads.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "iotx/analysis/destinations.hpp"
#include "iotx/analysis/encryption.hpp"
#include "iotx/analysis/inference.hpp"
#include "iotx/analysis/pii.hpp"
#include "iotx/analysis/unexpected.hpp"
#include "iotx/cache/binio.hpp"
#include "iotx/faults/health.hpp"

namespace iotx::analysis {

void write_health(cache::BinWriter& w, const faults::CaptureHealth& health);
faults::CaptureHealth read_health(cache::BinReader& r);

void write_destinations(cache::BinWriter& w,
                        const std::vector<DestinationRecord>& records);
std::vector<DestinationRecord> read_destinations(cache::BinReader& r);

void write_parties_by_group(cache::BinWriter& w,
                            const std::map<std::string, PartyCounts>& groups);
std::map<std::string, PartyCounts> read_parties_by_group(cache::BinReader& r);

void write_encryption(cache::BinWriter& w, const EncryptionBytes& enc);
EncryptionBytes read_encryption(cache::BinReader& r);

void write_enc_by_group(cache::BinWriter& w,
                        const std::map<std::string, EncryptionBytes>& groups);
std::map<std::string, EncryptionBytes> read_enc_by_group(cache::BinReader& r);

void write_pii_findings(cache::BinWriter& w,
                        const std::vector<PiiFinding>& findings);
std::vector<PiiFinding> read_pii_findings(cache::BinReader& r);

void write_labeled_meta(cache::BinWriter& w,
                        const std::vector<LabeledMeta>& examples);
std::vector<LabeledMeta> read_labeled_meta(cache::BinReader& r);

void write_network_config(cache::BinWriter& w,
                          const testbed::NetworkConfig& config);
testbed::NetworkConfig read_network_config(cache::BinReader& r);

void write_activity_model(cache::BinWriter& w, const ActivityModel& model);
ActivityModel read_activity_model(cache::BinReader& r);

void write_idle_detections(cache::BinWriter& w, const IdleDetections& idle);
IdleDetections read_idle_detections(cache::BinReader& r);

}  // namespace iotx::analysis
