#include "iotx/serve/session.hpp"

#include "iotx/analysis/encryption.hpp"
#include "iotx/proto/identify.hpp"

namespace iotx::serve {

IngestSession::IngestSession(AdmissionMode mode, SessionLimits limits,
                             std::shared_ptr<const DetectorModel> model)
    : mode_(mode),
      limits_(limits),
      model_(std::move(model)),
      decoder_([this](const net::PacketView& view) { on_view(view); },
               limits.max_frame_bytes) {
  pipeline_.add_sink(dns_);
  pipeline_.add_sink(table_);
  if (model_ != nullptr) {
    device_meta_.emplace(model_->device_mac());
    pipeline_.add_sink(*device_meta_);
  }
}

void IngestSession::on_view(const net::PacketView& view) {
  if (state_ != State::kStreaming) return;  // budget hit mid-buffer
  const std::uint64_t index = packet_index_++;
  if (mode_ == AdmissionMode::kSample &&
      index % std::max<std::uint32_t>(limits_.sample_keep_1_in, 1) != 0) {
    ++serve_health_.serve_sampled_out_packets;
    return;
  }
  net::PacketView admitted = view;
  if (mode_ == AdmissionMode::kTruncate &&
      view.frame.size() > limits_.truncate_snaplen) {
    admitted.frame = view.frame.first(limits_.truncate_snaplen);
    ++serve_health_.serve_truncated_frames;
  }
  if (limits_.transforms.enabled()) {
    // Shaped session: buffer the admitted packet; the chain runs once
    // over the whole upload at finish() (shaping defenses reorder and
    // re-time packets, so they cannot be applied frame-at-a-time).
    buffered_.push_back(net::Packet{
        admitted.timestamp,
        std::vector<std::uint8_t>(admitted.frame.begin(),
                                  admitted.frame.end())});
    return;
  }
  pipeline_.ingest(admitted);
  if (table_.size() > limits_.flow_budget) {
    ++serve_health_.serve_budget_exhaustions;
    pipeline_.finish();
    state_ = State::kBudgetStop;
  }
}

void IngestSession::flush_shaped() {
  if (!limits_.transforms.enabled()) return;
  // Fixed seed: the same upload bytes always shape identically, whatever
  // session or worker carried them.
  faults::TransformSummary summary =
      limits_.transforms.apply(buffered_, "serve");
  summary.add_to(serve_health_);
  for (const net::Packet& packet : buffered_) {
    pipeline_.ingest(net::view_of(packet));
    if (table_.size() > limits_.flow_budget) {
      ++serve_health_.serve_budget_exhaustions;
      break;
    }
  }
  buffered_.clear();
}

bool IngestSession::feed(std::span<const std::uint8_t> bytes) {
  if (state_ != State::kStreaming) return false;
  if (bytes_fed_ + bytes.size() > limits_.byte_budget) {
    // Ingest the prefix that fits, then stop consuming: the valid
    // prefix is still a truthful (degraded) observation.
    const std::uint64_t room = limits_.byte_budget - bytes_fed_;
    bytes_fed_ += room;
    decoder_.feed(bytes.first(static_cast<std::size_t>(room)));
    if (state_ == State::kStreaming) {
      ++serve_health_.serve_budget_exhaustions;
      flush_shaped();
      pipeline_.finish();
      state_ = State::kBudgetStop;
    }
    return false;
  }
  bytes_fed_ += bytes.size();
  const auto status = decoder_.feed(bytes);
  if (status == PcapStreamDecoder::Status::kMalformed) {
    ++serve_health_.serve_sessions_quarantined;
    state_ = State::kQuarantined;
    return false;
  }
  return state_ == State::kStreaming;
}

void IngestSession::finish() {
  if (state_ != State::kStreaming) return;
  if (decoder_.header_ok() && decoder_.at_record_boundary()) {
    flush_shaped();
    pipeline_.finish();
    state_ = State::kComplete;
    return;
  }
  // Ended mid-record (or before the global header): the client died
  // mid-write; nothing after the last whole frame is attributable.
  ++serve_health_.serve_malformed_streams;
  ++serve_health_.serve_sessions_quarantined;
  state_ = State::kQuarantined;
}

void IngestSession::cut(Cut reason) {
  if (state_ != State::kStreaming) return;
  switch (reason) {
    case Cut::kDeadline:
      ++serve_health_.serve_deadline_expirations;
      ++serve_health_.serve_sessions_quarantined;
      state_ = State::kQuarantined;
      break;
    case Cut::kDisconnect:
      ++serve_health_.serve_sessions_quarantined;
      state_ = State::kQuarantined;
      break;
    case Cut::kDrain:
      ++serve_health_.serve_sessions_drained;
      state_ = State::kQuarantined;
      break;
    case Cut::kMalformed:
      ++serve_health_.serve_malformed_streams;
      ++serve_health_.serve_sessions_quarantined;
      state_ = State::kQuarantined;
      break;
  }
}

faults::CaptureHealth IngestSession::health() const {
  faults::CaptureHealth h = serve_health_;
  h.merge(decoder_.health());
  h.merge(pipeline_.health());
  h.merge(dns_.health());
  h.merge(table_.health());
  if (device_meta_.has_value()) h.merge(device_meta_->health());
  return h;
}

bool IngestSession::degraded() const {
  const faults::CaptureHealth h = health();
  return h.observed_anomalies() != 0 || h.serve_truncated_frames != 0 ||
         h.serve_sampled_out_packets != 0 || h.serve_sessions_drained != 0;
}

std::vector<FlowSummary> IngestSession::flow_summaries() const {
  std::vector<FlowSummary> out;
  if (state_ == State::kQuarantined) return out;
  for (const flow::Flow& f : table_.flows()) {
    const analysis::FlowEncryption enc = analysis::classify_flow(f);
    FlowSummary s;
    s.name = f.initiator.to_string() + ":" +
             std::to_string(f.initiator_port) + " -> ";
    if (const auto domain = dns_.lookup(f.responder)) {
      s.name += *domain;
    } else if (!f.sni.empty()) {
      s.name += f.sni;
    } else if (!f.http_host.empty()) {
      s.name += f.http_host;
    } else {
      s.name += f.responder.to_string();
    }
    s.name += ":" + std::to_string(f.responder_port);
    s.protocol = std::string(proto::protocol_name(f.protocol));
    s.enc_class = std::string(analysis::encryption_class_name(enc.cls));
    s.entropy = enc.entropy;
    s.entropy_based = enc.entropy_based;
    s.packets = f.total_packets();
    s.payload_bytes = f.total_payload_bytes();
    out.push_back(std::move(s));
  }
  return out;
}

analysis::EncryptionBytes IngestSession::encryption() const {
  if (state_ == State::kQuarantined) return {};
  return analysis::account_flows(table_.flows());
}

DetectionOutcome IngestSession::detections() const {
  if (model_ == nullptr || state_ == State::kQuarantined) return {};
  // The collector's meta is timestamp-sorted by the pipeline's finish();
  // the same sorted sequence a batch run extracts from the same bytes.
  return run_detector(*model_, device_meta_->meta());
}

void IngestSession::fold_into(TenantState& tenant) const {
  if (state_ == State::kComplete || state_ == State::kBudgetStop) {
    tenant.fold_session(flow_summaries(), encryption(), health(), packets(),
                        bytes_fed(), degraded());
    if (model_ != nullptr) {
      tenant.fold_detections(detections(), model_->digest());
    }
  } else {
    tenant.note_quarantine(health(), bytes_fed());
  }
}

}  // namespace iotx::serve
