#include "iotx/serve/pcap_stream.hpp"

#include <cstring>

namespace iotx::serve {

namespace {
constexpr std::uint32_t kMagicMicro = 0xa1b2c3d4;
constexpr std::uint32_t kMagicNano = 0xa1b23c4d;
constexpr std::uint32_t kMagicMicroSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNanoSwapped = 0x4d3cb2a1;
constexpr std::uint32_t kLinkTypeEthernet = 1;
constexpr std::size_t kGlobalHeaderBytes = 24;
constexpr std::size_t kRecordHeaderBytes = 16;
}  // namespace

PcapStreamDecoder::PcapStreamDecoder(
    std::function<void(const net::PacketView&)> on_packet,
    std::uint32_t max_frame)
    : on_packet_(std::move(on_packet)), max_frame_(max_frame) {}

std::uint32_t PcapStreamDecoder::read_u32(std::size_t offset) const {
  std::uint32_t v = 0;
  std::memcpy(&v, buffer_.data() + offset, sizeof(v));
  if (!little_endian_) v = __builtin_bswap32(v);
  return v;
}

std::uint16_t PcapStreamDecoder::read_u16(std::size_t offset) const {
  std::uint16_t v = 0;
  std::memcpy(&v, buffer_.data() + offset, sizeof(v));
  if (!little_endian_) v = __builtin_bswap16(v);
  return v;
}

bool PcapStreamDecoder::at_record_boundary() const {
  return header_ok_ && !poisoned_ && buffer_.empty() && !in_record_;
}

PcapStreamDecoder::Status PcapStreamDecoder::feed(
    std::span<const std::uint8_t> bytes) {
  if (poisoned_) return Status::kMalformed;
  std::size_t i = 0;
  while (i < bytes.size()) {
    if (!header_ok_) {
      const std::size_t need = kGlobalHeaderBytes - buffer_.size();
      const std::size_t take = std::min(need, bytes.size() - i);
      buffer_.insert(buffer_.end(),
                     bytes.begin() + static_cast<std::ptrdiff_t>(i),
                     bytes.begin() + static_cast<std::ptrdiff_t>(i + take));
      i += take;
      if (buffer_.size() < kGlobalHeaderBytes) return Status::kNeedMore;
      std::uint32_t magic = 0;
      std::memcpy(&magic, buffer_.data(), sizeof(magic));
      switch (magic) {
        case kMagicMicro:
          break;
        case kMagicNano:
          nanosecond_ = true;
          break;
        case kMagicMicroSwapped:
          little_endian_ = false;
          break;
        case kMagicNanoSwapped:
          little_endian_ = false;
          nanosecond_ = true;
          break;
        default:
          poisoned_ = true;
          ++health_.serve_malformed_streams;
          return Status::kMalformed;
      }
      if (read_u32(20) != kLinkTypeEthernet) {
        poisoned_ = true;
        ++health_.serve_malformed_streams;
        return Status::kMalformed;
      }
      header_ok_ = true;
      buffer_.clear();
      continue;
    }
    if (!in_record_) {
      const std::size_t need = kRecordHeaderBytes - buffer_.size();
      const std::size_t take = std::min(need, bytes.size() - i);
      buffer_.insert(buffer_.end(),
                     bytes.begin() + static_cast<std::ptrdiff_t>(i),
                     bytes.begin() + static_cast<std::ptrdiff_t>(i + take));
      i += take;
      if (buffer_.size() < kRecordHeaderBytes) return Status::kNeedMore;
      const std::uint32_t seconds = read_u32(0);
      const std::uint32_t subsec = read_u32(4);
      const std::uint32_t incl_len = read_u32(8);
      const std::uint32_t orig_len = read_u32(12);
      if (incl_len > max_frame_) {
        // The length prefix is the only framing; an absurd one means
        // every later record boundary would be a guess.
        poisoned_ = true;
        ++health_.serve_oversized_frames;
        return Status::kMalformed;
      }
      if (incl_len < orig_len) ++health_.snaplen_clipped_frames;
      record_ts_ = static_cast<double>(seconds) +
                   (nanosecond_ ? subsec * 1e-9 : subsec * 1e-6);
      record_incl_ = incl_len;
      in_record_ = true;
      buffer_.clear();
      continue;
    }
    const std::size_t need = record_incl_ - buffer_.size();
    const std::size_t take = std::min(need, bytes.size() - i);
    buffer_.insert(buffer_.end(),
                   bytes.begin() + static_cast<std::ptrdiff_t>(i),
                   bytes.begin() + static_cast<std::ptrdiff_t>(i + take));
    i += take;
    if (buffer_.size() < record_incl_) return Status::kNeedMore;
    net::PacketView view;
    view.timestamp = record_ts_;
    view.frame = std::span<const std::uint8_t>(buffer_.data(), buffer_.size());
    ++packets_;
    if (on_packet_) on_packet_(view);
    in_record_ = false;
    buffer_.clear();
  }
  return Status::kNeedMore;
}

}  // namespace iotx::serve
