#include "iotx/serve/tenant.hpp"

#include <span>
#include <utility>

#include "iotx/cache/binio.hpp"
#include "iotx/report/json.hpp"

namespace iotx::serve {

void TenantState::fold_session(std::vector<FlowSummary> flows,
                               const analysis::EncryptionBytes& enc,
                               const faults::CaptureHealth& health,
                               std::uint64_t packets, std::uint64_t bytes,
                               bool degraded) {
  std::lock_guard<std::mutex> lock(mu_);
  for (FlowSummary& f : flows) flows_.push_back(std::move(f));
  enc_ += enc;
  health_.merge(health);
  counters_.sessions_completed += 1;
  if (degraded) counters_.sessions_degraded += 1;
  counters_.packets += packets;
  counters_.bytes_received += bytes;
  if (!degraded) quarantine_streak_ = 0;
}

void TenantState::note_quarantine(const faults::CaptureHealth& health,
                                  std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  health_.merge(health);
  counters_.sessions_quarantined += 1;
  counters_.bytes_received += bytes;
  quarantine_streak_ += 1;
}

std::uint64_t TenantState::quarantine_streak() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantine_streak_;
}

TenantCounters TenantState::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

faults::CaptureHealth TenantState::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  return health_;
}

std::string TenantState::report_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  report::JsonWriter w;
  w.begin_object();
  w.field("schema_version", kServeSchemaVersion);
  w.field("section", "tenant_report");
  w.field("tenant", name_);
  w.field("sessions_completed", counters_.sessions_completed);
  w.field("sessions_degraded", counters_.sessions_degraded);
  w.field("sessions_quarantined", counters_.sessions_quarantined);
  w.field("packets", counters_.packets);
  w.field("bytes_received", counters_.bytes_received);

  w.key("flows").begin_array();
  for (const FlowSummary& f : flows_) {
    w.begin_object();
    w.field("flow", f.name);
    w.field("proto", f.protocol);
    w.field("class", f.enc_class);
    if (f.entropy_based) w.field("entropy", f.entropy);
    w.field("packets", f.packets);
    w.field("payload_bytes", f.payload_bytes);
    w.end_object();
  }
  w.end_array();

  w.key("encryption").begin_object();
  w.field("encrypted_bytes", enc_.encrypted);
  w.field("unencrypted_bytes", enc_.unencrypted);
  w.field("unknown_bytes", enc_.unknown);
  w.field("media_bytes", enc_.media);
  w.end_object();

  w.key("health").begin_object();
  for (const auto& [name, value] : faults::nonzero_counters(health_)) {
    w.field(name, value);
  }
  w.end_object();
  w.end_object();
  return w.document();
}

namespace {
// Bumped when the checkpoint layout changes; a mismatch is a corrupt
// artifact (recompute-from-scratch), never a misparse.
constexpr std::uint64_t kCheckpointFormat = 1;
}  // namespace

std::vector<std::uint8_t> TenantState::serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  cache::BinWriter w;
  w.u64(kCheckpointFormat);
  w.str(name_);
  w.u64(counters_.sessions_completed);
  w.u64(counters_.sessions_degraded);
  w.u64(counters_.sessions_quarantined);
  w.u64(counters_.packets);
  w.u64(counters_.bytes_received);
  w.u64(quarantine_streak_);
  w.u64(enc_.encrypted);
  w.u64(enc_.unencrypted);
  w.u64(enc_.unknown);
  w.u64(enc_.media);
  // Health counters in walk order, count-prefixed: the X-macro guard in
  // health.hpp keeps this loop exhaustive without naming fields here.
  const auto counters = faults::health_counters(health_);
  w.u64(counters.size());
  for (const auto& [name, value] : counters) w.u64(value);
  w.u64(flows_.size());
  for (const FlowSummary& f : flows_) {
    w.str(f.name);
    w.str(f.protocol);
    w.str(f.enc_class);
    w.f64(f.entropy);
    w.boolean(f.entropy_based);
    w.u64(f.packets);
    w.u64(f.payload_bytes);
  }
  return std::move(w).take();
}

std::unique_ptr<TenantState> TenantState::restore(
    std::span<const std::uint8_t> payload) {
  cache::BinReader r(payload);
  if (r.u64() != kCheckpointFormat) {
    throw cache::CorruptArtifact("tenant checkpoint: unknown format");
  }
  auto t = std::make_unique<TenantState>(r.str());
  t->counters_.sessions_completed = r.u64();
  t->counters_.sessions_degraded = r.u64();
  t->counters_.sessions_quarantined = r.u64();
  t->counters_.packets = r.u64();
  t->counters_.bytes_received = r.u64();
  t->quarantine_streak_ = r.u64();
  t->enc_.encrypted = r.u64();
  t->enc_.unencrypted = r.u64();
  t->enc_.unknown = r.u64();
  t->enc_.media = r.u64();
  const std::uint64_t health_count = r.u64();
  if (health_count != faults::kCaptureHealthCounterCount) {
    throw cache::CorruptArtifact("tenant checkpoint: health walk mismatch");
  }
  {
    // Restore in the same walk order serialize() wrote.
    std::vector<std::uint64_t> values(health_count);
    for (std::uint64_t& v : values) v = r.u64();
    std::size_t i = 0;
#define IOTX_HEALTH_RESTORE(name) t->health_.name = values[i++];
    IOTX_CAPTURE_HEALTH_COUNTERS(IOTX_HEALTH_RESTORE)
#undef IOTX_HEALTH_RESTORE
  }
  // 49 = the smallest possible serialized FlowSummary (three empty
  // length-prefixed strings + f64 + bool + two u64s): bounds the
  // reserve before trusting the count.
  const std::size_t flow_count = r.length(49);
  t->flows_.reserve(flow_count);
  for (std::size_t i = 0; i < flow_count; ++i) {
    FlowSummary f;
    f.name = r.str();
    f.protocol = r.str();
    f.enc_class = r.str();
    f.entropy = r.f64();
    f.entropy_based = r.boolean();
    f.packets = r.u64();
    f.payload_bytes = r.u64();
    t->flows_.push_back(std::move(f));
  }
  return t;
}

}  // namespace iotx::serve
