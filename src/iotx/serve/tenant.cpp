#include "iotx/serve/tenant.hpp"

#include <span>
#include <utility>

#include "iotx/cache/binio.hpp"
#include "iotx/report/json.hpp"

namespace iotx::serve {

void TenantState::fold_session(std::vector<FlowSummary> flows,
                               const analysis::EncryptionBytes& enc,
                               const faults::CaptureHealth& health,
                               std::uint64_t packets, std::uint64_t bytes,
                               bool degraded) {
  std::lock_guard<std::mutex> lock(mu_);
  for (FlowSummary& f : flows) flows_.push_back(std::move(f));
  enc_ += enc;
  health_.merge(health);
  counters_.sessions_completed += 1;
  if (degraded) counters_.sessions_degraded += 1;
  counters_.packets += packets;
  counters_.bytes_received += bytes;
  if (!degraded) quarantine_streak_ = 0;
}

void TenantState::note_quarantine(const faults::CaptureHealth& health,
                                  std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  health_.merge(health);
  counters_.sessions_quarantined += 1;
  counters_.bytes_received += bytes;
  quarantine_streak_ += 1;
}

void TenantState::fold_detections(const DetectionOutcome& outcome,
                                  const std::string& digest) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const analysis::Detection& d : outcome.detections) {
    detections_.push_back(d);
  }
  counters_.units_total += outcome.units_total;
  counters_.units_classified += outcome.units_classified;
  model_digest_ = digest;
}

std::uint64_t TenantState::quarantine_streak() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantine_streak_;
}

TenantCounters TenantState::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

faults::CaptureHealth TenantState::health() const {
  std::lock_guard<std::mutex> lock(mu_);
  return health_;
}

std::string TenantState::report_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  report::JsonWriter w;
  w.begin_object();
  w.field("schema_version", kServeSchemaVersion);
  w.field("section", "tenant_report");
  w.field("tenant", name_);
  w.field("sessions_completed", counters_.sessions_completed);
  w.field("sessions_degraded", counters_.sessions_degraded);
  w.field("sessions_quarantined", counters_.sessions_quarantined);
  w.field("packets", counters_.packets);
  w.field("bytes_received", counters_.bytes_received);

  w.key("flows").begin_array();
  for (const FlowSummary& f : flows_) {
    w.begin_object();
    w.field("flow", f.name);
    w.field("proto", f.protocol);
    w.field("class", f.enc_class);
    if (f.entropy_based) w.field("entropy", f.entropy);
    w.field("packets", f.packets);
    w.field("payload_bytes", f.payload_bytes);
    w.end_object();
  }
  w.end_array();

  // Detection block only once a model has classified for this tenant —
  // model-less tenants keep the schema-1 report shape byte-for-byte.
  if (!model_digest_.empty()) {
    w.key("detector").begin_object();
    w.field("model_digest", model_digest_);
    w.field("units_total", counters_.units_total);
    w.field("units_classified", counters_.units_classified);
    w.key("detections").begin_array();
    for (const analysis::Detection& d : detections_) {
      w.begin_object();
      w.field("activity", d.activity);
      w.field("unit_start", d.unit_start);
      w.field("unit_packets", static_cast<std::uint64_t>(d.unit_packets));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  w.key("encryption").begin_object();
  w.field("encrypted_bytes", enc_.encrypted);
  w.field("unencrypted_bytes", enc_.unencrypted);
  w.field("unknown_bytes", enc_.unknown);
  w.field("media_bytes", enc_.media);
  w.end_object();

  w.key("health").begin_object();
  for (const auto& [name, value] : faults::nonzero_counters(health_)) {
    w.field(name, value);
  }
  w.end_object();
  w.end_object();
  return w.document();
}

namespace {
// Bumped when the checkpoint layout changes; a mismatch is a corrupt
// artifact (recompute-from-scratch), never a misparse. Format 2 added
// the detection rows, unit counters, and the embedded detector-model
// artifact, so a restarted daemon resumes with the model installed.
constexpr std::uint64_t kCheckpointFormat = 2;
}  // namespace

std::vector<std::uint8_t> TenantState::serialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  cache::BinWriter w;
  w.u64(kCheckpointFormat);
  w.str(name_);
  w.u64(counters_.sessions_completed);
  w.u64(counters_.sessions_degraded);
  w.u64(counters_.sessions_quarantined);
  w.u64(counters_.packets);
  w.u64(counters_.bytes_received);
  w.u64(quarantine_streak_);
  w.u64(enc_.encrypted);
  w.u64(enc_.unencrypted);
  w.u64(enc_.unknown);
  w.u64(enc_.media);
  // Health counters in walk order, count-prefixed: the X-macro guard in
  // health.hpp keeps this loop exhaustive without naming fields here.
  const auto counters = faults::health_counters(health_);
  w.u64(counters.size());
  for (const auto& [name, value] : counters) w.u64(value);
  w.u64(flows_.size());
  for (const FlowSummary& f : flows_) {
    w.str(f.name);
    w.str(f.protocol);
    w.str(f.enc_class);
    w.f64(f.entropy);
    w.boolean(f.entropy_based);
    w.u64(f.packets);
    w.u64(f.payload_bytes);
  }
  w.u64(counters_.units_total);
  w.u64(counters_.units_classified);
  w.str(model_digest_);
  w.u64(detections_.size());
  for (const analysis::Detection& d : detections_) {
    w.str(d.activity);
    w.f64(d.unit_start);
    w.u64(d.unit_packets);
  }
  // The installed model rides the checkpoint (exact artifact bytes), so
  // a resumed daemon detects with the same model a drained one did.
  const std::shared_ptr<const DetectorModel> model = detector_.current();
  if (model == nullptr) {
    w.u64(0);
  } else {
    const std::vector<std::uint8_t> artifact = model->serialize();
    w.u64(artifact.size());
    w.raw(artifact.data(), artifact.size());
  }
  return std::move(w).take();
}

std::unique_ptr<TenantState> TenantState::restore(
    std::span<const std::uint8_t> payload) {
  cache::BinReader r(payload);
  if (r.u64() != kCheckpointFormat) {
    throw cache::CorruptArtifact("tenant checkpoint: unknown format");
  }
  auto t = std::make_unique<TenantState>(r.str());
  t->counters_.sessions_completed = r.u64();
  t->counters_.sessions_degraded = r.u64();
  t->counters_.sessions_quarantined = r.u64();
  t->counters_.packets = r.u64();
  t->counters_.bytes_received = r.u64();
  t->quarantine_streak_ = r.u64();
  t->enc_.encrypted = r.u64();
  t->enc_.unencrypted = r.u64();
  t->enc_.unknown = r.u64();
  t->enc_.media = r.u64();
  const std::uint64_t health_count = r.u64();
  if (health_count != faults::kCaptureHealthCounterCount) {
    throw cache::CorruptArtifact("tenant checkpoint: health walk mismatch");
  }
  {
    // Restore in the same walk order serialize() wrote.
    std::vector<std::uint64_t> values(health_count);
    for (std::uint64_t& v : values) v = r.u64();
    std::size_t i = 0;
#define IOTX_HEALTH_RESTORE(name) t->health_.name = values[i++];
    IOTX_CAPTURE_HEALTH_COUNTERS(IOTX_HEALTH_RESTORE)
#undef IOTX_HEALTH_RESTORE
  }
  // 49 = the smallest possible serialized FlowSummary (three empty
  // length-prefixed strings + f64 + bool + two u64s): bounds the
  // reserve before trusting the count.
  const std::size_t flow_count = r.length(49);
  t->flows_.reserve(flow_count);
  for (std::size_t i = 0; i < flow_count; ++i) {
    FlowSummary f;
    f.name = r.str();
    f.protocol = r.str();
    f.enc_class = r.str();
    f.entropy = r.f64();
    f.entropy_based = r.boolean();
    f.packets = r.u64();
    f.payload_bytes = r.u64();
    t->flows_.push_back(std::move(f));
  }
  t->counters_.units_total = r.u64();
  t->counters_.units_classified = r.u64();
  t->model_digest_ = r.str();
  // 25 = the smallest serialized Detection (empty length-prefixed
  // activity + f64 + u64).
  const std::size_t detection_count = r.length(25);
  t->detections_.reserve(detection_count);
  for (std::size_t i = 0; i < detection_count; ++i) {
    analysis::Detection d;
    d.activity = r.str();
    d.unit_start = r.f64();
    d.unit_packets = static_cast<std::size_t>(r.u64());
    t->detections_.push_back(std::move(d));
  }
  const std::string artifact = r.str();
  if (!artifact.empty()) {
    // Throws CorruptArtifact when the embedded model bytes are mangled.
    t->detector_.install(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(artifact.data()),
        artifact.size()));
  }
  return t;
}

}  // namespace iotx::serve
