// Admission control for the ingest daemon: an explicit degradation
// ladder instead of an implicit OOM.
//
// Every upload session is admitted in one of four modes, ordered from
// full fidelity to refusal:
//
//   kAccept    full-fidelity ingest
//   kTruncate  frames snaplen-truncated before the pipeline (payload
//              entropy/PII fidelity traded for bounded memory)
//   kSample    only 1-in-N packets ingested (headline counters survive,
//              per-flow series thin out)
//   kShed      refused outright with 503; the client retries later
//
// The controller picks the rung from instantaneous load — active
// sessions against the session cap and buffered bytes against the
// memory budget, whichever is worse — and from the fault taxonomy: a
// tenant whose recent sessions were quarantined (malformed streams,
// oversized frames) is pushed one rung down before it can hog another
// full-fidelity slot, which is the PR 2 CaptureHealth taxonomy acting
// as an admission signal. Every rung change is counted in the obs
// registry ("serve/ladder_transitions", per-mode admission counters)
// and the shed/degrade outcomes land in CaptureHealth via the session.
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

namespace iotx::serve {

enum class AdmissionMode : std::uint8_t {
  kAccept = 0,
  kTruncate = 1,
  kSample = 2,
  kShed = 3,
};

std::string_view admission_mode_name(AdmissionMode mode) noexcept;

/// Load thresholds (fraction of capacity) at which the ladder steps
/// down. Chosen so a burst hits kTruncate well before memory pressure
/// and kShed only when the next session could not be bounded anyway.
struct AdmissionThresholds {
  double truncate_at = 0.50;
  double sample_at = 0.75;
  double shed_at = 0.95;
};

class AdmissionController {
 public:
  AdmissionController(std::size_t max_sessions,
                      std::uint64_t memory_budget_bytes,
                      AdmissionThresholds thresholds = {});

  /// Decides the mode for a new session given the current load and the
  /// tenant's recent quarantine count (nonzero pushes one rung down).
  /// Thread-safe; also records the per-mode admission counter, the
  /// rung-transition counter, and the load gauge into the obs registry.
  AdmissionMode decide(std::size_t active_sessions,
                       std::uint64_t buffered_bytes,
                       std::uint64_t tenant_recent_quarantines);

  /// The rung the last decide() landed on (the daemon's current
  /// position on the ladder, reported by /health).
  AdmissionMode current_rung() const noexcept {
    return static_cast<AdmissionMode>(rung_.load(std::memory_order_relaxed));
  }

  /// Total rung changes across the daemon's lifetime.
  std::uint64_t transitions() const noexcept {
    return transitions_.load(std::memory_order_relaxed);
  }

  std::uint64_t decisions(AdmissionMode mode) const noexcept {
    return decided_[static_cast<std::size_t>(mode)].load(
        std::memory_order_relaxed);
  }

 private:
  std::size_t max_sessions_;
  std::uint64_t memory_budget_;
  AdmissionThresholds thresholds_;
  std::atomic<std::uint8_t> rung_{0};
  std::atomic<std::uint64_t> transitions_{0};
  std::atomic<std::uint64_t> decided_[4] = {};
};

}  // namespace iotx::serve
