#include "iotx/serve/chaos.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <thread>

namespace iotx::serve {

namespace {

/// Sends everything; false as soon as the peer stops accepting.
bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads until the daemon closes (it always sends Connection: close),
/// then parses the status line and strips the head off the body.
void read_response(int fd, ChaosResult& result) {
  std::string raw;
  char buf[4096];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 10000) <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
    if (raw.size() > (1u << 20)) break;
  }
  if (raw.rfind("HTTP/", 0) != 0) return;
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) return;
  int code = 0;
  for (std::size_t i = sp + 1; i < sp + 4 && i < raw.size(); ++i) {
    if (raw[i] < '0' || raw[i] > '9') return;
    code = code * 10 + (raw[i] - '0');
  }
  result.status_code = code;
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end != std::string::npos) result.body = raw.substr(head_end + 4);
}

std::string hex_size(std::size_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%zx", n);
  return buf;
}

std::string view(std::span<const std::uint8_t> bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

void le32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

}  // namespace

int ChaosClient::connect_socket() const {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

ChaosResult ChaosClient::upload_chunked(
    const std::string& tenant, std::span<const std::uint8_t> pcap_bytes,
    std::size_t chunk_size) {
  ChaosResult result;
  const int fd = connect_socket();
  if (fd < 0) return result;
  result.connected = true;
  if (chunk_size == 0) chunk_size = 4096;
  std::string head = "POST /ingest/" + tenant +
                     " HTTP/1.1\r\nHost: chaos\r\n"
                     "Transfer-Encoding: chunked\r\n\r\n";
  bool ok = send_all(fd, head);
  for (std::size_t off = 0; ok && off < pcap_bytes.size();
       off += chunk_size) {
    const std::size_t take = std::min(chunk_size, pcap_bytes.size() - off);
    ok = send_all(fd, hex_size(take) + "\r\n" +
                          view(pcap_bytes.subspan(off, take)) + "\r\n");
  }
  if (ok) ok = send_all(fd, "0\r\n\r\n");
  result.sent_all = ok;
  read_response(fd, result);
  ::close(fd);
  return result;
}

ChaosResult ChaosClient::upload_identity(
    const std::string& tenant, std::span<const std::uint8_t> pcap_bytes) {
  ChaosResult result;
  const int fd = connect_socket();
  if (fd < 0) return result;
  result.connected = true;
  std::string head = "POST /ingest/" + tenant +
                     " HTTP/1.1\r\nHost: chaos\r\nContent-Length: " +
                     std::to_string(pcap_bytes.size()) + "\r\n\r\n";
  result.sent_all = send_all(fd, head) && send_all(fd, view(pcap_bytes));
  read_response(fd, result);
  ::close(fd);
  return result;
}

ChaosResult ChaosClient::post(const std::string& path,
                              std::span<const std::uint8_t> body) {
  ChaosResult result;
  const int fd = connect_socket();
  if (fd < 0) return result;
  result.connected = true;
  std::string head = "POST " + path +
                     " HTTP/1.1\r\nHost: chaos\r\nContent-Length: " +
                     std::to_string(body.size()) + "\r\n\r\n";
  result.sent_all = send_all(fd, head) && send_all(fd, view(body));
  read_response(fd, result);
  ::close(fd);
  return result;
}

ChaosResult ChaosClient::get(const std::string& path) {
  ChaosResult result;
  const int fd = connect_socket();
  if (fd < 0) return result;
  result.connected = true;
  result.sent_all =
      send_all(fd, "GET " + path + " HTTP/1.1\r\nHost: chaos\r\n\r\n");
  read_response(fd, result);
  ::close(fd);
  return result;
}

ChaosResult ChaosClient::slow_loris(int trickle_ms, std::size_t max_bytes) {
  ChaosResult result;
  const int fd = connect_socket();
  if (fd < 0) return result;
  result.connected = true;
  // An eternal request head: one header byte at a time, never a blank
  // line. The daemon's idle deadline must cut us off.
  const std::string drip = "POST /ingest/loris HTTP/1.1\r\nX-Drip: ";
  std::size_t sent = 0;
  bool ok = true;
  while (ok && sent < max_bytes) {
    const char c = sent < drip.size() ? drip[sent] : 'a';
    ok = send_all(fd, std::string_view(&c, 1));
    if (!ok) break;
    ++sent;
    std::this_thread::sleep_for(std::chrono::milliseconds(trickle_ms));
    // A cut shows up as a readable EOF/RST before it shows up in send().
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 0) > 0) {
      char probe;
      if (::recv(fd, &probe, 1, MSG_PEEK) <= 0) {
        ok = false;
        break;
      }
    }
  }
  result.sent_all = ok;
  read_response(fd, result);
  ::close(fd);
  return result;
}

ChaosResult ChaosClient::disconnect_midstream(
    const std::string& tenant, std::span<const std::uint8_t> pcap_bytes,
    std::size_t keep) {
  ChaosResult result;
  const int fd = connect_socket();
  if (fd < 0) return result;
  result.connected = true;
  keep = std::min(keep, pcap_bytes.size());
  std::string head = "POST /ingest/" + tenant +
                     " HTTP/1.1\r\nHost: chaos\r\n"
                     "Transfer-Encoding: chunked\r\n\r\n";
  bool ok = send_all(fd, head);
  if (ok && keep > 0) {
    // One chunk promising the whole body; the close lands mid-chunk.
    ok = send_all(fd, hex_size(pcap_bytes.size()) + "\r\n" +
                          view(pcap_bytes.first(keep)));
  }
  result.sent_all = ok;
  // Hard close: RST-ish abandonment, no terminal chunk, no lingering.
  ::close(fd);
  return result;
}

ChaosResult ChaosClient::malformed_chunked(const std::string& tenant) {
  ChaosResult result;
  const int fd = connect_socket();
  if (fd < 0) return result;
  result.connected = true;
  std::string head = "POST /ingest/" + tenant +
                     " HTTP/1.1\r\nHost: chaos\r\n"
                     "Transfer-Encoding: chunked\r\n\r\n";
  // First chunk claims 4 bytes but is followed by garbage where the
  // CRLF must be — the boundary after it is unrecoverable.
  result.sent_all =
      send_all(fd, head) && send_all(fd, "4\r\nABCDXXXX5\r\nhello\r\n");
  read_response(fd, result);
  ::close(fd);
  return result;
}

ChaosResult ChaosClient::garbage_head() {
  ChaosResult result;
  const int fd = connect_socket();
  if (fd < 0) return result;
  result.connected = true;
  // \x7f, not \x00: a NUL would truncate the const char* -> string_view
  // conversion and turn this into a deadline test instead of a parse one.
  result.sent_all =
      send_all(fd, "\x16\x03\x01\x02\x7f not http at all\r\n\r\n");
  read_response(fd, result);
  ::close(fd);
  return result;
}

ChaosResult ChaosClient::oversized_frame(const std::string& tenant) {
  const std::vector<std::uint8_t> pcap = oversized_frame_pcap();
  return upload_identity(tenant, pcap);
}

std::vector<std::uint8_t> oversized_frame_pcap(std::uint32_t incl_len,
                                               std::size_t actual) {
  std::vector<std::uint8_t> out;
  // Global header: micro magic, version 2.4, zone 0, sigfigs 0,
  // snaplen 65535, linktype Ethernet.
  le32(out, 0xa1b2c3d4u);
  out.push_back(2);
  out.push_back(0);
  out.push_back(4);
  out.push_back(0);
  le32(out, 0);
  le32(out, 0);
  le32(out, 65535);
  le32(out, 1);
  // One record whose incl_len promises far more than follows.
  le32(out, 0);         // ts_sec
  le32(out, 0);         // ts_frac
  le32(out, incl_len);  // incl_len: hostile
  le32(out, incl_len);  // orig_len
  out.insert(out.end(), actual, 0xEE);
  return out;
}

}  // namespace iotx::serve
