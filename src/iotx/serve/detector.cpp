#include "iotx/serve/detector.hpp"

#include <chrono>
#include <utility>

#include "iotx/cache/binio.hpp"
#include "iotx/cache/hash.hpp"
#include "iotx/obs/registry.hpp"
#include "iotx/testbed/catalog.hpp"

namespace iotx::serve {

namespace {
// Bumped when the artifact layout changes; a mismatch is a corrupt
// artifact (refuse the install), never a misparse.
constexpr std::uint64_t kDetectorModelFormat = 1;
}  // namespace

DetectorModel DetectorModel::from_activity_model(
    const testbed::DeviceSpec& device, const analysis::ActivityModel& model,
    const analysis::DetectorParams& params) {
  DetectorModel out;
  out.device_id_ = device.id;
  out.mac_ = testbed::device_mac(device,
                                 model.config.lab == testbed::LabSite::kUs);
  out.params_ = params;
  const std::size_t classes = model.dataset.class_count();
  out.class_names_.reserve(classes);
  out.f1_.reserve(classes);
  for (std::size_t c = 0; c < classes; ++c) {
    out.class_names_.emplace_back(
        model.dataset.class_name(static_cast<int>(c)));
    out.f1_.push_back(c < model.validation.class_f1.size()
                          ? model.validation.class_f1[c]
                          : 0.0);
  }
  out.forest_ = ml::FlatForest::compile(model.forest);
  out.digest_ = cache::Sha256::hex(cache::Sha256::hash(out.serialize()));
  return out;
}

bool DetectorModel::ready() const {
  return forest_.fitted() && !class_names_.empty();
}

std::size_t DetectorModel::class_count() const { return class_names_.size(); }

std::string_view DetectorModel::class_name(std::size_t cls) const {
  return class_names_[cls];
}

double DetectorModel::class_f1(std::size_t cls) const { return f1_[cls]; }

std::vector<double> DetectorModel::predict_proba(
    std::span<const double> features) const {
  return forest_.predict_proba(features);
}

std::vector<std::uint8_t> DetectorModel::serialize() const {
  cache::BinWriter w;
  w.u64(kDetectorModelFormat);
  w.str(device_id_);
  w.raw(mac_.octets().data(), mac_.octets().size());
  w.u64(class_names_.size());
  for (const std::string& name : class_names_) w.str(name);
  w.f64_span(f1_);
  w.f64(params_.min_model_f1);
  w.f64(params_.unit_gap_seconds);
  w.u64(params_.min_unit_packets);
  w.f64(params_.min_vote);
  forest_.save(w);
  return std::move(w).take();
}

DetectorModel DetectorModel::parse(std::span<const std::uint8_t> bytes) {
  cache::BinReader r(bytes);
  if (r.u64() != kDetectorModelFormat) {
    throw cache::CorruptArtifact("detector model: unknown format");
  }
  DetectorModel m;
  m.device_id_ = r.str();
  std::array<std::uint8_t, 6> octets{};
  for (std::uint8_t& o : octets) o = r.u8();
  m.mac_ = net::MacAddress(octets);
  const std::size_t classes = r.length(8);
  m.class_names_.reserve(classes);
  for (std::size_t c = 0; c < classes; ++c) m.class_names_.push_back(r.str());
  m.f1_ = r.f64_span();
  if (m.f1_.size() != m.class_names_.size()) {
    throw cache::CorruptArtifact("detector model: class/F1 size mismatch");
  }
  m.params_.min_model_f1 = r.f64();
  m.params_.unit_gap_seconds = r.f64();
  m.params_.min_unit_packets = static_cast<std::size_t>(r.u64());
  m.params_.min_vote = r.f64();
  if (!(m.params_.unit_gap_seconds > 0.0)) {
    throw cache::CorruptArtifact("detector model: unit gap must be > 0");
  }
  m.forest_ = ml::FlatForest::load(r);
  if (m.forest_.class_count() != m.class_names_.size()) {
    throw cache::CorruptArtifact("detector model: forest class mismatch");
  }
  if (!r.done()) {
    throw cache::CorruptArtifact("detector model: trailing bytes");
  }
  m.digest_ = cache::Sha256::hex(cache::Sha256::hash(bytes));
  return m;
}

std::string Detector::install(std::span<const std::uint8_t> bytes) {
  auto model = std::make_shared<DetectorModel>(DetectorModel::parse(bytes));
  const std::string digest = model->digest();
  install(std::move(model));
  return digest;
}

void Detector::install(std::shared_ptr<const DetectorModel> model) {
  std::lock_guard<std::mutex> lock(mu_);
  model_ = std::move(model);
}

std::shared_ptr<const DetectorModel> Detector::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return model_;
}

std::string Detector::digest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return model_ == nullptr ? std::string() : model_->digest();
}

namespace {

/// UnitSink shim that times each unit close (segmentation + feature
/// finish + forest vote) into the detect-latency histogram.
class TimedUnitSink final : public flow::UnitSink {
 public:
  explicit TimedUnitSink(flow::UnitSink& inner) : inner_(inner) {
    obs::Registry& reg = obs::Registry::global();
    latency_ = reg.histogram("serve/detect_latency_ns",
                             /*deterministic=*/false);
  }

  void on_unit_packet(const flow::PacketMeta& packet) override {
    inner_.on_unit_packet(packet);
  }

  void on_unit_end(double unit_start, std::size_t unit_packets) override {
    const auto t0 = std::chrono::steady_clock::now();
    inner_.on_unit_end(unit_start, unit_packets);
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    obs::Registry::global().add(
        latency_,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }

 private:
  flow::UnitSink& inner_;
  obs::Registry::MetricId latency_ = 0;
};

}  // namespace

DetectionOutcome run_detector(const DetectorModel& model,
                              const std::vector<flow::PacketMeta>& meta) {
  DetectionOutcome out;
  analysis::StreamingDetector detector(
      model, model.params(),
      [&out](const analysis::Detection& d) { out.detections.push_back(d); });
  const bool metrics = obs::metrics_enabled();
  if (metrics) {
    TimedUnitSink timed(detector);
    flow::TrafficUnitSegmenter segmenter(timed,
                                         model.params().unit_gap_seconds);
    for (const flow::PacketMeta& p : meta) segmenter.add(p);
    segmenter.finish();
  } else {
    flow::TrafficUnitSegmenter segmenter(detector,
                                         model.params().unit_gap_seconds);
    for (const flow::PacketMeta& p : meta) segmenter.add(p);
    segmenter.finish();
  }
  out.units_total = detector.units_total();
  out.units_classified = detector.units_classified();
  if (metrics) {
    obs::Registry& reg = obs::Registry::global();
    reg.add(reg.counter("serve/detect_units"), out.units_total);
    reg.add(reg.counter("serve/detect_detections"), out.detections.size());
  }
  return out;
}

}  // namespace iotx::serve
