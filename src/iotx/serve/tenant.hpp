// Per-tenant accumulated state for the ingest daemon.
//
// Each gateway (tenant) streams many capture sessions; a TenantState
// folds every *completed* session's flow summaries, encryption
// accounting, and CaptureHealth into one report — the streamed
// counterpart of `iotx classify` over a pcap file. Quarantined sessions
// (malformed streams, oversized frames, deadline kills) contribute only
// their health counters, never partial flows, so a hostile client can
// pollute its own tenant's health rollup but not its tables.
//
// Checkpoint contract: serialize()/restore() round-trip the entire
// accumulated state through cache::BinWriter/BinReader, so a SIGTERM'd
// daemon checkpoints tenants into its ArtifactStore and a restarted one
// resumes mid-campaign — the resumed tenant's report is byte-identical
// to an uninterrupted run over the same session sequence.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "iotx/analysis/encryption.hpp"
#include "iotx/faults/health.hpp"
#include "iotx/serve/detector.hpp"

namespace iotx::serve {

/// One classified flow in the tenant report — the streamed analogue of
/// a `iotx classify` output row.
struct FlowSummary {
  std::string name;       ///< "initiator:port -> resolved-peer:port"
  std::string protocol;   ///< proto::protocol_name
  std::string enc_class;  ///< analysis::encryption_class_name
  double entropy = 0.0;
  bool entropy_based = false;
  std::uint64_t packets = 0;
  std::uint64_t payload_bytes = 0;
};

/// Monotonic per-tenant session tallies, one slot per terminal outcome.
struct TenantCounters {
  std::uint64_t sessions_completed = 0;   ///< folded into the tables
  std::uint64_t sessions_degraded = 0;    ///< completed with anomalies
  std::uint64_t sessions_quarantined = 0; ///< excluded from the tables
  std::uint64_t packets = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t units_total = 0;       ///< detector-eligible traffic units
  std::uint64_t units_classified = 0;  ///< units labeled with an activity
};

class TenantState {
 public:
  explicit TenantState(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Folds one completed session. `flows` append in session order (the
  /// fold order is the report order, so a resumed daemon reproduces an
  /// uninterrupted one as long as the session sequence matches).
  void fold_session(std::vector<FlowSummary> flows,
                    const analysis::EncryptionBytes& enc,
                    const faults::CaptureHealth& health,
                    std::uint64_t packets, std::uint64_t bytes,
                    bool degraded);

  /// Records a quarantined session: health only, no flows.
  void note_quarantine(const faults::CaptureHealth& health,
                       std::uint64_t bytes);

  /// Folds one completed session's detections (live path). `digest`
  /// identifies the model that produced them; it is remembered so the
  /// report attributes its detections block.
  void fold_detections(const DetectionOutcome& outcome,
                       const std::string& digest);

  /// The tenant's hot-swappable detection model slot. Thread-safe on
  /// its own lock; sessions pin current() at admission.
  Detector& detector() noexcept { return detector_; }
  const Detector& detector() const noexcept { return detector_; }

  /// Quarantines since the last cleanly completed session — the
  /// recent-fault signal the admission controller consumes.
  std::uint64_t quarantine_streak() const;

  TenantCounters counters() const;
  faults::CaptureHealth health() const;

  /// The tenant report document (schema-versioned JSON). Deterministic:
  /// a pure function of the folded session sequence.
  std::string report_json() const;

  /// Checkpoint payload (BinWriter format, see tenant.cpp).
  std::vector<std::uint8_t> serialize() const;
  /// Rebuilds a TenantState from serialize() output (by pointer — the
  /// embedded mutex pins the object). Throws cache::CorruptArtifact on
  /// a malformed payload.
  static std::unique_ptr<TenantState> restore(
      std::span<const std::uint8_t> payload);

 private:
  std::string name_;
  mutable std::mutex mu_;
  std::vector<FlowSummary> flows_;
  std::vector<analysis::Detection> detections_;
  std::string model_digest_;  ///< model behind detections_; "" = none yet
  analysis::EncryptionBytes enc_;
  faults::CaptureHealth health_;
  TenantCounters counters_;
  std::uint64_t quarantine_streak_ = 0;
  Detector detector_;  ///< own lock; not guarded by mu_
};

/// Version stamped into tenant reports and /health//config documents.
inline constexpr std::uint64_t kServeSchemaVersion = 1;

}  // namespace iotx::serve
