// Incremental pcap stream decoder for the ingest daemon.
//
// net::pcap_parse wants the whole file in one buffer; an upload session
// sees the same bytes in arbitrary network-sized slices and must bound
// its memory to one frame, not one file. PcapStreamDecoder consumes
// bytes as they arrive, emitting each completed record through a
// callback, and holds at most the global header plus one in-flight
// record. Semantics match pcap_parse (both endians, micro- and
// nanosecond magic, snaplen-clip accounting) with one serve-specific
// addition: a record header announcing a frame longer than the
// configured cap poisons the stream — past that point the length
// prefixes cannot be trusted to delimit records, so the decoder stops
// rather than resynchronize on garbage.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "iotx/faults/health.hpp"
#include "iotx/net/packet.hpp"

namespace iotx::serve {

class PcapStreamDecoder {
 public:
  enum class Status {
    kNeedMore,   ///< mid-stream; keep feeding
    kMalformed,  ///< bad magic / non-Ethernet link / oversized record
  };

  /// `on_packet` is invoked once per completed record, in stream order.
  /// The PacketView's frame aliases the decoder's internal record buffer
  /// and is valid only for the duration of the callback. `max_frame`
  /// caps incl_len; a record announcing more marks the stream malformed
  /// and counts health.serve_oversized_frames.
  PcapStreamDecoder(std::function<void(const net::PacketView&)> on_packet,
                    std::uint32_t max_frame);

  /// Consumes bytes; returns kMalformed once the stream is poisoned
  /// (further feeds are ignored).
  Status feed(std::span<const std::uint8_t> bytes);

  /// True once the global header parsed cleanly.
  bool header_ok() const { return header_ok_; }
  /// Records fully decoded so far.
  std::uint64_t packets() const { return packets_; }
  /// True when the stream ends exactly on a record boundary (a truthful
  /// "was this upload complete" signal for the session summary).
  bool at_record_boundary() const;

  const faults::CaptureHealth& health() const { return health_; }

 private:
  std::uint32_t read_u32(std::size_t offset) const;
  std::uint16_t read_u16(std::size_t offset) const;

  std::function<void(const net::PacketView&)> on_packet_;
  std::uint32_t max_frame_;
  std::vector<std::uint8_t> buffer_;  ///< global header or one record
  bool header_ok_ = false;
  bool little_endian_ = true;
  bool nanosecond_ = false;
  bool poisoned_ = false;
  // Parsed record header while accumulating its frame bytes.
  bool in_record_ = false;
  double record_ts_ = 0.0;
  std::uint32_t record_incl_ = 0;
  std::uint64_t packets_ = 0;
  faults::CaptureHealth health_;
};

}  // namespace iotx::serve
