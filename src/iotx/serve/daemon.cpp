#include "iotx/serve/daemon.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "iotx/cache/binio.hpp"
#include "iotx/obs/profile.hpp"
#include "iotx/obs/registry.hpp"
#include "iotx/report/json.hpp"
#include "iotx/serve/http.hpp"
#include "iotx/util/task_pool.hpp"

namespace iotx::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// Best-effort write of a whole response; tolerates a peer that already
/// went away (the chaos client does that on purpose).
void write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// The tenant segment of "/ingest/<tenant>" or "/report/<tenant>";
/// empty when absent or containing path separators (no traversal).
std::string tenant_segment(std::string_view target, std::string_view prefix) {
  if (target.rfind(prefix, 0) != 0) return {};
  std::string name(target.substr(prefix.size()));
  const std::size_t query = name.find('?');
  if (query != std::string::npos) name.resize(query);
  if (name.empty() || name.size() > 128) return {};
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok) return {};
  }
  if (name == "." || name == "..") return {};
  return name;
}

constexpr std::string_view kShedBody =
    "{\"error\":\"shed\",\"retry\":true}";

}  // namespace

Daemon::Daemon(ServeConfig config)
    : config_(std::move(config)),
      admission_(config_.max_sessions, config_.memory_budget_bytes,
                 config_.thresholds) {
  if (!config_.checkpoint_dir.empty()) {
    store_ = std::make_unique<cache::ArtifactStore>(config_.checkpoint_dir);
    // Startup hygiene: a previous daemon killed mid-checkpoint leaves
    // half-written temp files; a checkpoint dir shared with a worker
    // fleet can hold abandoned claims. Both counters land in /metrics
    // via the store's publish path.
    store_->remove_stale_temp_files();
    store_->remove_orphaned_claims();
  }
}

Daemon::~Daemon() { stop(); }

void Daemon::bump(std::uint64_t ServeStats::*field, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.*field += delta;
}

bool Daemon::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    error_ = "socket() failed";
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_host.c_str(), &addr.sin_addr) != 1) {
    error_ = "bad bind host " + config_.bind_host;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    error_ = "bind() failed: " + std::string(std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, static_cast<int>(config_.accept_backlog) + 8) !=
      0) {
    error_ = "listen() failed";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::pipe(wake_pipe_) != 0) {
    error_ = "pipe() failed";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);

  if (store_ != nullptr) resume_tenants();

  stopped_ = false;
  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  workers_.reserve(config_.max_sessions);
  for (std::size_t i = 0; i < std::max<std::size_t>(config_.max_sessions, 1);
       ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Daemon::request_stop() noexcept {
  draining_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    const char byte = 'q';
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void Daemon::accept_loop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int rc = ::poll(fds, 2, 500);
    if (draining_.load(std::memory_order_acquire)) break;
    if (rc <= 0) continue;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    bump(&ServeStats::connections_accepted);

    // Admission happens here, before a worker is committed: the rung
    // covers both the session-slot load (active + queued) and the
    // in-flight byte load.
    std::size_t queued;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      queued = pending_.size();
    }
    const std::size_t load =
        active_sessions_.load(std::memory_order_relaxed) + queued;
    const AdmissionMode mode = admission_.decide(
        load, buffered_bytes_.load(std::memory_order_relaxed),
        /*tenant_recent_quarantines=*/0);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.ladder_transitions = admission_.transitions();
    }
    if (mode == AdmissionMode::kShed || queued >= config_.accept_backlog) {
      bump(&ServeStats::sessions_shed);
      {
        // No tenant to blame yet (the request head was never read), so
        // the shed lands in the daemon-wide health rollup.
        std::lock_guard<std::mutex> lock(tenants_mu_);
        daemon_health_.serve_sessions_shed += 1;
      }
      set_nonblocking(fd);
      write_all(fd, json_response(503, "Service Unavailable", kShedBody));
      ::close(fd);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      pending_.push_back(PendingConn{fd, mode, {}});
    }
    pending_cv_.notify_one();
  }
}

void Daemon::worker_loop() {
  for (;;) {
    PendingConn conn;
    {
      std::unique_lock<std::mutex> lock(pending_mu_);
      pending_cv_.wait(lock, [this] {
        return draining_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (pending_.empty()) {
        if (draining_.load(std::memory_order_acquire)) return;
        continue;
      }
      conn = pending_.front();
      pending_.pop_front();
    }
    handle_connection(conn.fd, conn.mode);
  }
}

void Daemon::handle_connection(int fd, AdmissionMode admitted) {
  const auto admission_start = Clock::now();
  HttpHeadParser head;
  std::uint8_t buf[16384];
  bool deadline_hit = false;
  bool peer_gone = false;

  // --- read the request head under a TOTAL deadline --------------------
  // Total, not idle: a slow-loris trickles one header byte per interval
  // and is never "idle", so the whole head gets idle_timeout_ms and not
  // a millisecond more.
  const auto head_deadline =
      admission_start +
      std::chrono::milliseconds(draining_.load(std::memory_order_acquire)
                                    ? std::min(config_.drain_grace_ms,
                                               config_.idle_timeout_ms)
                                    : config_.idle_timeout_ms);
  while (head.feed({}) == HttpHeadParser::Status::kNeedMore) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          head_deadline - Clock::now())
                          .count();
    if (left <= 0) {
      deadline_hit = true;
      break;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int rc =
        ::poll(&pfd, 1, static_cast<int>(std::min<long long>(left, 250)));
    if (rc < 0) continue;
    if (rc == 0) continue;  // deadline checked at the top
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      peer_gone = true;
      break;
    }
    const auto status =
        head.feed(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
    if (status != HttpHeadParser::Status::kNeedMore) break;
  }

  const auto head_status = head.feed({});
  if (head_status != HttpHeadParser::Status::kComplete) {
    if (head_status == HttpHeadParser::Status::kMalformed) {
      std::lock_guard<std::mutex> lock(tenants_mu_);
      // Malformed before a tenant is even known: daemon-wide health.
      daemon_health_.serve_malformed_streams += 1;
    } else if (deadline_hit) {
      std::lock_guard<std::mutex> lock(tenants_mu_);
      daemon_health_.serve_deadline_expirations += 1;
    }
    if (!peer_gone) {
      write_all(fd, json_response(400, "Bad Request",
                                  "{\"error\":\"malformed request\"}"));
    }
    ::close(fd);
    return;
  }

  const HttpRequest& req = head.request();

  // --- control plane ---------------------------------------------------
  if (req.method == "GET") {
    bump(&ServeStats::control_requests);
    std::string body;
    if (req.target == "/health") {
      body = health_json();
    } else if (req.target == "/metrics") {
      body = metrics_json();
    } else if (req.target == "/config") {
      body = config_json();
    } else {
      const std::string tenant_name = tenant_segment(req.target, "/report/");
      if (!tenant_name.empty()) body = report_json(tenant_name);
    }
    if (body.empty()) {
      write_all(fd, json_response(404, "Not Found",
                                  "{\"error\":\"unknown endpoint\"}"));
    } else {
      write_all(fd, json_response(200, "OK", body));
    }
    ::close(fd);
    return;
  }

  // --- model install ---------------------------------------------------
  const std::string model_tenant = tenant_segment(req.target, "/model/");
  if (req.method == "POST" && !model_tenant.empty()) {
    bump(&ServeStats::control_requests);
    const bool model_chunked = req.chunked();
    const auto model_length = req.content_length();
    // A model artifact is small (flattened forest + class table); cap
    // the body so a hostile client cannot buffer unbounded bytes here.
    constexpr std::uint64_t kModelBytesCap = 64ull << 20;
    if (!model_chunked && !model_length) {
      write_all(fd, json_response(411, "Length Required",
                                  "{\"error\":\"length required\"}"));
      ::close(fd);
      return;
    }
    if (model_length && *model_length > kModelBytesCap) {
      write_all(fd, json_response(413, "Payload Too Large",
                                  "{\"error\":\"model too large\"}"));
      ::close(fd);
      return;
    }
    std::vector<std::uint8_t> body;
    ChunkedDecoder model_decoder;
    std::vector<std::uint8_t> decoded_chunk;
    bool body_done = false;
    bool body_bad = false;
    const auto take = [&](std::span<const std::uint8_t> bytes) {
      if (bytes.empty() || body_bad) return;
      if (model_chunked) {
        decoded_chunk.clear();
        const auto status = model_decoder.feed(bytes, decoded_chunk);
        body.insert(body.end(), decoded_chunk.begin(), decoded_chunk.end());
        if (status == ChunkedDecoder::Status::kMalformed) body_bad = true;
        if (status == ChunkedDecoder::Status::kComplete) body_done = true;
      } else {
        body.insert(body.end(), bytes.begin(), bytes.end());
        if (body.size() >= *model_length) body_done = true;
      }
      if (body.size() > kModelBytesCap) body_bad = true;
    };
    take(head.leftover());
    if (!model_chunked && model_length && *model_length == 0) {
      body_done = true;
    }
    // Whole-body deadline: a model upload is one small artifact, so it
    // gets the same budget a request head does and not a byte more.
    const auto body_deadline =
        Clock::now() + std::chrono::milliseconds(config_.idle_timeout_ms);
    while (!body_done && !body_bad) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            body_deadline - Clock::now())
                            .count();
      if (left <= 0) break;
      pollfd pfd{fd, POLLIN, 0};
      const int rc =
          ::poll(&pfd, 1, static_cast<int>(std::min<long long>(left, 250)));
      if (rc <= 0) continue;
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
        break;
      }
      take(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
    }
    if (!body_done || body_bad) {
      write_all(fd, json_response(400, "Bad Request",
                                  "{\"error\":\"incomplete model upload\"}"));
      ::close(fd);
      return;
    }
    try {
      const std::string digest = tenant(model_tenant).detector().install(body);
      bump(&ServeStats::models_installed);
      if (obs::metrics_enabled()) {
        obs::Registry& reg = obs::Registry::global();
        reg.add(reg.counter("serve/model_installs"), 1);
      }
      report::JsonWriter w;
      w.begin_object();
      w.field("schema_version", kServeSchemaVersion);
      w.field("tenant", model_tenant);
      w.field("model_digest", digest);
      w.field("bytes", static_cast<std::uint64_t>(body.size()));
      w.end_object();
      write_all(fd, json_response(200, "OK", w.document()));
    } catch (const cache::CorruptArtifact&) {
      // A corrupt artifact never displaces the installed model.
      {
        std::lock_guard<std::mutex> lock(tenants_mu_);
        daemon_health_.cache_corrupt_artifacts += 1;
      }
      write_all(fd, json_response(400, "Bad Request",
                                  "{\"error\":\"corrupt model artifact\"}"));
    }
    ::close(fd);
    return;
  }

  // --- ingest ----------------------------------------------------------
  const std::string tenant_name = tenant_segment(req.target, "/ingest/");
  if (req.method != "POST" || tenant_name.empty()) {
    write_all(fd, json_response(404, "Not Found",
                                "{\"error\":\"unknown endpoint\"}"));
    ::close(fd);
    return;
  }
  const bool chunked = req.chunked();
  const auto content_length = req.content_length();
  if (!chunked && !content_length) {
    write_all(fd, json_response(411, "Length Required",
                                "{\"error\":\"length required\"}"));
    ::close(fd);
    return;
  }

  // A tenant with a quarantine streak re-runs admission with the fault
  // signal: the taxonomy decides whether it still deserves the rung the
  // load alone granted.
  TenantState& ten = tenant(tenant_name);
  AdmissionMode mode = admitted;
  const std::uint64_t streak = ten.quarantine_streak();
  if (streak > 0) {
    mode = admission_.decide(active_sessions_.load(std::memory_order_relaxed),
                             buffered_bytes_.load(std::memory_order_relaxed),
                             streak);
    if (mode == AdmissionMode::kShed) {
      bump(&ServeStats::sessions_shed);
      faults::CaptureHealth shed_health;
      shed_health.serve_sessions_shed = 1;
      ten.note_quarantine(shed_health, 0);
      write_all(fd, json_response(503, "Service Unavailable", kShedBody));
      ::close(fd);
      return;
    }
  }

  if (obs::metrics_enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.add(reg.histogram("serve/admission_latency_ns",
                          /*deterministic=*/false),
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - admission_start)
                    .count()));
  }

  bump(&ServeStats::sessions_started);
  active_sessions_.fetch_add(1, std::memory_order_relaxed);
  // Pin the tenant's current detection model for the whole session: a
  // concurrent hot-swap only affects sessions admitted after it.
  IngestSession session(mode, config_.session, ten.detector().current());
  ChunkedDecoder chunk_decoder;
  std::vector<std::uint8_t> decoded;
  std::uint64_t body_seen = 0;
  std::uint64_t session_buffered = 0;
  bool malformed_chunking = false;
  bool upload_done = false;

  const auto feed_session = [&](std::span<const std::uint8_t> bytes) {
    if (bytes.empty()) return;
    session_buffered += bytes.size();
    buffered_bytes_.fetch_add(bytes.size(), std::memory_order_relaxed);
    session.feed(bytes);
  };

  const auto consume = [&](std::span<const std::uint8_t> bytes) {
    if (chunked) {
      decoded.clear();
      const auto status = chunk_decoder.feed(bytes, decoded);
      feed_session(decoded);
      if (status == ChunkedDecoder::Status::kMalformed) {
        malformed_chunking = true;
      } else if (status == ChunkedDecoder::Status::kComplete) {
        upload_done = true;
      }
    } else {
      body_seen += bytes.size();
      feed_session(bytes);
      if (body_seen >= *content_length) upload_done = true;
    }
  };

  consume(head.leftover());
  auto last_byte = Clock::now();
  while (!upload_done && !malformed_chunking &&
         session.state() == IngestSession::State::kStreaming) {
    if (draining_.load(std::memory_order_acquire)) {
      const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                              Clock::now() - last_byte)
                              .count();
      if (waited > config_.drain_grace_ms) {
        session.cut(IngestSession::Cut::kDrain);
        break;
      }
    }
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, std::min(config_.idle_timeout_ms, 250));
    if (rc < 0) continue;
    if (rc == 0) {
      const auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(
                            Clock::now() - last_byte)
                            .count();
      if (idle >= config_.idle_timeout_ms) {
        session.cut(IngestSession::Cut::kDeadline);
        break;
      }
      continue;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      session.cut(IngestSession::Cut::kDisconnect);
      break;
    }
    if (n == 0) {
      // Peer closed mid-upload. For Content-Length bodies that is a
      // truncation; for chunked ones the terminal chunk never came.
      if (!upload_done) session.cut(IngestSession::Cut::kDisconnect);
      break;
    }
    last_byte = Clock::now();
    consume(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
  }

  if (malformed_chunking) {
    // Broken chunk framing quarantines the session: nothing after the
    // bad boundary is trustworthy. fold_into() below records the single
    // quarantine with this taxonomy already in the session's health.
    session.cut(IngestSession::Cut::kMalformed);
  }
  if (upload_done) session.finish();
  // A session still streaming here was cut (deadline/drain/disconnect)
  // — cut() already classified it; finish() would double-count.
  if (session.state() == IngestSession::State::kStreaming) {
    session.cut(IngestSession::Cut::kDisconnect);
  }
  session.fold_into(ten);

  const bool folded = session.state() == IngestSession::State::kComplete ||
                      session.state() == IngestSession::State::kBudgetStop;
  if (folded) {
    bump(&ServeStats::sessions_completed);
  } else {
    bump(&ServeStats::sessions_quarantined);
  }
  bump(&ServeStats::bytes_received, session.bytes_fed());
  if (obs::metrics_enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.add(reg.counter("serve/sessions_total"), 1);
    reg.add(reg.counter("serve/bytes_received"), session.bytes_fed());
    faults::record_health_metrics(session.health());
  }

  // Release the slot before answering: /health served during the
  // response write must not show this finished session as active.
  buffered_bytes_.fetch_sub(session_buffered, std::memory_order_relaxed);
  active_sessions_.fetch_sub(1, std::memory_order_relaxed);

  // Session summary response (best effort; chaos clients are often gone).
  {
    report::JsonWriter w;
    w.begin_object();
    w.field("schema_version", kServeSchemaVersion);
    w.field("tenant", tenant_name);
    w.field("mode", admission_mode_name(session.mode()));
    w.field("accepted", folded);
    w.field("packets", session.packets());
    w.field("bytes", session.bytes_fed());
    w.field("degraded", session.degraded());
    w.end_object();
    const int code = folded ? 200 : (malformed_chunking ? 400 : 422);
    const char* reason = folded          ? "OK"
                         : malformed_chunking ? "Bad Request"
                                              : "Unprocessable Entity";
    write_all(fd, json_response(code, reason, w.document()));
  }
  ::close(fd);
}

TenantState& Daemon::tenant(const std::string& name) {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto& slot = tenants_[name];
  if (slot == nullptr) slot = std::make_unique<TenantState>(name);
  return *slot;
}

void Daemon::stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  if (!running_.load(std::memory_order_acquire)) return;
  request_stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  pending_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Refuse any connection that raced into the queue after the workers
  // left: they were never admitted as sessions.
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    for (const PendingConn& conn : pending_) {
      write_all(conn.fd, json_response(503, "Service Unavailable", kShedBody));
      ::close(conn.fd);
    }
    pending_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  checkpoint_tenants();
  running_.store(false, std::memory_order_release);
}

namespace {
std::string tenant_checkpoint_key(const std::string& tenant) {
  return cache::StageKey("serve/tenant-checkpoint")
      .field("tenant", tenant)
      .hex();
}
std::string manifest_key() {
  return cache::StageKey("serve/checkpoint-manifest").hex();
}
}  // namespace

void Daemon::checkpoint_tenants() {
  if (store_ == nullptr) return;
  std::vector<TenantState*> tenants;
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    tenants.reserve(tenants_.size());
    for (auto& [name, state] : tenants_) tenants.push_back(state.get());
  }
  if (tenants.empty()) return;
  // Fan the serialization across the pool: tenants are independent and
  // ArtifactStore stores are atomic (temp file + rename).
  util::TaskPool pool(config_.jobs == 0
                          ? std::min<std::size_t>(
                                tenants.size(),
                                util::TaskPool::default_thread_count())
                          : config_.jobs);
  pool.parallel_for_each(tenants.size(), [&](std::size_t i) {
    store_->store(tenant_checkpoint_key(tenants[i]->name()),
                  tenants[i]->serialize());
  });
  cache::BinWriter manifest;
  manifest.u64(tenants.size());
  for (const TenantState* t : tenants) manifest.str(t->name());
  store_->store(manifest_key(), manifest.take());
}

void Daemon::resume_tenants() {
  const auto manifest = store_->load(manifest_key(), &daemon_health_);
  if (!manifest) return;
  try {
    cache::BinReader r(manifest->payload);
    const std::size_t count = r.length(8);
    for (std::size_t i = 0; i < count; ++i) {
      const std::string name = r.str();
      const auto artifact =
          store_->load(tenant_checkpoint_key(name), &daemon_health_);
      if (!artifact) continue;
      auto state = TenantState::restore(artifact->payload);
      std::lock_guard<std::mutex> lock(tenants_mu_);
      tenants_[name] = std::move(state);
      bump(&ServeStats::tenants_resumed);
    }
  } catch (const cache::CorruptArtifact&) {
    // A corrupt manifest/checkpoint degrades to an empty resume; the
    // load already counted cache_corrupt_artifacts.
    daemon_health_.cache_corrupt_artifacts += 1;
  }
}

ServeStats Daemon::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::string Daemon::health_json() const {
  faults::CaptureHealth rollup;
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    rollup = daemon_health_;
    for (const auto& [name, state] : tenants_) rollup.merge(state->health());
  }
  const ServeStats s = stats();
  report::JsonWriter w;
  w.begin_object();
  w.field("schema_version", kServeSchemaVersion);
  w.field("section", "serve_health");
  w.field("status",
          draining_.load(std::memory_order_acquire) ? "draining" : "serving");
  w.field("ladder_rung",
          std::string(admission_mode_name(admission_.current_rung())));
  w.field("ladder_transitions", admission_.transitions());
  w.field("active_sessions",
          static_cast<std::uint64_t>(
              active_sessions_.load(std::memory_order_relaxed)));
  w.field("buffered_bytes", buffered_bytes_.load(std::memory_order_relaxed));
  w.field("connections_accepted", s.connections_accepted);
  w.field("sessions_started", s.sessions_started);
  w.field("sessions_completed", s.sessions_completed);
  w.field("sessions_quarantined", s.sessions_quarantined);
  w.field("sessions_shed", s.sessions_shed);
  w.field("bytes_received", s.bytes_received);
  w.field("tenants_resumed", s.tenants_resumed);
  w.field("models_installed", s.models_installed);
  w.key("admission").begin_object();
  w.field("accept", admission_.decisions(AdmissionMode::kAccept));
  w.field("truncate", admission_.decisions(AdmissionMode::kTruncate));
  w.field("sample", admission_.decisions(AdmissionMode::kSample));
  w.field("shed", admission_.decisions(AdmissionMode::kShed));
  w.end_object();
  w.key("health").begin_object();
  for (const auto& [name, value] : faults::nonzero_counters(rollup)) {
    w.field(name, value);
  }
  w.end_object();
  w.end_object();
  return w.document();
}

std::string Daemon::config_json() const {
  report::JsonWriter w;
  w.begin_object();
  w.field("schema_version", kServeSchemaVersion);
  w.field("section", "serve_config");
  w.field("bind_host", config_.bind_host);
  w.field("port", static_cast<std::uint64_t>(port_));
  w.field("max_sessions", static_cast<std::uint64_t>(config_.max_sessions));
  w.field("accept_backlog",
          static_cast<std::uint64_t>(config_.accept_backlog));
  w.field("memory_budget_bytes", config_.memory_budget_bytes);
  w.field("session_byte_budget", config_.session.byte_budget);
  w.field("session_flow_budget", config_.session.flow_budget);
  w.field("max_frame_bytes",
          static_cast<std::uint64_t>(config_.session.max_frame_bytes));
  w.field("truncate_snaplen",
          static_cast<std::uint64_t>(config_.session.truncate_snaplen));
  w.field("sample_keep_1_in",
          static_cast<std::uint64_t>(config_.session.sample_keep_1_in));
  w.field("session_transforms", config_.session.transforms.spec());
  w.field("idle_timeout_ms",
          static_cast<std::int64_t>(config_.idle_timeout_ms));
  w.field("drain_grace_ms",
          static_cast<std::int64_t>(config_.drain_grace_ms));
  w.field("checkpoint_dir", config_.checkpoint_dir);
  w.key("ladder").begin_object();
  w.field("truncate_at", config_.thresholds.truncate_at);
  w.field("sample_at", config_.thresholds.sample_at);
  w.field("shed_at", config_.thresholds.shed_at);
  w.end_object();
  w.end_object();
  return w.document();
}

std::string Daemon::metrics_json() const {
  return obs::profile_json(obs::Registry::global().snapshot());
}

std::string Daemon::report_json(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? std::string() : it->second->report_json();
}

std::vector<std::string> Daemon::tenants() const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, state] : tenants_) names.push_back(name);
  return names;
}

std::string batch_report_json(const std::string& tenant,
                              std::span<const std::uint8_t> pcap_bytes,
                              const SessionLimits& limits,
                              std::span<const std::uint8_t> model_bytes) {
  TenantState state(tenant);
  if (!model_bytes.empty()) state.detector().install(model_bytes);
  IngestSession session(AdmissionMode::kAccept, limits,
                        state.detector().current());
  session.feed(pcap_bytes);
  session.finish();
  session.fold_into(state);
  return state.report_json();
}

}  // namespace iotx::serve
