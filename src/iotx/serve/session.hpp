// One upload session: the bounded, degradable unit of ingest.
//
// A session owns its own DNS cache, flow table, pipeline, and stream
// decoder — per-session memory is bounded by the byte/flow budgets and
// nothing survives the session except the folded FlowSummary rows. The
// admission mode fixes the fidelity for the session's whole lifetime:
// kTruncate snaplen-clips frames before the pipeline, kSample ingests
// 1-in-N packets. Every degradation is counted in the session's
// CaptureHealth, so the tenant report says truthfully what was traded.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "iotx/faults/transform.hpp"
#include "iotx/flow/dns_cache.hpp"
#include "iotx/flow/flow_table.hpp"
#include "iotx/flow/ingest.hpp"
#include "iotx/flow/traffic_unit.hpp"
#include "iotx/serve/admission.hpp"
#include "iotx/serve/detector.hpp"
#include "iotx/serve/pcap_stream.hpp"
#include "iotx/serve/tenant.hpp"

namespace iotx::serve {

/// Per-session bounds; defaults are the daemon's defaults.
struct SessionLimits {
  std::uint64_t byte_budget = 64ull << 20;   ///< raw upload bytes
  std::uint64_t flow_budget = 4096;          ///< distinct flows
  std::uint32_t max_frame_bytes = 1u << 20;  ///< pcap record incl_len cap
  std::uint32_t truncate_snaplen = 256;      ///< kTruncate clip length
  std::uint32_t sample_keep_1_in = 4;        ///< kSample keep rate
  /// Capture-transform chain applied to each upload before analysis
  /// (the live-ingest face of `--transform`/`--shape`). Empty — the
  /// default — keeps the zero-copy streaming path: views go straight
  /// into the pipeline with no buffering. An enabled chain buffers the
  /// session's admitted packets and transforms them at finish() under a
  /// fixed seed, so the same upload bytes always yield the same shaped
  /// stream.
  faults::TransformChain transforms;
};

class IngestSession {
 public:
  enum class State {
    kStreaming,    ///< accepting bytes
    kComplete,     ///< finish() on a record boundary
    kBudgetStop,   ///< byte/flow budget hit; valid prefix kept
    kQuarantined,  ///< malformed/oversized/cut stream; flows discarded
  };

  /// `model` (optional) is the detection model pinned for this whole
  /// session — sessions never observe a mid-stream hot-swap. When set,
  /// the pipeline also collects the model device's packet meta and
  /// fold_into() runs the streaming detector over it.
  IngestSession(AdmissionMode mode, SessionLimits limits,
                std::shared_ptr<const DetectorModel> model = nullptr);

  /// Feeds decoded upload bytes (post chunked-decoding). Returns false
  /// once the session stopped consuming (budget hit or quarantined) —
  /// the caller should stop reading the connection.
  bool feed(std::span<const std::uint8_t> bytes);

  /// Marks the upload finished (client sent its last byte). A stream
  /// that does not end on a pcap record boundary is quarantined: a
  /// half-record means the client died mid-write and everything after
  /// the last whole frame is unattributable.
  void finish();

  /// Marks the session cut by an external event; quarantines it and
  /// counts the given taxonomy slot. kMalformed covers transport-layer
  /// framing violations (broken chunked encoding) the decoder cannot
  /// see itself.
  enum class Cut { kDeadline, kDisconnect, kDrain, kMalformed };
  void cut(Cut reason);

  State state() const { return state_; }
  AdmissionMode mode() const { return mode_; }
  std::uint64_t bytes_fed() const { return bytes_fed_; }
  std::uint64_t packets() const { return decoder_.packets(); }

  /// The session's full health rollup (decoder + pipeline + sinks +
  /// serve-layer counters).
  faults::CaptureHealth health() const;

  /// True when any anomaly or deliberate degradation was recorded.
  bool degraded() const;

  /// Classifies the session's flows into report rows (resolving peer
  /// names through the session's DNS cache). Empty for quarantined
  /// sessions.
  std::vector<FlowSummary> flow_summaries() const;

  /// Encryption byte accounting over the session's flows.
  analysis::EncryptionBytes encryption() const;

  /// Classifies the session's traffic units through the pinned model
  /// (the shared batch/live detection path). Empty when no model is
  /// pinned or the session quarantined.
  DetectionOutcome detections() const;

  /// Folds the finished session into its tenant: completed sessions
  /// contribute flows + encryption + health; quarantined ones health
  /// only. Call exactly once, after finish()/cut().
  void fold_into(TenantState& tenant) const;

 private:
  void on_view(const net::PacketView& view);
  /// Applies the transform chain to the buffered packets and ingests
  /// them; no-op when the chain is disabled. Called once, right before
  /// the pipeline finishes.
  void flush_shaped();

  AdmissionMode mode_;
  SessionLimits limits_;
  State state_ = State::kStreaming;
  std::shared_ptr<const DetectorModel> model_;
  std::optional<flow::MetaCollector> device_meta_;  ///< set iff model_
  flow::DnsCache dns_;
  flow::FlowTable table_;
  flow::IngestPipeline pipeline_;
  PcapStreamDecoder decoder_;
  faults::CaptureHealth serve_health_;  ///< serve-layer counters only
  /// Admitted packets awaiting the transform chain; only populated when
  /// limits_.transforms is enabled.
  std::vector<net::Packet> buffered_;
  std::uint64_t bytes_fed_ = 0;
  std::uint64_t packet_index_ = 0;
};

}  // namespace iotx::serve
