// The always-on ingest daemon (`iotx serve`): accepts concurrent
// capture-stream uploads from many gateways over HTTP, feeds each
// session straight into a per-tenant ingest pipeline, and exposes a
// small control plane. Robustness is the point: every session is
// bounded (byte/flow budgets, read/idle deadlines), overload walks the
// explicit degradation ladder (admission.hpp), malformed input
// quarantines the session — never the process — and SIGTERM drains
// in-flight work and checkpoints per-tenant state through the
// ArtifactStore so a restarted daemon resumes mid-campaign.
//
// Endpoint registry:
//   POST /ingest/<tenant>   chunked or Content-Length pcap upload
//   POST /model/<tenant>    install/hot-swap the tenant's detection
//                           model (DetectorModel artifact bytes)
//   GET  /health            ServeHealth + CaptureHealth rollup
//   GET  /metrics           obs registry snapshot (profile.json shape)
//   GET  /report/<tenant>   the tenant's accumulated report
//   GET  /config            the running ServeConfig
//
// Threading model: one accept thread plus a fixed pool of connection
// workers (the session cap doubles as the thread bound); tenant folds
// are serialized per tenant by TenantState's lock, and the drain-time
// checkpoint fans tenants across a util::TaskPool. Everything joins in
// stop(), so the daemon is leak-free under ASan by construction.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "iotx/cache/artifact_store.hpp"
#include "iotx/serve/admission.hpp"
#include "iotx/serve/session.hpp"
#include "iotx/serve/tenant.hpp"

namespace iotx::serve {

struct ServeConfig {
  std::string bind_host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via Daemon::port())
  /// Concurrent upload sessions; also the connection-worker thread count
  /// and the denominator of the ladder's session-load signal.
  std::size_t max_sessions = 8;
  /// Accepted-but-unclaimed connections beyond which new ones shed.
  std::size_t accept_backlog = 16;
  /// Aggregate in-flight upload bytes driving the ladder's memory load.
  std::uint64_t memory_budget_bytes = 256ull << 20;
  SessionLimits session;
  AdmissionThresholds thresholds;
  /// One poll() wait on an idle connection; bounds how long a
  /// slow-loris can hold a worker without sending a byte.
  int idle_timeout_ms = 5000;
  /// Grace given to in-flight sessions during drain before they are cut.
  int drain_grace_ms = 2000;
  /// Non-empty: checkpoint tenants here on stop() and resume on start().
  std::string checkpoint_dir;
  /// TaskPool threads for the drain-time checkpoint fan-out (0 = auto).
  std::size_t jobs = 0;
};

/// Aggregate daemon counters served by /health (and mirrored into the
/// obs registry as they change).
struct ServeStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t sessions_started = 0;
  std::uint64_t sessions_completed = 0;
  std::uint64_t sessions_quarantined = 0;
  std::uint64_t sessions_shed = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t control_requests = 0;
  std::uint64_t ladder_transitions = 0;
  std::uint64_t tenants_resumed = 0;
  std::uint64_t models_installed = 0;  ///< accepted POST /model/<tenant>
};

class Daemon {
 public:
  explicit Daemon(ServeConfig config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds, listens, resumes checkpointed tenants (when a checkpoint
  /// dir is configured), and spawns the accept + worker threads.
  /// Returns false (with error() set) when the socket setup fails.
  bool start();

  /// The bound port (after start()); useful with port 0.
  std::uint16_t port() const { return port_; }

  /// Async-signal-safe stop trigger: writes the wake pipe. The actual
  /// drain happens on whatever thread calls stop()/~Daemon.
  void request_stop() noexcept;

  /// Drains: stops accepting, gives in-flight sessions drain_grace_ms
  /// to finish (then cuts them as drained), joins every thread, and
  /// checkpoints tenants through the ArtifactStore. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  const std::string& error() const { return error_; }

  ServeStats stats() const;
  AdmissionMode current_rung() const { return admission_.current_rung(); }

  /// Control-plane documents (also served over HTTP).
  std::string health_json() const;
  std::string config_json() const;
  std::string metrics_json() const;
  /// Empty when the tenant is unknown.
  std::string report_json(const std::string& tenant) const;

  /// Tenants with state (alphabetical).
  std::vector<std::string> tenants() const;

 private:
  struct PendingConn {
    int fd = -1;
    AdmissionMode mode = AdmissionMode::kAccept;
    std::string tenant_hint;
  };

  void accept_loop();
  void worker_loop();
  void handle_connection(int fd, AdmissionMode admitted);
  TenantState& tenant(const std::string& name);
  void checkpoint_tenants();
  void resume_tenants();
  void bump(std::uint64_t ServeStats::*field, std::uint64_t delta = 1);

  ServeConfig config_;
  AdmissionController admission_;
  std::unique_ptr<cache::ArtifactStore> store_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::string error_;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<std::size_t> active_sessions_{0};
  std::atomic<std::uint64_t> buffered_bytes_{0};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::deque<PendingConn> pending_;
  mutable std::mutex pending_mu_;
  std::condition_variable pending_cv_;

  mutable std::mutex tenants_mu_;
  std::map<std::string, std::unique_ptr<TenantState>> tenants_;
  /// Faults with no tenant to blame (malformed heads, shed connections,
  /// corrupt checkpoints); merged into the /health rollup. Guarded by
  /// tenants_mu_.
  faults::CaptureHealth daemon_health_;

  mutable std::mutex stats_mu_;
  ServeStats stats_;

  std::mutex stop_mu_;
  bool stopped_ = false;
};

/// Batch reference path: runs pcap file bytes through the identical
/// session/fold machinery (one clean full-fidelity session) and returns
/// the tenant report — what the daemon would serve after streaming the
/// same bytes. The serve-smoke CI job diffs this against a streamed
/// upload; the two must be byte-identical. A non-empty `model_bytes`
/// installs a DetectorModel artifact first, so the report carries the
/// same detections block a live daemon with that model produces.
std::string batch_report_json(const std::string& tenant,
                              std::span<const std::uint8_t> pcap_bytes,
                              const SessionLimits& limits = {},
                              std::span<const std::uint8_t> model_bytes = {});

}  // namespace iotx::serve
