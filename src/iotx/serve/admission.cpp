#include "iotx/serve/admission.hpp"

#include <algorithm>

#include "iotx/obs/registry.hpp"

namespace iotx::serve {

std::string_view admission_mode_name(AdmissionMode mode) noexcept {
  switch (mode) {
    case AdmissionMode::kAccept: return "accept";
    case AdmissionMode::kTruncate: return "truncate";
    case AdmissionMode::kSample: return "sample";
    case AdmissionMode::kShed: return "shed";
  }
  return "?";
}

AdmissionController::AdmissionController(std::size_t max_sessions,
                                         std::uint64_t memory_budget_bytes,
                                         AdmissionThresholds thresholds)
    : max_sessions_(std::max<std::size_t>(max_sessions, 1)),
      memory_budget_(std::max<std::uint64_t>(memory_budget_bytes, 1)),
      thresholds_(thresholds) {}

AdmissionMode AdmissionController::decide(
    std::size_t active_sessions, std::uint64_t buffered_bytes,
    std::uint64_t tenant_recent_quarantines) {
  const double session_load =
      static_cast<double>(active_sessions) / static_cast<double>(max_sessions_);
  const double memory_load =
      static_cast<double>(buffered_bytes) / static_cast<double>(memory_budget_);
  const double load = std::max(session_load, memory_load);

  int rung = 0;
  if (load >= thresholds_.shed_at) {
    rung = 3;
  } else if (load >= thresholds_.sample_at) {
    rung = 2;
  } else if (load >= thresholds_.truncate_at) {
    rung = 1;
  }
  // Fault-taxonomy signal: a tenant that just produced quarantined
  // streams does not get another full-fidelity slot while anything else
  // is contending for them.
  if (tenant_recent_quarantines > 0 && rung < 3) rung += 1;

  const auto mode = static_cast<AdmissionMode>(rung);
  const std::uint8_t prev =
      rung_.exchange(static_cast<std::uint8_t>(rung), std::memory_order_relaxed);
  const bool transitioned = prev != static_cast<std::uint8_t>(rung);
  if (transitioned) transitions_.fetch_add(1, std::memory_order_relaxed);
  decided_[rung].fetch_add(1, std::memory_order_relaxed);

  if (obs::metrics_enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.add(reg.counter(std::string("serve/admission_") +
                        std::string(admission_mode_name(mode))),
            1);
    if (transitioned) reg.add(reg.counter("serve/ladder_transitions"), 1);
    reg.add(reg.maximum("serve/peak_load_permille"),
            static_cast<std::uint64_t>(load * 1000.0));
  }
  return mode;
}

}  // namespace iotx::serve
