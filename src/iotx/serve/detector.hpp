// Live activity detection for the ingest daemon — the online driver of
// the shared feature/model pipeline (paper §7.1 applied to streamed
// captures).
//
// A DetectorModel is the deployable per-device artifact: the flattened
// forest (ml::FlatForest) plus everything the §7.1 filter needs —
// class names, per-class CV F1, detector thresholds, and the device
// MAC that attributes frames on the live path. It implements
// analysis::UnitModel, so the exact same StreamingDetector +
// classify_unit code classifies a unit whether the bytes arrived as a
// pcap file (`iotx classify --detect`) or as a streamed upload; the
// two outputs are byte-identical over the same capture bytes.
//
// A Detector is the per-tenant hot-swap holder: install() parses,
// validates, and atomically publishes an immutable model
// (std::shared_ptr swap keyed by the artifact's SHA-256 digest).
// Sessions pin the current model at admission and keep it for their
// whole lifetime, so a mid-stream swap changes which model future
// sessions use without ever tearing a running classification.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "iotx/analysis/inference.hpp"
#include "iotx/analysis/unexpected.hpp"
#include "iotx/ml/flat_forest.hpp"
#include "iotx/net/address.hpp"

namespace iotx::serve {

class DetectorModel final : public analysis::UnitModel {
 public:
  DetectorModel() = default;

  /// Compiles a deployable model from a trained batch ActivityModel:
  /// flattens the forest, copies the class table and validation F1s,
  /// and stamps the device MAC used to attribute live frames.
  static DetectorModel from_activity_model(
      const testbed::DeviceSpec& device, const analysis::ActivityModel& model,
      const analysis::DetectorParams& params = {});

  // analysis::UnitModel — the serve-path adapter of the shared filter.
  bool ready() const override;
  std::size_t class_count() const override;
  std::string_view class_name(std::size_t cls) const override;
  double class_f1(std::size_t cls) const override;
  std::vector<double> predict_proba(
      std::span<const double> features) const override;

  const std::string& device_id() const noexcept { return device_id_; }
  net::MacAddress device_mac() const noexcept { return mac_; }
  const analysis::DetectorParams& params() const noexcept { return params_; }
  const ml::FlatForest& forest() const noexcept { return forest_; }
  /// SHA-256 hex of serialize()'s bytes; set by parse()/install.
  const std::string& digest() const noexcept { return digest_; }

  /// Versioned artifact bytes (cache::BinWriter format; exact binary
  /// round-trip — a parsed model votes identically).
  std::vector<std::uint8_t> serialize() const;
  /// Parses and validates artifact bytes and computes their digest.
  /// Throws cache::CorruptArtifact on truncated/bit-flipped payloads.
  static DetectorModel parse(std::span<const std::uint8_t> bytes);

 private:
  std::string device_id_;
  net::MacAddress mac_{};
  std::vector<std::string> class_names_;
  std::vector<double> f1_;
  analysis::DetectorParams params_;
  ml::FlatForest forest_;
  std::string digest_;
};

/// Per-tenant model slot with atomic hot-swap (see file header).
class Detector {
 public:
  /// Parses + publishes; returns the model digest. Throws
  /// cache::CorruptArtifact (the previous model stays installed).
  std::string install(std::span<const std::uint8_t> bytes);
  void install(std::shared_ptr<const DetectorModel> model);

  /// The currently installed model; nullptr when none. Pin once per
  /// session — the returned model is immutable.
  std::shared_ptr<const DetectorModel> current() const;
  /// Digest of the installed model; empty when none.
  std::string digest() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const DetectorModel> model_;
};

/// What one capture's worth of traffic units classified to.
struct DetectionOutcome {
  std::vector<analysis::Detection> detections;
  std::uint64_t units_total = 0;       ///< units of >= min_unit_packets
  std::uint64_t units_classified = 0;  ///< units the filter labeled
};

/// Drives the shared StreamingDetector over timestamp-sorted device
/// meta — the single detection path behind both `iotx classify
/// --detect` and the daemon's session fold. Records serve/detect_*
/// metrics (unit/detection counters, per-unit latency histogram) when
/// metrics are enabled.
DetectionOutcome run_detector(const DetectorModel& model,
                              const std::vector<flow::PacketMeta>& meta);

}  // namespace iotx::serve
