// Minimal incremental HTTP/1.1 machinery for the ingest daemon — just
// enough protocol to accept chunked capture-stream uploads and answer
// the control-plane endpoints, built to survive hostile input: every
// parse step is bounded (header bytes, chunk-size digits, chunk size)
// and every violation is a typed error the caller maps to a quarantine,
// never an exception escaping to the connection loop.
//
// No external dependency by design (the container bakes in only the C++
// toolchain); the daemon's tests throw malformed byte streams at these
// parsers directly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace iotx::serve {

/// Hard cap on the request head (request line + headers). A client that
/// sends more without a blank line is slow-lorising or confused; the
/// connection is rejected either way.
inline constexpr std::size_t kMaxHeaderBytes = 8192;

/// Hard cap on one chunk of a chunked upload. Catches absurd chunk-size
/// lines ("ffffffffffffffff\r\n") before any buffer is sized from them.
inline constexpr std::uint64_t kMaxChunkBytes = 16ull << 20;

/// One parsed request head. Header names are lowercased; values keep
/// their bytes (trimmed of surrounding whitespace).
struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;
  std::map<std::string, std::string> headers;

  /// Header value or empty string_view when absent.
  std::string_view header(std::string_view name) const;
  bool chunked() const;
  /// Content-Length when present and a valid decimal; nullopt otherwise.
  std::optional<std::uint64_t> content_length() const;
};

/// Incremental request-head parser: feed() bytes as they arrive; the
/// parser buffers until the terminating blank line, then exposes the
/// request plus any body bytes that trailed the head in the same read.
class HttpHeadParser {
 public:
  enum class Status {
    kNeedMore,   ///< no blank line yet; keep feeding
    kComplete,   ///< request() is valid, leftover() holds body bytes
    kMalformed,  ///< bad request line/header or head exceeded the cap
  };

  Status feed(std::span<const std::uint8_t> bytes);

  const HttpRequest& request() const { return request_; }
  /// Bytes fed after the blank line (the start of the body).
  std::span<const std::uint8_t> leftover() const {
    return {buffer_.data() + head_end_, buffer_.size() - head_end_};
  }

 private:
  Status parse_head();

  std::vector<std::uint8_t> buffer_;
  std::size_t head_end_ = 0;
  HttpRequest request_;
  Status status_ = Status::kNeedMore;
};

/// Incremental chunked-transfer-encoding decoder. Decoded body bytes are
/// appended to the caller's sink via the out parameter so one upload
/// does not accumulate in the decoder.
class ChunkedDecoder {
 public:
  enum class Status {
    kNeedMore,   ///< mid-stream, keep feeding
    kComplete,   ///< terminal 0-chunk (and trailer terminator) consumed
    kMalformed,  ///< bad size line, missing CRLF, oversized chunk
  };

  /// Consumes `bytes`, appending decoded payload to `out`. Once
  /// kComplete or kMalformed is returned the decoder stays in that
  /// state; further bytes are ignored.
  Status feed(std::span<const std::uint8_t> bytes,
              std::vector<std::uint8_t>& out);

  Status status() const { return status_; }
  std::uint64_t decoded_bytes() const { return decoded_; }

 private:
  enum class State { kSizeLine, kData, kDataCrlf, kTrailer };

  State state_ = State::kSizeLine;
  Status status_ = Status::kNeedMore;
  std::string size_line_;
  std::uint64_t remaining_ = 0;
  std::uint64_t decoded_ = 0;
  std::string trailer_tail_;  // last bytes seen while scanning for CRLFCRLF
};

/// Serializes a response with Connection: close and a Content-Length.
std::string http_response(int status_code, std::string_view reason,
                          std::string_view content_type,
                          std::string_view body);

/// Convenience wrapper: a JSON body with the matching content type.
std::string json_response(int status_code, std::string_view reason,
                          std::string_view body);

}  // namespace iotx::serve
