// Chaos client harness for the ingest daemon: a plain-socket HTTP
// client plus the hostile-client scenarios the robustness suite (and
// the `chaos_client` CLI used by the CI serve-smoke job) throws at a
// live daemon — slow-loris heads, mid-stream disconnects, malformed
// chunked framing, oversized pcap records, tenant floods. Every
// scenario returns what the daemon answered (or that it answered
// nothing), never throws: a chaos run's assertion is that the *daemon*
// stays alive, so the client must be unconditionally well-behaved
// about its own failures.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace iotx::serve {

/// Outcome of one chaos interaction.
struct ChaosResult {
  bool connected = false;
  /// Every byte the scenario intended to send was accepted by the
  /// socket (false when the daemon closed on us first — for several
  /// scenarios that is the expected defence).
  bool sent_all = false;
  /// HTTP status of the daemon's response; 0 when none arrived.
  int status_code = 0;
  std::string body;
};

class ChaosClient {
 public:
  ChaosClient(std::string host, std::uint16_t port)
      : host_(std::move(host)), port_(port) {}

  /// Clean chunked upload of pcap bytes to POST /ingest/<tenant>.
  ChaosResult upload_chunked(const std::string& tenant,
                             std::span<const std::uint8_t> pcap_bytes,
                             std::size_t chunk_size = 4096);

  /// Clean Content-Length upload.
  ChaosResult upload_identity(const std::string& tenant,
                              std::span<const std::uint8_t> pcap_bytes);

  /// Content-Length POST of arbitrary bytes to any path — how the
  /// harness installs DetectorModel artifacts via POST /model/<tenant>.
  ChaosResult post(const std::string& path,
                   std::span<const std::uint8_t> body);

  /// GET a control-plane path ("/health", "/report/<tenant>", ...).
  ChaosResult get(const std::string& path);

  // --- hostile scenarios ----------------------------------------------

  /// Opens a connection and trickles an unterminated request head one
  /// byte per `trickle_ms` until the daemon hangs up or `max_bytes`
  /// are sent. A healthy daemon cuts us at its idle deadline.
  ChaosResult slow_loris(int trickle_ms, std::size_t max_bytes);

  /// Starts a chunked upload, sends `keep` bytes of the body, then
  /// hard-closes mid-stream.
  ChaosResult disconnect_midstream(const std::string& tenant,
                                   std::span<const std::uint8_t> pcap_bytes,
                                   std::size_t keep);

  /// Chunked upload whose second chunk lies about its size (data not
  /// followed by CRLF): the framing violation that must quarantine the
  /// session, not the process.
  ChaosResult malformed_chunked(const std::string& tenant);

  /// Sends bytes that are not HTTP at all.
  ChaosResult garbage_head();

  /// Uploads a pcap whose record header announces a frame far past the
  /// daemon's max-frame cap.
  ChaosResult oversized_frame(const std::string& tenant);

 private:
  int connect_socket() const;

  std::string host_;
  std::uint16_t port_;
};

/// A valid pcap byte stream whose single record announces `incl_len`
/// (default far past any sane frame cap) with only `actual` bytes of
/// frame behind it — the oversized-frame scenario's payload, exposed so
/// decoder unit tests can reuse it.
std::vector<std::uint8_t> oversized_frame_pcap(
    std::uint32_t incl_len = 512u << 20, std::size_t actual = 64);

}  // namespace iotx::serve
