#include "iotx/serve/http.hpp"

#include <algorithm>
#include <cctype>

namespace iotx::serve {

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::string_view HttpRequest::header(std::string_view name) const {
  const auto it = headers.find(lower(name));
  return it == headers.end() ? std::string_view{} : std::string_view(it->second);
}

bool HttpRequest::chunked() const {
  return lower(header("transfer-encoding")).find("chunked") !=
         std::string::npos;
}

std::optional<std::uint64_t> HttpRequest::content_length() const {
  const std::string_view v = header("content-length");
  if (v.empty() || v.size() > 19) return std::nullopt;
  std::uint64_t n = 0;
  for (const char c : v) {
    if (c < '0' || c > '9') return std::nullopt;
    n = n * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return n;
}

HttpHeadParser::Status HttpHeadParser::feed(
    std::span<const std::uint8_t> bytes) {
  if (status_ != Status::kNeedMore) return status_;
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  // Find the first blank line; accept both CRLF and bare-LF endings (real
  // gateway scripts emit both).
  for (std::size_t i = head_end_ == 0 ? 0 : head_end_; i < buffer_.size();
       ++i) {
    if (buffer_[i] != '\n') continue;
    const bool crlf_blank =
        i >= 3 && buffer_[i - 1] == '\r' && buffer_[i - 2] == '\n';
    const bool lf_blank = i >= 1 && buffer_[i - 1] == '\n';
    if (crlf_blank || lf_blank) {
      head_end_ = i + 1;
      status_ = parse_head();
      return status_;
    }
  }
  if (buffer_.size() > kMaxHeaderBytes) status_ = Status::kMalformed;
  return status_;
}

HttpHeadParser::Status HttpHeadParser::parse_head() {
  const std::string_view head(reinterpret_cast<const char*>(buffer_.data()),
                              head_end_);
  if (head.size() > kMaxHeaderBytes) return Status::kMalformed;
  std::size_t pos = 0;
  bool first = true;
  while (pos < head.size()) {
    std::size_t eol = head.find('\n', pos);
    if (eol == std::string_view::npos) break;
    std::string_view line = head.substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    pos = eol + 1;
    if (line.empty()) break;  // blank line: end of head
    if (first) {
      first = false;
      const std::size_t sp1 = line.find(' ');
      const std::size_t sp2 =
          sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
      if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
        return Status::kMalformed;
      }
      request_.method = std::string(line.substr(0, sp1));
      request_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
      request_.version = std::string(line.substr(sp2 + 1));
      if (request_.method.empty() || request_.target.empty() ||
          request_.version.rfind("HTTP/", 0) != 0) {
        return Status::kMalformed;
      }
      continue;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::kMalformed;
    }
    request_.headers[lower(trim(line.substr(0, colon)))] =
        std::string(trim(line.substr(colon + 1)));
  }
  if (first) return Status::kMalformed;  // no request line at all
  return Status::kComplete;
}

ChunkedDecoder::Status ChunkedDecoder::feed(std::span<const std::uint8_t> bytes,
                                            std::vector<std::uint8_t>& out) {
  std::size_t i = 0;
  while (status_ == Status::kNeedMore && i < bytes.size()) {
    switch (state_) {
      case State::kSizeLine: {
        const char c = static_cast<char>(bytes[i++]);
        if (c == '\n') {
          // Strip trailing CR and any chunk extension (";ext=...").
          std::string line = size_line_;
          size_line_.clear();
          if (!line.empty() && line.back() == '\r') line.pop_back();
          const std::size_t semi = line.find(';');
          if (semi != std::string::npos) line.resize(semi);
          if (line.empty() || line.size() > 8) {
            // >8 hex digits means >4 GiB in one chunk: hostile.
            status_ = Status::kMalformed;
            break;
          }
          std::uint64_t size = 0;
          for (const char d : line) {
            int v;
            if (d >= '0' && d <= '9') {
              v = d - '0';
            } else if (d >= 'a' && d <= 'f') {
              v = d - 'a' + 10;
            } else if (d >= 'A' && d <= 'F') {
              v = d - 'A' + 10;
            } else {
              status_ = Status::kMalformed;
              break;
            }
            size = (size << 4) | static_cast<std::uint64_t>(v);
          }
          if (status_ == Status::kMalformed) break;
          if (size > kMaxChunkBytes) {
            status_ = Status::kMalformed;
            break;
          }
          if (size == 0) {
            state_ = State::kTrailer;
            trailer_tail_.clear();
          } else {
            remaining_ = size;
            state_ = State::kData;
          }
        } else {
          size_line_.push_back(c);
          if (size_line_.size() > 16) status_ = Status::kMalformed;
        }
        break;
      }
      case State::kData: {
        const std::size_t take = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining_, bytes.size() - i));
        out.insert(out.end(), bytes.begin() + static_cast<std::ptrdiff_t>(i),
                   bytes.begin() + static_cast<std::ptrdiff_t>(i + take));
        decoded_ += take;
        remaining_ -= take;
        i += take;
        if (remaining_ == 0) state_ = State::kDataCrlf;
        break;
      }
      case State::kDataCrlf: {
        const char c = static_cast<char>(bytes[i++]);
        if (c == '\r') break;  // wait for the LF
        if (c == '\n') {
          state_ = State::kSizeLine;
        } else {
          // Data not followed by CRLF: the framing is broken and every
          // later boundary would be a guess.
          status_ = Status::kMalformed;
        }
        break;
      }
      case State::kTrailer: {
        // After the 0-chunk: either an immediate CRLF (no trailers) or
        // trailer lines ending with a blank line.
        const char c = static_cast<char>(bytes[i++]);
        trailer_tail_.push_back(c);
        if (trailer_tail_.size() > kMaxHeaderBytes) {
          status_ = Status::kMalformed;
          break;
        }
        if (c != '\n') break;
        const std::string& t = trailer_tail_;
        const bool done =
            t == "\n" || t == "\r\n" ||
            (t.size() >= 2 && t[t.size() - 2] == '\n') ||
            (t.size() >= 3 && t.compare(t.size() - 3, 3, "\n\r\n") == 0);
        if (done) status_ = Status::kComplete;
        break;
      }
    }
  }
  return status_;
}

std::string http_response(int status_code, std::string_view reason,
                          std::string_view content_type,
                          std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status_code) + " " +
                    std::string(reason) + "\r\n";
  out += "Content-Type: " + std::string(content_type) + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

std::string json_response(int status_code, std::string_view reason,
                          std::string_view body) {
  return http_response(status_code, reason, "application/json", body);
}

}  // namespace iotx::serve
