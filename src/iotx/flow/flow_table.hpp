// Flow aggregation: groups packets into bidirectional 5-tuple flows and
// accumulates everything the analyses need — byte/packet counts per
// direction, payload samples (for entropy/PII/SNI), protocol and encoding
// identification, and the raw size/timing series used as ML features.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "iotx/faults/health.hpp"
#include "iotx/flow/ingest.hpp"
#include "iotx/net/packet.hpp"
#include "iotx/proto/identify.hpp"

namespace iotx::flow {

/// Canonical bidirectional 5-tuple: endpoint A is the numerically smaller
/// (ip, port) pair so both directions map to the same key.
struct FlowKey {
  net::Ipv4Address ip_a;
  net::Ipv4Address ip_b;
  std::uint16_t port_a = 0;
  std::uint16_t port_b = 0;
  std::uint8_t protocol = 0;

  /// Builds the canonical key for a packet.
  static FlowKey from_packet(const net::DecodedPacket& p) noexcept;

  bool operator==(const FlowKey&) const = default;
};

/// Per-direction accumulation.
struct DirectionStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;          ///< frame bytes
  std::uint64_t payload_bytes = 0;  ///< L4 payload bytes
  std::vector<double> sizes;        ///< frame size per packet
  std::vector<double> timestamps;   ///< arrival time per packet

  bool operator==(const DirectionStats&) const = default;
};

/// A bidirectional flow. "up" is initiator -> responder, where the
/// initiator is the source of the first packet observed.
struct Flow {
  FlowKey key;
  net::Ipv4Address initiator;
  net::Ipv4Address responder;
  std::uint16_t initiator_port = 0;
  std::uint16_t responder_port = 0;
  double first_ts = 0.0;
  double last_ts = 0.0;
  DirectionStats up;
  DirectionStats down;

  proto::ProtocolId protocol = proto::ProtocolId::kUnknown;
  proto::ContentEncoding encoding = proto::ContentEncoding::kNone;
  std::string sni;        ///< from the first ClientHello, when TLS
  std::string http_host;  ///< from the first HTTP request, when HTTP

  /// Payload samples, concatenated in arrival order up to kPayloadSampleCap,
  /// used for entropy classification and PII scanning.
  std::vector<std::uint8_t> payload_sample_up;
  std::vector<std::uint8_t> payload_sample_down;
  static constexpr std::size_t kPayloadSampleCap = 1 << 17;  // 128 KiB

  std::uint64_t total_bytes() const noexcept { return up.bytes + down.bytes; }
  std::uint64_t total_packets() const noexcept {
    return up.packets + down.packets;
  }
  std::uint64_t total_payload_bytes() const noexcept {
    return up.payload_bytes + down.payload_bytes;
  }

  bool operator==(const Flow&) const = default;
};

/// Accumulates packets into flows. Also a PacketSink, so it can ride an
/// IngestPipeline and share one decode pass with the other consumers.
class FlowTable : public PacketSink {
 public:
  /// Folds one decoded packet into its flow.
  void ingest(const net::DecodedPacket& packet);

  void on_packet(const net::DecodedPacket& packet) override {
    ingest(packet);
  }

  /// All flows, in first-seen order.
  std::vector<Flow> flows() const;

  std::size_t size() const noexcept { return order_.size(); }

  /// Ingest anomalies seen so far: undecodable frames plus protocol
  /// payloads that announced themselves (TLS ClientHello record, HTTP
  /// request line) but failed to parse.
  const faults::CaptureHealth& health() const noexcept { return health_; }

 private:
  struct Hash {
    std::size_t operator()(const FlowKey& k) const noexcept;
  };
  std::unordered_map<FlowKey, Flow, Hash> table_;
  std::vector<FlowKey> order_;
  faults::CaptureHealth health_;
};

}  // namespace iotx::flow
