// TCP stream reassembly: orders segments by sequence number, tolerates
// duplicates/retransmissions and out-of-order arrival, and exposes the
// contiguous byte stream per direction.
//
// The flow table samples payload bytes in arrival order, which is enough
// for entropy statistics; protocol fields that span segment boundaries
// (a ClientHello split across two packets, an HTTP header crossing MSS)
// need true in-order reassembly. This class provides it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "iotx/faults/health.hpp"
#include "iotx/flow/ingest.hpp"
#include "iotx/net/packet.hpp"

namespace iotx::flow {

/// Reassembles one direction of one TCP connection.
class TcpStreamReassembler {
 public:
  /// Maximum bytes buffered (contiguous + out-of-order); segments beyond
  /// the cap are dropped, mirroring a bounded capture processor.
  explicit TcpStreamReassembler(std::size_t capacity = 1 << 20)
      : capacity_(capacity) {}

  /// Adds a segment with the given sequence number. The first segment
  /// seen anchors the stream's initial sequence number (its seq is
  /// byte offset 0); SYN/FIN sequence-space consumption is the caller's
  /// concern (pass the payload seq).
  void add_segment(std::uint32_t seq, std::span<const std::uint8_t> payload);

  /// The longest contiguous prefix assembled so far.
  const std::vector<std::uint8_t>& contiguous() const noexcept {
    return assembled_;
  }

  /// Bytes currently parked out of order.
  std::size_t pending_bytes() const noexcept;

  /// Total payload bytes accepted (including duplicates' novel bytes).
  std::size_t assembled_bytes() const noexcept { return assembled_.size(); }

  bool anchored() const noexcept { return anchored_; }

  /// Segments discarded because they landed past the capacity cap —
  /// previously a silent loss, now accounted.
  std::size_t dropped_segments() const noexcept { return dropped_segments_; }
  /// Payload bytes discarded with those segments.
  std::size_t dropped_bytes() const noexcept { return dropped_bytes_; }
  /// Overlapping retransmissions whose bytes disagreed with the stream
  /// already assembled (corruption; first write wins).
  std::size_t overlap_conflicts() const noexcept { return overlap_conflicts_; }

  /// Folds this stream's counters into a capture-level health record.
  void export_health(faults::CaptureHealth& health) const noexcept {
    health.reassembly_dropped_segments += dropped_segments_;
    health.reassembly_dropped_bytes += dropped_bytes_;
    health.reassembly_overlap_conflicts += overlap_conflicts_;
  }

 private:
  void drain_pending();

  std::size_t capacity_;
  bool anchored_ = false;
  std::uint32_t isn_ = 0;  ///< seq of stream offset 0
  std::size_t dropped_segments_ = 0;
  std::size_t dropped_bytes_ = 0;
  std::size_t overlap_conflicts_ = 0;
  std::vector<std::uint8_t> assembled_;
  /// offset -> payload for segments past the contiguous prefix.
  std::map<std::uint64_t, std::vector<std::uint8_t>> pending_;
};

/// PacketSink that reassembles the client->server byte stream of the one
/// TCP connection the capture carries (caller pre-filters to a single
/// connection, e.g. via FlowKey). The client is the source of the first
/// TCP packet observed; non-TCP packets are ignored.
class ClientStreamSink final : public PacketSink {
 public:
  explicit ClientStreamSink(std::size_t capacity = 1 << 20)
      : reassembler_(capacity) {}

  void on_packet(const net::DecodedPacket& packet) override;

  const TcpStreamReassembler& reassembler() const noexcept {
    return reassembler_;
  }
  /// The contiguous client stream assembled so far.
  const std::vector<std::uint8_t>& stream() const noexcept {
    return reassembler_.contiguous();
  }

 private:
  std::optional<std::pair<net::Ipv4Address, std::uint16_t>> client_;
  TcpStreamReassembler reassembler_;
};

}  // namespace iotx::flow
