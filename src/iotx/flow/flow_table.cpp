#include "iotx/flow/flow_table.hpp"

#include <algorithm>

#include "iotx/proto/http.hpp"
#include "iotx/proto/tls.hpp"

namespace iotx::flow {

FlowKey FlowKey::from_packet(const net::DecodedPacket& p) noexcept {
  FlowKey k;
  k.protocol = p.ip.protocol;
  const bool src_first =
      std::pair(p.ip.src.value(), p.src_port()) <=
      std::pair(p.ip.dst.value(), p.dst_port());
  if (src_first) {
    k.ip_a = p.ip.src;
    k.port_a = p.src_port();
    k.ip_b = p.ip.dst;
    k.port_b = p.dst_port();
  } else {
    k.ip_a = p.ip.dst;
    k.port_a = p.dst_port();
    k.ip_b = p.ip.src;
    k.port_b = p.src_port();
  }
  return k;
}

std::size_t FlowTable::Hash::operator()(const FlowKey& k) const noexcept {
  std::size_t h = std::hash<std::uint32_t>{}(k.ip_a.value());
  h = h * 1000003 ^ std::hash<std::uint32_t>{}(k.ip_b.value());
  h = h * 1000003 ^ (std::size_t{k.port_a} << 16 | k.port_b);
  h = h * 1000003 ^ k.protocol;
  return h;
}

namespace {

void append_sample(std::vector<std::uint8_t>& sample,
                   std::span<const std::uint8_t> payload) {
  const std::size_t room = Flow::kPayloadSampleCap - sample.size();
  const std::size_t n = std::min(room, payload.size());
  sample.insert(sample.end(), payload.begin(), payload.begin() + n);
}

/// True when the payload opens a TLS handshake record announcing a
/// ClientHello — the only TLS message we mine fields from, so a parse
/// failure on it is an anomaly (anything else failing is routine).
bool announces_client_hello(std::span<const std::uint8_t> payload) noexcept {
  return payload.size() >= 6 && payload[0] == 0x16 && payload[5] == 0x01;
}

/// True when the payload opens with an HTTP request line we emit; a
/// response or mid-stream segment failing to parse is expected, a
/// mangled request line is not.
bool announces_http_request(std::span<const std::uint8_t> payload) noexcept {
  const std::string_view text(reinterpret_cast<const char*>(payload.data()),
                              std::min<std::size_t>(payload.size(), 8));
  for (const std::string_view method :
       {"GET ", "POST ", "PUT ", "HEAD ", "DELETE ", "OPTIONS "}) {
    if (text.starts_with(method)) return true;
  }
  return false;
}

// Fills protocol/encoding/SNI/host fields from the first packets that
// reveal them; parse failures on self-announcing payloads are counted.
void sniff_content(Flow& flow, const net::DecodedPacket& p,
                   faults::CaptureHealth& health) {
  if (flow.protocol == proto::ProtocolId::kUnknown) {
    flow.protocol = proto::identify_protocol(p);
  }
  if (p.payload.empty()) return;
  if (flow.encoding == proto::ContentEncoding::kNone) {
    flow.encoding = proto::detect_encoding(p.payload);
  }
  if (flow.sni.empty() && flow.protocol == proto::ProtocolId::kTls) {
    if (auto sni = proto::extract_sni(p.payload)) {
      flow.sni = *sni;
    } else if (announces_client_hello(p.payload) &&
               !proto::parse_client_hello(p.payload)) {
      ++health.tls_parse_failures;  // truncated/corrupted ClientHello
    }
  }
  if (flow.http_host.empty() && (flow.protocol == proto::ProtocolId::kHttp ||
                                 flow.protocol == proto::ProtocolId::kRtsp)) {
    if (auto req = proto::HttpRequest::decode(p.payload)) {
      if (auto host = req->host()) flow.http_host = *host;
    } else if (announces_http_request(p.payload)) {
      ++health.http_parse_failures;  // request line present, framing gone
    }
  }
}

}  // namespace

void FlowTable::ingest(const net::DecodedPacket& p) {
  const FlowKey key = FlowKey::from_packet(p);
  auto [it, inserted] = table_.try_emplace(key);
  Flow& flow = it->second;
  if (inserted) {
    flow.key = key;
    flow.initiator = p.ip.src;
    flow.responder = p.ip.dst;
    flow.initiator_port = p.src_port();
    flow.responder_port = p.dst_port();
    flow.first_ts = p.timestamp;
    order_.push_back(key);
  }
  flow.last_ts = std::max(flow.last_ts, p.timestamp);

  const bool outbound = p.ip.src == flow.initiator &&
                        p.src_port() == flow.initiator_port;
  DirectionStats& dir = outbound ? flow.up : flow.down;
  dir.packets += 1;
  dir.bytes += p.frame_size;
  dir.payload_bytes += p.payload.size();
  dir.sizes.push_back(static_cast<double>(p.frame_size));
  dir.timestamps.push_back(p.timestamp);

  append_sample(outbound ? flow.payload_sample_up : flow.payload_sample_down,
                p.payload);
  sniff_content(flow, p, health_);
}

std::vector<Flow> FlowTable::flows() const {
  std::vector<Flow> out;
  out.reserve(order_.size());
  for (const FlowKey& key : order_) {
    out.push_back(table_.at(key));
  }
  return out;
}

}  // namespace iotx::flow
