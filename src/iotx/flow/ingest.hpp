// Single-decode streaming ingest (DESIGN.md §"Ingest pipeline").
//
// Every analysis dimension of the paper — destinations (§4), encryption
// (§5), content (§6), unexpected behavior (§7) — consumes the same
// captures. The pipeline decodes each frame exactly once and fans the
// DecodedPacket out to registered PacketSinks (DNS cache, flow table,
// traffic-unit meta collector, TCP reassembly), so a capture pays one
// header-decode pass total instead of one per consumer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "iotx/faults/health.hpp"
#include "iotx/net/packet.hpp"

namespace iotx::flow {

/// Consumer interface for the streaming ingest pipeline.
///
/// Memory ownership: the DecodedPacket handed to on_packet() aliases the
/// frame buffer of a net::Packet owned by the pipeline's caller; it is
/// valid only for the duration of the call. A sink that needs payload
/// bytes past that point must copy them (the flow table's payload samples
/// and the TCP reassembler's assembled stream both do).
class PacketSink {
 public:
  virtual ~PacketSink() = default;

  /// Called exactly once per decodable frame, in capture order.
  virtual void on_packet(const net::DecodedPacket& packet) = 0;

  /// Called once after the capture's last frame, before results are read.
  virtual void on_finish() {}
};

/// Decodes each frame once and dispatches it to every registered sink.
///
/// One pipeline instance serves one capture: construct, register sinks,
/// ingest, finish(), read the sinks. Undecodable frames are counted here
/// (never per sink, so the capture-level count stays single-source);
/// protocol-level anomalies stay in each sink's own health record.
class IngestPipeline {
 public:
  /// Registers a sink (non-owning; must outlive the pipeline). Sinks see
  /// every packet in registration order.
  void add_sink(PacketSink& sink);

  /// Decodes one frame and fans it out; an undecodable frame is counted
  /// into health().undecodable_frames and never reaches the sinks.
  void ingest(const net::Packet& packet);

  /// Zero-copy variant: same decode/fan-out over a borrowed frame. The
  /// DecodedPacket the sinks see aliases view.frame (usually a pcap
  /// arena), so each capture byte is touched exactly once on the way
  /// from file buffer to sink.
  void ingest(const net::PacketView& view);

  /// Streams a whole capture through ingest().
  void ingest_all(const std::vector<net::Packet>& packets);

  /// Streams a zero-copy capture (e.g. net::PcapCapture::views).
  void ingest_views(std::span<const net::PacketView> views);

  /// Flushes every sink (on_finish, registration order). Idempotent.
  void finish();

  /// Frames offered to the pipeline so far.
  std::uint64_t packets_seen() const noexcept { return seen_; }
  /// Frames successfully decoded and dispatched.
  std::uint64_t packets_decoded() const noexcept { return decoded_; }
  /// Frame bytes offered so far (the capture's raw footprint).
  std::uint64_t bytes_seen() const noexcept { return bytes_; }

  /// Decode-layer anomalies (undecodable frames).
  const faults::CaptureHealth& health() const noexcept { return health_; }

 private:
  std::vector<PacketSink*> sinks_;
  faults::CaptureHealth health_;
  std::uint64_t seen_ = 0;
  std::uint64_t decoded_ = 0;
  std::uint64_t bytes_ = 0;
  bool finished_ = false;
};

/// Per-sink observability shim: wraps a sink and accounts packets,
/// payload bytes, and cumulative on_packet/on_finish wall time, then
/// records the capture's totals into the global metrics registry on
/// finish (stage family "sink:<label>": one wall_ns histogram sample per
/// capture, bytes_in counter, packet counter). Register the wrapper
/// instead of the sink when obs::metrics_enabled(); the undecorated path
/// stays free of clock reads.
class InstrumentedSink : public PacketSink {
 public:
  /// `label` must outlive the sink (string literals in practice).
  InstrumentedSink(PacketSink& inner, const char* label) noexcept
      : inner_(inner), label_(label) {}

  void on_packet(const net::DecodedPacket& packet) override;
  void on_finish() override;

  std::uint64_t packets() const noexcept { return packets_; }
  std::uint64_t payload_bytes() const noexcept { return bytes_; }
  std::uint64_t wall_ns() const noexcept { return wall_ns_; }

 private:
  PacketSink& inner_;
  const char* label_;
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t wall_ns_ = 0;
};

}  // namespace iotx::flow
