#include "iotx/flow/traffic_unit.hpp"

#include <algorithm>

namespace iotx::flow {

std::uint64_t TrafficUnit::total_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const PacketMeta& p : packets) total += p.size;
  return total;
}

std::vector<PacketMeta> extract_meta(const std::vector<net::Packet>& packets,
                                     net::MacAddress device_mac) {
  std::vector<PacketMeta> out;
  out.reserve(packets.size());
  for (const net::Packet& raw : packets) {
    const auto decoded = net::decode_packet(raw);
    if (!decoded) continue;
    const bool from_device = decoded->eth.src == device_mac;
    const bool to_device = decoded->eth.dst == device_mac;
    if (!from_device && !to_device) continue;
    out.push_back(PacketMeta{decoded->timestamp,
                             static_cast<std::uint32_t>(decoded->frame_size),
                             from_device});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const PacketMeta& a, const PacketMeta& b) {
                     return a.timestamp < b.timestamp;
                   });
  return out;
}

std::vector<TrafficUnit> segment_traffic(const std::vector<PacketMeta>& meta,
                                         double gap_seconds) {
  std::vector<TrafficUnit> units;
  if (meta.empty() || gap_seconds <= 0.0) return units;
  TrafficUnit current;
  for (const PacketMeta& p : meta) {
    if (!current.packets.empty() &&
        p.timestamp - current.packets.back().timestamp > gap_seconds) {
      units.push_back(std::move(current));
      current = TrafficUnit{};
    }
    current.packets.push_back(p);
  }
  units.push_back(std::move(current));
  return units;
}

}  // namespace iotx::flow
