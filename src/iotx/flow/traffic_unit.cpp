#include "iotx/flow/traffic_unit.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "iotx/cache/binio.hpp"

namespace iotx::flow {

std::uint64_t TrafficUnit::total_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const PacketMeta& p : packets) total += p.size;
  return total;
}

void MetaCollector::on_packet(const net::DecodedPacket& packet) {
  // Direction rule: the source address wins, so a self-addressed frame
  // (src == dst == device MAC) is counted as outbound, never twice.
  const bool from_device = packet.eth.src == mac_;
  const bool to_device = packet.eth.dst == mac_;
  if (!from_device && !to_device) return;
  std::uint32_t size;
  if (packet.frame_size >
      std::size_t{std::numeric_limits<std::uint32_t>::max()}) {
    // An unchecked cast here used to wrap the count silently; clamp and
    // mark the capture degraded instead.
    ++health_.oversized_meta_frames;
    size = std::numeric_limits<std::uint32_t>::max();
  } else {
    size = static_cast<std::uint32_t>(packet.frame_size);
  }
  meta_.push_back(PacketMeta{packet.timestamp, size, from_device});
}

void MetaCollector::on_finish() {
  std::stable_sort(meta_.begin(), meta_.end(),
                   [](const PacketMeta& a, const PacketMeta& b) {
                     return a.timestamp < b.timestamp;
                   });
}

void write_meta(cache::BinWriter& w, const std::vector<PacketMeta>& meta) {
  w.reserve(8 + meta.size() * 13);  // one growth instead of log2(n)
  w.u64(meta.size());
  for (const PacketMeta& p : meta) {
    w.f64(p.timestamp);
    w.u32(p.size);
    w.boolean(p.outbound);
  }
}

std::vector<PacketMeta> read_meta(cache::BinReader& r) {
  std::size_t n = r.length(13);  // f64 + u32 + bool per record
  std::vector<PacketMeta> meta;
  meta.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PacketMeta p;
    p.timestamp = r.f64();
    p.size = r.u32();
    p.outbound = r.boolean();
    meta.push_back(p);
  }
  return meta;
}

TrafficUnitSegmenter::TrafficUnitSegmenter(UnitSink& sink, double gap_seconds)
    : sink_(sink), gap_(gap_seconds) {
  // A non-positive (or NaN) gap has no meaningful segmentation; the old
  // behavior of returning an empty vector made a bad config look like an
  // empty capture downstream.
  if (!(gap_seconds > 0.0)) {
    throw std::invalid_argument(
        "segment_traffic: gap_seconds must be > 0");
  }
}

void TrafficUnitSegmenter::add(const PacketMeta& packet) {
  if (unit_packets_ > 0 && packet.timestamp - last_timestamp_ > gap_) {
    sink_.on_unit_end(unit_start_, unit_packets_);
    unit_packets_ = 0;
  }
  if (unit_packets_ == 0) unit_start_ = packet.timestamp;
  last_timestamp_ = packet.timestamp;
  ++unit_packets_;
  sink_.on_unit_packet(packet);
}

void TrafficUnitSegmenter::finish() {
  if (unit_packets_ == 0) return;
  sink_.on_unit_end(unit_start_, unit_packets_);
  unit_packets_ = 0;
}

namespace {

/// segment_traffic()'s collecting sink: materializes each streamed unit.
class CollectingUnitSink final : public UnitSink {
 public:
  void on_unit_packet(const PacketMeta& packet) override {
    current_.packets.push_back(packet);
  }
  void on_unit_end(double, std::size_t) override {
    units_.push_back(std::move(current_));
    current_ = TrafficUnit{};
  }
  std::vector<TrafficUnit> take() noexcept { return std::move(units_); }

 private:
  TrafficUnit current_;
  std::vector<TrafficUnit> units_;
};

}  // namespace

std::vector<TrafficUnit> segment_traffic(const std::vector<PacketMeta>& meta,
                                         double gap_seconds) {
  CollectingUnitSink sink;
  TrafficUnitSegmenter segmenter(sink, gap_seconds);
  for (const PacketMeta& p : meta) segmenter.add(p);
  segmenter.finish();
  return sink.take();
}

}  // namespace iotx::flow
