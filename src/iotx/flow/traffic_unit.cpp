#include "iotx/flow/traffic_unit.hpp"

#include <algorithm>

namespace iotx::flow {

std::uint64_t TrafficUnit::total_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const PacketMeta& p : packets) total += p.size;
  return total;
}

void MetaCollector::on_packet(const net::DecodedPacket& packet) {
  const bool from_device = packet.eth.src == mac_;
  const bool to_device = packet.eth.dst == mac_;
  if (!from_device && !to_device) return;
  meta_.push_back(PacketMeta{packet.timestamp,
                             static_cast<std::uint32_t>(packet.frame_size),
                             from_device});
}

void MetaCollector::on_finish() {
  std::stable_sort(meta_.begin(), meta_.end(),
                   [](const PacketMeta& a, const PacketMeta& b) {
                     return a.timestamp < b.timestamp;
                   });
}

std::vector<PacketMeta> extract_meta(const std::vector<net::Packet>& packets,
                                     net::MacAddress device_mac,
                                     faults::CaptureHealth* health) {
  MetaCollector collector(device_mac);
  IngestPipeline pipeline;
  pipeline.add_sink(collector);
  pipeline.ingest_all(packets);
  pipeline.finish();
  if (health != nullptr) health->merge(pipeline.health());
  return collector.take();
}

std::vector<TrafficUnit> segment_traffic(const std::vector<PacketMeta>& meta,
                                         double gap_seconds) {
  std::vector<TrafficUnit> units;
  if (meta.empty() || gap_seconds <= 0.0) return units;
  TrafficUnit current;
  for (const PacketMeta& p : meta) {
    if (!current.packets.empty() &&
        p.timestamp - current.packets.back().timestamp > gap_seconds) {
      units.push_back(std::move(current));
      current = TrafficUnit{};
    }
    current.packets.push_back(p);
  }
  units.push_back(std::move(current));
  return units;
}

}  // namespace iotx::flow
