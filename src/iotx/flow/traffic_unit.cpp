#include "iotx/flow/traffic_unit.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "iotx/cache/binio.hpp"

namespace iotx::flow {

std::uint64_t TrafficUnit::total_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const PacketMeta& p : packets) total += p.size;
  return total;
}

void MetaCollector::on_packet(const net::DecodedPacket& packet) {
  // Direction rule: the source address wins, so a self-addressed frame
  // (src == dst == device MAC) is counted as outbound, never twice.
  const bool from_device = packet.eth.src == mac_;
  const bool to_device = packet.eth.dst == mac_;
  if (!from_device && !to_device) return;
  std::uint32_t size;
  if (packet.frame_size >
      std::size_t{std::numeric_limits<std::uint32_t>::max()}) {
    // An unchecked cast here used to wrap the count silently; clamp and
    // mark the capture degraded instead.
    ++health_.oversized_meta_frames;
    size = std::numeric_limits<std::uint32_t>::max();
  } else {
    size = static_cast<std::uint32_t>(packet.frame_size);
  }
  meta_.push_back(PacketMeta{packet.timestamp, size, from_device});
}

void MetaCollector::on_finish() {
  std::stable_sort(meta_.begin(), meta_.end(),
                   [](const PacketMeta& a, const PacketMeta& b) {
                     return a.timestamp < b.timestamp;
                   });
}

void write_meta(cache::BinWriter& w, const std::vector<PacketMeta>& meta) {
  w.reserve(8 + meta.size() * 13);  // one growth instead of log2(n)
  w.u64(meta.size());
  for (const PacketMeta& p : meta) {
    w.f64(p.timestamp);
    w.u32(p.size);
    w.boolean(p.outbound);
  }
}

std::vector<PacketMeta> read_meta(cache::BinReader& r) {
  std::size_t n = r.length(13);  // f64 + u32 + bool per record
  std::vector<PacketMeta> meta;
  meta.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PacketMeta p;
    p.timestamp = r.f64();
    p.size = r.u32();
    p.outbound = r.boolean();
    meta.push_back(p);
  }
  return meta;
}

std::vector<TrafficUnit> segment_traffic(const std::vector<PacketMeta>& meta,
                                         double gap_seconds) {
  // A non-positive (or NaN) gap has no meaningful segmentation; the old
  // behavior of returning an empty vector made a bad config look like an
  // empty capture downstream.
  if (!(gap_seconds > 0.0)) {
    throw std::invalid_argument(
        "segment_traffic: gap_seconds must be > 0");
  }
  std::vector<TrafficUnit> units;
  if (meta.empty()) return units;
  TrafficUnit current;
  for (const PacketMeta& p : meta) {
    if (!current.packets.empty() &&
        p.timestamp - current.packets.back().timestamp > gap_seconds) {
      units.push_back(std::move(current));
      current = TrafficUnit{};
    }
    current.packets.push_back(p);
  }
  units.push_back(std::move(current));
  return units;
}

}  // namespace iotx::flow
