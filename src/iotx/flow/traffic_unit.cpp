#include "iotx/flow/traffic_unit.hpp"

#include <algorithm>

#include "iotx/cache/binio.hpp"

namespace iotx::flow {

std::uint64_t TrafficUnit::total_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const PacketMeta& p : packets) total += p.size;
  return total;
}

void MetaCollector::on_packet(const net::DecodedPacket& packet) {
  const bool from_device = packet.eth.src == mac_;
  const bool to_device = packet.eth.dst == mac_;
  if (!from_device && !to_device) return;
  meta_.push_back(PacketMeta{packet.timestamp,
                             static_cast<std::uint32_t>(packet.frame_size),
                             from_device});
}

void MetaCollector::on_finish() {
  std::stable_sort(meta_.begin(), meta_.end(),
                   [](const PacketMeta& a, const PacketMeta& b) {
                     return a.timestamp < b.timestamp;
                   });
}

void write_meta(cache::BinWriter& w, const std::vector<PacketMeta>& meta) {
  w.u64(meta.size());
  for (const PacketMeta& p : meta) {
    w.f64(p.timestamp);
    w.u32(p.size);
    w.boolean(p.outbound);
  }
}

std::vector<PacketMeta> read_meta(cache::BinReader& r) {
  std::size_t n = r.length(13);  // f64 + u32 + bool per record
  std::vector<PacketMeta> meta;
  meta.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PacketMeta p;
    p.timestamp = r.f64();
    p.size = r.u32();
    p.outbound = r.boolean();
    meta.push_back(p);
  }
  return meta;
}

std::vector<TrafficUnit> segment_traffic(const std::vector<PacketMeta>& meta,
                                         double gap_seconds) {
  std::vector<TrafficUnit> units;
  if (meta.empty() || gap_seconds <= 0.0) return units;
  TrafficUnit current;
  for (const PacketMeta& p : meta) {
    if (!current.packets.empty() &&
        p.timestamp - current.packets.back().timestamp > gap_seconds) {
      units.push_back(std::move(current));
      current = TrafficUnit{};
    }
    current.packets.push_back(p);
  }
  units.push_back(std::move(current));
  return units;
}

}  // namespace iotx::flow
