#include "iotx/flow/dns_cache.hpp"

#include "iotx/proto/dns.hpp"
#include "iotx/util/strings.hpp"

namespace iotx::flow {

void DnsCache::ingest(const net::DecodedPacket& p) {
  const bool dns_port = p.src_port() == 53 || p.dst_port() == 53 ||
                        p.src_port() == 5353 || p.dst_port() == 5353;
  if (!p.is_udp || !dns_port || p.payload.empty()) return;

  const auto msg = proto::DnsMessage::decode(p.payload);
  if (!msg) {
    // A DNS-port payload that does not decode is a mangled message
    // (truncation, corruption): count it instead of vanishing.
    ++health_.dns_parse_failures;
    return;
  }
  if (!msg->is_response) return;

  // Map each CNAME target back to the name it aliases so A records at the
  // end of a chain attribute to the originally queried domain.
  std::unordered_map<std::string, std::string> alias_of;
  for (const auto& rec : msg->answers) {
    if (!rec.rdata_name.empty()) {
      alias_of[util::to_lower(rec.rdata_name)] = util::to_lower(rec.name);
    }
  }
  const auto resolve_origin = [&](std::string name) {
    for (int hops = 0; hops < 16; ++hops) {
      const auto it = alias_of.find(name);
      if (it == alias_of.end()) break;
      name = it->second;
    }
    return name;
  };

  for (const auto& rec : msg->answers) {
    if (const auto addr = rec.address()) {
      map_[*addr] = resolve_origin(util::to_lower(rec.name));
    }
  }
}

std::optional<std::string> DnsCache::lookup(net::Ipv4Address addr) const {
  const auto it = map_.find(addr);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

}  // namespace iotx::flow
