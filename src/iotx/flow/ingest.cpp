#include "iotx/flow/ingest.hpp"

#include <chrono>
#include <string>

#include "iotx/obs/registry.hpp"

namespace iotx::flow {

void IngestPipeline::add_sink(PacketSink& sink) { sinks_.push_back(&sink); }

void IngestPipeline::ingest(const net::Packet& packet) {
  ingest(net::view_of(packet));
}

void IngestPipeline::ingest(const net::PacketView& view) {
  ++seen_;
  bytes_ += view.frame.size();
  const auto decoded = net::decode_frame(view.timestamp, view.frame);
  if (!decoded) {
    ++health_.undecodable_frames;
    return;
  }
  ++decoded_;
  for (PacketSink* sink : sinks_) sink->on_packet(*decoded);
}

void IngestPipeline::ingest_all(const std::vector<net::Packet>& packets) {
  for (const net::Packet& packet : packets) ingest(packet);
}

void IngestPipeline::ingest_views(std::span<const net::PacketView> views) {
  for (const net::PacketView& view : views) ingest(view);
}

void IngestPipeline::finish() {
  if (finished_) return;
  finished_ = true;
  for (PacketSink* sink : sinks_) sink->on_finish();
}

namespace {

std::uint64_t sink_clock_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void InstrumentedSink::on_packet(const net::DecodedPacket& packet) {
  ++packets_;
  bytes_ += packet.payload.size();
  const std::uint64_t t0 = sink_clock_ns();
  inner_.on_packet(packet);
  wall_ns_ += sink_clock_ns() - t0;
}

void InstrumentedSink::on_finish() {
  const std::uint64_t t0 = sink_clock_ns();
  inner_.on_finish();
  wall_ns_ += sink_clock_ns() - t0;

  obs::Registry& registry = obs::Registry::global();
  const std::string base = "stage/sink:" + std::string(label_);
  // One histogram sample per capture: count = captures, sum = wall.
  registry.add(registry.histogram(base + "/wall_ns", /*deterministic=*/false),
               wall_ns_);
  registry.add(registry.counter(base + "/bytes_in"), bytes_);
  registry.add(registry.counter("sink/" + std::string(label_) + "/packets"),
               packets_);
}

}  // namespace iotx::flow
