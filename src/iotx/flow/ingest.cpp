#include "iotx/flow/ingest.hpp"

namespace iotx::flow {

void IngestPipeline::add_sink(PacketSink& sink) { sinks_.push_back(&sink); }

void IngestPipeline::ingest(const net::Packet& packet) {
  ++seen_;
  bytes_ += packet.frame.size();
  const auto decoded = net::decode_packet(packet);
  if (!decoded) {
    ++health_.undecodable_frames;
    return;
  }
  ++decoded_;
  for (PacketSink* sink : sinks_) sink->on_packet(*decoded);
}

void IngestPipeline::ingest_all(const std::vector<net::Packet>& packets) {
  for (const net::Packet& packet : packets) ingest(packet);
}

void IngestPipeline::finish() {
  if (finished_) return;
  finished_ = true;
  for (PacketSink* sink : sinks_) sink->on_finish();
}

}  // namespace iotx::flow
