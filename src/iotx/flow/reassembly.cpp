#include "iotx/flow/reassembly.hpp"

#include <algorithm>

namespace iotx::flow {

namespace {
/// Offset of `seq` relative to the ISN in 32-bit sequence space
/// (handles wraparound for streams shorter than 2^31).
std::uint64_t seq_offset(std::uint32_t isn, std::uint32_t seq) noexcept {
  return static_cast<std::uint32_t>(seq - isn);
}
}  // namespace

void TcpStreamReassembler::add_segment(std::uint32_t seq,
                                       std::span<const std::uint8_t> payload) {
  if (payload.empty()) return;
  if (!anchored_) {
    anchored_ = true;
    isn_ = seq;
  }
  const std::uint64_t offset = seq_offset(isn_, seq);
  if (offset + payload.size() > capacity_) {  // beyond the cap: account it
    ++dropped_segments_;
    dropped_bytes_ += payload.size();
    return;
  }

  if (offset <= assembled_.size()) {
    // Overlaps or extends the contiguous prefix. A retransmission whose
    // overlap bytes disagree with what we already assembled signals
    // corruption; first write wins, but the conflict is counted.
    const std::uint64_t skip = assembled_.size() - offset;
    const std::size_t overlap =
        std::min<std::size_t>(skip, payload.size());
    if (overlap > 0 &&
        !std::equal(payload.begin(), payload.begin() + overlap,
                    assembled_.begin() + offset)) {
      ++overlap_conflicts_;
    }
    if (skip < payload.size()) {
      assembled_.insert(assembled_.end(), payload.begin() + skip,
                        payload.end());
      drain_pending();
    }
    return;  // pure duplicate otherwise
  }
  // Out of order: park it (last write wins on exact-offset duplicates).
  pending_[offset].assign(payload.begin(), payload.end());
}

void TcpStreamReassembler::drain_pending() {
  while (!pending_.empty()) {
    const auto it = pending_.begin();
    const std::uint64_t offset = it->first;
    if (offset > assembled_.size()) break;  // still a gap
    const std::vector<std::uint8_t>& chunk = it->second;
    const std::uint64_t skip = assembled_.size() - offset;
    const std::size_t overlap = std::min<std::size_t>(skip, chunk.size());
    if (overlap > 0 &&
        !std::equal(chunk.begin(), chunk.begin() + overlap,
                    assembled_.begin() + offset)) {
      ++overlap_conflicts_;
    }
    if (skip < chunk.size()) {
      assembled_.insert(assembled_.end(), chunk.begin() + skip, chunk.end());
    }
    pending_.erase(it);
  }
}

std::size_t TcpStreamReassembler::pending_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& [offset, chunk] : pending_) total += chunk.size();
  return total;
}

void ClientStreamSink::on_packet(const net::DecodedPacket& packet) {
  if (!packet.is_tcp) return;
  if (!client_) client_ = {packet.ip.src, packet.tcp.src_port};
  if (packet.ip.src == client_->first &&
      packet.tcp.src_port == client_->second) {
    reassembler_.add_segment(packet.tcp.seq, packet.payload);
  }
}

}  // namespace iotx::flow
