// Traffic-unit segmentation (paper §7.1): "a sequence of packets containing
// inter-packet interval greater than 2 seconds" delimits the units on which
// unexpected-behavior inference runs.
#pragma once

#include <cstdint>
#include <vector>

#include "iotx/faults/health.hpp"
#include "iotx/flow/ingest.hpp"
#include "iotx/net/address.hpp"
#include "iotx/net/packet.hpp"

namespace iotx::cache {
class BinWriter;
class BinReader;
}  // namespace iotx::cache

namespace iotx::flow {

/// Minimal per-packet record used for segmentation and feature extraction.
struct PacketMeta {
  double timestamp = 0.0;
  std::uint32_t size = 0;   ///< frame bytes
  bool outbound = false;    ///< true when sent by the device under analysis

  bool operator==(const PacketMeta&) const = default;
};

/// A maximal run of packets with inter-packet gap <= the threshold.
struct TrafficUnit {
  std::vector<PacketMeta> packets;

  double start() const noexcept {
    return packets.empty() ? 0.0 : packets.front().timestamp;
  }
  double duration() const noexcept {
    return packets.empty() ? 0.0
                           : packets.back().timestamp -
                                 packets.front().timestamp;
  }
  std::uint64_t total_bytes() const noexcept;
};

/// Default segmentation gap from the paper.
inline constexpr double kDefaultUnitGapSeconds = 2.0;

/// PacketSink that collects PacketMeta for frames attributable to one
/// device MAC (direction from the Ethernet source address); the feature
/// front-end of the ingest pipeline. on_finish() sorts by timestamp, so
/// the collected meta is ready for segment_traffic() regardless of the
/// capture's frame order.
class MetaCollector final : public PacketSink {
 public:
  explicit MetaCollector(net::MacAddress device_mac) : mac_(device_mac) {}

  void on_packet(const net::DecodedPacket& packet) override;
  void on_finish() override;  ///< stable-sorts by timestamp

  const std::vector<PacketMeta>& meta() const noexcept { return meta_; }
  /// Moves the collected meta out (call after the pipeline's finish()).
  std::vector<PacketMeta> take() noexcept { return std::move(meta_); }

  /// Anomalies observed while collecting (oversized frames clamped to
  /// the 32-bit meta size field). Merge into the run's CaptureHealth.
  const faults::CaptureHealth& health() const noexcept { return health_; }

 private:
  net::MacAddress mac_;
  std::vector<PacketMeta> meta_;
  faults::CaptureHealth health_;
};

/// Binary round-trip for the artifact cache: timestamps as IEEE-754
/// bits, so a reloaded sequence segments identically.
void write_meta(cache::BinWriter& w, const std::vector<PacketMeta>& meta);
/// Throws cache::CorruptArtifact on malformed payloads.
std::vector<PacketMeta> read_meta(cache::BinReader& r);

/// Consumer of the streaming segmenter: one callback per packet of the
/// unit being built, one when the unit closes. A sink that accumulates
/// per-unit state (feature moments, counters) resets it in on_unit_end.
class UnitSink {
 public:
  virtual ~UnitSink() = default;
  /// The packet has been assigned to the current (possibly new) unit.
  virtual void on_unit_packet(const PacketMeta& packet) = 0;
  /// The current unit is complete: a gap > threshold followed, or the
  /// stream finished. `unit_packets` is the packet count of the closed
  /// unit; `unit_start` its first timestamp.
  virtual void on_unit_end(double unit_start, std::size_t unit_packets) = 0;
};

/// Streaming traffic-unit segmentation: packets arrive one at a time in
/// timestamp order and units are emitted to a UnitSink as soon as they
/// close — the incremental core that segment_traffic() drives in batch
/// mode and serve::Detector drives live. Splits exactly where the batch
/// path does: strictly greater than the gap threshold.
class TrafficUnitSegmenter {
 public:
  /// Throws std::invalid_argument unless gap_seconds > 0 (NaN-safe).
  explicit TrafficUnitSegmenter(UnitSink& sink,
                                double gap_seconds = kDefaultUnitGapSeconds);

  void add(const PacketMeta& packet);
  /// Closes the trailing unit (if any packets arrived). Idempotent.
  void finish();

  std::size_t unit_packets() const noexcept { return unit_packets_; }
  double gap_seconds() const noexcept { return gap_; }

 private:
  UnitSink& sink_;
  double gap_;
  double unit_start_ = 0.0;
  double last_timestamp_ = 0.0;
  std::size_t unit_packets_ = 0;
};

/// Splits a timestamp-sorted meta sequence into traffic units using the
/// given gap threshold (must be > 0). Batch driver over
/// TrafficUnitSegmenter.
std::vector<TrafficUnit> segment_traffic(const std::vector<PacketMeta>& meta,
                                         double gap_seconds =
                                             kDefaultUnitGapSeconds);

}  // namespace iotx::flow
