// Traffic-unit segmentation (paper §7.1): "a sequence of packets containing
// inter-packet interval greater than 2 seconds" delimits the units on which
// unexpected-behavior inference runs.
#pragma once

#include <cstdint>
#include <vector>

#include "iotx/net/address.hpp"
#include "iotx/net/packet.hpp"

namespace iotx::flow {

/// Minimal per-packet record used for segmentation and feature extraction.
struct PacketMeta {
  double timestamp = 0.0;
  std::uint32_t size = 0;   ///< frame bytes
  bool outbound = false;    ///< true when sent by the device under analysis
};

/// A maximal run of packets with inter-packet gap <= the threshold.
struct TrafficUnit {
  std::vector<PacketMeta> packets;

  double start() const noexcept {
    return packets.empty() ? 0.0 : packets.front().timestamp;
  }
  double duration() const noexcept {
    return packets.empty() ? 0.0
                           : packets.back().timestamp -
                                 packets.front().timestamp;
  }
  std::uint64_t total_bytes() const noexcept;
};

/// Default segmentation gap from the paper.
inline constexpr double kDefaultUnitGapSeconds = 2.0;

/// Extracts PacketMeta from raw packets attributable to `device_mac`
/// (direction from the Ethernet source address). Undecodable frames are
/// skipped. The result is sorted by timestamp.
std::vector<PacketMeta> extract_meta(const std::vector<net::Packet>& packets,
                                     net::MacAddress device_mac);

/// Splits a timestamp-sorted meta sequence into traffic units using the
/// given gap threshold (must be > 0).
std::vector<TrafficUnit> segment_traffic(const std::vector<PacketMeta>& meta,
                                         double gap_seconds =
                                             kDefaultUnitGapSeconds);

}  // namespace iotx::flow
