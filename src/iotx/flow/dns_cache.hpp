// IP -> domain attribution from observed DNS responses (paper §4.1).
//
// "For each flow from a device, we determine the SLD by first identifying
// whether the destination IP address corresponds to a DNS response for a
// request issued by the device."
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "iotx/faults/health.hpp"
#include "iotx/flow/ingest.hpp"
#include "iotx/net/packet.hpp"

namespace iotx::flow {

/// Remembers which domain each IP address was resolved from, following
/// CNAME chains to the originally queried name. Also a PacketSink, so it
/// can ride an IngestPipeline and share one decode pass with the other
/// consumers.
class DnsCache : public PacketSink {
 public:
  /// Folds in one packet; no-op unless it is a decodable DNS response.
  void ingest(const net::DecodedPacket& packet);

  void on_packet(const net::DecodedPacket& packet) override {
    ingest(packet);
  }

  /// Domain the device queried to obtain `addr`, if any was observed.
  std::optional<std::string> lookup(net::Ipv4Address addr) const;

  /// Number of distinct mapped addresses.
  std::size_t size() const noexcept { return map_.size(); }

  /// The full address -> domain map (read-only; equivalence testing).
  const std::unordered_map<net::Ipv4Address, std::string>& entries()
      const noexcept {
    return map_;
  }

  /// Ingest anomalies seen so far (DNS payloads that failed to decode —
  /// mangled responses a lossy capture hands us).
  const faults::CaptureHealth& health() const noexcept { return health_; }

 private:
  std::unordered_map<net::Ipv4Address, std::string> map_;
  faults::CaptureHealth health_;
};

}  // namespace iotx::flow
