// obs::Registry — the lock-cheap metrics registry (DESIGN.md
// §"Observability").
//
// Named monotonic counters, high-water marks, and log2-bucketed
// histograms, recorded into per-thread shards so the hot path is one
// thread-local lookup plus a relaxed atomic add (no contended lock, no
// false sharing between worker threads). snapshot() merges the shards:
// every cell is an unsigned integer and every merge operator (sum for
// counters/histograms, max for high-water marks) is commutative and
// associative, so — the same trick that makes the Prng forks
// order-independent — the merged totals are bit-identical at any thread
// count as long as the recorded work itself is deterministic.
//
// Wall-clock metrics are inherently nondeterministic in their *values*
// (durations vary run to run) but not in their *counts*; metrics whose
// values are timing-derived are registered with `deterministic = false`
// and Snapshot::fingerprint() folds in only the reproducible fields
// (counter/max values, histogram counts), which is what the
// jobs=1-vs-jobs=4 determinism tests compare.
//
// The registry sits below util/ in the dependency order (everything may
// link it), and the global() instance is what the Study, the ingest
// sinks, and the benches feed. Recording is disabled by default:
// obs::metrics_enabled() is one relaxed atomic load, and every
// instrumentation site is gated on it, so a build that never turns
// metrics on pays a branch, not a shard write.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace iotx::obs {

/// Process-wide metrics switch (default off). Instrumentation sites gate
/// on this; the registry itself always works when called directly.
bool metrics_enabled() noexcept;
void set_metrics_enabled(bool enabled) noexcept;

enum class MetricKind {
  kCounter,    ///< monotonic sum (merge: +)
  kMax,        ///< high-water mark (merge: max)
  kHistogram,  ///< log2-bucketed distribution (merge: per-bucket +)
};

std::string_view metric_kind_name(MetricKind kind) noexcept;

class Registry {
 public:
  /// Packs (first shard slot << 2 | kind), so add() decodes its target
  /// cell without touching the registry lock — registration pays the
  /// mutex once, every record after that is lock-free.
  using MetricId = std::uint32_t;

  Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registers (or finds) a metric by name. Idempotent: the same name
  /// always yields the same id; re-registering with a different kind
  /// throws std::logic_error. `deterministic = false` marks metrics whose
  /// values are timing-derived (excluded from fingerprint()).
  MetricId counter(std::string_view name, bool deterministic = true);
  MetricId maximum(std::string_view name, bool deterministic = true);
  MetricId histogram(std::string_view name, bool deterministic = true);

  /// Records into the calling thread's shard: counter += value,
  /// maximum = max(maximum, value), histogram gains one sample `value`.
  void add(MetricId id, std::uint64_t value);

  /// One merged metric in a snapshot. Counter/max use `value`; histograms
  /// use count/sum/max/buckets (bucket b holds samples with
  /// bit_width(sample) == b, i.e. sample in [2^(b-1), 2^b)).
  struct MetricSnapshot {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    bool deterministic = true;
    std::uint64_t value = 0;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::array<std::uint64_t, 65> buckets{};

    /// Mean sample for histograms (0 when empty).
    double mean() const noexcept {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }

    /// Estimated q-quantile from the log2 buckets: the upper bound of
    /// the first bucket whose cumulative count reaches q, clamped to
    /// the recorded max (the top bucket's bound can overshoot it).
    /// The one histogram→percentile implementation; the serve and
    /// inference benches and /metrics consumers all use it.
    std::uint64_t quantile(double q) const noexcept;
    std::uint64_t p50() const noexcept { return quantile(0.5); }
    std::uint64_t p99() const noexcept { return quantile(0.99); }
  };

  struct Snapshot {
    /// Name-sorted, so two snapshots with the same recorded work render
    /// identically regardless of registration or thread order.
    std::vector<MetricSnapshot> metrics;

    const MetricSnapshot* find(std::string_view name) const noexcept;

    /// The reproducible projection: "name kind value|count" per line for
    /// deterministic metrics, plus histogram sample counts for
    /// nondeterministic (timing) histograms — their invocation counts are
    /// still exact. Equal fingerprints at jobs=1 and jobs=N is the
    /// registry-level determinism contract.
    std::string fingerprint() const;
  };

  /// Merges all shards. Safe to call while other threads record (cells
  /// are relaxed atomics); typically called after a parallel section.
  Snapshot snapshot() const;

  /// Drops all metrics and shards. NOT safe concurrently with add();
  /// call between parallel sections (tests, bench iterations).
  void reset();

  /// The process-wide registry every instrumentation site feeds.
  static Registry& global();

 private:
  // A histogram occupies kHistogramSlots consecutive cells
  // (count, sum, max, 65 log2 buckets); counters/maxima occupy one.
  static constexpr std::size_t kHistogramSlots = 3 + 65;
  // Fixed shard capacity: slots are pre-allocated so recording never
  // resizes (a resize would race with concurrent recorders).
  static constexpr std::size_t kShardSlots = 8192;

  struct MetricInfo {
    std::string name;
    MetricKind kind;
    bool deterministic;
    std::size_t slot;  ///< first cell index in every shard
  };

  struct Shard {
    std::array<std::atomic<std::uint64_t>, kShardSlots> cells{};
  };

  MetricId intern(std::string_view name, MetricKind kind, bool deterministic);
  Shard& local_shard();

  mutable std::mutex mu_;  // guards metrics_ and shards_ (not cell writes)
  std::vector<MetricInfo> metrics_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t next_slot_ = 0;
  // Drawn from a process-global monotonic counter at construction and on
  // every reset(), so cached thread-local shard pointers re-acquire —
  // and so no two registry instances (e.g. sequential stack registries
  // recycling an address) can ever share an epoch value.
  std::atomic<std::uint64_t> epoch_;
};

}  // namespace iotx::obs
