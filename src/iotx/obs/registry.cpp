#include "iotx/obs/registry.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace iotx::obs {

namespace {

struct Flags {
  std::atomic<bool> metrics{false};

  Flags() {
    // IOTX_OBS=metrics[,trace] force-enables observability for a whole
    // process tree — how CI runs the tier-1 suite with instrumentation
    // on to prove tables stay byte-identical. Trace env handling lives
    // in trace.cpp (it needs a collector to be meaningful).
    if (const char* env = std::getenv("IOTX_OBS")) {
      if (std::strstr(env, "metrics") != nullptr) {
        metrics.store(true, std::memory_order_relaxed);
      }
    }
  }
};

Flags& flags() {
  static Flags f;
  return f;
}

}  // namespace

bool metrics_enabled() noexcept {
  return flags().metrics.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) noexcept {
  flags().metrics.store(enabled, std::memory_order_relaxed);
}

std::string_view metric_kind_name(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kMax: return "max";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

namespace {

Registry::MetricId pack_id(std::size_t slot, MetricKind kind) {
  return static_cast<Registry::MetricId>((slot << 2) |
                                         static_cast<std::size_t>(kind));
}

// Epochs start at 1 so a zero-initialized TLS cache never matches.
std::uint64_t next_epoch() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Registry::Registry() : epoch_(next_epoch()) {}

Registry::MetricId Registry::intern(std::string_view name, MetricKind kind,
                                    bool deterministic) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const MetricInfo& info : metrics_) {
    if (info.name == name) {
      if (info.kind != kind) {
        throw std::logic_error("obs::Registry: metric '" + std::string(name) +
                               "' re-registered with a different kind");
      }
      return pack_id(info.slot, info.kind);
    }
  }
  const std::size_t width =
      kind == MetricKind::kHistogram ? kHistogramSlots : 1;
  if (next_slot_ + width > kShardSlots) {
    throw std::length_error("obs::Registry: shard slot capacity exhausted");
  }
  metrics_.push_back(
      MetricInfo{std::string(name), kind, deterministic, next_slot_});
  next_slot_ += width;
  return pack_id(metrics_.back().slot, kind);
}

Registry::MetricId Registry::counter(std::string_view name,
                                     bool deterministic) {
  return intern(name, MetricKind::kCounter, deterministic);
}

Registry::MetricId Registry::maximum(std::string_view name,
                                     bool deterministic) {
  return intern(name, MetricKind::kMax, deterministic);
}

Registry::MetricId Registry::histogram(std::string_view name,
                                       bool deterministic) {
  return intern(name, MetricKind::kHistogram, deterministic);
}

Registry::Shard& Registry::local_shard() {
  // One cached (epoch, shard) pair per thread: the fast path is one load
  // and a compare. reset() moves the registry to a fresh epoch,
  // invalidating every thread's cache without touching their storage.
  // Epochs are process-globally unique, never per-instance — a cached
  // epoch from a destroyed registry can never match a new registry that
  // recycled its address.
  struct TlsRef {
    std::uint64_t epoch = 0;
    Shard* shard = nullptr;
  };
  thread_local TlsRef tls;
  const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (tls.epoch == epoch) return *tls.shard;

  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<Shard>());
  tls = TlsRef{epoch, shards_.back().get()};
  return *tls.shard;
}

void Registry::add(MetricId id, std::uint64_t value) {
  const std::size_t slot = id >> 2;
  const MetricKind kind = static_cast<MetricKind>(id & 0x3);
  if (slot >= kShardSlots) return;
  Shard& shard = local_shard();
  switch (kind) {
    case MetricKind::kCounter:
      shard.cells[slot].fetch_add(value, std::memory_order_relaxed);
      break;
    case MetricKind::kMax: {
      std::atomic<std::uint64_t>& cell = shard.cells[slot];
      std::uint64_t seen = cell.load(std::memory_order_relaxed);
      while (seen < value && !cell.compare_exchange_weak(
                                 seen, value, std::memory_order_relaxed)) {
      }
      break;
    }
    case MetricKind::kHistogram: {
      shard.cells[slot].fetch_add(1, std::memory_order_relaxed);
      shard.cells[slot + 1].fetch_add(value, std::memory_order_relaxed);
      std::atomic<std::uint64_t>& maxc = shard.cells[slot + 2];
      std::uint64_t seen = maxc.load(std::memory_order_relaxed);
      while (seen < value && !maxc.compare_exchange_weak(
                                 seen, value, std::memory_order_relaxed)) {
      }
      shard.cells[slot + 3 + std::bit_width(value)].fetch_add(
          1, std::memory_order_relaxed);
      break;
    }
  }
}

Registry::Snapshot Registry::snapshot() const {
  Snapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  out.metrics.reserve(metrics_.size());
  for (const MetricInfo& info : metrics_) {
    MetricSnapshot m;
    m.name = info.name;
    m.kind = info.kind;
    m.deterministic = info.deterministic;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      const auto cell = [&shard](std::size_t i) {
        return shard->cells[i].load(std::memory_order_relaxed);
      };
      switch (info.kind) {
        case MetricKind::kCounter:
          m.value += cell(info.slot);
          break;
        case MetricKind::kMax:
          m.value = std::max(m.value, cell(info.slot));
          break;
        case MetricKind::kHistogram:
          m.count += cell(info.slot);
          m.sum += cell(info.slot + 1);
          m.max = std::max(m.max, cell(info.slot + 2));
          for (std::size_t b = 0; b < m.buckets.size(); ++b) {
            m.buckets[b] += cell(info.slot + 3 + b);
          }
          break;
      }
    }
    out.metrics.push_back(std::move(m));
  }
  std::sort(out.metrics.begin(), out.metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.clear();
  shards_.clear();
  next_slot_ = 0;
  epoch_.store(next_epoch(), std::memory_order_release);
}

Registry& Registry::global() {
  static Registry* registry = new Registry;  // never destroyed: threads may
  return *registry;                          // record until process exit
}

std::uint64_t Registry::MetricSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0;
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) >= target) {
      // Bucket b holds samples in [2^(b-1), 2^b), so its inclusive
      // upper bound is 2^b - 1 (bucket 0 holds only zeros; the top
      // bucket's bound saturates at the recorded max).
      if (b >= 64) return max;
      const std::uint64_t bound = b == 0 ? 0 : (1ull << b) - 1;
      return bound < max ? bound : max;
    }
  }
  return max;
}

const Registry::MetricSnapshot* Registry::Snapshot::find(
    std::string_view name) const noexcept {
  for (const MetricSnapshot& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::string Registry::Snapshot::fingerprint() const {
  std::string out;
  for (const MetricSnapshot& m : metrics) {
    out += m.name;
    out += ' ';
    out += metric_kind_name(m.kind);
    out += ' ';
    if (m.kind == MetricKind::kHistogram) {
      // Sample counts are exact at any thread count; sums/maxima of
      // timing histograms are not, so they only count when the metric
      // was registered deterministic.
      out += "count=" + std::to_string(m.count);
      if (m.deterministic) {
        out += " sum=" + std::to_string(m.sum);
        out += " max=" + std::to_string(m.max);
      }
    } else if (m.deterministic) {
      out += std::to_string(m.value);
    } else {
      out += "-";
    }
    out += '\n';
  }
  return out;
}

}  // namespace iotx::obs
