// Per-stage profile report (DESIGN.md §"Observability"): folds a
// Registry snapshot into one row per instrumented stage — wall ns,
// calls, bytes in/out, peak bytes — rendered as profile.json (machine
// readable) and profile.txt (terminal friendly). The report directory a
// `iotx study --metrics` run writes contains both next to the tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "iotx/obs/registry.hpp"

namespace iotx::obs {

/// One instrumented stage, aggregated over every invocation. Sourced
/// from the metric family stage/<name>/{wall_ns,bytes_in,bytes_out,
/// peak_bytes} that obs::Span maintains.
struct StageProfile {
  std::string stage;
  std::uint64_t calls = 0;
  std::uint64_t wall_ns = 0;      ///< summed across calls (and threads)
  std::uint64_t max_call_ns = 0;  ///< slowest single call
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t peak_bytes = 0;   ///< high-water mark, 0 when unset
};

/// Extracts the per-stage rows, sorted by total wall time (descending) so
/// the hottest stage leads the report.
std::vector<StageProfile> build_stage_profiles(const Registry::Snapshot& snap);

/// Stamped as the leading `schema_version` field of profile.json; bump
/// when the document shape changes so version-gated consumers can refuse
/// a mixed comparison.
inline constexpr std::uint64_t kProfileSchemaVersion = 1;

/// {"schema_version":N,"section":"profile","stages":[...],
/// "counters":[...]} — stages as above; every non-stage metric (study
/// totals, health counters, absorbed ad-hoc counters) under "counters"
/// with its kind.
std::string profile_json(const Registry::Snapshot& snap);

/// The same data as aligned text tables.
std::string profile_text(const Registry::Snapshot& snap);

/// JSON string escaping shared with the trace writer (exposed so the
/// bench JSON writer needs no second copy).
std::string json_escape(std::string_view text);

}  // namespace iotx::obs
