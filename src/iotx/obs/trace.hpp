// obs::Span / obs::TraceCollector — RAII trace spans around every
// pipeline stage, written as Chrome trace_event JSON (loadable in
// Perfetto / chrome://tracing). DESIGN.md §"Observability" names every
// instrumented stage.
//
// A Span measures one stage on one thread with steady_clock and, on
// destruction, (a) appends a complete ("ph":"X") trace event to the
// installed collector's per-thread buffer — no lock after the buffer
// exists — and (b) feeds the stage's wall-clock histogram and byte
// counters in the global metrics registry. Both halves are independently
// gated: with no collector installed and metrics off, constructing a
// Span is two relaxed atomic loads and zero allocations (asserted by
// tests/test_obs.cpp), which is how the default build keeps headline
// tables byte-identical and the ingest bench within noise.
//
// Span nesting is implicit per thread (Chrome traces stack same-tid
// events by time containment). Work that hops threads through
// util::TaskPool keeps its lineage explicitly: TaskPool::submit captures
// current_context() — the innermost open span on the submitting thread —
// and re-establishes it on the worker via ContextGuard, so spans opened
// inside pool tasks carry a "parent" arg naming the stage that spawned
// them.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace iotx::obs {

/// True while a TraceCollector is installed (one relaxed atomic load).
bool tracing_active() noexcept;

/// True when either tracing or metrics are on — the gate callers use
/// before building span metadata strings.
bool observability_active() noexcept;

/// Collects trace events into per-thread buffers and renders them as one
/// Chrome trace_event JSON document. Install at most one at a time; the
/// destructor uninstalls automatically.
class TraceCollector {
 public:
  TraceCollector();
  ~TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Makes this the process-wide collector; spans start recording.
  /// Throws std::logic_error if another collector is installed.
  void install();

  /// install() that tolerates an occupied slot: returns true when this
  /// collector is now (or already was) the installed one, false when a
  /// different collector holds the slot. Never throws — safe from the
  /// lazy IOTX_OBS env hook, which runs inside noexcept span paths.
  bool try_install() noexcept;

  /// Stops recording (spans still open keep their buffers valid: the
  /// collector outlives the uninstall, events landing after it are kept).
  void uninstall() noexcept;

  /// The finished document:
  /// {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,
  ///   "pid":1,"tid":...,"cat":"iotx","args":{...}}, ...],
  ///  "displayTimeUnit":"ms"} — ts/dur in microseconds, as the Chrome
  /// trace_event spec requires. Events are sorted by start time.
  std::string trace_json() const;

  /// Writes trace_json() to a file. Returns false on I/O error.
  bool write(const std::string& path) const;

  /// Events recorded so far (across all threads).
  std::size_t event_count() const;

  struct Event {
    std::string name;
    std::string args;  ///< pre-rendered JSON object body, may be empty
    std::uint64_t start_ns = 0;
    std::uint64_t duration_ns = 0;
    std::uint32_t tid = 0;
  };

  /// Appends one event to the calling thread's buffer (used by Span).
  void record(Event event);

 private:
  struct ThreadBuffer {
    std::uint32_t tid = 0;
    std::vector<Event> events;
  };

  ThreadBuffer& local_buffer();

  mutable std::mutex mu_;  // guards buffers_ (creation + snapshot)
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::uint64_t origin_ns_ = 0;  ///< steady-clock epoch of install()
  // Process-globally unique (assigned in the constructor, never reused),
  // so a thread-local buffer cache keyed on it can never match a new
  // collector allocated at a destroyed collector's address.
  std::uint64_t instance_id_ = 0;
  bool installed_ = false;
};

/// The installed collector, or nullptr.
TraceCollector* trace_collector() noexcept;

/// The innermost open span name on this thread, falling back to the
/// context inherited from a TaskPool submitter; empty when none.
std::string current_context();

/// Re-establishes a submitting thread's span context on a worker thread
/// for the guard's lifetime (used by util::TaskPool).
class ContextGuard {
 public:
  explicit ContextGuard(std::string context);
  ~ContextGuard();
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  std::string previous_;
};

/// RAII stage timer: one trace event and one wall-clock histogram sample
/// per constructed span. `stage` must outlive the span (string literals
/// in practice; they name rows of profile.json).
class Span {
 public:
  /// The cheap form — no metadata. Safe to construct unconditionally.
  explicit Span(const char* stage) noexcept;

  /// With pre-rendered JSON-object-body metadata for the trace event,
  /// e.g. R"("device":"ring_doorbell","config":"us")". Callers gate the
  /// string construction on observability_active().
  Span(const char* stage, std::string args);

  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Byte accounting folded into stage/<name>/bytes_{in,out} counters
  /// (and the trace event args) at destruction. No-ops when inactive.
  void add_bytes_in(std::uint64_t bytes) noexcept { bytes_in_ += bytes; }
  void add_bytes_out(std::uint64_t bytes) noexcept { bytes_out_ += bytes; }

  /// Records a stage high-water mark (stage/<name>/peak_bytes).
  void note_peak_bytes(std::uint64_t bytes);

  bool active() const noexcept { return tracing_ || metrics_; }

 private:
  void open();

  const char* stage_;
  std::string args_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
  bool tracing_ = false;
  bool metrics_ = false;
};

}  // namespace iotx::obs
