#include "iotx/obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "iotx/obs/profile.hpp"
#include "iotx/obs/registry.hpp"

namespace iotx::obs {

namespace {

std::atomic<TraceCollector*> g_collector{nullptr};

// Monotonic collector ids start at 1 so a zero-initialized TLS cache
// never matches a live collector.
std::uint64_t next_collector_id() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint64_t steady_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Per-thread span-name stack (only maintained while tracing) plus the
// context inherited from a TaskPool submitter.
thread_local std::vector<const char*> t_span_stack;
thread_local std::string t_inherited_context;

// IOTX_OBS=trace installs a process-lifetime collector; when
// IOTX_TRACE_FILE names a path, the trace is written there at exit.
// This is how CI traces a whole test binary without touching its argv.
struct EnvTrace {
  EnvTrace() {
    const char* env = std::getenv("IOTX_OBS");
    if (env == nullptr || std::strstr(env, "trace") == nullptr) return;
    static TraceCollector* collector = new TraceCollector;
    // try_install, not install: this hook runs lazily from
    // tracing_active(), which noexcept Span paths reach — if a CLI
    // collector already holds the slot, defer to it instead of
    // throwing into std::terminate.
    if (!collector->try_install()) return;
    if (std::getenv("IOTX_TRACE_FILE") != nullptr) {
      std::atexit([] {
        static TraceCollector* c = g_collector.load(std::memory_order_acquire);
        if (c != nullptr) c->write(std::getenv("IOTX_TRACE_FILE"));
      });
    }
  }
};

void ensure_env_trace() {
  static EnvTrace init;
  (void)init;
}

}  // namespace

bool tracing_active() noexcept {
  ensure_env_trace();
  return g_collector.load(std::memory_order_acquire) != nullptr;
}

bool observability_active() noexcept {
  return tracing_active() || metrics_enabled();
}

TraceCollector* trace_collector() noexcept {
  return g_collector.load(std::memory_order_acquire);
}

// NOTE: must not call ensure_env_trace() here — EnvTrace's constructor
// builds a TraceCollector while the ensure_env_trace() static guard is
// held, so re-entering from this constructor deadlocks at startup when
// IOTX_OBS=trace is set. tracing_active() runs the env hook instead.
TraceCollector::TraceCollector() : instance_id_(next_collector_id()) {}

TraceCollector::~TraceCollector() { uninstall(); }

void TraceCollector::install() {
  if (!try_install()) {
    throw std::logic_error("obs::TraceCollector: another collector is installed");
  }
}

bool TraceCollector::try_install() noexcept {
  TraceCollector* expected = nullptr;
  origin_ns_ = steady_ns();
  if (!g_collector.compare_exchange_strong(expected, this,
                                           std::memory_order_acq_rel)) {
    return expected == this;
  }
  installed_ = true;
  return true;
}

void TraceCollector::uninstall() noexcept {
  TraceCollector* expected = this;
  g_collector.compare_exchange_strong(expected, nullptr,
                                      std::memory_order_acq_rel);
  installed_ = false;
}

TraceCollector::ThreadBuffer& TraceCollector::local_buffer() {
  // Keyed on the collector's globally unique instance id, not its
  // address: sequential collectors often reuse the same stack slot, and
  // an address-keyed cache would hand back a ThreadBuffer owned by the
  // destroyed predecessor (use-after-free).
  struct TlsRef {
    std::uint64_t collector_id = 0;
    ThreadBuffer* buffer = nullptr;
  };
  thread_local TlsRef tls;
  if (tls.collector_id == instance_id_) return *tls.buffer;
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  buffers_.back()->tid = static_cast<std::uint32_t>(buffers_.size());
  tls = TlsRef{instance_id_, buffers_.back().get()};
  return *tls.buffer;
}

void TraceCollector::record(Event event) {
  event.start_ns -= std::min(event.start_ns, origin_ns_);
  ThreadBuffer& buffer = local_buffer();
  event.tid = buffer.tid;
  buffer.events.push_back(std::move(event));
}

std::size_t TraceCollector::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& buffer : buffers_) n += buffer->events.size();
  return n;
}

std::string TraceCollector::trace_json() const {
  std::vector<const Event*> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buffer : buffers_) {
      for (const Event& e : buffer->events) events.push_back(&e);
    }
  }
  std::sort(events.begin(), events.end(), [](const Event* a, const Event* b) {
    return a->start_ns != b->start_ns ? a->start_ns < b->start_ns
                                      : a->duration_ns > b->duration_ns;
  });

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[160];
  for (const Event* e : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + json_escape(e->name) + "\",\"cat\":\"iotx\"";
    std::snprintf(buf, sizeof buf,
                  ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                  "\"tid\":%u",
                  static_cast<double>(e->start_ns) / 1000.0,
                  static_cast<double>(e->duration_ns) / 1000.0, e->tid);
    out += buf;
    if (!e->args.empty()) out += ",\"args\":{" + e->args + "}";
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool TraceCollector::write(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  out << trace_json() << '\n';
  return out.good();
}

std::string current_context() {
  if (!t_span_stack.empty()) return t_span_stack.back();
  return t_inherited_context;
}

ContextGuard::ContextGuard(std::string context)
    : previous_(std::move(t_inherited_context)) {
  t_inherited_context = std::move(context);
}

ContextGuard::~ContextGuard() { t_inherited_context = std::move(previous_); }

Span::Span(const char* stage) noexcept : stage_(stage) {
  // noexcept: open() only touches atomics/TLS unless observability is on,
  // and the collector path allocates only when recording.
  open();
}

Span::Span(const char* stage, std::string args)
    : stage_(stage), args_(std::move(args)) {
  open();
}

void Span::open() {
  tracing_ = tracing_active();
  metrics_ = metrics_enabled();
  if (!tracing_ && !metrics_) return;
  if (tracing_) t_span_stack.push_back(stage_);
  start_ns_ = steady_ns();
}

void Span::note_peak_bytes(std::uint64_t bytes) {
  if (!metrics_) return;
  Registry& registry = Registry::global();
  registry.add(
      registry.maximum("stage/" + std::string(stage_) + "/peak_bytes"),
      bytes);
}

Span::~Span() {
  if (!tracing_ && !metrics_) return;
  const std::uint64_t now = steady_ns();
  const std::uint64_t duration = now - std::min(start_ns_, now);

  if (metrics_) {
    Registry& registry = Registry::global();
    const std::string base = "stage/" + std::string(stage_);
    registry.add(registry.histogram(base + "/wall_ns",
                                    /*deterministic=*/false),
                 duration);
    if (bytes_in_ > 0) {
      registry.add(registry.counter(base + "/bytes_in"), bytes_in_);
    }
    if (bytes_out_ > 0) {
      registry.add(registry.counter(base + "/bytes_out"), bytes_out_);
    }
  }

  if (tracing_) {
    // This span is the top of its thread's stack (RAII nesting).
    if (!t_span_stack.empty() && t_span_stack.back() == stage_) {
      t_span_stack.pop_back();
    }
    if (TraceCollector* collector = trace_collector()) {
      TraceCollector::Event event;
      event.name = stage_;
      event.args = std::move(args_);
      // A span at the root of a pool worker's stack records the
      // submitting thread's context so cross-thread lineage survives in
      // the trace (TaskPool span propagation).
      if (t_span_stack.empty() && !t_inherited_context.empty()) {
        if (!event.args.empty()) event.args += ',';
        event.args += "\"parent\":\"" + json_escape(t_inherited_context) + '"';
      }
      if (bytes_in_ > 0) {
        if (!event.args.empty()) event.args += ',';
        event.args += "\"bytes_in\":" + std::to_string(bytes_in_);
      }
      if (bytes_out_ > 0) {
        if (!event.args.empty()) event.args += ',';
        event.args += "\"bytes_out\":" + std::to_string(bytes_out_);
      }
      event.start_ns = start_ns_;
      event.duration_ns = duration;
      collector->record(std::move(event));
    }
  }
}

}  // namespace iotx::obs
