#include "iotx/obs/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace iotx::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Splits "stage/<name>/<field>" into (<name>, <field>); empty stage when
/// the metric is not part of a stage family.
std::pair<std::string_view, std::string_view> stage_parts(
    std::string_view name) {
  constexpr std::string_view kPrefix = "stage/";
  if (name.substr(0, kPrefix.size()) != kPrefix) return {};
  const std::size_t last = name.rfind('/');
  if (last == std::string_view::npos || last < kPrefix.size()) return {};
  return {name.substr(kPrefix.size(), last - kPrefix.size()),
          name.substr(last + 1)};
}

std::string format_ns(std::uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ULL) {
    std::snprintf(buf, sizeof buf, "%.2fs", static_cast<double>(ns) / 1e9);
  } else if (ns >= 1000000ULL) {
    std::snprintf(buf, sizeof buf, "%.2fms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1000ULL) {
    std::snprintf(buf, sizeof buf, "%.2fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lluns",
                  static_cast<unsigned long long>(ns));
  }
  return buf;
}

}  // namespace

std::vector<StageProfile> build_stage_profiles(
    const Registry::Snapshot& snap) {
  std::map<std::string, StageProfile, std::less<>> stages;
  for (const Registry::MetricSnapshot& m : snap.metrics) {
    const auto [stage, field] = stage_parts(m.name);
    if (stage.empty()) continue;
    auto it = stages.find(stage);
    if (it == stages.end()) {
      it = stages.emplace(std::string(stage), StageProfile{}).first;
      it->second.stage = stage;
    }
    StageProfile& row = it->second;
    if (field == "wall_ns") {
      row.calls = m.count;
      row.wall_ns = m.sum;
      row.max_call_ns = m.max;
    } else if (field == "bytes_in") {
      row.bytes_in = m.value;
    } else if (field == "bytes_out") {
      row.bytes_out = m.value;
    } else if (field == "peak_bytes") {
      row.peak_bytes = m.value;
    }
  }
  std::vector<StageProfile> out;
  out.reserve(stages.size());
  for (auto& [name, row] : stages) out.push_back(std::move(row));
  std::sort(out.begin(), out.end(),
            [](const StageProfile& a, const StageProfile& b) {
              return a.wall_ns != b.wall_ns ? a.wall_ns > b.wall_ns
                                            : a.stage < b.stage;
            });
  return out;
}

std::string profile_json(const Registry::Snapshot& snap) {
  std::string out = "{\"schema_version\":" +
                    std::to_string(kProfileSchemaVersion) +
                    ",\"section\":\"profile\",\"stages\":[";
  // Worst case: ",\"count\":...,\"sum\":...,\"max\":..." with three
  // 20-digit uint64 values is ~84 bytes — 64 would truncate into
  // malformed JSON.
  char buf[128];
  bool first = true;
  for (const StageProfile& s : build_stage_profiles(snap)) {
    if (!first) out += ',';
    first = false;
    out += "{\"stage\":\"" + json_escape(s.stage) + "\"";
    const auto field = [&](const char* name, std::uint64_t v) {
      std::snprintf(buf, sizeof buf, ",\"%s\":%llu", name,
                    static_cast<unsigned long long>(v));
      out += buf;
    };
    field("calls", s.calls);
    field("wall_ns", s.wall_ns);
    field("max_call_ns", s.max_call_ns);
    field("bytes_in", s.bytes_in);
    field("bytes_out", s.bytes_out);
    field("peak_bytes", s.peak_bytes);
    out += '}';
  }
  out += "],\"counters\":[";
  first = true;
  for (const Registry::MetricSnapshot& m : snap.metrics) {
    if (!stage_parts(m.name).first.empty()) continue;  // already reported
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + json_escape(m.name) + "\",\"kind\":\"";
    out += metric_kind_name(m.kind);
    out += '"';
    if (m.kind == MetricKind::kHistogram) {
      std::snprintf(buf, sizeof buf,
                    ",\"count\":%llu,\"sum\":%llu,\"max\":%llu",
                    static_cast<unsigned long long>(m.count),
                    static_cast<unsigned long long>(m.sum),
                    static_cast<unsigned long long>(m.max));
    } else {
      std::snprintf(buf, sizeof buf, ",\"value\":%llu",
                    static_cast<unsigned long long>(m.value));
    }
    out += buf;
    out += '}';
  }
  out += "]}";
  return out;
}

std::string profile_text(const Registry::Snapshot& snap) {
  std::string out = "Per-stage profile (sorted by total wall time)\n\n";
  char line[256];
  std::snprintf(line, sizeof line, "%-28s %10s %12s %12s %14s %14s %12s\n",
                "stage", "calls", "wall", "max call", "bytes in",
                "bytes out", "peak bytes");
  out += line;
  for (const StageProfile& s : build_stage_profiles(snap)) {
    std::snprintf(line, sizeof line,
                  "%-28s %10llu %12s %12s %14llu %14llu %12llu\n",
                  s.stage.c_str(), static_cast<unsigned long long>(s.calls),
                  format_ns(s.wall_ns).c_str(),
                  format_ns(s.max_call_ns).c_str(),
                  static_cast<unsigned long long>(s.bytes_in),
                  static_cast<unsigned long long>(s.bytes_out),
                  static_cast<unsigned long long>(s.peak_bytes));
    out += line;
  }

  out += "\nCounters\n\n";
  for (const Registry::MetricSnapshot& m : snap.metrics) {
    if (!stage_parts(m.name).first.empty()) continue;
    if (m.kind == MetricKind::kHistogram) {
      std::snprintf(line, sizeof line,
                    "  %-40s count=%llu sum=%llu max=%llu\n", m.name.c_str(),
                    static_cast<unsigned long long>(m.count),
                    static_cast<unsigned long long>(m.sum),
                    static_cast<unsigned long long>(m.max));
    } else {
      std::snprintf(line, sizeof line, "  %-40s %llu%s\n", m.name.c_str(),
                    static_cast<unsigned long long>(m.value),
                    m.kind == MetricKind::kMax ? "  (max)" : "");
    }
    out += line;
  }
  return out;
}

}  // namespace iotx::obs
