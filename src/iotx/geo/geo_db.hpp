// Prefix -> country geolocation database, the raw input that the Passport
// resolver (paper §4.1) refines with traceroute evidence.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "iotx/net/address.hpp"

namespace iotx::geo {

/// Country / region codes used throughout the study.
/// (Figure 2 groups destinations into US, UK, EU, China and "other".)
struct Country {
  std::string code;  ///< ISO-like code: "US", "GB", "CN", "DE", "KR", ...
};

/// Coarse region grouping used by Figure 2.
enum class Region { kUs, kUk, kEu, kChina, kJapan, kKorea, kOther };

std::string_view region_name(Region r) noexcept;

/// Maps a country code to its Figure-2 region.
Region region_for_country(std::string_view country_code) noexcept;

/// Longest-prefix-match geolocation database. Deliberately imperfect
/// entries can be added (`reliable = false`) to model the public-database
/// inaccuracy the paper reports; the Passport resolver cross-checks them.
class GeoDatabase {
 public:
  void add_prefix(net::Ipv4Address prefix, int prefix_len,
                  std::string country_code, bool reliable = true);

  struct Result {
    std::string country_code;
    bool reliable;
  };

  /// Longest-prefix match; nullopt when nothing covers the address.
  std::optional<Result> lookup(net::Ipv4Address addr) const;

  std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    std::uint32_t prefix;
    int len;
    std::string country;
    bool reliable;
  };
  std::vector<Entry> entries_;
};

}  // namespace iotx::geo
