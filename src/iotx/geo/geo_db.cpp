#include "iotx/geo/geo_db.hpp"

#include "iotx/util/strings.hpp"

namespace iotx::geo {

std::string_view region_name(Region r) noexcept {
  switch (r) {
    case Region::kUs: return "US";
    case Region::kUk: return "UK";
    case Region::kEu: return "EU";
    case Region::kChina: return "China";
    case Region::kJapan: return "Japan";
    case Region::kKorea: return "Korea";
    case Region::kOther: break;
  }
  return "Other";
}

Region region_for_country(std::string_view code) noexcept {
  if (code == "US") return Region::kUs;
  if (code == "GB" || code == "UK") return Region::kUk;
  if (code == "CN" || code == "HK") return Region::kChina;
  if (code == "JP") return Region::kJapan;
  if (code == "KR") return Region::kKorea;
  static constexpr std::string_view kEuCodes[] = {
      "DE", "FR", "NL", "IE", "IT", "ES", "SE", "PL", "BE", "AT", "DK", "FI"};
  for (std::string_view eu : kEuCodes) {
    if (code == eu) return Region::kEu;
  }
  return Region::kOther;
}

void GeoDatabase::add_prefix(net::Ipv4Address prefix, int prefix_len,
                             std::string country_code, bool reliable) {
  entries_.push_back(
      Entry{prefix.value(), prefix_len, std::move(country_code), reliable});
}

std::optional<GeoDatabase::Result> GeoDatabase::lookup(
    net::Ipv4Address addr) const {
  const Entry* best = nullptr;
  for (const Entry& entry : entries_) {
    if (addr.in_prefix(net::Ipv4Address(entry.prefix), entry.len) &&
        (best == nullptr || entry.len > best->len)) {
      best = &entry;
    }
  }
  if (best == nullptr) return std::nullopt;
  return Result{best->country, best->reliable};
}

}  // namespace iotx::geo
