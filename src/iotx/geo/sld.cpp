#include "iotx/geo/sld.hpp"

#include <array>

#include "iotx/util/strings.hpp"

namespace iotx::geo {

namespace {
// Subset of the public-suffix list: every suffix observed across the
// study's destination domains plus the common two-level country suffixes.
constexpr std::array<std::string_view, 34> kSuffixes = {
    "com",    "net",    "org",    "io",     "us",     "uk",     "cn",
    "jp",     "kr",     "de",     "fr",     "nl",     "ie",     "sg",
    "au",     "tv",     "me",     "cc",     "co",     "ai",     "cloud",
    "co.uk",  "org.uk", "ac.uk",  "gov.uk", "com.cn", "net.cn", "org.cn",
    "com.au", "co.jp",  "co.kr",  "com.sg", "com.tw", "co.in",
};

bool suffix_known(std::string_view s) {
  for (std::string_view known : kSuffixes) {
    if (s == known) return true;
  }
  return false;
}
}  // namespace

bool is_public_suffix(std::string_view name) {
  return suffix_known(util::to_lower(name));
}

std::string second_level_domain(std::string_view fqdn) {
  const std::string lower = util::to_lower(util::trim(fqdn));
  const auto labels = util::split(lower, '.');
  if (labels.size() < 2) return lower;

  // IP literals pass through unchanged.
  bool all_numeric = true;
  for (const std::string& label : labels) {
    for (char c : label) {
      if (c < '0' || c > '9') {
        all_numeric = false;
        break;
      }
    }
    if (!all_numeric) break;
  }
  if (all_numeric) return lower;

  // Find the longest known public suffix, then keep one more label.
  // Try two-level suffixes before one-level ones.
  for (std::size_t take = std::min<std::size_t>(2, labels.size() - 1);
       take >= 1; --take) {
    std::string suffix;
    for (std::size_t i = labels.size() - take; i < labels.size(); ++i) {
      if (!suffix.empty()) suffix.push_back('.');
      suffix += labels[i];
    }
    if (suffix_known(suffix) && labels.size() > take) {
      return labels[labels.size() - take - 1] + "." + suffix;
    }
    if (take == 1) break;
  }
  // Unknown suffix: fall back to the last two labels.
  return labels[labels.size() - 2] + "." + labels[labels.size() - 1];
}

}  // namespace iotx::geo
