// Second-level-domain extraction (paper §4.1) with an embedded subset of
// the public-suffix list covering every TLD that appears in the study.
#pragma once

#include <string>
#include <string_view>

namespace iotx::geo {

/// Returns the registrable domain ("SLD" in the paper's terminology):
/// one label beneath the public suffix. Examples:
///   "device.ring.com"        -> "ring.com"
///   "cdn.news.bbc.co.uk"     -> "bbc.co.uk"
///   "a.b.aliyuncs.com.cn"    -> "aliyuncs.com.cn" (com.cn is a suffix)
/// Inputs that are empty, a bare suffix, or an IP literal are returned
/// unchanged (lowercased).
std::string second_level_domain(std::string_view fqdn);

/// True when the name is a known public suffix ("com", "co.uk", ...).
bool is_public_suffix(std::string_view name);

}  // namespace iotx::geo
