// Organization attribution and party classification (paper §4.1).
//
// The paper identifies the organization behind an SLD via WHOIS data or
// common-sense matching rules, falls back to the IP registry owner when no
// domain is known, then classifies each organization as a first, support,
// or third party relative to the device's manufacturer.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "iotx/net/address.hpp"

namespace iotx::geo {

/// Party taxonomy from paper §2.1.
enum class PartyType {
  kFirst,    ///< manufacturer or related company
  kSupport,  ///< CDN / cloud / outsourced computing
  kThird,    ///< everything else (ads, analytics, trackers, ...)
};

std::string_view party_name(PartyType t) noexcept;

/// WHOIS-like registry: SLD -> organization, organization -> kind,
/// IP prefix -> registry owner (the RIR fallback).
class OrgDatabase {
 public:
  /// Registers the organization owning an SLD ("nest.com" -> "Google").
  void add_domain(std::string sld, std::string organization);

  /// Marks an organization as an infrastructure provider (CDN/cloud), the
  /// paper's "support party" category.
  void add_infrastructure(std::string organization);

  /// Registers an IP prefix's owning organization (regional-registry data).
  void add_prefix(net::Ipv4Address prefix, int prefix_len,
                  std::string organization);

  /// Organization for an SLD. Falls back to the paper's "common-sense
  /// matching rule": capitalize the SLD's first label ("google.com" ->
  /// "Google").
  std::string organization_for_domain(std::string_view sld) const;

  /// Registry owner of an address; nullopt when no prefix matches
  /// (longest-prefix match).
  std::optional<std::string> organization_for_ip(net::Ipv4Address addr) const;

  /// True when the organization is registered as CDN/cloud infrastructure.
  bool is_infrastructure(std::string_view organization) const;

  /// Classifies an organization relative to a device: kFirst when it
  /// case-insensitively matches any of the device's first-party names
  /// (manufacturer + related companies), kSupport when registered as
  /// infrastructure, kThird otherwise.
  PartyType classify(std::string_view organization,
                     const std::vector<std::string>& first_party_names) const;

 private:
  std::unordered_map<std::string, std::string> domain_to_org_;
  std::unordered_map<std::string, bool> infrastructure_;
  struct PrefixEntry {
    std::uint32_t prefix;
    int len;
    std::string organization;
  };
  std::vector<PrefixEntry> prefixes_;
};

}  // namespace iotx::geo
