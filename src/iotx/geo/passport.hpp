// Traceroute-informed country inference — the stand-in for the Passport
// tool the paper uses (§4.1): "combining traceroute data with other IP
// geolocation sources. We do not use public geolocation databases alone,
// which we found to be highly inaccurate."
//
// A database claim is accepted only if it is speed-of-light consistent
// with the measured minimum RTT from the probing vantage. Inconsistent or
// missing claims fall back to the RTT-feasible candidate set and, lastly,
// the registry country.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "iotx/geo/geo_db.hpp"
#include "iotx/net/address.hpp"

namespace iotx::geo {

/// Probing vantage point (the two labs).
enum class Vantage { kUsLab, kUkLab };

class PassportResolver {
 public:
  explicit PassportResolver(const GeoDatabase& db) : db_(&db) {}

  /// Minimum round-trip time (ms) physically possible between a vantage
  /// and a country, derived from great-circle distance at ~2/3 c plus
  /// last-mile overhead. Unknown countries return 0 (always feasible).
  static double min_feasible_rtt_ms(Vantage vantage,
                                    std::string_view country_code) noexcept;

  /// Infers the country for `addr` given the measured min RTT from the
  /// vantage. `registry_country` is the RIR-reported country, used as the
  /// final fallback. Returns "??" when nothing is known at all.
  std::string resolve(net::Ipv4Address addr, Vantage vantage, double rtt_ms,
                      std::optional<std::string> registry_country) const;

  /// True when the claim (country) is consistent with the measured RTT.
  static bool rtt_consistent(Vantage vantage, std::string_view country_code,
                             double rtt_ms) noexcept;

 private:
  const GeoDatabase* db_;
};

}  // namespace iotx::geo
