#include "iotx/geo/passport.hpp"

namespace iotx::geo {

namespace {

struct CountryRtt {
  std::string_view code;
  double from_us_ms;
  double from_uk_ms;
};

// Minimum feasible RTTs (ms) from each lab, approximating great-circle
// distance at 2/3 c plus ~4 ms of local overhead. Only countries observed
// in the study need entries; others default to "always feasible".
constexpr CountryRtt kCountryRtts[] = {
    {"US", 4.0, 70.0},  {"GB", 70.0, 4.0},  {"UK", 70.0, 4.0},
    {"DE", 85.0, 12.0}, {"FR", 80.0, 8.0},  {"NL", 80.0, 8.0},
    {"IE", 65.0, 6.0},  {"CN", 130.0, 90.0}, {"HK", 150.0, 100.0},
    {"JP", 100.0, 95.0}, {"KR", 120.0, 95.0}, {"SG", 170.0, 105.0},
    {"AU", 160.0, 150.0}, {"IN", 180.0, 110.0},
};

}  // namespace

double PassportResolver::min_feasible_rtt_ms(
    Vantage vantage, std::string_view country_code) noexcept {
  for (const CountryRtt& entry : kCountryRtts) {
    if (entry.code == country_code) {
      return vantage == Vantage::kUsLab ? entry.from_us_ms : entry.from_uk_ms;
    }
  }
  return 0.0;
}

bool PassportResolver::rtt_consistent(Vantage vantage,
                                      std::string_view country_code,
                                      double rtt_ms) noexcept {
  // A measured RTT below the physical minimum disproves the claim. Allow a
  // small tolerance for the coarseness of the table.
  return rtt_ms + 2.0 >= min_feasible_rtt_ms(vantage, country_code);
}

std::string PassportResolver::resolve(
    net::Ipv4Address addr, Vantage vantage, double rtt_ms,
    std::optional<std::string> registry_country) const {
  const auto claim = db_->lookup(addr);
  if (claim && rtt_consistent(vantage, claim->country_code, rtt_ms)) {
    return claim->country_code;
  }

  // The DB is missing or disproven. If the registry country is feasible,
  // prefer it (Passport's "other IP geolocation sources").
  if (registry_country &&
      rtt_consistent(vantage, *registry_country, rtt_ms)) {
    return *registry_country;
  }

  // Last resort: the tightest RTT-feasible candidate — the country whose
  // physical minimum is closest to (but not above) the measured RTT.
  std::string best = vantage == Vantage::kUsLab ? "US" : "GB";
  double best_min = 0.0;
  for (const CountryRtt& entry : kCountryRtts) {
    const double min_rtt =
        vantage == Vantage::kUsLab ? entry.from_us_ms : entry.from_uk_ms;
    if (min_rtt <= rtt_ms + 2.0 && min_rtt > best_min) {
      best_min = min_rtt;
      best = std::string(entry.code);
    }
  }
  return best == "UK" ? "GB" : best;
}

}  // namespace iotx::geo
