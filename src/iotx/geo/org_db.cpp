#include "iotx/geo/org_db.hpp"

#include <algorithm>
#include <cctype>

#include "iotx/util/strings.hpp"

namespace iotx::geo {

std::string_view party_name(PartyType t) noexcept {
  switch (t) {
    case PartyType::kFirst: return "First";
    case PartyType::kSupport: return "Support";
    case PartyType::kThird: return "Third";
  }
  return "?";
}

void OrgDatabase::add_domain(std::string sld, std::string organization) {
  domain_to_org_[util::to_lower(sld)] = std::move(organization);
}

void OrgDatabase::add_infrastructure(std::string organization) {
  infrastructure_[util::to_lower(organization)] = true;
}

void OrgDatabase::add_prefix(net::Ipv4Address prefix, int prefix_len,
                             std::string organization) {
  prefixes_.push_back(
      PrefixEntry{prefix.value(), prefix_len, std::move(organization)});
}

std::string OrgDatabase::organization_for_domain(std::string_view sld) const {
  const std::string key = util::to_lower(sld);
  const auto it = domain_to_org_.find(key);
  if (it != domain_to_org_.end()) return it->second;
  // Common-sense rule: the first label, capitalized.
  const std::size_t dot = key.find('.');
  std::string label = key.substr(0, dot);
  if (label.empty()) return key;
  label[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(label[0])));
  return label;
}

std::optional<std::string> OrgDatabase::organization_for_ip(
    net::Ipv4Address addr) const {
  const PrefixEntry* best = nullptr;
  for (const PrefixEntry& entry : prefixes_) {
    if (addr.in_prefix(net::Ipv4Address(entry.prefix), entry.len) &&
        (best == nullptr || entry.len > best->len)) {
      best = &entry;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->organization;
}

bool OrgDatabase::is_infrastructure(std::string_view organization) const {
  return infrastructure_.contains(util::to_lower(organization));
}

PartyType OrgDatabase::classify(
    std::string_view organization,
    const std::vector<std::string>& first_party_names) const {
  for (const std::string& name : first_party_names) {
    if (util::iequals(organization, name)) return PartyType::kFirst;
  }
  if (is_infrastructure(organization)) return PartyType::kSupport;
  return PartyType::kThird;
}

}  // namespace iotx::geo
