// Google-benchmark micro suite: throughput of the pipeline's hot paths —
// packet synthesis, pcap serialization/parsing, protocol parsing, flow
// assembly, entropy, feature extraction, and random-forest train/predict.
#include <benchmark/benchmark.h>

#include "iotx/analysis/encryption.hpp"
#include "iotx/analysis/features.hpp"
#include "iotx/flow/flow_table.hpp"
#include "iotx/flow/ingest.hpp"
#include "iotx/flow/traffic_unit.hpp"
#include "iotx/ml/random_forest.hpp"
#include "iotx/net/pcap.hpp"
#include "iotx/proto/dns.hpp"
#include "iotx/proto/tls.hpp"
#include "iotx/testbed/experiment.hpp"
#include "iotx/util/entropy.hpp"
#include "iotx/util/task_pool.hpp"

namespace {

using namespace iotx;

std::vector<flow::Flow> flows_of(const std::vector<net::Packet>& capture) {
  flow::FlowTable table;
  flow::IngestPipeline pipeline;
  pipeline.add_sink(table);
  pipeline.ingest_all(capture);
  pipeline.finish();
  return table.flows();
}

std::vector<net::Packet> sample_capture() {
  static const std::vector<net::Packet> capture = [] {
    const testbed::ExperimentRunner runner(
        testbed::SchedulePlan{3, 3, 3, 0.0});
    testbed::ExperimentSpec spec;
    spec.device_id = "samsung_tv";
    spec.config = {testbed::LabSite::kUs, false};
    spec.type = testbed::ExperimentType::kPower;
    spec.activity = "power";
    spec.start_time = testbed::kSimulationEpoch;
    return runner.run(spec).packets;
  }();
  return capture;
}

void BM_SynthesizePowerEvent(benchmark::State& state) {
  const testbed::TrafficSynthesizer synth;
  const testbed::DeviceSpec& device = *testbed::find_device("samsung_tv");
  std::uint64_t packets = 0;
  int rep = 0;
  for (auto _ : state) {
    util::Prng prng("bench" + std::to_string(rep++));
    const auto capture = synth.power_event(
        device, {testbed::LabSite::kUs, false}, 0.0, prng);
    packets += capture.size();
    benchmark::DoNotOptimize(capture.data());
  }
  state.counters["packets/s"] = benchmark::Counter(
      static_cast<double>(packets), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SynthesizePowerEvent);

void BM_PcapSerialize(benchmark::State& state) {
  const auto capture = sample_capture();
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const auto serialized = net::pcap_serialize(capture);
    bytes += serialized.size();
    benchmark::DoNotOptimize(serialized.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PcapSerialize);

void BM_PcapParse(benchmark::State& state) {
  const auto serialized = net::pcap_serialize(sample_capture());
  for (auto _ : state) {
    const auto parsed = net::pcap_parse(serialized);
    benchmark::DoNotOptimize(parsed->size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * serialized.size()));
}
BENCHMARK(BM_PcapParse);

void BM_DecodePackets(benchmark::State& state) {
  const auto capture = sample_capture();
  for (auto _ : state) {
    std::size_t decoded = 0;
    for (const auto& p : capture) {
      decoded += net::decode_packet(p).has_value();
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * capture.size()));
}
BENCHMARK(BM_DecodePackets);

void BM_DnsParse(benchmark::State& state) {
  const auto query =
      proto::make_query(7, "lcprd1.samsungcloudsolution.net");
  const auto response =
      proto::make_response(query, net::Ipv4Address(54, 148, 222, 7));
  const auto bytes = response.encode();
  for (auto _ : state) {
    const auto parsed = proto::DnsMessage::decode(bytes);
    benchmark::DoNotOptimize(parsed->answers.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DnsParse);

void BM_SniExtraction(benchmark::State& state) {
  const std::uint16_t suites[] = {0x1301, 0x1302, 0xc02f, 0xc030};
  const std::vector<std::uint8_t> rnd(32, 0x5a);
  const auto hello =
      proto::build_client_hello("osb.samsungcloudsolution.com", suites, rnd);
  for (auto _ : state) {
    const auto sni = proto::extract_sni(hello);
    benchmark::DoNotOptimize(sni->size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SniExtraction);

void BM_FlowAssembly(benchmark::State& state) {
  const auto capture = sample_capture();
  for (auto _ : state) {
    const auto flows = flows_of(capture);
    benchmark::DoNotOptimize(flows.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * capture.size()));
}
BENCHMARK(BM_FlowAssembly);

void BM_EncryptionClassification(benchmark::State& state) {
  const auto flows = flows_of(sample_capture());
  for (auto _ : state) {
    const auto bytes = analysis::account_flows(flows);
    benchmark::DoNotOptimize(bytes.classified_total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * flows.size()));
}
BENCHMARK(BM_EncryptionClassification);

void BM_Entropy(benchmark::State& state) {
  util::Prng prng("entropy-bench");
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (auto& b : data) b = static_cast<std::uint8_t>(prng.uniform(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::byte_entropy(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * data.size()));
}
BENCHMARK(BM_Entropy)->Range(1 << 10, 1 << 18);

void BM_FeatureExtraction(benchmark::State& state) {
  const auto capture = sample_capture();
  const auto& device = *testbed::find_device("samsung_tv");
  flow::MetaCollector collector(testbed::device_mac(device, true));
  flow::IngestPipeline meta_pipeline;
  meta_pipeline.add_sink(collector);
  meta_pipeline.ingest_all(capture);
  meta_pipeline.finish();
  const auto meta = collector.take();
  for (auto _ : state) {
    const auto features = analysis::FeatureAccumulator::extract(meta);
    benchmark::DoNotOptimize(features.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FeatureExtraction);

ml::Dataset bench_dataset() {
  ml::Dataset data;
  util::Prng prng("rf-bench");
  for (int i = 0; i < 150; ++i) {
    std::vector<double> row(90);
    const int cls = i % 5;
    for (auto& v : row) v = prng.normal(cls * 2.0, 1.0);
    data.add(std::move(row), "class" + std::to_string(cls));
  }
  return data;
}

void BM_RandomForestTrain(benchmark::State& state) {
  const ml::Dataset data = bench_dataset();
  ml::ForestParams params;
  params.n_trees = static_cast<std::size_t>(state.range(0));
  int rep = 0;
  for (auto _ : state) {
    ml::RandomForest forest;
    util::Prng prng("train" + std::to_string(rep++));
    forest.fit(data, params, prng);
    benchmark::DoNotOptimize(forest.tree_count());
  }
}
BENCHMARK(BM_RandomForestTrain)->Arg(10)->Arg(30)->Arg(100);

void BM_RandomForestTrainParallel(benchmark::State& state) {
  // Same work as BM_RandomForestTrain/100 spread over N pool threads;
  // the resulting forest is bit-identical at any thread count.
  const ml::Dataset data = bench_dataset();
  ml::ForestParams params;
  params.n_trees = 100;
  util::TaskPool pool(static_cast<std::size_t>(state.range(0)));
  int rep = 0;
  for (auto _ : state) {
    ml::RandomForest forest;
    util::Prng prng("train" + std::to_string(rep++));
    forest.fit(data, params, prng, &pool);
    benchmark::DoNotOptimize(forest.tree_count());
  }
}
BENCHMARK(BM_RandomForestTrainParallel)->Arg(1)->Arg(2)->Arg(4);

void BM_TaskPoolParallelForEachOverhead(benchmark::State& state) {
  // Dispatch cost of an n-way fan-out of trivial tasks.
  util::TaskPool pool(4);
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::atomic<std::uint64_t> total{0};
    pool.parallel_for_each(n, [&](std::size_t i) {
      total.fetch_add(i, std::memory_order_relaxed);
    });
    benchmark::DoNotOptimize(total.load());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TaskPoolParallelForEachOverhead)->Arg(16)->Arg(256);

void BM_RandomForestPredict(benchmark::State& state) {
  const ml::Dataset data = bench_dataset();
  ml::RandomForest forest;
  util::Prng prng("predict-train");
  forest.fit(data, ml::ForestParams{30, ml::TreeParams{}}, prng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.predict(data.row(i++ % data.size())));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RandomForestPredict);

}  // namespace

BENCHMARK_MAIN();
