// Scaling benchmark for the parallel study executor: runs the same
// multi-device campaign serially (jobs=1) and with the pool (jobs=N),
// reports wall time and speedup, and cross-checks that the two runs are
// bit-identical (the TaskPool determinism contract).
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "iotx/core/study.hpp"
#include "iotx/util/table.hpp"
#include "iotx/util/task_pool.hpp"

namespace {

using namespace iotx;

core::StudyParams scaling_params(std::size_t jobs) {
  core::StudyParams params;
  params.plan = testbed::SchedulePlan{/*automated_reps=*/8, /*manual_reps=*/3,
                                      /*power_reps=*/3, /*idle_hours=*/0.5};
  params.inference.validation.forest.n_trees = 30;
  params.inference.validation.repetitions = 4;
  params.run_uncontrolled = false;
  params.device_filter = {"ring_doorbell", "samsung_fridge", "tplink_plug",
                          "echo_dot", "yi_camera", "samsung_tv"};
  params.jobs = jobs;
  return params;
}

struct TimedRun {
  std::unique_ptr<core::Study> study;
  double seconds = 0.0;
};

TimedRun run_with_jobs(std::size_t jobs) {
  TimedRun run;
  run.study = std::make_unique<core::Study>(scaling_params(jobs));
  const auto t0 = std::chrono::steady_clock::now();
  run.study->run();
  const auto t1 = std::chrono::steady_clock::now();
  run.seconds = std::chrono::duration<double>(t1 - t0).count();
  return run;
}

bool identical(const core::Study& a, const core::Study& b) {
  if (a.config_keys() != b.config_keys()) return false;
  for (const std::string& key : a.config_keys()) {
    const auto& ra = a.results(key);
    const auto& rb = b.results(key);
    if (ra.size() != rb.size()) return false;
    for (std::size_t i = 0; i < ra.size(); ++i) {
      if (ra[i].device->id != rb[i].device->id) return false;
      if (ra[i].destinations.size() != rb[i].destinations.size()) return false;
      if (ra[i].enc_total.encrypted != rb[i].enc_total.encrypted) return false;
      if (ra[i].model.validation.macro_f1 != rb[i].model.validation.macro_f1) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  const std::size_t hw = iotx::util::TaskPool::default_thread_count();
  std::printf("study scaling benchmark (hardware threads: %zu)\n", hw);
  std::printf("6 devices x 2 labs x (direct + VPN), bench-scale reps\n\n");

  std::vector<std::size_t> job_counts = {1};
  if (hw >= 2) job_counts.push_back(2);
  if (hw >= 4) job_counts.push_back(4);
  if (hw > 4) job_counts.push_back(hw);

  util::TextTable table({"jobs", "wall s", "speedup", "experiments",
                         "identical to jobs=1"});
  bench::JsonWriter w;
  w.begin_object();
  w.field("schema_version", bench::kBenchSchemaVersion);
  w.field("bench", "scaling_study");
  w.field("hardware_threads", hw);
  w.key("runs").begin_array();
  TimedRun baseline;
  for (std::size_t jobs : job_counts) {
    TimedRun run = run_with_jobs(jobs);
    const bool first = baseline.study == nullptr;
    const double speedup = first ? 1.0 : baseline.seconds / run.seconds;
    const bool same = first || identical(*baseline.study, *run.study);
    char wall[32], speed[32];
    std::snprintf(wall, sizeof wall, "%.2f", run.seconds);
    std::snprintf(speed, sizeof speed, "%.2fx", speedup);
    table.add_row({std::to_string(jobs), wall, speed,
                   std::to_string(run.study->experiments_run()),
                   first ? "-" : (same ? "yes" : "NO (BUG)")});
    w.begin_object();
    w.field("jobs", static_cast<std::uint64_t>(jobs));
    w.field("seconds", run.seconds, 3);
    w.field("speedup", speedup, 2);
    w.field("experiments",
            static_cast<std::uint64_t>(run.study->experiments_run()));
    w.field("identical_to_serial", same);
    w.end_object();
    if (first) baseline = std::move(run);
  }
  w.end_array().end_object();
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nresults are required to be bit-identical at any job count; any\n"
      "'NO (BUG)' above is a determinism regression.\n\n%s\n",
      w.document().c_str());
  return 0;
}
