// Reproduces the §7.3 uncontrolled-experiment findings: running the
// high-confidence models over the user-study captures and checking the
// detections against ground truth reveals the devices that record users
// without an intentional trigger.
#include "common.hpp"

int main() {
  using namespace iotx;
  bench::print_title(
      "§7.3 — uncontrolled experiments: detections vs ground truth");
  bench::print_paper_note(
      "Paper findings: the Ring doorbell records video on every movement "
      "(undisclosed, cannot be turned off); the Zmodo doorbell uploads "
      "snapshots on movement; Alexa devices ship falsely-triggered "
      "conversations to Amazon before rejecting the wake word.");

  const core::Study& study = bench::shared_study();
  util::TextTable table({"Device", "Activity", "Detections", "Intended",
                         "Unintended", "Unmatched"});
  for (const auto& [device_id, findings] : study.uncontrolled_findings()) {
    const auto* device = testbed::find_device(device_id);
    for (const auto& f : findings) {
      table.add_row({device ? device->name : device_id, f.activity,
                     std::to_string(f.detections),
                     std::to_string(f.confirmed_intended),
                     std::to_string(f.confirmed_unintended),
                     std::to_string(f.unmatched)});
    }
  }
  std::fputs(table.render().c_str(), stdout);

  // Headline: unintended recordings by the doorbells.
  int doorbell_unintended = 0;
  for (const char* id : {"ring_doorbell", "zmodo_doorbell"}) {
    const auto it = study.uncontrolled_findings().find(id);
    if (it == study.uncontrolled_findings().end()) continue;
    for (const auto& f : it->second) {
      if (f.activity == "local_move") doorbell_unintended +=
          f.confirmed_unintended;
    }
  }
  std::printf(
      "\nDoorbell recordings triggered by mere presence (no user intent): "
      "%d over %.0f hours of lab use.\n",
      doorbell_unintended, study.user_study().hours);
  return 0;
}
