// Fleet-scaling bench: the distributed campaign protocol measured
// end-to-end. A single-process reference run fixes the expected tables;
// then worker fleets of increasing size race the same synthetic-catalog
// campaign over one shared cache directory (threads stand in for
// processes — the claim protocol lives entirely in the filesystem), a
// reduce pass merges the partials, and the bench records devices/sec
// per worker count plus the claim-contention and stale-reap counters.
// The final fleet starts against pre-seeded stale claims (a simulated
// crashed worker) so the lease-reap path is exercised and counted.
//
// scripts/check_ingest_baseline.py --fleet gates the same-run
// invariants (conservation of claim attempts, byte-identical reduce at
// every worker count, 100% reduce hit rate, the seeded reap observed);
// --append-fleet records the machine-relative scaling entry in
// BENCH_ingest.json.
//
// Usage: fleet_scaling [cache_root]   (default: fleet_bench.artifacts;
// removed first so every fleet starts cold)
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "iotx/core/study_cache.hpp"
#include "iotx/dist/claim.hpp"
#include "iotx/report/report.hpp"
#include "iotx/testbed/catalog_gen.hpp"

namespace {

using namespace iotx;
using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

constexpr std::size_t kFleetDevices = 32;
constexpr std::uint64_t kCatalogSeed = 7;
constexpr std::uint64_t kLeaseMs = 2'000;
constexpr std::size_t kSeededStaleClaims = 4;

core::StudyParams campaign_params(const std::string& cache_dir) {
  core::StudyParams params;
  params.plan = testbed::SchedulePlan{/*automated_reps=*/2, /*manual_reps=*/1,
                                      /*power_reps=*/1, /*idle_hours=*/0.05};
  params.inference.validation.forest.n_trees = 4;
  params.inference.validation.repetitions = 1;
  params.run_uncontrolled = false;
  params.run_vpn = false;
  params.jobs = 1;
  params.cache_dir = cache_dir;
  params.claim_lease_ms = kLeaseMs;
  testbed::CatalogGenParams gen;
  gen.count = kFleetDevices;
  gen.seed = kCatalogSeed;
  params.catalog = std::make_shared<const std::vector<testbed::DeviceSpec>>(
      testbed::generate_catalog(gen));
  params.catalog_id = testbed::catalog_cache_id(gen);
  return params;
}

/// (config, device) pairs the campaign enumerates — the work unit the
/// fleet partitions, and the denominator of devices_per_sec.
std::size_t campaign_pairs(const core::StudyParams& params) {
  std::size_t us = 0, uk = 0;
  for (const testbed::DeviceSpec& d : *params.catalog) {
    if (d.in_us()) ++us;
    if (d.in_uk()) ++uk;
  }
  return us + uk;
}

std::string table_fingerprint(const core::Study& study) {
  return report::table2_json(study) + report::table5_json(study) +
         report::table7_json(study) + report::table9_json(study) +
         report::table11_json(study) + report::pii_json(study);
}

struct FleetRun {
  int workers = 0;
  double seconds = 0.0;
  double devices_per_sec = 0.0;
  dist::ClaimStats claims;  ///< summed over the fleet's workers
  cache::ArtifactStoreStats reduce_stats;
  bool outputs_identical = false;
  std::size_t seeded_stale_claims = 0;
};

FleetRun run_fleet(const std::string& cache_dir, int workers,
                   std::size_t pairs, const std::string& expected,
                   std::size_t seed_stale_claims) {
  FleetRun r;
  r.workers = workers;
  r.seeded_stale_claims = seed_stale_claims;
  std::error_code ec;
  fs::remove_all(cache_dir, ec);

  if (seed_stale_claims > 0) {
    // A worker that died before this fleet arrived: claims old enough
    // that every lease must treat them as abandoned.
    const core::StudyParams params = campaign_params(cache_dir);
    dist::ClaimStore dead(cache_dir, dist::ClaimConfig{"crashed", kLeaseMs});
    const testbed::NetworkConfig config{testbed::LabSite::kUs, false};
    std::size_t seeded = 0;
    for (const testbed::DeviceSpec& device : *params.catalog) {
      if (seeded >= seed_stale_claims) break;
      if (!device.in_us()) continue;
      const std::string key = core::ingest_stage_key(params, device, config);
      if (!dead.try_claim(key)) continue;
      fs::last_write_time(dist::ClaimStore::claim_path(cache_dir, key),
                          fs::file_time_type::clock::now() -
                              std::chrono::milliseconds(10 * kLeaseMs));
      ++seeded;
    }
  }

  std::vector<dist::ClaimStats> per_worker(
      static_cast<std::size_t>(workers));
  const auto t0 = Clock::now();
  std::vector<std::thread> fleet;
  for (int w = 0; w < workers; ++w) {
    fleet.emplace_back([&cache_dir, &per_worker, w] {
      core::StudyParams params = campaign_params(cache_dir);
      params.worker = true;
      core::Study study(params);
      study.run();
      per_worker[static_cast<std::size_t>(w)] = study.claim_stats();
    });
  }
  for (std::thread& t : fleet) t.join();
  r.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  r.devices_per_sec =
      r.seconds > 0.0 ? static_cast<double>(pairs) / r.seconds : 0.0;
  for (const dist::ClaimStats& s : per_worker) {
    r.claims.attempts += s.attempts;
    r.claims.acquired += s.acquired;
    r.claims.contended += s.contended;
    r.claims.reaped += s.reaped;
    r.claims.released += s.released;
    r.claims.heartbeats += s.heartbeats;
  }

  core::Study reduced(campaign_params(cache_dir));
  reduced.run();
  r.reduce_stats = reduced.cache_stats();
  r.outputs_identical = table_fingerprint(reduced) == expected;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string root =
      argc > 1 ? argv[1] : std::string("fleet_bench.artifacts");
  std::error_code ec;
  fs::remove_all(root, ec);

  const core::StudyParams ref_params = campaign_params(root + "/ref");
  const std::size_t pairs = campaign_pairs(ref_params);
  std::fprintf(stderr,
               "[iotx-bench] reference run (%zu devices, %zu pairs)...\n",
               ref_params.catalog->size(), pairs);
  core::Study reference(ref_params);
  const auto t0 = Clock::now();
  reference.run();
  const double ref_seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const std::string expected = table_fingerprint(reference);

  std::vector<FleetRun> runs;
  for (const int workers : {1, 2, 4}) {
    // The largest fleet also inherits a crashed worker's stale claims.
    const std::size_t seed_stale = workers == 4 ? kSeededStaleClaims : 0;
    std::fprintf(stderr, "[iotx-bench] fleet of %d worker(s)%s...\n",
                 workers, seed_stale > 0 ? " + seeded stale claims" : "");
    runs.push_back(run_fleet(root + "/w" + std::to_string(workers), workers,
                             pairs, expected, seed_stale));
  }

  bench::JsonWriter w;
  w.begin_object();
  w.field("schema_version", bench::kBenchSchemaVersion);
  w.field("bench", "fleet_scaling");
  w.field("devices", static_cast<std::uint64_t>(ref_params.catalog->size()));
  w.field("pairs", static_cast<std::uint64_t>(pairs));
  w.field("catalog_id", ref_params.catalog_id);
  w.field("reference_seconds", ref_seconds, 6);
  w.key("runs").begin_array();
  bool all_identical = true;
  for (const FleetRun& r : runs) {
    all_identical = all_identical && r.outputs_identical;
    w.begin_object();
    w.field("workers", r.workers);
    w.field("seconds", r.seconds, 6);
    w.field("devices_per_sec", r.devices_per_sec, 2);
    w.field("claim_attempts", r.claims.attempts);
    w.field("claims_acquired", r.claims.acquired);
    w.field("claims_contended", r.claims.contended);
    w.field("claims_reaped", r.claims.reaped);
    w.field("claims_released", r.claims.released);
    w.field("seeded_stale_claims",
            static_cast<std::uint64_t>(r.seeded_stale_claims));
    w.field("reduce_hits", r.reduce_stats.hits);
    w.field("reduce_misses", r.reduce_stats.misses);
    w.field("reduce_hit_rate", r.reduce_stats.hit_rate(), 4);
    w.field("outputs_identical", r.outputs_identical);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::printf("%s\n", w.document().c_str());
  return all_identical ? 0 : 1;
}
