// Reproduces paper Table 3: number of non-first parties contacted by
// devices, grouped by device category.
#include "common.hpp"

int main() {
  using namespace iotx;
  bench::print_title("Table 3 — non-first parties by device category");
  bench::print_paper_note(
      "Cameras contact the most support parties (49-50); TVs the most third "
      "parties (4 US / 2 UK); audio and smart hubs contact zero third "
      "parties.");

  util::TextTable table(bench::header8({"Category", "Party"}));
  std::string last;
  for (const core::Table3Row& row : core::build_table3(bench::shared_study())) {
    if (!last.empty() && row.category != last) table.add_rule();
    last = row.category;
    std::vector<std::string> cells = {row.category, row.party};
    for (const std::string& c : bench::int_cells(row.counts)) {
      cells.push_back(c);
    }
    table.add_row(std::move(cells));
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
