// Online-inference latency bench: the flattened forest + incremental
// feature pipeline the serve detection path runs per traffic unit.
//
//   1. detect phase — run_detector over a real idle capture's device
//      meta with metrics on: per-unit latency histogram (segmentation +
//      feature finish + forest vote, p50/p99 from the registry's log2
//      buckets), units/sec, detections.
//   2. predict phase — the same unit feature rows pushed through the
//      pointer forest (ml::RandomForest) and the compiled flat forest
//      (ml::FlatForest) in alternating timed rounds (best-of to shave
//      scheduler noise), counting exact prediction/probability
//      mismatches — which must be zero, the flat forest's contract.
//
// Absolute ns/predict is machine-dependent and not gated;
// scripts/check_ingest_baseline.py --inference gates the same-run
// invariants: zero mismatches, flat at least as fast as pointer, and a
// coherent latency histogram (0 < p50 <= p99 <= max).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "iotx/analysis/features.hpp"
#include "iotx/analysis/inference.hpp"
#include "iotx/analysis/unexpected.hpp"
#include "iotx/flow/traffic_unit.hpp"
#include "iotx/ml/flat_forest.hpp"
#include "iotx/obs/registry.hpp"
#include "iotx/serve/detector.hpp"
#include "iotx/testbed/catalog.hpp"
#include "iotx/testbed/experiment.hpp"
#include "iotx/testbed/synth.hpp"
#include "iotx/util/prng.hpp"

namespace {

using namespace iotx;
using Clock = std::chrono::steady_clock;

analysis::ActivityModel trained_model(const testbed::DeviceSpec& device,
                                      const testbed::NetworkConfig& config) {
  const testbed::ExperimentRunner runner(testbed::SchedulePlan{8, 8, 8, 0.0});
  std::vector<testbed::LabeledCapture> captures;
  for (const testbed::ExperimentSpec& spec : runner.schedule(device, config)) {
    if (spec.type == testbed::ExperimentType::kIdle) continue;
    captures.push_back(runner.run(spec));
  }
  const testbed::TrafficSynthesizer synth;
  for (int i = 0; i < 6; ++i) {
    testbed::LabeledCapture bg;
    bg.spec.device_id = device.id;
    bg.spec.config = config;
    bg.spec.type = testbed::ExperimentType::kInteraction;
    bg.spec.activity = std::string(analysis::kBackgroundLabel);
    bg.spec.repetition = i;
    util::Prng prng("bench-inference-bg" + std::to_string(i));
    bg.packets = synth.background(device, config, 0.0, 60.0, prng);
    captures.push_back(std::move(bg));
  }
  analysis::InferenceParams params;
  params.validation.forest.n_trees = 30;
  params.validation.repetitions = 4;
  return analysis::train_activity_model(device, config, captures, params);
}

/// Device meta of a synthetic idle capture, as MetaCollector collects it.
std::vector<flow::PacketMeta> idle_meta(const testbed::DeviceSpec& device,
                                        const testbed::NetworkConfig& config,
                                        double hours) {
  const testbed::TrafficSynthesizer synth;
  util::Prng prng("bench-inference-idle");
  const auto packets = synth.idle_period(device, config, 0.0, hours, prng);
  flow::MetaCollector collector(
      testbed::device_mac(device, config.lab == testbed::LabSite::kUs));
  for (const net::Packet& p : packets) {
    if (const auto decoded = net::decode_packet(p)) {
      collector.on_packet(*decoded);
    }
  }
  collector.on_finish();
  return collector.take();
}

/// Best-of-N timed rounds of `forest.predict` over all rows; fills
/// `out_labels` from the last round (identical every round).
template <typename Forest>
double predict_ns_per_row(const Forest& forest,
                          const std::vector<std::vector<double>>& rows,
                          int rounds, std::vector<int>& out_labels) {
  double best_ns = 0.0;
  for (int round = 0; round < rounds; ++round) {
    out_labels.clear();
    const auto t0 = Clock::now();
    for (const std::vector<double>& row : rows) {
      out_labels.push_back(forest.predict(row));
    }
    const double ns =
        std::chrono::duration<double, std::nano>(Clock::now() - t0).count() /
        static_cast<double>(rows.size());
    if (round == 0 || ns < best_ns) best_ns = ns;
  }
  return best_ns;
}

}  // namespace

int main() {
  const testbed::DeviceSpec& device =
      *testbed::find_device("zmodo_doorbell");
  const testbed::NetworkConfig config{testbed::LabSite::kUs, false};
  const analysis::ActivityModel model = trained_model(device, config);
  const serve::DetectorModel detector =
      serve::DetectorModel::from_activity_model(device, model);
  const std::vector<flow::PacketMeta> meta = idle_meta(device, config, 2.0);

  // --- detect phase: the serve per-unit path, metrics on ---------------
  obs::Registry::global().reset();
  obs::set_metrics_enabled(true);
  serve::run_detector(detector, meta);  // warm-up (page in model + meta)
  obs::Registry::global().reset();
  const auto d0 = Clock::now();
  const serve::DetectionOutcome outcome = serve::run_detector(detector, meta);
  const double detect_seconds =
      std::chrono::duration<double>(Clock::now() - d0).count();
  obs::set_metrics_enabled(false);
  obs::Registry::MetricSnapshot latency;
  const obs::Registry::Snapshot snap = obs::Registry::global().snapshot();
  if (const auto* h = snap.find("serve/detect_latency_ns")) latency = *h;

  // --- predict phase: flat vs pointer over the same unit features ------
  const auto units =
      flow::segment_traffic(meta, detector.params().unit_gap_seconds);
  std::vector<std::vector<double>> rows;
  for (const flow::TrafficUnit& unit : units) {
    if (unit.packets.size() < detector.params().min_unit_packets) continue;
    rows.push_back(analysis::FeatureAccumulator::extract(unit));
  }
  // Pad with repeats so the timed loop is long enough to resolve.
  const std::size_t base_rows = rows.size();
  while (!rows.empty() && rows.size() < 4096) {
    rows.push_back(rows[rows.size() % base_rows]);
  }

  const ml::FlatForest flat = ml::FlatForest::compile(model.forest);
  constexpr int kRounds = 5;
  std::vector<int> pointer_labels;
  std::vector<int> flat_labels;
  const double pointer_ns =
      predict_ns_per_row(model.forest, rows, kRounds, pointer_labels);
  const double flat_ns =
      predict_ns_per_row(flat, rows, kRounds, flat_labels);

  std::uint64_t label_mismatches = 0;
  std::uint64_t proba_mismatches = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (pointer_labels[i] != flat_labels[i]) ++label_mismatches;
    if (model.forest.predict_proba(rows[i]) != flat.predict_proba(rows[i])) {
      ++proba_mismatches;
    }
  }

  const double units_per_sec =
      detect_seconds > 0.0
          ? static_cast<double>(outcome.units_total) / detect_seconds
          : 0.0;
  const double speedup = flat_ns > 0.0 ? pointer_ns / flat_ns : 0.0;

  bench::JsonWriter w;
  w.begin_object();
  w.field("schema_version", bench::kBenchSchemaVersion);
  w.field("bench", "inference_latency");

  w.key("model").begin_object();
  w.field("device", device.id);
  w.field("trees", static_cast<std::uint64_t>(flat.tree_count()));
  w.field("nodes", static_cast<std::uint64_t>(flat.node_count()));
  w.field("classes", static_cast<std::uint64_t>(flat.class_count()));
  w.field("device_f1", model.device_f1(), 4);
  w.end_object();

  w.key("detect").begin_object();
  w.field("meta_packets", static_cast<std::uint64_t>(meta.size()));
  w.field("units", outcome.units_total);
  w.field("units_classified", outcome.units_classified);
  w.field("detections", static_cast<std::uint64_t>(outcome.detections.size()));
  w.field("seconds", detect_seconds, 6);
  w.field("units_per_sec", units_per_sec, 1);
  w.key("unit_latency").begin_object();
  w.field("count", latency.count);
  w.field("mean_ns", latency.mean(), 0);
  w.field("max_ns", latency.max);
  w.field("p50_ns", latency.p50());
  w.field("p99_ns", latency.p99());
  w.end_object();
  w.end_object();

  w.key("predict").begin_object();
  w.field("unit_rows", static_cast<std::uint64_t>(base_rows));
  w.field("timed_rows", static_cast<std::uint64_t>(rows.size()));
  w.field("rounds", kRounds);
  w.field("pointer_ns_per_predict", pointer_ns, 1);
  w.field("flat_ns_per_predict", flat_ns, 1);
  w.field("flat_speedup", speedup, 3);
  w.field("label_mismatches", label_mismatches);
  w.field("proba_mismatches", proba_mismatches);
  w.end_object();

  w.end_object();
  std::printf("%s\n", w.document().c_str());
  return 0;
}
