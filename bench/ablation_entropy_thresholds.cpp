// Ablation: sweep the entropy thresholds of the §5.1 classifier over a
// labeled payload corpus and show why the paper's conservative 0.4/0.8
// pair is a sensible operating point — it keeps false classifications
// near zero at the cost of an "unknown" band.
#include <cstdio>
#include <string>
#include <vector>

#include "iotx/util/entropy.hpp"
#include "iotx/util/prng.hpp"
#include "iotx/util/strings.hpp"
#include "iotx/util/table.hpp"
#include "common.hpp"

namespace {

using iotx::util::byte_entropy;
using iotx::util::Prng;

struct Sample {
  double entropy;
  bool encrypted;  // ground truth
};

std::vector<Sample> build_corpus() {
  std::vector<Sample> corpus;
  Prng prng("ablation-corpus");
  for (int i = 0; i < 300; ++i) {
    // Realistic flow-payload sample sizes: many flows are short, which
    // pulls the measured entropy of even perfect ciphertext down.
    const std::size_t n = 60 + prng.uniform(1800);

    // Encrypted (a): raw ciphertext.
    {
      std::vector<std::uint8_t> data(n);
      for (auto& b : data) b = static_cast<std::uint8_t>(prng.uniform(256));
      corpus.push_back({byte_entropy(data), true});
    }
    // Encrypted (b): base64-armored ciphertext (fernet-style, H <= 0.75).
    {
      static constexpr char kB64[] =
          "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
      std::vector<std::uint8_t> data(n);
      for (auto& b : data) {
        b = static_cast<std::uint8_t>(kB64[prng.uniform(64)]);
      }
      corpus.push_back({byte_entropy(data), true});
    }
    // Encrypted (c): ciphertext with periodic plaintext framing headers.
    {
      std::vector<std::uint8_t> data;
      data.reserve(n);
      static constexpr std::string_view kHeader = "RECORD v1 LEN=01380 ";
      while (data.size() < n) {
        for (char c : kHeader) {
          if (data.size() >= n) break;
          data.push_back(static_cast<std::uint8_t>(c));
        }
        for (int k = 0; k < 96 && data.size() < n; ++k) {
          data.push_back(static_cast<std::uint8_t>(prng.uniform(256)));
        }
      }
      corpus.push_back({byte_entropy(data), true});
    }
    // Unencrypted (a): repetitive keep-alive text.
    {
      std::string text = "HEARTBEAT " + std::to_string(i) + " ";
      while (text.size() < n) text += "OK";
      text.resize(n);
      corpus.push_back({byte_entropy({reinterpret_cast<const std::uint8_t*>(
                                          text.data()),
                                      text.size()}),
                        false});
    }
    // Unencrypted (b): web-page-like markup.
    {
      static constexpr const char* kWords[] = {
          "<div>", "class=", "privacy", "device", "the", "of", "exposure",
          "</div>", "href=", "network"};
      std::string text;
      while (text.size() < n) {
        text += kWords[prng.uniform(std::size(kWords))];
        text += ' ';
      }
      text.resize(n);
      corpus.push_back({byte_entropy({reinterpret_cast<const std::uint8_t*>(
                                          text.data()),
                                      text.size()}),
                        false});
    }
    // Unencrypted (c): JSON stuffed with hex identifiers — the richest
    // plaintext the devices emit, closest to the decision boundary.
    {
      std::string text = "{";
      static constexpr char kHex[] = "0123456789abcdef";
      while (text.size() < n) {
        text += "\"id\":\"";
        for (int k = 0; k < 16; ++k) text += kHex[prng.uniform(16)];
        text += "\",";
      }
      text.resize(n);
      corpus.push_back({byte_entropy({reinterpret_cast<const std::uint8_t*>(
                                          text.data()),
                                      text.size()}),
                        false});
    }
  }
  return corpus;
}

}  // namespace

int main() {
  using namespace iotx;
  bench::print_title(
      "Ablation — entropy threshold sweep for the encryption classifier");
  bench::print_paper_note(
      "§5.1: \"we cannot identify a single threshold that will always "
      "classify encrypted and unencrypted payloads correctly ... we chose "
      "conservative thresholds ... relegating remaining cases to an "
      "'undetermined' class\" — 0.4 / 0.8 in the paper and here.");

  const std::vector<Sample> corpus = build_corpus();

  // Single-threshold sweep: everything above is 'encrypted'.
  util::TextTable single({"single threshold", "misclassified %"});
  for (double t : {0.3, 0.4, 0.5, 0.6, 0.7, 0.75, 0.8, 0.9}) {
    int wrong = 0;
    for (const Sample& s : corpus) {
      const bool classified_encrypted = s.entropy > t;
      wrong += classified_encrypted != s.encrypted;
    }
    single.add_row({util::format_double(t, 2),
                    util::format_double(100.0 * wrong / corpus.size(), 2)});
  }
  std::fputs(single.render().c_str(), stdout);

  // Two-threshold sweep: [lo, hi] band is 'unknown'.
  std::printf("\nTwo-threshold operating points (errors exclude the unknown "
              "band; the band is the price paid):\n");
  util::TextTable dual({"lo", "hi", "false enc %", "false unenc %",
                        "unknown %"});
  const double pairs[][2] = {{0.3, 0.9}, {0.4, 0.8}, {0.45, 0.75},
                             {0.5, 0.7}, {0.55, 0.65}};
  for (const auto& pair : pairs) {
    int false_enc = 0, false_unenc = 0, unknown = 0;
    for (const Sample& s : corpus) {
      if (s.entropy > pair[1]) {
        false_enc += !s.encrypted;
      } else if (s.entropy < pair[0]) {
        false_unenc += s.encrypted;
      } else {
        ++unknown;
      }
    }
    const double n = static_cast<double>(corpus.size());
    dual.add_row({util::format_double(pair[0], 2),
                  util::format_double(pair[1], 2),
                  util::format_double(100.0 * false_enc / n, 2),
                  util::format_double(100.0 * false_unenc / n, 2),
                  util::format_double(100.0 * unknown / n, 2)});
  }
  std::fputs(dual.render().c_str(), stdout);

  // Held-out content types, NOT used to pick the thresholds: a narrow band
  // tuned to the calibration corpus misclassifies them; the conservative
  // 0.4/0.8 band keeps them in 'unknown'.
  std::vector<Sample> held_out;
  {
    Prng prng("ablation-heldout");
    static constexpr char kHexDigits[] = "0123456789abcdef";
    static constexpr const char* kProse[] = {
        "characterize", "information", "exposure", "jurisdiction",
        "experiment", "doorbell",      "encrypted", "surreptitiously",
        "measurement", "approximately"};
    for (int i = 0; i < 300; ++i) {
      const std::size_t n = 200 + prng.uniform(1600);
      // Hex-armored ciphertext (H ~ 0.5): encrypted.
      std::vector<std::uint8_t> hex(n);
      for (auto& b : hex) {
        b = static_cast<std::uint8_t>(kHexDigits[prng.uniform(16)]);
      }
      held_out.push_back({byte_entropy(hex), true});
      // Vocabulary-rich prose (H ~ 0.55-0.6): unencrypted.
      std::string text;
      while (text.size() < n) {
        text += kProse[prng.uniform(std::size(kProse))];
        text += ' ';
      }
      text.resize(n);
      held_out.push_back({byte_entropy({reinterpret_cast<const std::uint8_t*>(
                                            text.data()),
                                        text.size()}),
                          false});
    }
  }
  std::printf("\nHeld-out content (hex-armored ciphertext, rich prose) — "
              "not in the calibration corpus:\n");
  util::TextTable held({"lo", "hi", "false enc %", "false unenc %",
                        "unknown %"});
  for (const auto& pair : pairs) {
    int false_enc = 0, false_unenc = 0, unknown = 0;
    for (const Sample& s : held_out) {
      if (s.entropy > pair[1]) {
        false_enc += !s.encrypted;
      } else if (s.entropy < pair[0]) {
        false_unenc += s.encrypted;
      } else {
        ++unknown;
      }
    }
    const double n = static_cast<double>(held_out.size());
    held.add_row({util::format_double(pair[0], 2),
                  util::format_double(pair[1], 2),
                  util::format_double(100.0 * false_enc / n, 2),
                  util::format_double(100.0 * false_unenc / n, 2),
                  util::format_double(100.0 * unknown / n, 2)});
  }
  std::fputs(held.render().c_str(), stdout);
  std::printf(
      "\nA band tuned tightly to the calibration corpus (0.55/0.65) "
      "confidently mislabels unseen encodings; the paper's conservative "
      "0.4/0.8 pair keeps errors at zero on both corpora and pays with an "
      "'unknown' class — exactly the §5.1 rationale.\n");
  return 0;
}
