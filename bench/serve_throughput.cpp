// Serve-daemon throughput bench: boots two in-process `iotx serve`
// daemons on ephemeral ports and measures the ingest front door the way
// a gateway fleet exercises it.
//
//   1. clean phase — a daemon with headroom (max_sessions 8, two
//      uploader threads, so session load stays below the ladder's first
//      threshold) streams a fixed set of chunked pcap uploads. Reports
//      sessions/sec and MB/sec, the daemon's own admission-latency
//      histogram (p50/p99 estimated from the registry's log2 buckets),
//      and whether a streamed tenant report is still byte-identical to
//      serve::batch_report_json over the same bytes.
//   2. flood phase — a fresh daemon clamped to one worker takes the
//      same uploads from 16 concurrent clients. Overload must walk the
//      degradation ladder: some sessions shed with 503, none lost
//      (completed + shed == attempts, counted daemon-side), and the
//      daemon still answers /health afterwards.
//
// Absolute sessions/sec is machine-dependent and deliberately not
// gated; scripts/check_ingest_baseline.py --serve gates only the
// same-run invariants above (conservation, byte-identity, shed > 0
// under flood, histogram sanity).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "iotx/net/pcap.hpp"
#include "iotx/obs/registry.hpp"
#include "iotx/obs/trace.hpp"
#include "iotx/serve/chaos.hpp"
#include "iotx/serve/daemon.hpp"
#include "iotx/testbed/catalog.hpp"
#include "iotx/testbed/synth.hpp"
#include "iotx/util/prng.hpp"

namespace {

using namespace iotx;
using Clock = std::chrono::steady_clock;

/// One gateway capture: a power-on handshake plus a background window —
/// the small-frame-dominated mix ingest actually pays for (same shape
/// the ingest_throughput bench measures), serialized to pcap file bytes.
std::vector<std::uint8_t> golden_pcap() {
  const testbed::DeviceSpec& dev = *testbed::find_device("ring_doorbell");
  const testbed::NetworkConfig config{testbed::LabSite::kUs, false};
  const testbed::TrafficSynthesizer synth;
  util::Prng prng("bench-serve/ring_doorbell");
  std::vector<net::Packet> capture =
      synth.power_event(dev, config, 1000.0, prng);
  std::vector<net::Packet> background =
      synth.background(dev, config, 1060.0, 1360.0, prng);
  capture.insert(capture.end(), background.begin(), background.end());
  return net::pcap_serialize(capture);
}

struct CleanStats {
  std::uint64_t sessions = 0;
  std::uint64_t bytes = 0;
  double seconds = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t quarantined = 0;
  bool report_matches_batch = false;
  obs::Registry::MetricSnapshot admission;
};

/// Clean throughput: `uploads` chunked sessions spread round-robin over
/// four tenants from two client threads, plus one dedicated tenant
/// whose single upload anchors the streamed-vs-batch byte-identity
/// check. Load stays under 2/8 = 0.25, so every session must be
/// admitted at full fidelity.
CleanStats run_clean_phase(const std::vector<std::uint8_t>& pcap,
                           std::uint64_t uploads) {
  obs::Registry::global().reset();
  serve::ServeConfig config;
  config.port = 0;
  config.max_sessions = 8;
  serve::Daemon daemon(config);
  CleanStats stats;
  if (!daemon.start()) {
    std::fprintf(stderr, "serve bench: daemon failed to start: %s\n",
                 daemon.error().c_str());
    return stats;
  }

  const auto t0 = Clock::now();
  const std::uint64_t per_thread = uploads / 2;
  std::vector<std::thread> clients;
  for (int t = 0; t < 2; ++t) {
    clients.emplace_back([&, t] {
      serve::ChaosClient client("127.0.0.1", daemon.port());
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        const std::string tenant =
            "lab" + std::to_string((t * per_thread + i) % 4);
        client.upload_chunked(tenant, pcap);
      }
    });
  }
  for (std::thread& c : clients) c.join();

  // One fresh tenant, one more upload (still inside the timing window —
  // it is a session like any other): its report must be byte-identical
  // to the batch path over the same bytes, even after the load above.
  serve::ChaosClient client("127.0.0.1", daemon.port());
  client.upload_chunked("identity", pcap);
  stats.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  const serve::ChaosResult streamed = client.get("/report/identity");
  stats.report_matches_batch =
      streamed.status_code == 200 &&
      streamed.body == serve::batch_report_json("identity", pcap);

  const serve::ServeStats s = daemon.stats();
  stats.sessions = s.sessions_started;
  stats.bytes = s.bytes_received;
  stats.completed = s.sessions_completed;
  stats.shed = s.sessions_shed;
  stats.quarantined = s.sessions_quarantined;
  const obs::Registry::Snapshot snap = obs::Registry::global().snapshot();
  if (const auto* h = snap.find("serve/admission_latency_ns")) {
    stats.admission = *h;
  }
  daemon.stop();
  return stats;
}

struct FloodStats {
  std::uint64_t attempts = 0;
  std::uint64_t responses_200 = 0;
  std::uint64_t responses_503 = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t ladder_transitions = 0;
  double seconds = 0.0;
  bool daemon_alive_after = false;
};

/// Flood: 16 concurrent clients against a single-worker daemon. The
/// accept loop sees session load 1/1 whenever the worker is busy, so
/// the ladder must shed part of the flood — and account for every
/// session either way.
FloodStats run_flood_phase(const std::vector<std::uint8_t>& pcap) {
  obs::Registry::global().reset();
  serve::ServeConfig config;
  config.port = 0;
  config.max_sessions = 1;
  config.accept_backlog = 4;
  serve::Daemon daemon(config);
  FloodStats stats;
  if (!daemon.start()) {
    std::fprintf(stderr, "serve bench: flood daemon failed to start: %s\n",
                 daemon.error().c_str());
    return stats;
  }

  constexpr int kClients = 16;
  constexpr int kUploadsPerClient = 3;
  stats.attempts = kClients * kUploadsPerClient;
  std::vector<std::uint64_t> ok_counts(kClients, 0);
  std::vector<std::uint64_t> shed_counts(kClients, 0);
  const auto t0 = Clock::now();
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      serve::ChaosClient client("127.0.0.1", daemon.port());
      for (int i = 0; i < kUploadsPerClient; ++i) {
        const serve::ChaosResult r = client.upload_chunked("flood", pcap);
        if (r.status_code == 200) ++ok_counts[t];
        if (r.status_code == 503) ++shed_counts[t];
      }
    });
  }
  for (std::thread& c : clients) c.join();
  stats.seconds = std::chrono::duration<double>(Clock::now() - t0).count();

  for (int t = 0; t < kClients; ++t) {
    stats.responses_200 += ok_counts[t];
    stats.responses_503 += shed_counts[t];
  }
  const serve::ServeStats s = daemon.stats();
  stats.completed = s.sessions_completed;
  stats.shed = s.sessions_shed;
  stats.ladder_transitions = s.ladder_transitions;

  serve::ChaosClient probe("127.0.0.1", daemon.port());
  stats.daemon_alive_after = probe.get("/health").status_code == 200;
  daemon.stop();
  return stats;
}

}  // namespace

int main() {
  obs::set_metrics_enabled(true);
  const std::vector<std::uint8_t> pcap = golden_pcap();

  // Warm-up (page in the serve stack), then the measured clean phase.
  run_clean_phase(pcap, 8);
  const CleanStats clean = run_clean_phase(pcap, 48);
  const FloodStats flood = run_flood_phase(pcap);
  obs::set_metrics_enabled(false);

  const double sessions_per_sec =
      clean.seconds > 0.0
          ? static_cast<double>(clean.sessions) / clean.seconds
          : 0.0;
  const double mb_per_sec =
      clean.seconds > 0.0
          ? static_cast<double>(clean.bytes) / clean.seconds / 1.0e6
          : 0.0;
  const double shed_rate =
      flood.attempts > 0
          ? static_cast<double>(flood.shed) /
                static_cast<double>(flood.attempts)
          : 0.0;

  bench::JsonWriter w;
  w.begin_object();
  w.field("schema_version", bench::kBenchSchemaVersion);
  w.field("bench", "serve_throughput");
  w.field("pcap_bytes", static_cast<std::uint64_t>(pcap.size()));

  w.key("clean").begin_object();
  w.field("sessions", clean.sessions);
  w.field("bytes", clean.bytes);
  w.field("seconds", clean.seconds, 6);
  w.field("sessions_per_sec", sessions_per_sec, 1);
  w.field("mb_per_sec", mb_per_sec, 1);
  w.field("completed", clean.completed);
  w.field("shed", clean.shed);
  w.field("quarantined", clean.quarantined);
  w.field("report_matches_batch", clean.report_matches_batch);
  w.key("admission_latency").begin_object();
  w.field("count", clean.admission.count);
  w.field("mean_ns", clean.admission.mean(), 0);
  w.field("max_ns", clean.admission.max);
  w.field("p50_ns", clean.admission.p50());
  w.field("p99_ns", clean.admission.p99());
  w.end_object();
  w.end_object();

  w.key("flood").begin_object();
  w.field("attempts", flood.attempts);
  w.field("responses_200", flood.responses_200);
  w.field("responses_503", flood.responses_503);
  w.field("completed", flood.completed);
  w.field("shed", flood.shed);
  w.field("shed_rate", shed_rate, 3);
  w.field("ladder_transitions", flood.ladder_transitions);
  w.field("seconds", flood.seconds, 6);
  w.field("daemon_alive_after", flood.daemon_alive_after);
  w.end_object();

  w.end_object();
  std::printf("%s\n", w.document().c_str());
  return 0;
}
