// Ablation: which feature family carries the signal? The paper's
// classifier uses statistics of packet sizes AND inter-arrival times
// (§6.1). Train with each family alone and with both, per device.
#include <cstdio>
#include <vector>

#include "iotx/analysis/inference.hpp"
#include "iotx/testbed/experiment.hpp"
#include "iotx/util/strings.hpp"
#include "iotx/util/table.hpp"
#include "common.hpp"

namespace {

using namespace iotx;

// Feature layout: [0,45) size statistics, [45,90) IAT statistics.
ml::Dataset project(const ml::Dataset& full, std::size_t begin,
                    std::size_t end) {
  ml::Dataset out;
  for (std::size_t i = 0; i < full.size(); ++i) {
    const auto& row = full.row(i);
    out.add(std::vector<double>(row.begin() + begin, row.begin() + end),
            full.class_name(full.label(i)));
  }
  return out;
}

double cv_f1(const ml::Dataset& data, const char* key) {
  ml::ValidationParams params;
  params.forest.n_trees = 30;
  params.repetitions = 5;
  return ml::cross_validate(data, params, key).macro_f1;
}

}  // namespace

int main() {
  bench::print_title(
      "Ablation — packet-size vs inter-arrival-time features (§6.1)");
  bench::print_paper_note(
      "The paper trains on \"timing statistics of the traffic with respect "
      "to packet sizes and inter-arrival times\". This ablation shows each "
      "family alone vs combined, per device.");

  const testbed::ExperimentRunner runner(
      testbed::SchedulePlan{12, 4, 4, 0.0});
  util::TextTable table({"Device", "sizes only", "IATs only", "both"});
  double sum_sizes = 0, sum_iats = 0, sum_both = 0;
  int n = 0;
  for (const char* id : {"ring_doorbell", "samsung_tv", "samsung_fridge",
                         "smartthings_hub", "echo_dot", "wansview_cam"}) {
    const testbed::DeviceSpec& device = *testbed::find_device(id);
    const testbed::NetworkConfig config{testbed::LabSite::kUs, false};
    std::vector<testbed::LabeledCapture> captures;
    for (const auto& spec : runner.schedule(device, config)) {
      if (spec.type == testbed::ExperimentType::kIdle) continue;
      captures.push_back(runner.run(spec));
    }
    const ml::Dataset full = analysis::build_dataset(device, captures);
    const double f1_sizes = cv_f1(project(full, 0, 45), "abl-sizes");
    const double f1_iats = cv_f1(project(full, 45, 90), "abl-iats");
    const double f1_both = cv_f1(full, "abl-both");
    sum_sizes += f1_sizes;
    sum_iats += f1_iats;
    sum_both += f1_both;
    ++n;
    table.add_row({device.name, util::format_double(f1_sizes, 2),
                   util::format_double(f1_iats, 2),
                   util::format_double(f1_both, 2)});
  }
  table.add_rule();
  table.add_row({"mean", util::format_double(sum_sizes / n, 2),
                 util::format_double(sum_iats / n, 2),
                 util::format_double(sum_both / n, 2)});
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nSize statistics carry most of the signal; IATs add a complementary "
      "margin — combining both (the paper's choice) is never worse.\n");
  return 0;
}
