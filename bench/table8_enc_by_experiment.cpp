// Reproduces paper Table 8: percent of bytes per encryption class,
// grouped by experiment type (plus the uncontrolled user-study row).
#include "common.hpp"

int main() {
  using namespace iotx;
  bench::print_title("Table 8 — percent bytes per class, by experiment type");
  bench::print_paper_note(
      "Paper shapes: video interactions have the lowest encrypted share "
      "(9-15%) and the highest unknown share (~84%); voice interactions "
      "the highest encrypted share (59-67%); power experiments show the "
      "most unencrypted bytes (8-10%).");

  util::TextTable table(bench::header8({"Class", "Experiment", "#D"}));
  std::string last;
  for (const core::Table8Row& row : core::build_table8(bench::shared_study())) {
    if (!last.empty() && row.enc_class != last) table.add_rule();
    last = row.enc_class;
    std::vector<std::string> cells = {row.enc_class, row.experiment,
                                      std::to_string(row.device_count)};
    if (row.uncontrolled_pct >= 0.0) {
      // Uncontrolled experiments exist only in the US lab.
      cells.push_back(util::format_double(row.uncontrolled_pct, 1));
      while (cells.size() < 11) cells.push_back("-");
    } else {
      for (const std::string& c : bench::pct_cells(row.pct)) {
        cells.push_back(c);
      }
    }
    table.add_row(std::move(cells));
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
