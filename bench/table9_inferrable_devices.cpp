// Reproduces paper Table 9: number of devices whose activities are
// reliably inferrable (device F1 > 0.75), per category.
#include "common.hpp"

int main() {
  using namespace iotx;
  bench::print_title("Table 9 — inferrable devices (F1 > 0.75) by category");
  bench::print_paper_note(
      "Paper: cameras have the most inferrable devices (8 US / 6 UK), then "
      "TVs (5/3) and audio (3/1); home automation ~0, smart hubs 1, "
      "appliances 2 — interaction-heavy devices produce the most traffic "
      "and train the best classifiers.");

  util::TextTable table(bench::header8({"Category", "#D"}));
  for (const core::Table9Row& row : core::build_table9(bench::shared_study())) {
    std::vector<std::string> cells = {row.category,
                                      std::to_string(row.device_count)};
    for (const std::string& c : bench::int_cells(row.inferrable)) {
      cells.push_back(c);
    }
    table.add_row(std::move(cells));
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
