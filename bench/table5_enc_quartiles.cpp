// Reproduces paper Table 5: number of devices per encryption-percentage
// quartile (unencrypted / encrypted / unknown).
#include "common.hpp"

int main() {
  using namespace iotx;
  bench::print_title(
      "Table 5 — devices by encryption percentage, quartile groups");
  bench::print_paper_note(
      "Paper: no device is >75% unencrypted; one per lab is 50-75% "
      "unencrypted; 7 devices per lab are >75% encrypted; all but ~8-10 "
      "devices carry >25% unclassifiable ('unknown') traffic — the headline "
      "motivating better protocol analyzers.");

  util::TextTable table(bench::header8({"Class", "Range"}));
  std::string last;
  for (const core::Table5Row& row : core::build_table5(bench::shared_study())) {
    if (!last.empty() && row.enc_class != last) table.add_rule();
    last = row.enc_class;
    std::vector<std::string> cells = {row.enc_class, row.range};
    for (const std::string& c : bench::int_cells(row.device_counts)) {
      cells.push_back(c);
    }
    table.add_row(std::move(cells));
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
