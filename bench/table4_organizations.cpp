// Reproduces paper Table 4: organizations contacted (as non-first parties)
// by the largest numbers of devices.
#include "common.hpp"

int main() {
  using namespace iotx;
  bench::print_title("Table 4 — organizations contacted by multiple devices");
  bench::print_paper_note(
      "Paper top-10: Amazon 31/24, Google 14/9, Akamai 10/6, Microsoft 6/4, "
      "Netflix 4/2, then the Chinese clouds (Kingsoft/21Vianet/Alibaba/"
      "Beijing Huaxiay ~3 each) and AT&T. Amazon leads because of AWS "
      "hosting; the Chinese clouds serve the Chinese-designed devices.");

  util::TextTable table(bench::header8({"Organization"}));
  for (const core::Table4Row& row :
       core::build_table4(bench::shared_study(), 10)) {
    std::vector<std::string> cells = {row.organization};
    for (const std::string& c : bench::int_cells(row.device_counts)) {
      cells.push_back(c);
    }
    table.add_row(std::move(cells));
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
