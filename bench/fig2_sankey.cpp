// Reproduces paper Figure 2: traffic volume from each lab, by device
// category, to the top destination regions (the Sankey diagram's edges).
#include <algorithm>
#include <map>

#include "common.hpp"

int main() {
  using namespace iotx;
  bench::print_title(
      "Figure 2 — traffic volume: lab -> category -> destination region");
  bench::print_paper_note(
      "Most traffic terminates in the US for BOTH labs (limited cloud "
      "geodiversity); most overseas traffic goes to China via Alibaba-"
      "hosted services; UK devices also reach the EU replicas.");

  const auto edges = core::build_figure2(bench::shared_study());

  // Per-lab region totals first (the headline comparison).
  for (const char* lab : {"US", "UK"}) {
    std::map<std::string, std::uint64_t> by_region;
    std::uint64_t total = 0;
    for (const auto& e : edges) {
      if (e.lab != lab) continue;
      by_region[e.region] += e.bytes;
      total += e.bytes;
    }
    std::printf("%s lab — destination regions by byte share:\n", lab);
    std::vector<std::pair<std::string, std::uint64_t>> sorted(
        by_region.begin(), by_region.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (const auto& [region, bytes] : sorted) {
      std::printf("  %-7s %10s  (%5.1f%%)\n", region.c_str(),
                  util::format_bytes(bytes).c_str(),
                  total == 0 ? 0.0 : 100.0 * double(bytes) / double(total));
    }
    std::printf("\n");
  }

  // Full edge list (the Sankey band data).
  util::TextTable table({"Lab", "Category", "Region", "Bytes"});
  for (const auto& e : edges) {
    table.add_row({e.lab, e.category, e.region, util::format_bytes(e.bytes)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
