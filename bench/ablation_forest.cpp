// Ablation: random-forest capacity and split protocol. The paper uses
// 30+ repetitions per interaction and 10x 70/30 cross-validation; this
// sweep shows how F1 estimates move with tree count, training fraction,
// and repetitions per activity.
#include <cstdio>

#include "iotx/analysis/inference.hpp"
#include "iotx/testbed/experiment.hpp"
#include "iotx/util/strings.hpp"
#include "iotx/util/table.hpp"
#include "common.hpp"

namespace {

using namespace iotx;

ml::Dataset dataset_for(const char* device_id, int reps) {
  const testbed::DeviceSpec& device = *testbed::find_device(device_id);
  const testbed::NetworkConfig config{testbed::LabSite::kUs, false};
  const testbed::ExperimentRunner runner(
      testbed::SchedulePlan{reps, std::max(3, reps / 4), std::max(3, reps / 4),
                            0.0});
  std::vector<testbed::LabeledCapture> captures;
  for (const auto& spec : runner.schedule(device, config)) {
    if (spec.type == testbed::ExperimentType::kIdle) continue;
    captures.push_back(runner.run(spec));
  }
  return analysis::build_dataset(device, captures);
}

}  // namespace

int main() {
  bench::print_title("Ablation — forest size, split fraction, repetitions");
  bench::print_paper_note(
      "§3.3/§6.1: 30 automated repetitions per interaction \"provide "
      "enough samples to apply cross-validation\"; validation is 10 "
      "repeats of a 70/30 split.");

  // Tree-count sweep at the paper's split.
  {
    const ml::Dataset data = dataset_for("ring_doorbell", 15);
    util::TextTable table({"n_trees", "macro F1", "accuracy"});
    for (std::size_t trees : {1ul, 5ul, 15ul, 30ul, 60ul, 100ul}) {
      ml::ValidationParams params;
      params.forest.n_trees = trees;
      params.repetitions = 6;
      const auto result = ml::cross_validate(data, params, "abl-trees");
      table.add_row({std::to_string(trees),
                     util::format_double(result.macro_f1, 3),
                     util::format_double(result.accuracy, 3)});
    }
    std::printf("Ring Doorbell — tree-count sweep (70/30):\n");
    std::fputs(table.render().c_str(), stdout);
  }

  // Train-fraction sweep.
  {
    const ml::Dataset data = dataset_for("samsung_tv", 15);
    util::TextTable table({"train fraction", "macro F1"});
    for (double frac : {0.3, 0.5, 0.7, 0.9}) {
      ml::ValidationParams params;
      params.forest.n_trees = 30;
      params.train_fraction = frac;
      params.repetitions = 6;
      const auto result = ml::cross_validate(data, params, "abl-frac");
      table.add_row({util::format_double(frac, 1),
                     util::format_double(result.macro_f1, 3)});
    }
    std::printf("\nSamsung TV — train-fraction sweep (30 trees):\n");
    std::fputs(table.render().c_str(), stdout);
  }

  // Repetitions-per-activity sweep (the paper's "why 30 repetitions").
  {
    util::TextTable table({"reps/activity", "macro F1"});
    for (int reps : {4, 8, 15, 30}) {
      const ml::Dataset data = dataset_for("samsung_fridge", reps);
      ml::ValidationParams params;
      params.forest.n_trees = 30;
      params.repetitions = 6;
      const auto result = ml::cross_validate(data, params, "abl-reps");
      table.add_row({std::to_string(reps),
                     util::format_double(result.macro_f1, 3)});
    }
    std::printf("\nSamsung Fridge — repetitions-per-activity sweep:\n");
    std::fputs(table.render().c_str(), stdout);
  }

  std::printf(
      "\nF1 saturates by ~30 trees and ~15-30 repetitions — matching the "
      "paper's choices (30 automated repetitions, standard forest).\n");
  return 0;
}
