// Reproduces paper Table 11: activity instances detected during the idle
// experiments by the high-confidence (F1 > 0.9) models.
#include "common.hpp"

int main() {
  using namespace iotx;
  bench::print_title(
      "Table 11 — detected activity instances in idle experiments "
      "(models with F1 > 0.9 only)");
  bench::print_paper_note(
      "Paper (28-31 h idle): Zmodo doorbell dominates with 1845 'move' "
      "instances (~66/h); Wansview camera ~114/130 moves and a reconnect "
      "('power') storm on VPN; scattered menu/volume/voice detections "
      "elsewhere. Instance counts scale with idle hours — rates are the "
      "comparable quantity.");

  const core::Table11 table11 =
      core::build_table11(bench::shared_study(), /*min_instances=*/3);

  util::TextTable table({"Device", "Activity", "US", "UK", "VPN US>UK",
                         "VPN UK>US"});
  std::array<std::string, 4> hours;
  for (std::size_t i = 0; i < 4; ++i) {
    hours[i] = util::format_double(table11.hours[i], 2);
  }
  table.add_row({"TOTAL HOURS", "-", hours[0], hours[1], hours[2], hours[3]});
  table.add_rule();
  for (const core::Table11Row& row : table11.rows) {
    table.add_row({row.device_name, row.activity,
                   std::to_string(row.instances[0]),
                   std::to_string(row.instances[1]),
                   std::to_string(row.instances[2]),
                   std::to_string(row.instances[3])});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
